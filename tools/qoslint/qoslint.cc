/**
 * @file
 * qoslint entry point — dispatches to the three analyzers. See
 * qoslint.hh for the suite overview and per-analyzer files for the
 * mechanics.
 */

#include "qoslint.hh"

namespace
{

void
usage()
{
    std::fputs(
        "usage: qoslint <subcommand> [args...]\n"
        "subcommands:\n"
        "  wirelint   extract the visitFields wire schema and check "
        "it\n"
        "             against docs/SCHEMA.lock (--check, --update, "
        "--emit)\n"
        "  layerlint  check #include edges against the declared "
        "module DAG\n"
        "  lockorder  extract Mutex acquisition order and reject "
        "cycles\n"
        "every subcommand also accepts: --self-test <fixture-dir>\n"
        "  qoslint --version      print the build identity\n",
        stderr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        usage();
        return 2;
    }
    if (args[0] == "--version") {
        // qoslint deliberately links nothing from src/ (it polices
        // that code), so it prints the identity macros directly
        // instead of calling common/build_info.
#ifndef CMPQOS_VERSION_STRING
#define CMPQOS_VERSION_STRING "0.0.0"
#endif
#ifndef CMPQOS_GIT_HASH
#define CMPQOS_GIT_HASH "nogit"
#endif
#ifndef CMPQOS_BUILD_TYPE
#define CMPQOS_BUILD_TYPE "unknown"
#endif
#ifndef CMPQOS_BUILD_OPTIONS
#define CMPQOS_BUILD_OPTIONS ""
#endif
        std::printf("qoslint (cmpqos " CMPQOS_VERSION_STRING
                    ", git " CMPQOS_GIT_HASH ", " CMPQOS_BUILD_TYPE
                    ", " CMPQOS_BUILD_OPTIONS ")\n");
        return 0;
    }
    const std::string sub = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (sub == "wirelint")
        return qoslint::wirelintMain(rest);
    if (sub == "layerlint")
        return qoslint::layerlintMain(rest);
    if (sub == "lockorder")
        return qoslint::lockorderMain(rest);
    std::fprintf(stderr, "qoslint: unknown subcommand '%s'\n",
                 sub.c_str());
    usage();
    return 2;
}
