/**
 * @file
 * wirelint — the wire-schema lock analyzer.
 *
 * The replay journal, the federation epoch-commit protocol and the
 * qosd wire protocol all depend on the exact byte layout produced by
 * the `visitFields` visitor definitions: message type ids are
 * std::variant alternative indices, and field order within a message
 * is the order of visitor calls. A reordered field or a changed
 * primitive silently breaks replay compatibility without failing any
 * unit test, because writer and reader share the same definition.
 *
 * wirelint closes that hole: it extracts the schema that the source
 * actually implements — codec primitive set, variant alternative
 * order, and per-struct field (kind, name) sequences — and compares
 * it byte-for-byte against the checked-in docs/SCHEMA.lock. Any
 * drift fails `ctest -L lint`. Regeneration (--update) refuses to
 * write unless the owning protocol version constant was bumped, so a
 * wire change is always paired with a version change reviewers can
 * see.
 *
 * Extraction is textual (comment-aware via lint_util.hh) and
 * deliberately conservative: a message type in the variant with no
 * visitFields definition, or a field naming a primitive outside the
 * codec set, is a hard error (exit 2) — wirelint refuses to lock a
 * schema it cannot fully see.
 *
 * Known limitation: for `v.list(...)` fields the element type is not
 * recorded on the field line, but element structs have their own
 * locked sections, so element layout changes are still caught.
 */

#include <cstdarg>
#include <cstdlib>
#include <map>
#include <sstream>

#include "qoslint.hh"

namespace qoslint
{
namespace
{

void
outf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    char buf[1024];
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

struct WireField
{
    std::string kind; // codec primitive, or "embed" for nested visit
    std::string name;
};

struct WireStruct
{
    std::string name;
    std::vector<WireField> fields;
};

struct WireProtocol
{
    std::string name;
    std::string variantName;
    std::vector<std::string> types; // variant alternatives, id order
    std::string versionConst;
    std::uint32_t version = 0;
    std::vector<WireStruct> structs; // definition order
};

struct WireSchema
{
    std::vector<std::string> codec;
    std::vector<WireProtocol> protocols; // --proto order
    std::vector<std::string> errors;
};

struct WireOpts
{
    enum Mode
    {
        Check,
        Update,
        Emit
    };
    Mode mode = Check;
    std::string lock;
    std::string codec;
    std::vector<std::pair<std::string, std::vector<std::string>>>
        protos;
};

/** Comment-strip a whole file, keeping string literals (field names
 *  live inside them) and newlines (definitions span lines). */
std::string
strippedText(const fs::path &file, std::vector<std::string> &errors)
{
    std::string text;
    if (!lintutil::readFile(file, text)) {
        errors.push_back("cannot read " + file.string());
        return "";
    }
    lintutil::StripState st;
    std::istringstream in(text);
    std::string line, out;
    while (std::getline(in, line)) {
        out += lintutil::stripLine(line, st, /*keep_strings=*/true);
        out += '\n';
    }
    return out;
}

std::string
trimmed(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::vector<std::string>
extractCodec(const fs::path &file, std::vector<std::string> &errors)
{
    const std::string text = strippedText(file, errors);
    std::vector<std::string> codec;
    static const std::regex method_re(
        R"(void\s+(\w+)\s*\(\s*const\s+char\s*\*)");
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), method_re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1];
        if (std::find(codec.begin(), codec.end(), name) == codec.end())
            codec.push_back(name);
    }
    if (codec.empty())
        errors.push_back("no codec primitives found in " +
                         file.string());
    return codec;
}

/** Find the variant alias `using X = std::variant<...>` and split its
 *  alternatives at top angle-bracket level. */
void
extractVariant(const std::string &text, WireProtocol &p,
               std::vector<std::string> &errors)
{
    static const std::regex var_re(
        R"(using\s+(\w+)\s*=\s*std\s*::\s*variant\s*<)");
    auto it = std::sregex_iterator(text.begin(), text.end(), var_re);
    const auto end = std::sregex_iterator();
    if (it == end) {
        errors.push_back("protocol '" + p.name +
                         "': no `using X = std::variant<...>` message "
                         "alias found");
        return;
    }
    const std::smatch m = *it;
    if (std::next(it) != end) {
        errors.push_back("protocol '" + p.name +
                         "': multiple std::variant aliases; wirelint "
                         "cannot pick the message type");
        return;
    }
    p.variantName = m[1];
    std::size_t i = m.position(0) + m.length(0);
    int depth = 1;
    std::string current;
    for (; i < text.size() && depth > 0; ++i) {
        const char c = text[i];
        if (c == '<')
            ++depth;
        else if (c == '>') {
            --depth;
            if (depth == 0)
                break;
        }
        if (c == ',' && depth == 1) {
            p.types.push_back(trimmed(current));
            current.clear();
        } else {
            current += c;
        }
    }
    if (depth != 0) {
        errors.push_back("protocol '" + p.name +
                         "': unterminated variant alias");
        return;
    }
    if (!trimmed(current).empty())
        p.types.push_back(trimmed(current));
}

void
extractVersion(const std::string &text, WireProtocol &p,
               std::vector<std::string> &errors)
{
    static const std::regex const_re(
        R"(constexpr\s+std\s*::\s*uint32_t\s+(\w+)\s*=\s*(\d+))");
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), const_re);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1];
        if (!endsWith(name, "rotocolVersion"))
            continue;
        if (!p.versionConst.empty()) {
            errors.push_back("protocol '" + p.name +
                             "': multiple protocol version constants (" +
                             p.versionConst + ", " + name + ")");
            return;
        }
        p.versionConst = name;
        p.version = static_cast<std::uint32_t>(
            std::strtoul((*it)[2].str().c_str(), nullptr, 10));
    }
    if (p.versionConst.empty())
        errors.push_back(
            "protocol '" + p.name +
            "': no `constexpr std::uint32_t <x>ProtocolVersion = N;` "
            "constant found");
}

/** Parse one visitFields body: visitor calls in source order. */
std::vector<WireField>
extractFields(const std::string &body, const std::string &visitor)
{
    struct Hit
    {
        std::size_t pos;
        WireField field;
    };
    std::vector<Hit> hits;
    if (!visitor.empty()) {
        const std::regex field_re(
            visitor + R"(\s*\.\s*(\w+)\s*\(\s*"([^"]*)\")");
        for (auto it = std::sregex_iterator(body.begin(), body.end(),
                                            field_re);
             it != std::sregex_iterator(); ++it)
            hits.push_back({static_cast<std::size_t>(it->position(0)),
                            {(*it)[1], (*it)[2]}});
    }
    static const std::regex embed_re(
        R"(visitFields\s*\(\s*\w+\s*\.\s*(\w+))");
    for (auto it =
             std::sregex_iterator(body.begin(), body.end(), embed_re);
         it != std::sregex_iterator(); ++it)
        hits.push_back({static_cast<std::size_t>(it->position(0)),
                        {"embed", (*it)[1]}});
    std::sort(hits.begin(), hits.end(),
              [](const Hit &a, const Hit &b) { return a.pos < b.pos; });
    std::vector<WireField> fields;
    for (const Hit &h : hits)
        fields.push_back(h.field);
    return fields;
}

void
extractStructs(const std::string &text, WireProtocol &p,
               std::vector<std::string> &errors)
{
    static const std::regex def_re(
        R"(visitFields\s*\(\s*([A-Za-z_]\w*)\s*&\s*(\w*)\s*,\s*V\s*&\s*(\w*)\s*\))");
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), def_re);
         it != std::sregex_iterator(); ++it) {
        const std::smatch m = *it;
        std::size_t i = m.position(0) + m.length(0);
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
                text[i] == '\r'))
            ++i;
        if (i >= text.size() || text[i] != '{')
            continue; // declaration or forward use, not a definition
        const std::size_t open = i;
        int depth = 0;
        for (; i < text.size(); ++i) {
            if (text[i] == '{')
                ++depth;
            else if (text[i] == '}' && --depth == 0)
                break;
        }
        if (depth != 0) {
            errors.push_back("protocol '" + p.name +
                             "': unbalanced braces after visitFields(" +
                             m[1].str() + " &, ...)");
            return;
        }
        WireStruct s;
        s.name = m[1];
        for (const WireStruct &prev : p.structs)
            if (prev.name == s.name)
                errors.push_back("protocol '" + p.name +
                                 "': duplicate visitFields definition "
                                 "for '" +
                                 s.name + "'");
        s.fields = extractFields(
            text.substr(open, i - open + 1), m[3]);
        p.structs.push_back(std::move(s));
    }
}

WireSchema
extractSchema(const WireOpts &opts)
{
    WireSchema schema;
    schema.codec = extractCodec(opts.codec, schema.errors);
    for (const auto &[name, files] : opts.protos) {
        WireProtocol p;
        p.name = name;
        std::string all;
        for (const std::string &f : files)
            all += strippedText(f, schema.errors) + "\n";
        extractVariant(all, p, schema.errors);
        extractVersion(all, p, schema.errors);
        extractStructs(all, p, schema.errors);
        for (std::size_t id = 0; id < p.types.size(); ++id) {
            bool found = false;
            for (const WireStruct &s : p.structs)
                found = found || s.name == p.types[id];
            if (!found)
                schema.errors.push_back(
                    "protocol '" + name + "': message type '" +
                    p.types[id] + "' (id " + std::to_string(id) +
                    ") has no visitFields definition");
        }
        for (const WireStruct &s : p.structs)
            for (const WireField &f : s.fields)
                if (f.kind != "embed" &&
                    std::find(schema.codec.begin(), schema.codec.end(),
                              f.kind) == schema.codec.end())
                    schema.errors.push_back(
                        "protocol '" + name + "': " + s.name + "." +
                        f.name + " uses '" + f.kind +
                        "' which is not a codec primitive");
        schema.protocols.push_back(std::move(p));
    }
    return schema;
}

/**
 * Render the lock text. Struct sections are emitted in variant-id
 * order first, then remaining (embedded/list-element) structs sorted
 * by name — so the lock is invariant under pure definition reordering
 * in the source, which is not a wire change.
 */
std::string
renderLock(const WireSchema &schema)
{
    std::string out;
    out += "# cmpqos wire-schema lock — machine-extracted from the\n";
    out += "# visitFields message definitions by `qoslint wirelint`."
           "\n";
    out += "# Do not edit by hand. To accept an intentional wire\n";
    out += "# change: bump the owning protocol version constant, then"
           "\n";
    out += "# regenerate with `qoslint wirelint --update ...` (see\n";
    out += "# docs/PROTOCOL.md).\n";
    out += "lock-format 1\n";
    out += "codec";
    for (const std::string &c : schema.codec)
        out += " " + c;
    out += "\n";
    for (const WireProtocol &p : schema.protocols) {
        out += "\nprotocol " + p.name + "\n";
        outf(out, "  version %u via %s\n", p.version,
             p.versionConst.c_str());
        out += "  variant " + p.variantName + "\n";
        for (std::size_t id = 0; id < p.types.size(); ++id)
            outf(out, "  type %zu %s\n", id, p.types[id].c_str());
        std::vector<const WireStruct *> ordered;
        for (const std::string &t : p.types)
            for (const WireStruct &s : p.structs)
                if (s.name == t)
                    ordered.push_back(&s);
        std::vector<const WireStruct *> rest;
        for (const WireStruct &s : p.structs)
            if (std::find(p.types.begin(), p.types.end(), s.name) ==
                p.types.end())
                rest.push_back(&s);
        std::sort(rest.begin(), rest.end(),
                  [](const WireStruct *a, const WireStruct *b) {
                      return a->name < b->name;
                  });
        ordered.insert(ordered.end(), rest.begin(), rest.end());
        for (const WireStruct *s : ordered) {
            out += "  struct " + s->name + "\n";
            for (std::size_t i = 0; i < s->fields.size(); ++i)
                outf(out, "    field %zu %s %s\n", i,
                     s->fields[i].kind.c_str(),
                     s->fields[i].name.c_str());
            out += "  endstruct\n";
        }
        out += "endprotocol\n";
    }
    return out;
}

/** Lock text reduced to comparable parts: codec line, and for each
 *  protocol its version and its body minus the version line. */
struct LockSummary
{
    std::string codec;
    struct Proto
    {
        std::uint32_t version = 0;
        std::string body;
    };
    std::map<std::string, Proto> protocols;
};

LockSummary
summarizeLock(const std::string &text)
{
    LockSummary sum;
    std::istringstream in(text);
    std::string line, current;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.rfind("codec", 0) == 0 && current.empty()) {
            sum.codec = line;
            continue;
        }
        if (line.rfind("protocol ", 0) == 0) {
            current = trimmed(line.substr(9));
            continue;
        }
        if (line == "endprotocol") {
            current.clear();
            continue;
        }
        if (current.empty())
            continue;
        static const std::regex ver_re(R"(^\s*version\s+(\d+)\b)");
        std::smatch m;
        if (std::regex_search(line, m, ver_re)) {
            sum.protocols[current].version =
                static_cast<std::uint32_t>(
                    std::strtoul(m[1].str().c_str(), nullptr, 10));
            continue;
        }
        sum.protocols[current].body += line + "\n";
    }
    return sum;
}

int
checkLock(const WireOpts &opts, const std::string &generated,
          std::string &out)
{
    std::string locked;
    if (!lintutil::readFile(opts.lock, locked)) {
        outf(out,
             "%s:0: [wire-schema] lock file missing; generate it with "
             "`qoslint wirelint --update`\n",
             opts.lock.c_str());
        return 1;
    }
    if (locked == generated) {
        outf(out, "wirelint: %s matches extracted schema (%zu "
                  "protocol(s))\n",
             opts.lock.c_str(),
             summarizeLock(generated).protocols.size());
        return 0;
    }
    // Show the first divergence so the finding is actionable.
    std::vector<std::string> a, b;
    std::istringstream ia(locked), ib(generated);
    std::string line;
    while (std::getline(ia, line))
        a.push_back(line);
    while (std::getline(ib, line))
        b.push_back(line);
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i])
        ++i;
    outf(out,
         "%s:%zu: [wire-schema] schema drift: the visitFields "
         "definitions no longer match the checked-in lock\n",
         opts.lock.c_str(), i + 1);
    for (std::size_t j = i; j < a.size() && j < i + 5; ++j)
        outf(out, "  lock: %s\n", a[j].c_str());
    for (std::size_t j = i; j < b.size() && j < i + 5; ++j)
        outf(out, "  real: %s\n", b[j].c_str());
    out += "wirelint: if the wire change is intentional, bump the "
           "protocol version constant and regenerate with --update "
           "(docs/PROTOCOL.md)\n";
    return 1;
}

int
updateLock(const WireOpts &opts, const std::string &generated,
           std::string &out)
{
    std::string old_text;
    const bool had_lock = lintutil::readFile(opts.lock, old_text);
    int failures = 0;
    if (had_lock && old_text != generated) {
        const LockSummary olds = summarizeLock(old_text);
        const LockSummary news = summarizeLock(generated);
        const bool codec_changed = olds.codec != news.codec;
        if (codec_changed)
            outf(out, "wirelint: codec primitive set changed (%s -> "
                      "%s); every protocol must bump\n",
                 olds.codec.c_str(), news.codec.c_str());
        for (const auto &[name, np] : news.protocols) {
            const auto it = olds.protocols.find(name);
            if (it == olds.protocols.end())
                continue; // new protocol: no bump to demand
            const bool changed =
                codec_changed || it->second.body != np.body;
            if (changed && np.version <= it->second.version) {
                outf(out,
                     "wirelint: wire content of protocol '%s' changed "
                     "but its version constant is still %u (locked: "
                     "%u); bump it before regenerating\n",
                     name.c_str(), np.version, it->second.version);
                ++failures;
            }
        }
        if (codec_changed && failures == 0 && news.protocols.empty())
            ++failures;
    }
    if (failures > 0)
        return 1;
    std::ofstream f(opts.lock, std::ios::binary | std::ios::trunc);
    if (!f) {
        outf(out, "wirelint: cannot write %s\n", opts.lock.c_str());
        return 2;
    }
    f << generated;
    outf(out, "wirelint: wrote %s (%zu protocol(s))\n",
         opts.lock.c_str(),
         summarizeLock(generated).protocols.size());
    return 0;
}

bool
parseWireArgs(const std::vector<std::string> &args, WireOpts &opts,
              std::string &err)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](std::string &into) {
            if (i + 1 >= args.size()) {
                err = a + " needs a value";
                return false;
            }
            into = args[++i];
            return true;
        };
        if (a == "--check")
            opts.mode = WireOpts::Check;
        else if (a == "--update")
            opts.mode = WireOpts::Update;
        else if (a == "--emit")
            opts.mode = WireOpts::Emit;
        else if (a == "--lock") {
            if (!next(opts.lock))
                return false;
        } else if (a == "--codec") {
            if (!next(opts.codec))
                return false;
        } else if (a == "--proto") {
            std::string spec;
            if (!next(spec))
                return false;
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos) {
                err = "--proto wants <name>=<file>[,<file>...]";
                return false;
            }
            std::vector<std::string> files;
            std::string rest = spec.substr(eq + 1);
            std::size_t pos = 0;
            while (pos <= rest.size()) {
                const std::size_t comma = rest.find(',', pos);
                const std::string f = rest.substr(
                    pos,
                    comma == std::string::npos ? comma : comma - pos);
                if (!f.empty())
                    files.push_back(f);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            opts.protos.emplace_back(spec.substr(0, eq),
                                     std::move(files));
        } else {
            err = "unknown wirelint argument: " + a;
            return false;
        }
    }
    if (opts.codec.empty() || opts.protos.empty()) {
        err = "wirelint needs --codec and at least one --proto";
        return false;
    }
    if (opts.mode != WireOpts::Emit && opts.lock.empty()) {
        err = "--check/--update need --lock";
        return false;
    }
    return true;
}

int
runWirelint(const WireOpts &opts, std::string &out)
{
    const WireSchema schema = extractSchema(opts);
    if (!schema.errors.empty()) {
        for (const std::string &e : schema.errors)
            outf(out, "wirelint: error: %s\n", e.c_str());
        return 2;
    }
    const std::string generated = renderLock(schema);
    switch (opts.mode) {
    case WireOpts::Emit:
        out += generated;
        return 0;
    case WireOpts::Update:
        return updateLock(opts, generated, out);
    case WireOpts::Check:
    default:
        return checkLock(opts, generated, out);
    }
}

/**
 * Fixture self-test. Each case directory holds sources, a SCHEMA.lock,
 * a CMD file with wirelint arguments (paths relative to the case dir,
 * no mode flag), and an EXPECT file `<mode> <pass|fail> [substring]`.
 * Update cases run against a throwaway copy of the lock; if a GOLDEN
 * file is present the written lock must match it byte-for-byte.
 */
int
wirelintSelfTest(const std::string &dir)
{
    const std::vector<fs::path> cases = fixtureCases(dir);
    if (cases.empty()) {
        std::fprintf(stderr, "wirelint: no fixture cases under %s\n",
                     dir.c_str());
        return 2;
    }
    int failures = 0;
    for (const fs::path &c : cases) {
        const std::string label = c.filename().string();
        Expectation exp;
        std::string err;
        if (!readExpectation(c, exp, err)) {
            std::printf("FAIL %s: %s\n", label.c_str(), err.c_str());
            ++failures;
            continue;
        }
        std::string cmd;
        if (!lintutil::readFile(c / "CMD", cmd)) {
            std::printf("FAIL %s: missing CMD file\n", label.c_str());
            ++failures;
            continue;
        }
        std::vector<std::string> tokens;
        std::istringstream ts(cmd);
        std::string tok;
        while (ts >> tok)
            tokens.push_back(tok);
        tokens.push_back(exp.mode == "update" ? "--update" : "--check");
        WireOpts opts;
        if (!parseWireArgs(tokens, opts, err)) {
            std::printf("FAIL %s: bad CMD: %s\n", label.c_str(),
                        err.c_str());
            ++failures;
            continue;
        }
        // Resolve CMD-relative paths against the case directory.
        opts.lock = (c / opts.lock).string();
        opts.codec = (c / opts.codec).string();
        for (auto &[name, files] : opts.protos)
            for (std::string &f : files)
                f = (c / f).string();
        fs::path scratch;
        if (exp.mode == "update") {
            char tmpl[] = "/tmp/qoslint-wirelint.XXXXXX";
            if (!mkdtemp(tmpl)) {
                std::printf("FAIL %s: cannot create scratch dir\n",
                            label.c_str());
                ++failures;
                continue;
            }
            scratch = tmpl;
            std::error_code ec;
            fs::copy_file(opts.lock, scratch / "SCHEMA.lock",
                          fs::copy_options::overwrite_existing, ec);
            opts.lock = (scratch / "SCHEMA.lock").string();
        }
        std::string out;
        const int rc = runWirelint(opts, out);
        bool ok = (rc == 0) == exp.pass;
        if (ok && !exp.substring.empty() &&
            out.find(exp.substring) == std::string::npos)
            ok = false;
        if (ok && exp.mode == "update" && exp.pass &&
            fs::exists(c / "GOLDEN")) {
            std::string written, golden;
            lintutil::readFile(opts.lock, written);
            lintutil::readFile(c / "GOLDEN", golden);
            if (written != golden) {
                std::printf(
                    "FAIL %s: regenerated lock differs from GOLDEN\n",
                    label.c_str());
                ok = false;
            }
        }
        if (!scratch.empty()) {
            std::error_code ec;
            fs::remove_all(scratch, ec);
        }
        if (!ok) {
            std::string hint;
            if (!exp.substring.empty())
                hint = " (or missing substring '" + exp.substring +
                       "')";
            std::printf("FAIL %s: expected %s %s, got rc=%d%s\n",
                        label.c_str(), exp.mode.c_str(),
                        exp.pass ? "pass" : "fail", rc, hint.c_str());
            std::fputs(out.c_str(), stdout);
            ++failures;
        }
    }
    std::printf("qoslint wirelint fixtures: %zu case(s), %d "
                "failure(s)\n",
                cases.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
wirelintMain(const std::vector<std::string> &args)
{
    if (args.size() == 2 && args[0] == "--self-test")
        return wirelintSelfTest(args[1]);
    WireOpts opts;
    std::string err;
    if (!parseWireArgs(args, opts, err)) {
        std::fprintf(
            stderr,
            "qoslint wirelint: %s\nusage: qoslint wirelint "
            "[--check|--update|--emit] --lock <file> --codec <file> "
            "--proto <name>=<file>[,<file>...] ...\n       qoslint "
            "wirelint --self-test <fixture-dir>\n",
            err.c_str());
        return 2;
    }
    std::string out;
    const int rc = runWirelint(opts, out);
    std::fputs(out.c_str(), stdout);
    return rc;
}

} // namespace qoslint
