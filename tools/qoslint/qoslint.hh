/**
 * @file
 * qoslint — the contract lint suite. Three analyzers behind one
 * binary, run as ctest entries (label "lint") and in the CI `static`
 * lane:
 *
 *  - wirelint: extracts the wire schema (message type ids, field
 *    names, types, order) from the `visitFields` definitions and
 *    diffs it against the checked-in docs/SCHEMA.lock, so a silent
 *    edit to a replay-affecting wire format is unmergeable;
 *
 *  - layerlint: checks every `#include "module/..."` edge in src/
 *    against the declared module DAG, so architectural layering is a
 *    build gate instead of a convention;
 *
 *  - lockorder: extracts the Mutex acquisition order from annotated
 *    lock sites (MutexLock nesting plus CMPQOS_REQUIRES seeding) and
 *    rejects cycles in the lock hierarchy; also bans raw std::mutex
 *    primitives that would be invisible to the thread-safety
 *    analysis.
 *
 * Like detlint, qoslint deliberately links nothing from src/ (it
 * polices that code) and its output is deterministic: files are
 * scanned in sorted path order, findings sorted before printing.
 *
 * Escape hatch, mirroring detlint's: `// qoslint:allow(<rule>): <reason>`
 * on the offending line or the comment line above. The reason is
 * mandatory; naming an unknown rule is itself an error.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
 */

#ifndef CMPQOS_TOOLS_QOSLINT_HH
#define CMPQOS_TOOLS_QOSLINT_HH

#include <string>
#include <tuple>
#include <vector>

#include "../lint_util.hh"

namespace qoslint
{

namespace fs = lintutil::fs;

/** Every rule id any subcommand can fire or a pragma can name.
 *  Shared across the analyzers so a lockorder pragma in a file
 *  layerlint scans is not reported as unknown. */
inline bool
knownRule(const std::string &id)
{
    return id == "layering" || id == "lock-order" ||
           id == "raw-mutex" || id == "wire-schema" ||
           id == "qoslint-directive";
}

inline lintutil::Directives
parseDirectives(const std::string &line)
{
    return lintutil::parseDirectives(line, "qoslint", knownRule);
}

struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string what;

    bool
    operator<(const Violation &o) const
    {
        return std::tie(file, line, rule, what) <
               std::tie(o.file, o.line, o.rule, o.what);
    }
};

inline void
printViolations(std::vector<Violation> &all)
{
    std::sort(all.begin(), all.end());
    for (const Violation &v : all)
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.what.c_str());
}

/** Parsed EXPECT file of one self-test fixture case:
 *  `<mode> <pass|fail> [required output substring]`. */
struct Expectation
{
    std::string mode = "check";
    bool pass = true;
    std::string substring;
};

inline bool
readExpectation(const fs::path &case_dir, Expectation &out,
                std::string &err)
{
    std::string text;
    if (!lintutil::readFile(case_dir / "EXPECT", text)) {
        err = "missing EXPECT file";
        return false;
    }
    const std::size_t nl = text.find('\n');
    std::string line =
        nl == std::string::npos ? text : text.substr(0, nl);
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) {
        err = "EXPECT must be '<mode> <pass|fail> [substring]'";
        return false;
    }
    out.mode = line.substr(0, sp);
    std::string rest = line.substr(sp + 1);
    const std::size_t sp2 = rest.find(' ');
    const std::string verdict =
        sp2 == std::string::npos ? rest : rest.substr(0, sp2);
    out.substring =
        sp2 == std::string::npos ? "" : rest.substr(sp2 + 1);
    if (verdict == "pass")
        out.pass = true;
    else if (verdict == "fail")
        out.pass = false;
    else {
        err = "EXPECT verdict must be pass or fail, got '" + verdict +
              "'";
        return false;
    }
    return true;
}

/** Subdirectories of a fixture corpus, sorted for determinism. */
inline std::vector<fs::path>
fixtureCases(const fs::path &dir)
{
    std::vector<fs::path> cases;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec))
        if (entry.is_directory())
            cases.push_back(entry.path());
    std::sort(cases.begin(), cases.end());
    return cases;
}

// Subcommand entry points (each parses its own arguments).
int wirelintMain(const std::vector<std::string> &args);
int layerlintMain(const std::vector<std::string> &args);
int lockorderMain(const std::vector<std::string> &args);

} // namespace qoslint

#endif // CMPQOS_TOOLS_QOSLINT_HH
