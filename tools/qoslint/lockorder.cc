/**
 * @file
 * lockorder — the lock-hierarchy analyzer.
 *
 * Deadlock freedom in the daemon and the federation engine rests on
 * a global acquisition order over the annotated cmpqos::Mutex sites.
 * lockorder extracts that order textually and rejects cycles:
 *
 *  - pass 1 collects declared `Mutex <name>` members and the
 *    CMPQOS_REQUIRES(<mu>) annotations on function declarations;
 *  - pass 2 walks function bodies tracking brace depth, records an
 *    edge A -> B whenever `MutexLock(B)` runs while A is held —
 *    either by an enclosing MutexLock still in scope or because the
 *    enclosing function REQUIRES(A) — and honours explicit
 *    `.unlock()` / `.lock()` on the guard;
 *  - a DFS over the merged edge set rejects any cycle (including the
 *    self-edge of re-acquiring a mutex already held).
 *
 * Mutexes are identified by their member name (`tx_->mu` and
 * `rx_->mu` are both node `mu`), so nesting two instances of the
 * same class-level lock is deliberately flagged: per-instance
 * ordering cannot be checked textually, and the codebase's idiom is
 * to never hold two instances of one member lock at once.
 *
 * The companion rule `raw-mutex` bans std::mutex / std::lock_guard /
 * std::unique_lock / std::scoped_lock outside the annotated wrapper:
 * a raw lock is invisible both to this analyzer and to Clang's
 * thread-safety analysis, so it must not exist in src/.
 *
 * Escape hatches: `// qoslint:allow(lock-order): <reason>` suppresses
 * edge recording for acquisitions on that line;
 * `// qoslint:allow(raw-mutex): <reason>` sanctions a raw primitive
 * (the cmpqos::Mutex wrapper itself is the one legitimate site).
 *
 * Function attribution is heuristic (the nearest preceding
 * `X::name(` before an opening brace); it is deliberately simple and
 * errs toward missing REQUIRES seeding rather than inventing edges.
 */

#include <map>
#include <sstream>

#include "qoslint.hh"

namespace qoslint
{
namespace
{

std::string
lastIdentifier(const std::string &expr)
{
    std::size_t end = expr.size();
    while (end > 0 &&
           !(std::isalnum(static_cast<unsigned char>(expr[end - 1])) ||
             expr[end - 1] == '_'))
        --end;
    std::size_t begin = end;
    while (begin > 0 &&
           (std::isalnum(static_cast<unsigned char>(expr[begin - 1])) ||
            expr[begin - 1] == '_'))
        --begin;
    return expr.substr(begin, end - begin);
}

struct Edge
{
    std::string from;
    std::string to;
    std::string file;
    int line = 0;

    bool
    operator<(const Edge &o) const
    {
        return std::tie(from, to) < std::tie(o.from, o.to);
    }
};

struct Corpus
{
    std::set<std::string> mutexes;
    /** function name -> mutexes its declaration REQUIRES. */
    std::map<std::string, std::set<std::string>> requires_;
};

std::string
strippedWhole(const fs::path &f, bool keep_strings,
              std::vector<Violation> &all)
{
    std::string text;
    if (!lintutil::readFile(f, text)) {
        all.push_back({f.string(), 0, "lock-order", "cannot read "
                                                    "file"});
        return "";
    }
    lintutil::StripState st;
    std::istringstream in(text);
    std::string line, out;
    while (std::getline(in, line)) {
        out += lintutil::stripLine(line, st, keep_strings);
        out += '\n';
    }
    return out;
}

void
collectDeclarations(const fs::path &f, Corpus &corpus,
                    std::vector<Violation> &all)
{
    const std::string text = strippedWhole(f, false, all);
    static const std::regex mutex_re(R"(\bMutex\s+(\w+)\s*[;{=])");
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), mutex_re);
         it != std::sregex_iterator(); ++it)
        corpus.mutexes.insert((*it)[1]);
    static const std::regex req_re(
        R"(([A-Za-z_]\w*)\s*\(([^()]|\([^()]*\))*\)\s*(const\s*)?CMPQOS_REQUIRES\s*\(([^)]*)\))");
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), req_re);
         it != std::sregex_iterator(); ++it) {
        const std::string fn = (*it)[1];
        std::string list = (*it)[4];
        std::size_t pos = 0;
        while (pos <= list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string arg = list.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            const std::string id = lastIdentifier(arg);
            if (!id.empty())
                corpus.requires_[fn].insert(id);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
}

struct LineEvent
{
    std::size_t pos;
    enum Kind
    {
        Acquire,
        Unlock,
        Relock,
        FnName
    } kind;
    std::string var;  // guard variable (Acquire/Unlock/Relock)
    std::string node; // mutex node id (Acquire) or fn name (FnName)
};

void
scanBodies(const fs::path &f, const Corpus &corpus,
           std::vector<Edge> &edges, std::vector<Violation> &all)
{
    std::string text;
    if (!lintutil::readFile(f, text))
        return; // already reported by pass 1
    static const std::regex lock_re(
        R"(\bMutexLock\s+(\w+)\s*[({]\s*([^);}]+)[)}])");
    static const std::regex unlock_re(
        R"(\b(\w+)\s*\.\s*unlock\s*\(\s*\))");
    static const std::regex relock_re(
        R"(\b(\w+)\s*\.\s*lock\s*\(\s*\))");
    static const std::regex fn_re(
        R"(([A-Za-z_]\w*)\s*::\s*~?([A-Za-z_]\w*)\s*\()");
    static const std::regex raw_re(
        R"(\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock)\b)");

    struct ActiveLock
    {
        std::string var;
        std::string node;
        int depth;
        bool released = false;
    };
    struct Frame
    {
        int depth;
        std::set<std::string> seeded;
    };
    std::vector<ActiveLock> locks;
    std::vector<Frame> frames;
    int depth = 0;
    std::string pending_fn;
    std::set<std::string> pending_allow;

    lintutil::StripState st;
    std::istringstream in(text);
    std::string raw_line;
    int lineno = 0;
    while (std::getline(in, raw_line)) {
        ++lineno;
        const lintutil::Directives dir = parseDirectives(raw_line);
        for (const std::string &e : dir.errors)
            all.push_back(
                {f.string(), lineno, "qoslint-directive", e});
        const std::string code = lintutil::stripLine(raw_line, st);
        const bool blank =
            code.find_first_not_of(" \t") == std::string::npos;
        if (blank) {
            pending_allow.insert(dir.allow.begin(), dir.allow.end());
            continue;
        }
        std::set<std::string> allowed = dir.allow;
        allowed.insert(pending_allow.begin(), pending_allow.end());
        pending_allow.clear();

        if (std::regex_search(code, raw_re) &&
            !allowed.count("raw-mutex"))
            all.push_back(
                {f.string(), lineno, "raw-mutex",
                 "raw std::mutex-family primitive is invisible to "
                 "thread-safety and lock-order analysis; use "
                 "cmpqos::Mutex / MutexLock (common/annotations.hh)"});

        // Gather positioned events, then replay them interleaved
        // with brace tracking so same-line scopes behave.
        std::vector<LineEvent> events;
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            lock_re);
             it != std::sregex_iterator(); ++it)
            events.push_back({static_cast<std::size_t>(it->position(0)),
                              LineEvent::Acquire, (*it)[1],
                              lastIdentifier((*it)[2])});
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            unlock_re);
             it != std::sregex_iterator(); ++it)
            events.push_back({static_cast<std::size_t>(it->position(0)),
                              LineEvent::Unlock, (*it)[1], ""});
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            relock_re);
             it != std::sregex_iterator(); ++it)
            events.push_back({static_cast<std::size_t>(it->position(0)),
                              LineEvent::Relock, (*it)[1], ""});
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            fn_re);
             it != std::sregex_iterator(); ++it)
            events.push_back({static_cast<std::size_t>(it->position(0)),
                              LineEvent::FnName, "", (*it)[2]});
        std::sort(events.begin(), events.end(),
                  [](const LineEvent &a, const LineEvent &b) {
                      return a.pos < b.pos;
                  });
        std::size_t next_event = 0;
        for (std::size_t i = 0; i <= code.size(); ++i) {
            while (next_event < events.size() &&
                   events[next_event].pos == i) {
                const LineEvent &ev = events[next_event++];
                switch (ev.kind) {
                case LineEvent::FnName:
                    pending_fn = ev.node;
                    break;
                case LineEvent::Unlock:
                case LineEvent::Relock:
                    for (ActiveLock &l : locks)
                        if (l.var == ev.var)
                            l.released = ev.kind == LineEvent::Unlock;
                    break;
                case LineEvent::Acquire: {
                    std::set<std::string> held;
                    for (const Frame &fr : frames)
                        held.insert(fr.seeded.begin(),
                                    fr.seeded.end());
                    for (const ActiveLock &l : locks)
                        if (!l.released)
                            held.insert(l.node);
                    if (!allowed.count("lock-order")) {
                        if (held.count(ev.node))
                            all.push_back(
                                {f.string(), lineno, "lock-order",
                                 "acquires '" + ev.node +
                                     "' while already holding it"});
                        for (const std::string &h : held)
                            if (h != ev.node)
                                edges.push_back({h, ev.node,
                                                 f.string(), lineno});
                    }
                    locks.push_back(
                        {ev.var, ev.node, depth, false});
                    break;
                }
                }
            }
            if (i == code.size())
                break;
            if (code[i] == '{') {
                ++depth;
                if (!pending_fn.empty()) {
                    Frame fr;
                    fr.depth = depth;
                    const auto rq = corpus.requires_.find(pending_fn);
                    if (rq != corpus.requires_.end())
                        fr.seeded = rq->second;
                    frames.push_back(std::move(fr));
                    pending_fn.clear();
                }
            } else if (code[i] == '}') {
                --depth;
                while (!locks.empty() && locks.back().depth > depth)
                    locks.pop_back();
                while (!frames.empty() &&
                       frames.back().depth > depth)
                    frames.pop_back();
            } else if (code[i] == ';') {
                pending_fn.clear();
            }
        }
    }
}

/** DFS over the merged edge set; any back edge is a cycle. */
void
findCycles(std::vector<Edge> edges, std::vector<Violation> &all)
{
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge &a, const Edge &b) {
                                return a.from == b.from &&
                                       a.to == b.to;
                            }),
                edges.end());
    std::map<std::string, std::vector<const Edge *>> out;
    std::set<std::string> nodes;
    for (const Edge &e : edges) {
        out[e.from].push_back(&e);
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    std::map<std::string, int> state; // 0 new, 1 visiting, 2 done
    for (const std::string &start : nodes) {
        if (state[start])
            continue;
        std::vector<std::pair<std::string, std::size_t>> path;
        state[start] = 1;
        path.emplace_back(start, 0);
        while (!path.empty()) {
            auto &[node, idx] = path.back();
            const auto &succ = out[node];
            if (idx >= succ.size()) {
                state[node] = 2;
                path.pop_back();
                continue;
            }
            const Edge *e = succ[idx++];
            if (state[e->to] == 1) {
                // Reconstruct the cycle portion of the path.
                std::string desc = "lock-order cycle:";
                bool in_cycle = false;
                const Edge *first_edge = e;
                for (std::size_t p = 0; p + 1 <= path.size(); ++p) {
                    if (path[p].first == e->to)
                        in_cycle = true;
                    if (!in_cycle || p + 1 >= path.size())
                        continue;
                    for (const Edge *cand : out[path[p].first])
                        if (cand->to == path[p + 1].first) {
                            desc += " " + cand->from + " -> " +
                                    cand->to + " (" + cand->file +
                                    ":" + std::to_string(cand->line) +
                                    ")";
                            if (first_edge == e)
                                first_edge = cand;
                            break;
                        }
                }
                desc += " " + e->from + " -> " + e->to + " (" +
                        e->file + ":" + std::to_string(e->line) + ")";
                all.push_back({first_edge->file, first_edge->line,
                               "lock-order", desc});
                continue;
            }
            if (state[e->to] == 0) {
                state[e->to] = 1;
                path.emplace_back(e->to, 0);
            }
        }
    }
}

int
runLockorder(const std::vector<std::string> &roots, bool dump)
{
    bool ok = true;
    const std::vector<fs::path> files =
        lintutil::collectFiles(roots, ok, "lockorder");
    if (!ok)
        return 2;
    std::vector<Violation> all;
    Corpus corpus;
    for (const fs::path &f : files)
        collectDeclarations(f, corpus, all);
    std::vector<Edge> edges;
    for (const fs::path &f : files)
        scanBodies(f, corpus, edges, all);
    findCycles(edges, all);
    printViolations(all);
    if (dump) {
        std::vector<Edge> uniq = edges;
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end(),
                               [](const Edge &a, const Edge &b) {
                                   return a.from == b.from &&
                                          a.to == b.to;
                               }),
                   uniq.end());
        for (const Edge &e : uniq)
            std::printf("lockorder: %s -> %s (%s:%d)\n",
                        e.from.c_str(), e.to.c_str(), e.file.c_str(),
                        e.line);
    }
    std::printf("lockorder: %zu file(s), %zu mutex(es), %zu edge(s), "
                "%zu violation(s)\n",
                files.size(), corpus.mutexes.size(), edges.size(),
                all.size());
    return all.empty() ? 0 : 1;
}

/** Fixture self-test: each case has a src/ tree and an EXPECT file
 *  `check <pass|fail> [substring]`. */
int
lockorderSelfTest(const std::string &dir)
{
    const std::vector<fs::path> cases = fixtureCases(dir);
    if (cases.empty()) {
        std::fprintf(stderr, "lockorder: no fixture cases under %s\n",
                     dir.c_str());
        return 2;
    }
    int failures = 0;
    for (const fs::path &c : cases) {
        const std::string label = c.filename().string();
        Expectation exp;
        std::string err;
        if (!readExpectation(c, exp, err)) {
            std::printf("FAIL %s: %s\n", label.c_str(), err.c_str());
            ++failures;
            continue;
        }
        bool io_ok = true;
        const std::vector<fs::path> files = lintutil::collectFiles(
            {(c / "src").string()}, io_ok, "lockorder");
        std::vector<Violation> found;
        Corpus corpus;
        for (const fs::path &f : files)
            collectDeclarations(f, corpus, found);
        std::vector<Edge> edges;
        for (const fs::path &f : files)
            scanBodies(f, corpus, edges, found);
        findCycles(edges, found);
        std::sort(found.begin(), found.end());
        const bool passed = io_ok && found.empty();
        bool ok = passed == exp.pass;
        if (ok && !exp.substring.empty()) {
            bool seen = false;
            for (const Violation &v : found) {
                const std::string line =
                    "[" + v.rule + "] " + v.what;
                seen = seen ||
                       line.find(exp.substring) != std::string::npos;
            }
            ok = seen;
        }
        if (!ok) {
            std::printf("FAIL %s: expected %s, scan %s\n",
                        label.c_str(), exp.pass ? "pass" : "fail",
                        passed ? "passed" : "failed");
            for (const Violation &v : found)
                std::printf("  %s:%d: [%s] %s\n", v.file.c_str(),
                            v.line, v.rule.c_str(), v.what.c_str());
            ++failures;
        }
    }
    std::printf("qoslint lockorder fixtures: %zu case(s), %d "
                "failure(s)\n",
                cases.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
lockorderMain(const std::vector<std::string> &args)
{
    if (args.size() == 2 && args[0] == "--self-test")
        return lockorderSelfTest(args[1]);
    bool dump = false;
    std::vector<std::string> roots;
    for (const std::string &a : args) {
        if (a == "--dump")
            dump = true;
        else
            roots.push_back(a);
    }
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: qoslint lockorder [--dump] <root>...\n"
                     "       qoslint lockorder --self-test "
                     "<fixture-dir>\n");
        return 2;
    }
    return runLockorder(roots, dump);
}

} // namespace qoslint
