/**
 * @file
 * layerlint — the module-layering analyzer.
 *
 * src/ is organised as a DAG of modules (common at the bottom,
 * service at the top); the build would happily link a cycle, so the
 * architecture only holds if something checks it. layerlint reads
 * the declared DAG from a config file (docs/layers.conf) and walks
 * every `#include "module/..."` edge in the scanned trees: an edge
 * not in the config, an include of an undeclared module, or a source
 * file living in an undeclared module is a finding.
 *
 * The config is also validated: a cycle in the declared DAG itself is
 * a configuration error (exit 2), so the allowlist cannot quietly
 * legalise what it exists to prevent.
 *
 * Escape hatch: `// qoslint:allow(layering): <reason>` on the include
 * line or the comment line above, mirroring detlint's pragma.
 *
 * Config format, one module per line:
 *     module: dep dep ...
 * `#` starts a comment. Self-includes are always legal and not
 * declared.
 */

#include <map>
#include <sstream>

#include "qoslint.hh"

namespace qoslint
{
namespace
{

using LayerConfig = std::map<std::string, std::set<std::string>>;

bool
loadConfig(const fs::path &file, LayerConfig &cfg, std::string &err)
{
    std::string text;
    if (!lintutil::readFile(file, text)) {
        err = "cannot read layer config " + file.string();
        return false;
    }
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        std::string head;
        if (!(ls >> head))
            continue;
        if (head.back() != ':') {
            err = file.string() + ":" + std::to_string(lineno) +
                  ": expected 'module: deps...'";
            return false;
        }
        const std::string mod = head.substr(0, head.size() - 1);
        if (cfg.count(mod)) {
            err = file.string() + ":" + std::to_string(lineno) +
                  ": duplicate module '" + mod + "'";
            return false;
        }
        std::set<std::string> &deps = cfg[mod];
        std::string d;
        while (ls >> d)
            deps.insert(d);
    }
    if (cfg.empty()) {
        err = file.string() + ": empty layer config";
        return false;
    }
    // The declared DAG must itself be acyclic, and may only name
    // declared modules as dependencies.
    for (const auto &[mod, deps] : cfg)
        for (const std::string &d : deps)
            if (!cfg.count(d)) {
                err = file.string() + ": module '" + mod +
                      "' depends on undeclared module '" + d + "'";
                return false;
            }
    std::map<std::string, int> state; // 0 new, 1 visiting, 2 done
    std::vector<std::string> stack;
    // Iterative DFS with an explicit stack of (node, next-dep) pairs.
    for (const auto &[start, ignored] : cfg) {
        if (state[start])
            continue;
        std::vector<std::pair<std::string, std::set<std::string>::const_iterator>>
            path;
        state[start] = 1;
        path.emplace_back(start, cfg.at(start).begin());
        while (!path.empty()) {
            auto &[node, it] = path.back();
            if (it == cfg.at(node).end()) {
                state[node] = 2;
                path.pop_back();
                continue;
            }
            const std::string dep = *it++;
            if (state[dep] == 1) {
                err = file.string() +
                      ": declared layer DAG has a cycle through '" +
                      dep + "'";
                return false;
            }
            if (state[dep] == 0) {
                state[dep] = 1;
                path.emplace_back(dep, cfg.at(dep).begin());
            }
        }
    }
    return true;
}

std::string
joinSorted(const std::set<std::string> &s)
{
    std::string out;
    for (const std::string &x : s)
        out += (out.empty() ? "" : " ") + x;
    return out.empty() ? "(nothing)" : out;
}

void
scanTree(const fs::path &root, const LayerConfig &cfg,
         std::vector<Violation> &all, std::size_t &nfiles, bool &ok)
{
    const std::vector<fs::path> files =
        lintutil::collectFiles({root.string()}, ok, "layerlint");
    nfiles += files.size();
    static const std::regex inc_code_re(R"(^\s*#\s*include\b)");
    static const std::regex inc_path_re(
        R"re(^\s*#\s*include\s*"([^"]+)")re");
    for (const fs::path &f : files) {
        std::error_code ec;
        const fs::path rel = fs::relative(f, root, ec);
        if (ec || rel.begin() == rel.end())
            continue;
        const std::string module = rel.begin()->string();
        const bool file_in_module =
            std::next(rel.begin()) != rel.end();
        if (!file_in_module)
            continue; // file directly under the root: no module
        const bool module_known = cfg.count(module) != 0;
        if (!module_known)
            all.push_back({f.string(), 1, "layering",
                           "module '" + module +
                               "' is not declared in the layer "
                               "config"});
        std::string text;
        if (!lintutil::readFile(f, text)) {
            all.push_back({f.string(), 0, "layering",
                           "cannot read file"});
            continue;
        }
        lintutil::StripState code_st, str_st;
        std::set<std::string> pending_allow;
        std::istringstream in(text);
        std::string line;
        int lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            const lintutil::Directives dir = parseDirectives(line);
            for (const std::string &e : dir.errors)
                all.push_back(
                    {f.string(), lineno, "qoslint-directive", e});
            const std::string code =
                lintutil::stripLine(line, code_st);
            // Run a strings-kept strip in lockstep: the include path
            // is a string literal, but the directive itself must
            // survive string stripping or the line is raw-string
            // data that merely looks like an include.
            const std::string with_str =
                lintutil::stripLine(line, str_st, true);
            const bool blank =
                code.find_first_not_of(" \t") == std::string::npos;
            if (blank && !std::regex_search(code, inc_code_re)) {
                pending_allow.insert(dir.allow.begin(),
                                     dir.allow.end());
                continue;
            }
            std::set<std::string> allowed = dir.allow;
            allowed.insert(pending_allow.begin(),
                           pending_allow.end());
            pending_allow.clear();
            std::smatch m;
            if (!std::regex_search(code, inc_code_re) ||
                !std::regex_search(with_str, m, inc_path_re))
                continue;
            const std::string inc = m[1];
            const std::size_t slash = inc.find('/');
            if (slash == std::string::npos)
                continue; // same-directory include: same module
            const std::string target = inc.substr(0, slash);
            if (target == module || !module_known)
                continue;
            if (allowed.count("layering"))
                continue;
            if (!cfg.count(target)) {
                all.push_back({f.string(), lineno, "layering",
                               "include of '" + inc +
                                   "': module '" + target +
                                   "' is not in the layer config"});
                continue;
            }
            if (!cfg.at(module).count(target))
                all.push_back(
                    {f.string(), lineno, "layering",
                     "module '" + module + "' may not include '" +
                         target + "' (allowed: " +
                         joinSorted(cfg.at(module)) + ")"});
        }
    }
}

int
runLayerlint(const std::string &config,
             const std::vector<std::string> &roots)
{
    LayerConfig cfg;
    std::string err;
    if (!loadConfig(config, cfg, err)) {
        std::fprintf(stderr, "qoslint layerlint: %s\n", err.c_str());
        return 2;
    }
    bool ok = true;
    std::size_t nfiles = 0;
    std::vector<Violation> all;
    for (const std::string &r : roots)
        scanTree(r, cfg, all, nfiles, ok);
    if (!ok)
        return 2;
    printViolations(all);
    std::printf("layerlint: %zu file(s), %zu module(s), %zu "
                "violation(s)\n",
                nfiles, cfg.size(), all.size());
    return all.empty() ? 0 : 1;
}

/** Fixture self-test: each case has layers.conf, a src/ tree, and an
 *  EXPECT file `check <pass|fail> [substring]`. */
int
layerlintSelfTest(const std::string &dir)
{
    const std::vector<fs::path> cases = fixtureCases(dir);
    if (cases.empty()) {
        std::fprintf(stderr, "layerlint: no fixture cases under %s\n",
                     dir.c_str());
        return 2;
    }
    int failures = 0;
    for (const fs::path &c : cases) {
        const std::string label = c.filename().string();
        Expectation exp;
        std::string err;
        if (!readExpectation(c, exp, err)) {
            std::printf("FAIL %s: %s\n", label.c_str(), err.c_str());
            ++failures;
            continue;
        }
        // Capture by re-running through a pipe would drag in POSIX
        // plumbing; instead violations are recomputed here directly.
        LayerConfig cfg;
        if (!loadConfig(c / "layers.conf", cfg, err)) {
            const bool ok = !exp.pass &&
                            (exp.substring.empty() ||
                             err.find(exp.substring) !=
                                 std::string::npos);
            if (!ok) {
                std::printf("FAIL %s: config error: %s\n",
                            label.c_str(), err.c_str());
                ++failures;
            }
            continue;
        }
        bool io_ok = true;
        std::size_t nfiles = 0;
        std::vector<Violation> found;
        scanTree(c / "src", cfg, found, nfiles, io_ok);
        std::sort(found.begin(), found.end());
        const bool passed = io_ok && found.empty();
        bool ok = passed == exp.pass;
        if (ok && !exp.substring.empty()) {
            bool seen = false;
            for (const Violation &v : found) {
                const std::string line =
                    "[" + v.rule + "] " + v.what;
                seen = seen ||
                       line.find(exp.substring) != std::string::npos;
            }
            ok = seen;
        }
        if (!ok) {
            std::printf("FAIL %s: expected %s, scan %s\n",
                        label.c_str(), exp.pass ? "pass" : "fail",
                        passed ? "passed" : "failed");
            for (const Violation &v : found)
                std::printf("  %s:%d: [%s] %s\n", v.file.c_str(),
                            v.line, v.rule.c_str(), v.what.c_str());
            ++failures;
        }
    }
    std::printf("qoslint layerlint fixtures: %zu case(s), %d "
                "failure(s)\n",
                cases.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
layerlintMain(const std::vector<std::string> &args)
{
    if (args.size() == 2 && args[0] == "--self-test")
        return layerlintSelfTest(args[1]);
    std::string config;
    std::vector<std::string> roots;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--config" && i + 1 < args.size())
            config = args[++i];
        else
            roots.push_back(args[i]);
    }
    if (config.empty() || roots.empty()) {
        std::fprintf(stderr,
                     "usage: qoslint layerlint --config <layers.conf> "
                     "<root>...\n       qoslint layerlint --self-test "
                     "<fixture-dir>\n");
        return 2;
    }
    return runLayerlint(config, roots);
}

} // namespace qoslint
