/**
 * @file
 * Developer tool: print analytic (set-assoc) vs measured miss-rate
 * curves and CPI sensitivity for every benchmark over a ways sweep.
 * Used to tune the synthetic profiles against Table 1 / Figure 4.
 */
#include <cstdio>
#include "common/build_info.hh"
#include "sim/simulation.hh"
#include "workload/benchmark.hh"
using namespace cmpqos;

struct M { double miss; double cpi; };

static M measure(const BenchmarkProfile& b, unsigned ways, InstCount n)
{
    CmpConfig cfg; cfg.chunkInstructions = 50'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    sys.l2().setTargetWays(0, ways);
    sys.l2().setCoreClass(0, CoreClass::Reserved);
    JobExecution job(0, b, n, 9);
    // Pre-fill the cache with the job's standing working set so the
    // measurement reflects steady state.
    job.generator().forEachStandingBlock(
        [&](Addr a) { sys.l2().access(0, a, false); });
    sim.startJobOn(0, &job);
    sim.run();
    return {job.missRate(), job.cpi()};
}

int main(int argc, char** argv)
{
    if (handleVersionFlag("calibration_dump", argc, argv))
        return 0;
    InstCount n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8'000'000;
    for (const auto& b : BenchmarkRegistry::all()) {
        // Fixed access count across benchmarks: scale instructions.
        InstCount instr = static_cast<InstCount>(
            static_cast<double>(n) * 0.02 / b.h2);
        std::printf("%-11s h2=%.4f ", b.name.c_str(), b.h2);
        M m7{0,0}, m4{0,0}, m1{0,0};
        for (unsigned w : {1u,4u,5u,7u,8u,16u}) {
            double a = b.expectedL2MissRate(w);
            M m = measure(b, w, instr);
            if (w==7) m7=m;
            if (w==4) m4=m;
            if (w==1) m1=m;
            std::printf("w%u[a%.3f m%.3f] ", w, a, m.miss);
        }
        double inc71 = (m1.cpi-m7.cpi)/m7.cpi, inc74 = (m4.cpi-m7.cpi)/m7.cpi;
        std::printf("| mpi7=%.4f cpi7=%.2f inc71=%.0f%% inc74=%.0f%% -> %s (decl %s)\n",
            m7.miss*b.h2, m7.cpi, inc71*100, inc74*100,
            sensitivityGroupName(classifySensitivity(inc71, inc74)),
            sensitivityGroupName(b.group));
    }
    return 0;
}
