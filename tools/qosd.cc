/**
 * @file
 * qosd — the persistent admission-service daemon.
 *
 * Wraps one QosDaemon: binds the requested transport (Unix-domain
 * socket or loopback TCP), runs the event loop until a
 * Drain{shutdown=1} arrives from a client or SIGINT/SIGTERM is
 * delivered, and exits 0 once the final epoch drained and its journal
 * closed. Every accepted submission is journalled so the whole run
 * can be replayed bit-identically by the `# replay:` command in each
 * journal's header.
 *
 * Examples:
 *   qosd --socket /tmp/qosd.sock --nodes 8 --threads 4
 *   qosd --tcp 7421 --quantum 1000000 --journal-dir /tmp/qosd-journal
 *   qosctl --socket /tmp/qosd.sock drain --shutdown
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/build_info.hh"
#include "service/daemon.hh"

using namespace cmpqos;

namespace
{

void
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --socket PATH          listen on a Unix-domain socket\n"
        "  --tcp PORT             listen on loopback TCP instead\n"
        "  --journal-dir DIR      journal directory (default\n"
        "                         qosd-journal); epoch N writes\n"
        "                         DIR/epoch-NNNN.trace\n"
        "  --nodes N              CMP nodes per epoch (default 8)\n"
        "  --threads T            engine worker threads, 0 = hardware\n"
        "                         (default 0; never affects results)\n"
        "  --shards N             run each epoch on a federated\n"
        "                         engine with N shards (default 1;\n"
        "                         never affects results)\n"
        "  --shard-transport T    shard link transport, inproc | uds\n"
        "                         (default inproc)\n"
        "  --quantum C            placement quantum in cycles\n"
        "                         (default 2000000)\n"
        "  --seed S               cluster seed (default 1)\n"
        "  --policy P             first-fit | earliest-slot |\n"
        "                         least-loaded (default least-loaded)\n"
        "  --no-negotiate         reject instead of renegotiating\n"
        "  --elastic-x X          Silver tier Elastic(X) budget\n"
        "                         (default 0.05)\n"
        "  --arrival-gap C        auto-assigned arrival spacing in\n"
        "                         cycles (default 250000)\n"
        "  --instructions I       default instructions per job\n"
        "                         (default 2000000)\n"
        "  --no-check-invariants  skip the invariant oracle\n"
        "  --max-frame BYTES      per-connection frame ceiling\n"
        "                         (default 65536)\n"
        "  --trace-capacity N     telemetry ring slots per producer\n"
        "                         (default 32768)\n"
        "  --quiet                suppress operator log lines\n"
        "  --version              print the build identity and exit\n",
        argv0);
}

int g_shutdown_fd = -1;

void
onSignal(int)
{
    // Async-signal-safe: one byte on the daemon's self-pipe requests
    // the same graceful drain-and-shutdown a Drain{shutdown=1} does.
    const char byte = 1;
    if (g_shutdown_fd >= 0)
        (void)!::write(g_shutdown_fd, &byte, 1);
}

bool
directive(EpochConfig &c, const char *key, const char *value)
{
    std::string err;
    if (!applyEpochDirective(c, key, value, err)) {
        std::fprintf(stderr, "qosd: %s\n", err.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (handleVersionFlag("qosd", argc, argv))
        return 0;

    QosDaemon::Options opts;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], stdout);
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = value(i);
        } else if (arg == "--tcp") {
            opts.tcpPort = std::atoi(value(i));
        } else if (arg == "--journal-dir") {
            opts.journalDir = value(i);
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(std::atoi(value(i)));
        } else if (arg == "--shards") {
            opts.shards = std::atoi(value(i));
            if (opts.shards < 1) {
                std::fprintf(stderr, "qosd: --shards must be >= 1\n");
                return 2;
            }
        } else if (arg == "--shard-transport") {
            const char *name = value(i);
            if (!parseFedTransport(name, opts.shardTransport)) {
                std::fprintf(stderr,
                             "qosd: unknown shard transport '%s' "
                             "(inproc | uds)\n",
                             name);
                return 2;
            }
        } else if (arg == "--nodes") {
            if (!directive(opts.epoch, "nodes", value(i)))
                return 2;
        } else if (arg == "--quantum") {
            if (!directive(opts.epoch, "quantum", value(i)))
                return 2;
        } else if (arg == "--seed") {
            if (!directive(opts.epoch, "seed", value(i)))
                return 2;
        } else if (arg == "--policy") {
            if (!directive(opts.epoch, "policy", value(i)))
                return 2;
        } else if (arg == "--no-negotiate") {
            opts.epoch.negotiate = false;
        } else if (arg == "--elastic-x") {
            if (!directive(opts.epoch, "elastic-x", value(i)))
                return 2;
        } else if (arg == "--arrival-gap") {
            if (!directive(opts.epoch, "arrival-gap", value(i)))
                return 2;
        } else if (arg == "--instructions") {
            if (!directive(opts.epoch, "instructions", value(i)))
                return 2;
        } else if (arg == "--no-check-invariants") {
            opts.epoch.checkInvariants = false;
        } else if (arg == "--max-frame") {
            opts.maxFrame = std::strtoull(value(i), nullptr, 10);
            if (opts.maxFrame < 64) {
                std::fprintf(stderr,
                             "qosd: --max-frame must be >= 64\n");
                return 2;
            }
        } else if (arg == "--trace-capacity") {
            opts.traceCapacity = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], stderr);
            return 2;
        }
    }
    if (opts.socketPath.empty() && opts.tcpPort <= 0) {
        std::fprintf(stderr,
                     "%s: no transport: give --socket PATH or "
                     "--tcp PORT\n",
                     argv[0]);
        usage(argv[0], stderr);
        return 2;
    }

    QosDaemon daemon(opts);
    std::string err;
    if (!daemon.start(err)) {
        std::fprintf(stderr, "qosd: %s\n", err.c_str());
        return 1;
    }

    g_shutdown_fd = daemon.shutdownFd();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A subscriber that disconnects mid-write must not kill the
    // daemon; writes see EPIPE instead.
    std::signal(SIGPIPE, SIG_IGN);

    if (!opts.quiet)
        std::printf("%s\n", buildInfoLine("qosd").c_str());
    daemon.run();

    const QosDaemon::ConnStats &cs = daemon.connStats();
    if (!opts.quiet)
        std::printf("qosd: %llu epochs, %llu connections "
                    "(%llu malformed frames, %llu mid-frame "
                    "disconnects)\n",
                    static_cast<unsigned long long>(
                        daemon.epochsCompleted()),
                    static_cast<unsigned long long>(cs.accepted),
                    static_cast<unsigned long long>(cs.malformed),
                    static_cast<unsigned long long>(
                        cs.midFrameDisconnects));
    return 0;
}
