/**
 * @file
 * qosctl — command-line client for qosd.
 *
 * One subcommand per protocol request, built on the QosClient
 * library, so the CLI, the tests and any embedding all exercise the
 * same code path:
 *
 *   qosctl --socket /tmp/qosd.sock status
 *   qosctl --socket /tmp/qosd.sock submit --benchmark bzip2 \
 *          --tier gold --count 100
 *   qosctl --socket /tmp/qosd.sock subscribe --max-events 20
 *   qosctl --socket /tmp/qosd.sock reconfig quantum=1000000 nodes=4
 *   qosctl --socket /tmp/qosd.sock drain --shutdown
 *
 * --jsonl switches the connection to the debug framing (same daemon
 * logic, human-readable wire). Exit codes: 0 success, 1 runtime /
 * daemon error, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "service/client.hh"

using namespace cmpqos;

namespace
{

void
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [--socket PATH | --tcp PORT] [--jsonl] "
        "<command> [args]\n"
        "commands:\n"
        "  status                 print the daemon's live counters\n"
        "  submit [--benchmark B] [--tier gold|silver|bronze]\n"
        "         [--instructions I] [--time T] [--count N] [--quiet]\n"
        "                         offer N jobs (default 1) and print\n"
        "                         each admission verdict\n"
        "  subscribe [--max-events N]\n"
        "                         stream telemetry events (forever\n"
        "                         when N is omitted)\n"
        "  reconfig KEY=VALUE...  drain the epoch, reopen under the\n"
        "                         new configuration\n"
        "  drain [--shutdown]     finish the current epoch; with\n"
        "                         --shutdown also stop the daemon\n"
        "options:\n"
        "  --socket PATH          daemon Unix-domain socket\n"
        "  --tcp PORT             daemon loopback TCP port\n"
        "  --jsonl                speak the JSONL debug framing\n"
        "  --version              print the build identity and exit\n",
        argv0);
}

int
die(const std::string &err)
{
    std::fprintf(stderr, "qosctl: %s\n", err.c_str());
    return 1;
}

const char *
outcomeName(std::uint8_t outcome)
{
    switch (static_cast<AdmitOutcome>(outcome)) {
      case AdmitOutcome::Rejected: return "rejected";
      case AdmitOutcome::Accepted: return "accepted";
      case AdmitOutcome::Negotiated: return "negotiated";
    }
    return "?";
}

int
cmdStatus(QosClient &client)
{
    StatusReply r;
    std::string err;
    if (!client.status(r, err))
        return die(err);
    std::printf("epoch        %llu (%s)\n",
                static_cast<unsigned long long>(r.epoch),
                r.state == 0 ? "running" : "draining");
    std::printf("submitted    %llu\n",
                static_cast<unsigned long long>(r.submitted));
    std::printf("accepted     %llu (%llu negotiated)\n",
                static_cast<unsigned long long>(r.accepted),
                static_cast<unsigned long long>(r.negotiated));
    std::printf("rejected     %llu\n",
                static_cast<unsigned long long>(r.rejected));
    std::printf("completed    %llu\n",
                static_cast<unsigned long long>(r.completed));
    std::printf("virtual time %llu\n",
                static_cast<unsigned long long>(r.virtualTime));
    std::printf("sessions     %u\n", r.sessions);
    return 0;
}

int
cmdSubmit(QosClient &client, const std::vector<std::string> &args,
          const char *argv0)
{
    Submit req;
    req.benchmark = "bzip2";
    std::uint64_t count = 1;
    bool quiet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv0, arg.c_str());
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--benchmark") {
            req.benchmark = value();
        } else if (arg == "--tier") {
            QosTier tier;
            if (!parseQosTier(value(), tier)) {
                std::fprintf(stderr,
                             "%s: bad tier (want gold, silver or "
                             "bronze)\n",
                             argv0);
                return 2;
            }
            req.tier = static_cast<std::uint8_t>(tier);
        } else if (arg == "--instructions") {
            req.instructions =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--time") {
            req.time = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--count") {
            count = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv0,
                         arg.c_str());
            usage(argv0, stderr);
            return 2;
        }
    }
    if (count == 0)
        return 0;

    std::uint64_t accepted = 0, negotiated = 0, rejected = 0,
                  refused = 0;
    std::string err;
    for (std::uint64_t n = 0; n < count; ++n) {
        req.ticket = static_cast<std::uint32_t>(n + 1);
        SubmitReply reply;
        if (!client.submit(req, reply, err))
            return die(err);
        if (!reply.error.empty()) {
            ++refused;
            if (!quiet)
                std::printf("seq -    refused: %s\n",
                            reply.error.c_str());
            continue;
        }
        switch (static_cast<AdmitOutcome>(reply.outcome)) {
          case AdmitOutcome::Accepted: ++accepted; break;
          case AdmitOutcome::Negotiated:
            ++accepted;
            ++negotiated;
            break;
          case AdmitOutcome::Rejected: ++rejected; break;
        }
        if (!quiet)
            std::printf("seq %-4llu %s t=%llu node=%d slot=%llu "
                        "deadline=%.2f\n",
                        static_cast<unsigned long long>(reply.seq),
                        outcomeName(reply.outcome),
                        static_cast<unsigned long long>(reply.time),
                        reply.node,
                        static_cast<unsigned long long>(
                            reply.slotStart),
                        reply.deadlineFactor);
    }
    std::printf("submitted %llu: %llu accepted (%llu negotiated), "
                "%llu rejected, %llu refused\n",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(negotiated),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(refused));
    return 0;
}

int
cmdSubscribe(QosClient &client, const std::vector<std::string> &args,
             const char *argv0)
{
    std::uint64_t max_events = 0;
    bool bounded = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--max-events" && i + 1 < args.size()) {
            max_events = std::strtoull(args[++i].c_str(), nullptr, 10);
            bounded = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv0,
                         args[i].c_str());
            usage(argv0, stderr);
            return 2;
        }
    }
    std::string err;
    if (!client.subscribe(true, err))
        return die(err);
    // Stderr marker so a harness can sequence on the subscription
    // being live before it starts generating events (events only
    // flow to sessions subscribed when they happen).
    std::fprintf(stderr, "subscribed\n");
    std::uint64_t seen = 0;
    while (!bounded || seen < max_events) {
        std::optional<EventMsg> buffered = client.takeEvent();
        EventMsg event;
        if (buffered) {
            event = std::move(*buffered);
        } else {
            Message m;
            if (!client.nextMessage(m, err)) {
                // The daemon closing the stream at shutdown is the
                // normal end of an unbounded subscription.
                if (!bounded &&
                    err == "daemon closed the connection")
                    return 0;
                return die(err);
            }
            auto *e = std::get_if<EventMsg>(&m);
            if (e == nullptr)
                continue;
            event = std::move(*e);
        }
        std::printf("%s\n", event.line.c_str());
        ++seen;
    }
    return 0;
}

int
cmdReconfig(QosClient &client, const std::vector<std::string> &args,
            const char *argv0)
{
    if (args.empty()) {
        std::fprintf(stderr, "%s: reconfig needs KEY=VALUE "
                             "directives\n",
                     argv0);
        usage(argv0, stderr);
        return 2;
    }
    std::string directives;
    for (const std::string &a : args) {
        if (!directives.empty())
            directives += ' ';
        directives += a;
    }
    ReconfigAck ack;
    std::string err;
    if (!client.reconfig(directives, ack, err))
        return die(err);
    if (!ack.error.empty())
        return die("reconfig rejected: " + ack.error);
    std::printf("reconfigured; epoch %llu opens with: %s\n",
                static_cast<unsigned long long>(ack.epoch),
                directives.c_str());
    return 0;
}

int
cmdDrain(QosClient &client, const std::vector<std::string> &args,
         const char *argv0)
{
    bool shutdown = false;
    for (const std::string &a : args) {
        if (a == "--shutdown") {
            shutdown = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv0,
                         a.c_str());
            usage(argv0, stderr);
            return 2;
        }
    }
    DrainDone done;
    std::string err;
    if (!client.drain(shutdown, done, err))
        return die(err);
    std::printf("epoch %llu drained: %llu submitted, %llu accepted, "
                "%llu completed\n",
                static_cast<unsigned long long>(done.epoch),
                static_cast<unsigned long long>(done.submitted),
                static_cast<unsigned long long>(done.accepted),
                static_cast<unsigned long long>(done.completed));
    std::printf("fingerprint %s\n", done.fingerprint.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (handleVersionFlag("qosctl", argc, argv))
        return 0;

    ClientOptions opts;
    opts.clientName = "qosctl";
    std::string command;
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!command.empty()) {
            rest.push_back(arg);
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], stdout);
            return 0;
        } else if (arg == "--socket") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv[0], arg.c_str());
                return 2;
            }
            opts.socketPath = argv[++i];
        } else if (arg == "--tcp") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             argv[0], arg.c_str());
                return 2;
            }
            opts.tcpPort = std::atoi(argv[++i]);
        } else if (arg == "--jsonl") {
            opts.mode = WireMode::Jsonl;
        } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], stderr);
            return 2;
        } else {
            command = arg;
        }
    }
    if (command.empty()) {
        std::fprintf(stderr, "%s: no command given\n", argv[0]);
        usage(argv[0], stderr);
        return 2;
    }
    const bool known = command == "status" || command == "submit" ||
                       command == "subscribe" ||
                       command == "reconfig" || command == "drain";
    if (!known) {
        std::fprintf(stderr, "%s: unknown command '%s'\n", argv[0],
                     command.c_str());
        usage(argv[0], stderr);
        return 2;
    }
    if (opts.socketPath.empty() && opts.tcpPort <= 0) {
        std::fprintf(stderr,
                     "%s: no transport: give --socket PATH or "
                     "--tcp PORT\n",
                     argv[0]);
        return 2;
    }

    // Reject flag typos BEFORE dialling the daemon, so a bad flag is
    // a usage error (exit 2), not a connect retry loop. Values are
    // validated by the command handlers; this only screens names.
    const auto flag_known = [&](const std::string &flag,
                                bool &takes_value) {
        takes_value = flag == "--benchmark" || flag == "--tier" ||
                      flag == "--instructions" || flag == "--time" ||
                      flag == "--count" || flag == "--max-events";
        if (takes_value)
            return (command == "submit" && flag != "--max-events") ||
                   (command == "subscribe" && flag == "--max-events");
        if (flag == "--quiet")
            return command == "submit";
        if (flag == "--shutdown")
            return command == "drain";
        return false;
    };
    if (command != "reconfig") { // reconfig takes raw KEY=VALUE args
        for (std::size_t i = 0; i < rest.size(); ++i) {
            if (rest[i].rfind("--", 0) != 0)
                continue;
            bool takes_value = false;
            if (!flag_known(rest[i], takes_value)) {
                std::fprintf(stderr, "%s: unknown option '%s'\n",
                             argv[0], rest[i].c_str());
                usage(argv[0], stderr);
                return 2;
            }
            if (takes_value)
                ++i;
        }
    }

    QosClient client(opts);
    std::string err;
    if (!client.connect(err))
        return die(err);

    if (command == "status")
        return cmdStatus(client);
    if (command == "submit")
        return cmdSubmit(client, rest, argv[0]);
    if (command == "subscribe")
        return cmdSubscribe(client, rest, argv[0]);
    if (command == "reconfig")
        return cmdReconfig(client, rest, argv[0]);
    return cmdDrain(client, rest, argv[0]);
}
