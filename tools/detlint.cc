/**
 * @file
 * detlint — the determinism linter.
 *
 * The repo's core guarantee is byte-identical cluster runs, traces
 * and fault reproducers for a given seed at any worker-thread count.
 * That property is enforced dynamically by the fingerprint tests;
 * detlint enforces the other half statically: no construct that can
 * inject host state (wall clocks, process RNGs, thread ids, pointer
 * values, hash-order iteration) may appear in deterministic paths.
 *
 * Usage:
 *   detlint <path>...            lint files / directory trees
 *   detlint --check-fixtures <dir>
 *                                self-test mode: every line tagged
 *                                `// detlint:expect(<rule>)` must
 *                                fire exactly that rule, and nothing
 *                                else may fire
 *   detlint --list-rules         print the rule table
 *   detlint --version            print the build identity
 *
 * Escape hatch: `// detlint:allow(<rule>): <reason>` on the same
 * line, or on a comment line immediately above the construct,
 * suppresses the named rule there. The reason is mandatory; an
 * allow without one (or naming an unknown rule) is itself an error,
 * so the allowlist stays auditable.
 *
 * Matching runs on code only — comments and string literals are
 * stripped first (including raw string literals and backslash-
 * continued // comments; see tools/lint_util.hh) — so prose about
 * "steady_clock" never trips a rule. detlint's own output is
 * deterministic: files are scanned in sorted path order.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint_util.hh"

namespace fs = std::filesystem;

namespace
{

struct Rule
{
    const char *id;
    const char *what;
    std::regex re;
    /** Only enforced in export/fingerprint/trace code (see below). */
    bool exportOnly = false;
};

// Identifier-boundary prefix that still lets `std::time(` match while
// excluding member calls (`x.time(`, `p->time(`) and longer
// identifiers (`virtualTime(`).
#define CALL_BOUNDARY "(^|[^A-Za-z0-9_.>])"

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> r = {
        {"random-device",
         "std::random_device draws host entropy; seed a cmpqos::Rng "
         "stream instead",
         std::regex(R"(\brandom_device\b)")},
        {"rand",
         "rand()/srand() use hidden process-global state; use the "
         "seeded cmpqos::Rng streams",
         std::regex(CALL_BOUNDARY R"(s?rand\s*\()")},
        {"time",
         "time()/clock() read host time; virtual time comes from the "
         "Simulation clock",
         std::regex(CALL_BOUNDARY R"((time|clock)\s*\()")},
        {"wall-clock",
         "std::chrono clocks read host time; deterministic paths must "
         "use virtual cycles",
         std::regex(
             R"(\b(system_clock|steady_clock|high_resolution_clock)\b)")},
        {"thread-id",
         "thread ids vary run to run; deterministic paths must not "
         "branch on scheduling identity",
         std::regex(R"(this_thread\s*::\s*get_id|\bthread\s*::\s*id\b)"
                    R"(|\bpthread_self\b|\bgettid\b)")},
        {"pointer-order",
         "ordered containers keyed by pointers iterate in allocation "
         "order; key by a stable id",
         std::regex(R"(\bstd\s*::\s*(multi)?(map|set)\s*<[^,>]*\*)")},
        {"unordered-export",
         "unordered containers in export/fingerprint/trace code risk "
         "hash-order iteration; use a sorted structure",
         std::regex(R"(\bunordered_(multi)?(map|set)\s*<)"),
         /*exportOnly=*/true},
    };
    return r;
}

#undef CALL_BOUNDARY

bool
knownRule(const std::string &id)
{
    if (id == "detlint-directive") // pseudo-rule for malformed pragmas
        return true;
    for (const Rule &r : rules())
        if (id == r.id)
            return true;
    return false;
}

/**
 * Files whose output feeds fingerprints, metrics exports or trace
 * sinks: everything under a telemetry/ directory plus any file whose
 * name suggests an exporter. The unordered-export rule applies only
 * here; elsewhere unordered containers are fine as long as nothing
 * iterates them into externally visible order.
 */
bool
isExportPath(const fs::path &p)
{
    for (const auto &part : p)
        if (part == "telemetry")
            return true;
    const std::string name = p.filename().string();
    for (const char *kw :
         {"metrics", "report", "sink", "table", "export", "fingerprint"})
        if (name.find(kw) != std::string::npos)
            return true;
    return false;
}

struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string what;

    bool
    operator<(const Violation &o) const
    {
        return std::tie(file, line, rule) <
               std::tie(o.file, o.line, o.rule);
    }
};

using lintutil::Directives;

/** Parse detlint:allow(...)/detlint:expect(...) out of a raw line. */
Directives
parseDirectives(const std::string &line)
{
    return lintutil::parseDirectives(
        line, "detlint", [](const std::string &id) {
            return knownRule(id);
        });
}

struct FileScan
{
    std::vector<Violation> violations;
    /** line -> expected rules (fixture mode). */
    std::map<int, std::set<std::string>> expected;
};

FileScan
scanFile(const fs::path &path)
{
    FileScan result;
    std::ifstream in(path);
    if (!in) {
        result.violations.push_back(
            {path.string(), 0, "io", "cannot open file"});
        return result;
    }
    const bool export_path = isExportPath(path);
    lintutil::StripState strip;
    // Directives on pure-comment lines apply to the next code line
    // (and survive a multi-line comment, so a wrapped justification
    // works).
    std::set<std::string> pending_allow;
    std::set<std::string> pending_expect;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const Directives dir = parseDirectives(line);
        for (const std::string &err : dir.errors)
            result.violations.push_back(
                {path.string(), lineno, "detlint-directive", err});

        const std::string code = lintutil::stripLine(line, strip);
        const bool code_blank =
            code.find_first_not_of(" \t") == std::string::npos;
        if (code_blank) {
            // Comment/blank line: its directives arm for the next
            // code line; already-armed ones stay armed.
            pending_allow.insert(dir.allow.begin(), dir.allow.end());
            pending_expect.insert(dir.expect.begin(),
                                  dir.expect.end());
            continue;
        }

        std::set<std::string> allowed = dir.allow;
        allowed.insert(pending_allow.begin(), pending_allow.end());
        pending_allow.clear();
        std::set<std::string> expected = dir.expect;
        expected.insert(pending_expect.begin(), pending_expect.end());
        pending_expect.clear();
        if (!expected.empty())
            result.expected[lineno] = expected;

        for (const Rule &r : rules()) {
            if (r.exportOnly && !export_path)
                continue;
            if (!std::regex_search(code, r.re))
                continue;
            if (allowed.count(r.id))
                continue;
            result.violations.push_back(
                {path.string(), lineno, r.id, r.what});
        }
    }
    return result;
}

std::vector<fs::path>
collectFiles(const std::vector<std::string> &args, bool &ok)
{
    return lintutil::collectFiles(args, ok, "detlint");
}

int
lint(const std::vector<std::string> &paths)
{
    bool ok = true;
    const std::vector<fs::path> files = collectFiles(paths, ok);
    if (!ok)
        return 2;
    std::vector<Violation> all;
    for (const fs::path &f : files) {
        FileScan scan = scanFile(f);
        all.insert(all.end(), scan.violations.begin(),
                   scan.violations.end());
    }
    std::sort(all.begin(), all.end());
    for (const Violation &v : all)
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.what.c_str());
    std::printf("detlint: %zu file(s), %zu violation(s)\n",
                files.size(), all.size());
    return all.empty() ? 0 : 1;
}

/**
 * Fixture self-test: every detlint:expect(<rule>) line must fire
 * exactly those rules, and no unexpected violation may fire anywhere
 * in the corpus. Proves each rule detects its known-bad snippet and
 * that the allow pragma suppresses (fixtures with expect-free allowed
 * lines pass only if the allow works).
 */
int
checkFixtures(const std::string &dir)
{
    bool ok = true;
    const std::vector<fs::path> files = collectFiles({dir}, ok);
    if (!ok)
        return 2;
    if (files.empty()) {
        std::fprintf(stderr, "detlint: no fixtures under %s\n",
                     dir.c_str());
        return 2;
    }
    int failures = 0;
    std::size_t checked = 0;
    for (const fs::path &f : files) {
        FileScan scan = scanFile(f);
        std::map<int, std::set<std::string>> fired;
        for (const Violation &v : scan.violations)
            fired[v.line].insert(v.rule);
        for (const auto &[line, expected] : scan.expected) {
            checked += expected.size();
            for (const std::string &rule : expected) {
                if (!fired[line].count(rule)) {
                    std::printf(
                        "FAIL %s:%d: expected [%s] did not fire\n",
                        f.string().c_str(), line, rule.c_str());
                    ++failures;
                }
            }
        }
        for (const auto &[line, got] : fired) {
            auto it = scan.expected.find(line);
            for (const std::string &rule : got) {
                if (it == scan.expected.end() || !it->second.count(rule)) {
                    std::printf(
                        "FAIL %s:%d: unexpected [%s] fired\n",
                        f.string().c_str(), line, rule.c_str());
                    ++failures;
                }
            }
        }
    }
    std::printf(
        "detlint fixtures: %zu file(s), %zu expectation(s), %d "
        "failure(s)\n",
        files.size(), checked, failures);
    if (checked == 0) {
        std::fprintf(stderr,
                     "detlint: fixture corpus has no expectations\n");
        return 2;
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::fprintf(
            stderr,
            "usage: detlint <path>... | --check-fixtures <dir> | "
            "--list-rules | --version\n");
        return 2;
    }
    if (args[0] == "--version") {
        // detlint deliberately links nothing from src/ (it polices
        // that code), so it prints the identity macros directly
        // instead of calling common/build_info.
#ifndef CMPQOS_VERSION_STRING
#define CMPQOS_VERSION_STRING "0.0.0"
#endif
#ifndef CMPQOS_GIT_HASH
#define CMPQOS_GIT_HASH "nogit"
#endif
#ifndef CMPQOS_BUILD_TYPE
#define CMPQOS_BUILD_TYPE "unknown"
#endif
#ifndef CMPQOS_BUILD_OPTIONS
#define CMPQOS_BUILD_OPTIONS ""
#endif
        std::printf("detlint (cmpqos " CMPQOS_VERSION_STRING
                    ", git " CMPQOS_GIT_HASH ", " CMPQOS_BUILD_TYPE
                    ", " CMPQOS_BUILD_OPTIONS ")\n");
        return 0;
    }
    if (args[0] == "--list-rules") {
        for (const Rule &r : rules())
            std::printf("%-17s %s%s\n", r.id, r.what,
                        r.exportOnly ? " (export paths only)" : "");
        return 0;
    }
    if (args[0] == "--check-fixtures") {
        if (args.size() != 2) {
            std::fprintf(stderr,
                         "usage: detlint --check-fixtures <dir>\n");
            return 2;
        }
        return checkFixtures(args[1]);
    }
    return lint(args);
}
