/**
 * @file
 * Federation shard worker: one shard controller serving the
 * coordinator over an inherited Unix-domain-socket fd. Spawned per
 * shard by the federated engine (`cluster_driver --shards N
 * --transport uds --shard-bin federation_shard`); never started by
 * hand — the fd IS the contract.
 *
 * Exit status: 0 on a clean shutdown (FedShutdown or peer close),
 * 1 on a poisoned stream (protocol error, diagnostics on stderr).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/build_info.hh"
#include "federation/shard_controller.hh"
#include "federation/transport.hh"

using namespace cmpqos;

int
main(int argc, char **argv)
{
    if (handleVersionFlag("federation_shard", argc, argv))
        return 0;

    int fd = -1;
    int shard = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fd" && i + 1 < argc) {
            fd = std::atoi(argv[++i]);
        } else if (arg == "--shard" && i + 1 < argc) {
            shard = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s --fd N --shard I\n"
                         "(spawned by the federated engine; the fd is "
                         "an inherited socketpair end)\n",
                         argv[0]);
            return 2;
        }
    }
    if (fd < 0) {
        std::fprintf(stderr, "%s: missing --fd\n", argv[0]);
        return 2;
    }

    UdsLink link(fd);
    ShardController controller;
    std::string error;
    if (!controller.serve(link, error)) {
        std::fprintf(stderr, "federation_shard[%d]: %s\n", shard,
                     error.c_str());
        return 1;
    }
    return 0;
}
