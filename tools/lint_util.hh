/**
 * @file
 * Shared machinery for the repo's standalone linters (detlint,
 * qoslint). Lives in tools/ and links nothing from src/ — the linters
 * police that code, so they must never depend on it.
 *
 * The centrepiece is a C++-aware line stripper that removes comments
 * and (optionally) string literals while carrying state across lines:
 *
 *  - // line comments, including backslash-continued ones (a comment
 *    whose physical line ends in a line splice swallows the next
 *    line too — the construct that hid code from the PR 4 stripper);
 *  - block comments spanning lines;
 *  - plain string/char literals with escape sequences;
 *  - raw string literals R"delim(...)delim" (any prefix: u8R", LR",
 *    uR", UR"), spanning lines, with embedded quotes that used to
 *    desynchronise a quote-pairing stripper.
 *
 * Stripped spans are replaced with spaces so column positions (and
 * brace structure) stay stable for downstream matching.
 *
 * Also here: the lintable-extension filter, deterministic recursive
 * file collection (sorted path order), and the shared
 * `<tool>:allow(<rule>): <reason>` / `<tool>:expect(<rule>)` pragma
 * parser both linters use for their auditable escape hatches.
 */

#ifndef CMPQOS_TOOLS_LINT_UTIL_HH
#define CMPQOS_TOOLS_LINT_UTIL_HH

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace lintutil
{

namespace fs = std::filesystem;

/** Lexer state carried across physical lines. */
struct StripState
{
    bool inBlockComment = false;
    /** Previous line was a // comment ending in a line splice. */
    bool inLineContinuation = false;
    bool inRawString = false;
    /** Raw-string terminator we are looking for: `)delim"`. */
    std::string rawTerminator;
};

/**
 * Strip comments — and string/char literals unless @p keep_strings —
 * from one physical line, updating @p st for the next line.
 */
inline std::string
stripLine(const std::string &line, StripState &st,
          bool keep_strings = false)
{
    std::string out;
    out.reserve(line.size());

    // A // comment continued by a line splice consumes this whole
    // line (and the next, if this one also ends with a backslash).
    if (st.inLineContinuation) {
        st.inLineContinuation =
            !line.empty() && line.back() == '\\';
        return std::string(line.size(), ' ');
    }

    for (std::size_t i = 0; i < line.size();) {
        if (st.inRawString) {
            const std::size_t end = line.find(st.rawTerminator, i);
            if (end == std::string::npos) {
                out.append(line.size() - i, ' ');
                i = line.size();
            } else {
                const std::size_t stop =
                    end + st.rawTerminator.size();
                if (keep_strings)
                    out.append(line, i, stop - i);
                else
                    out.append(stop - i, ' ');
                i = stop;
                st.inRawString = false;
                st.rawTerminator.clear();
            }
            continue;
        }
        if (st.inBlockComment) {
            if (line.compare(i, 2, "*/") == 0) {
                st.inBlockComment = false;
                out += "  ";
                i += 2;
            } else {
                out += ' ';
                ++i;
            }
            continue;
        }
        if (line.compare(i, 2, "//") == 0) {
            // Comment to end of line; a trailing backslash splices
            // the next physical line into this comment.
            st.inLineContinuation = line.back() == '\\';
            break;
        }
        if (line.compare(i, 2, "/*") == 0) {
            st.inBlockComment = true;
            out += "  ";
            i += 2;
            continue;
        }
        // Raw string literal: optional encoding prefix, then R"d( —
        // only when the R is not part of a longer identifier.
        if (line[i] == 'R' && i + 1 < line.size() &&
            line[i + 1] == '"') {
            std::size_t start = i;
            // Allow u8R" / uR" / UR" / LR" prefixes.
            if (i >= 1 && (line[i - 1] == 'u' || line[i - 1] == 'U' ||
                           line[i - 1] == 'L'))
                start = i - 1;
            if (start >= 2 && line.compare(start - 2, 2, "u8") == 0)
                start = i - 2;
            const bool boundary =
                start == 0 ||
                !(std::isalnum(static_cast<unsigned char>(
                      line[start - 1])) ||
                  line[start - 1] == '_');
            if (boundary) {
                const std::size_t open = line.find('(', i + 2);
                if (open != std::string::npos) {
                    st.rawTerminator =
                        ")" + line.substr(i + 2, open - (i + 2)) +
                        "\"";
                    st.inRawString = true;
                    if (keep_strings)
                        out.append(line, i, open + 1 - i);
                    else
                        out.append(open + 1 - i, ' ');
                    i = open + 1;
                    continue;
                }
            }
        }
        if (line[i] == '"' || line[i] == '\'') {
            const char quote = line[i];
            const std::size_t start = i;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\' && i + 1 < line.size()) {
                    i += 2;
                    continue;
                }
                const bool closing = line[i] == quote;
                ++i;
                if (closing)
                    break;
            }
            if (keep_strings)
                out.append(line, start, i - start);
            else
                out.append(i - start, ' ');
            continue;
        }
        out += line[i];
        ++i;
    }
    return out;
}

/** True for the C++ source extensions the linters scan. */
inline bool
lintableFile(const fs::path &p)
{
    static const std::set<std::string> exts = {
        ".cc", ".hh", ".h", ".cpp", ".hpp", ".cxx", ".hxx"};
    return exts.count(p.extension().string()) != 0;
}

/**
 * Expand files/directories into a sorted, deduplicated file list
 * (sorted path order keeps linter output deterministic). Missing
 * paths are reported and flip @p ok false.
 */
inline std::vector<fs::path>
collectFiles(const std::vector<std::string> &args, bool &ok,
             const char *tool)
{
    std::vector<fs::path> files;
    for (const std::string &a : args) {
        fs::path p(a);
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(p)) {
                if (entry.is_regular_file() &&
                    lintableFile(entry.path()))
                    files.push_back(entry.path());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            std::fprintf(stderr, "%s: no such path: %s\n", tool,
                         a.c_str());
            ok = false;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

/** Read a whole file; false on failure. */
inline bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

/** Parsed `<tool>:allow(...)` / `<tool>:expect(...)` pragmas. */
struct Directives
{
    std::set<std::string> allow;
    std::set<std::string> expect;
    std::vector<std::string> errors;
};

/** Rule ids are [a-z-]+; anything else inside <tool>:...(...) is
 *  documentation quoting the syntax, not a directive. */
inline bool
plausibleRuleId(const std::string &id)
{
    if (id.empty())
        return false;
    for (char c : id)
        if (!((c >= 'a' && c <= 'z') || c == '-'))
            return false;
    return true;
}

/**
 * Parse `<prefix>:allow(rule[,rule...]): reason` and
 * `<prefix>:expect(rule[,rule...])` out of a raw line. The reason is
 * mandatory for allow (an allow without one is an error, keeping the
 * allowlist auditable); @p known decides which rule ids exist.
 */
template <typename KnownFn>
inline Directives
parseDirectives(const std::string &line, const std::string &prefix,
                KnownFn &&known)
{
    Directives d;
    const std::regex dir_re(
        prefix + R"(:(allow|expect)\(([^)]*)\)(\s*:\s*(\S.*))?)");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), dir_re);
         it != std::sregex_iterator(); ++it) {
        const std::string kind = (*it)[1];
        std::string list = (*it)[2];
        const bool has_reason = (*it)[4].matched;
        std::set<std::string> ids;
        std::size_t pos = 0;
        while (pos <= list.size()) {
            std::size_t comma = list.find(',', pos);
            std::string id = list.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            const auto b = id.find_first_not_of(" \t");
            const auto e = id.find_last_not_of(" \t");
            id = b == std::string::npos ? "" : id.substr(b, e - b + 1);
            if (!id.empty())
                ids.insert(id);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        for (const std::string &id : ids) {
            if (!plausibleRuleId(id))
                continue; // prose quoting the syntax, not a directive
            if (!known(id)) {
                d.errors.push_back(prefix + ":" + kind +
                                   " names unknown rule '" + id + "'");
                continue;
            }
            if (kind == "allow") {
                if (!has_reason) {
                    d.errors.push_back(
                        prefix + ":allow(" + id +
                        ") needs a reason: " + prefix + ":allow(" +
                        id + "): <why this is sanctioned>");
                    continue;
                }
                d.allow.insert(id);
            } else {
                d.expect.insert(id);
            }
        }
    }
    return d;
}

} // namespace lintutil

#endif // CMPQOS_TOOLS_LINT_UTIL_HH
