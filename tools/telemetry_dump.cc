/**
 * @file
 * Trace inspection CLI for JSONL captures written by the telemetry
 * subsystem (cluster_driver --trace-out, or any JsonlTraceSink).
 *
 * Reconstructs per-job timelines from the two-level id scheme the
 * capture uses: driver-side events (node -1) carry the global arrival
 * sequence number as their job id, and each accepted arrival's
 * ArrivalPlaced event records which node took it and under which
 * node-local JobId — the key the node-side lifecycle events
 * (admitted, started, stolen, deadline outcome) are filed under.
 *
 * Usage:
 *   telemetry_dump trace.jsonl               # run summary
 *   telemetry_dump trace.jsonl --jobs        # every job timeline
 *   telemetry_dump trace.jsonl --job 17      # one arrival's timeline
 *   telemetry_dump trace.jsonl --steals      # steal/cancel histories
 *   telemetry_dump trace.jsonl --rejections  # rejection reasons
 *   telemetry_dump trace.jsonl --controller  # per-job retune timeline
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "telemetry/event.hh"

using namespace cmpqos;

namespace
{

/** One parsed JSONL line: flat string->raw-value map. */
struct Record
{
    std::map<std::string, std::string> fields;
    TraceEventType type = TraceEventType::JobSubmitted;
    bool isMeta = false;
    long long node = -1;
    long long job = -1;
    unsigned long long time = 0;

    const std::string &
    field(const std::string &key) const
    {
        static const std::string empty;
        auto it = fields.find(key);
        return it == fields.end() ? empty : it->second;
    }
};

/**
 * Minimal parser for the flat JSON objects the JsonlTraceSink emits:
 * string values (with standard escapes) and bare number tokens only.
 * @return false on malformed input.
 */
bool
parseLine(const std::string &line, Record &out)
{
    std::size_t i = 0;
    auto skipWs = [&]() {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    auto parseString = [&](std::string &s) -> bool {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        s.clear();
        while (i < line.size() && line[i] != '"') {
            char c = line[i];
            if (c == '\\') {
                if (++i >= line.size())
                    return false;
                switch (line[i]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    if (i + 4 >= line.size())
                        return false;
                    c = static_cast<char>(std::strtoul(
                        line.substr(i + 1, 4).c_str(), nullptr, 16));
                    i += 4;
                    break;
                  }
                  default: return false;
                }
            }
            s += c;
            ++i;
        }
        if (i >= line.size())
            return false;
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    out.fields.clear();
    while (true) {
        skipWs();
        if (i < line.size() && line[i] == '}')
            break;
        std::string key, value;
        if (!parseString(key))
            return false;
        skipWs();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs();
        if (i < line.size() && line[i] == '"') {
            if (!parseString(value))
                return false;
        } else {
            const std::size_t start = i;
            while (i < line.size() && line[i] != ',' && line[i] != '}')
                ++i;
            value = line.substr(start, i - start);
            while (!value.empty() && value.back() == ' ')
                value.pop_back();
        }
        out.fields[key] = value;
        skipWs();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        break;
    }

    const std::string &ev = out.field("ev");
    if (ev == "meta") {
        out.isMeta = true;
        return true;
    }
    if (!traceEventFromName(ev, out.type))
        return false;
    out.node = std::atoll(out.field("node").c_str());
    out.job = std::atoll(out.field("job").c_str());
    out.time = std::strtoull(out.field("t").c_str(), nullptr, 10);
    return true;
}

/** Cycles at the simulated 2GHz clock, human-scaled. */
std::string
cyc(unsigned long long t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.2fM", static_cast<double>(t) / 1e6);
    return buf;
}

struct Capture
{
    std::vector<Record> events;
    Record meta;
    bool hasMeta = false;
    /** Driver arrival seq -> indices of its driver-side events. */
    std::map<long long, std::vector<std::size_t>> bySeq;
    /** (node, local job) -> indices of node-side events. */
    std::map<std::pair<long long, long long>, std::vector<std::size_t>>
        byNodeJob;
    /** Driver arrival seq -> (node, local job), from ArrivalPlaced. */
    std::map<long long, std::pair<long long, long long>> placement;
};

Capture
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        cmpqos_fatal("cannot open trace '%s'", path.c_str());
    Capture cap;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        Record r;
        if (!parseLine(line, r)) {
            std::fprintf(stderr, "warning: skipping malformed line %zu\n",
                         lineno);
            continue;
        }
        if (r.isMeta) {
            cap.meta = r;
            cap.hasMeta = true;
            continue;
        }
        const std::size_t idx = cap.events.size();
        if (r.node < 0) {
            cap.bySeq[r.job].push_back(idx);
            if (r.type == TraceEventType::ArrivalPlaced)
                cap.placement[r.job] = {
                    std::atoll(r.field("target_node").c_str()),
                    std::atoll(r.field("local_job").c_str())};
        } else {
            cap.byNodeJob[{r.node, r.job}].push_back(idx);
        }
        cap.events.push_back(std::move(r));
    }
    return cap;
}

/** Render one event as a timeline row. */
void
printEvent(const Record &r)
{
    std::printf("  t=%-12s %-15s", cyc(r.time).c_str(),
                traceEventName(r.type));
    const TracePayloadKeys &k = payloadKeys(r.type);
    for (const char *key : {k.a, k.b, k.x, k.name}) {
        if (key == nullptr)
            continue;
        std::printf(" %s=%s", key, r.field(key).c_str());
    }
    std::printf("\n");
}

void
printJob(const Capture &cap, long long seq)
{
    auto it = cap.bySeq.find(seq);
    if (it == cap.bySeq.end()) {
        std::printf("arrival %lld: no driver events in capture\n", seq);
        return;
    }
    const Record &sub = cap.events[it->second.front()];
    std::printf("arrival %lld (%s)\n", seq,
                sub.field("benchmark").empty()
                    ? "?"
                    : sub.field("benchmark").c_str());
    for (const std::size_t idx : it->second)
        printEvent(cap.events[idx]);
    auto pl = cap.placement.find(seq);
    if (pl == cap.placement.end())
        return;
    std::printf("  [node %lld, local job %lld]\n", pl->second.first,
                pl->second.second);
    auto nj = cap.byNodeJob.find(pl->second);
    if (nj == cap.byNodeJob.end())
        return;
    for (const std::size_t idx : nj->second)
        printEvent(cap.events[idx]);
}

void
printSummary(const Capture &cap)
{
    std::map<std::string, std::size_t> byType;
    for (const auto &r : cap.events)
        ++byType[traceEventName(r.type)];
    std::printf("%zu events, %zu arrivals\n", cap.events.size(),
                cap.bySeq.size());
    if (cap.hasMeta)
        std::printf("meta: seed=%s nodes=%s threads=%s drops=%s "
                    "wall_seconds=%s\n",
                    cap.meta.field("seed").c_str(),
                    cap.meta.field("nodes").c_str(),
                    cap.meta.field("threads").c_str(),
                    cap.meta.field("drops").c_str(),
                    cap.meta.field("wall_seconds").c_str());
    std::printf("events by type:\n");
    for (const auto &[name, count] : byType)
        std::printf("  %6zu  %s\n", count, name.c_str());
}

void
printRejections(const Capture &cap)
{
    std::map<std::string, std::size_t> reasons;
    std::size_t total = 0;
    for (const auto &r : cap.events) {
        if (r.type != TraceEventType::JobRejected)
            continue;
        ++total;
        ++reasons[r.field("reason")];
    }
    std::printf("%zu rejections\n", total);
    for (const auto &[reason, count] : reasons)
        std::printf("  %6zu  %s\n", count, reason.c_str());
}

void
printSteals(const Capture &cap)
{
    bool any = false;
    for (const auto &[key, indices] : cap.byNodeJob) {
        std::vector<std::size_t> relevant;
        for (const std::size_t idx : indices) {
            const TraceEventType t = cap.events[idx].type;
            if (t == TraceEventType::WayStolen ||
                t == TraceEventType::WayReturned ||
                t == TraceEventType::StealCancelled)
                relevant.push_back(idx);
        }
        if (relevant.empty())
            continue;
        any = true;
        std::printf("node %lld, job %lld:\n", key.first, key.second);
        for (const std::size_t idx : relevant)
            printEvent(cap.events[idx]);
    }
    if (!any)
        std::printf("no steal activity in capture\n");
}

void
printFaults(const Capture &cap)
{
    auto isFault = [](TraceEventType t) {
        switch (t) {
          case TraceEventType::NodeCrashed:
          case TraceEventType::NodeRestarted:
          case TraceEventType::ProbeDropped:
          case TraceEventType::ProbeTimeout:
          case TraceEventType::DuplicateReplyDropped:
          case TraceEventType::QuantumStalled:
          case TraceEventType::JobFailed:
          case TraceEventType::JobRelocated:
            return true;
          default:
            return false;
        }
    };
    std::map<std::string, std::size_t> byType;
    std::size_t total = 0;
    for (const auto &r : cap.events) {
        if (!isFault(r.type))
            continue;
        ++total;
        ++byType[traceEventName(r.type)];
    }
    std::printf("%zu fault/recovery events\n", total);
    for (const auto &[name, count] : byType)
        std::printf("  %6zu  %s\n", count, name.c_str());
    for (const auto &r : cap.events)
        if (isFault(r.type))
            printEvent(r);
}

void
printController(const Capture &cap)
{
    auto isControl = [](TraceEventType t) {
        return t == TraceEventType::ControllerRetune ||
               t == TraceEventType::FrequencyChanged;
    };
    std::map<std::string, std::size_t> byKnob;
    std::size_t total = 0;
    for (const auto &r : cap.events) {
        if (!isControl(r.type))
            continue;
        ++total;
        if (r.type == TraceEventType::ControllerRetune)
            ++byKnob[r.field("knob")];
    }
    std::printf("%zu controller events\n", total);
    for (const auto &[knob, count] : byKnob)
        std::printf("  %6zu  %s\n", count, knob.c_str());

    // Per-job retune timelines, in (node, local job) order. Frequency
    // residue resets carry job=-1 and are listed per node at the end.
    for (const auto &[key, indices] : cap.byNodeJob) {
        std::vector<std::size_t> relevant;
        for (const std::size_t idx : indices)
            if (isControl(cap.events[idx].type))
                relevant.push_back(idx);
        if (relevant.empty())
            continue;
        std::printf("node %lld, job %lld:\n", key.first, key.second);
        for (const std::size_t idx : relevant)
            printEvent(cap.events[idx]);
    }
    if (total == 0)
        std::printf("no controller activity in capture\n");
}

void
usage(const char *argv0)
{
    std::printf("usage: %s TRACE.jsonl [--jobs | --job SEQ | --steals "
                "| --rejections | --faults | --controller]\n",
                argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (handleVersionFlag("telemetry_dump", argc, argv))
        return 0;
    std::string path;
    std::string mode = "summary";
    long long seq = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--jobs") {
            mode = "jobs";
        } else if (arg == "--job") {
            if (i + 1 >= argc)
                cmpqos_fatal("--job needs a sequence number");
            mode = "job";
            seq = std::atoll(argv[++i]);
        } else if (arg == "--steals") {
            mode = "steals";
        } else if (arg == "--rejections") {
            mode = "rejections";
        } else if (arg == "--faults") {
            mode = "faults";
        } else if (arg == "--controller") {
            mode = "controller";
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
            cmpqos_fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 1;
    }

    const Capture cap = load(path);
    if (mode == "summary") {
        printSummary(cap);
    } else if (mode == "jobs") {
        for (const auto &[s, _] : cap.bySeq)
            printJob(cap, s);
    } else if (mode == "job") {
        printJob(cap, seq);
    } else if (mode == "steals") {
        printSteals(cap);
    } else if (mode == "rejections") {
        printRejections(cap);
    } else if (mode == "faults") {
        printFaults(cap);
    } else if (mode == "controller") {
        printController(cap);
    }
    return 0;
}
