/**
 * @file
 * Trace CLI:
 *   trace_tool record <benchmark> <instructions> <file> [seed]
 *       Capture a benchmark model's L2 access stream to a trace.
 *   trace_tool stats <file>
 *       Print record counts, footprint, and read/write mix.
 *   trace_tool replay <file> <ways>
 *       Replay a trace through a <ways>-way partition of the default
 *       L2 and report hit/miss behaviour.
 */

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "cache/partitioned_cache.hh"
#include "common/build_info.hh"
#include "workload/trace.hh"

using namespace cmpqos;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool record <benchmark> <instructions> "
                 "<file> [seed]\n"
                 "  trace_tool stats <file>\n"
                 "  trace_tool replay <file> <ways>\n");
    return 2;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    const std::string bench = argv[2];
    const InstCount instr = std::strtoull(argv[3], nullptr, 10);
    const std::string path = argv[4];
    const std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    if (!BenchmarkRegistry::has(bench)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
        return 2;
    }
    AccessGenerator gen(BenchmarkRegistry::get(bench), seed,
                        jobAddressBase(0));
    const auto n = recordTrace(gen, instr, path);
    std::printf("recorded %llu accesses over %llu instructions of %s "
                "to %s\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(instr), bench.c_str(),
                path.c_str());
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    TraceReader reader(argv[2]);
    std::set<Addr> blocks;
    std::uint64_t writes = 0, total = 0;
    InstCount last_instr = 0;
    TraceRecord r;
    while (reader.next(r)) {
        ++total;
        writes += r.isWrite;
        blocks.insert(r.addr / reader.blockSize());
        last_instr = r.instruction;
    }
    std::printf("records:        %llu\n",
                static_cast<unsigned long long>(total));
    std::printf("instructions:   %llu\n",
                static_cast<unsigned long long>(last_instr + 1));
    std::printf("distinct blocks:%zu (%.2f MB footprint)\n",
                blocks.size(),
                static_cast<double>(blocks.size()) *
                    reader.blockSize() / 1e6);
    std::printf("write fraction: %.3f\n",
                total ? static_cast<double>(writes) /
                            static_cast<double>(total)
                      : 0.0);
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    TraceReader reader(argv[2]);
    const unsigned ways =
        static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10));
    PartitionedCache l2(CacheConfig::l2Default(), 1,
                        PartitionScheme::PerSet);
    l2.setTargetWays(0, ways);
    l2.setCoreClass(0, CoreClass::Reserved);
    reader.replay([&](Addr a, bool w) { l2.access(0, a, w); });
    const auto &st = l2.coreStats(0);
    std::printf("replayed %llu accesses at %u ways: miss rate %.3f "
                "(%llu misses, %llu writebacks)\n",
                static_cast<unsigned long long>(st.accesses), ways,
                st.missRate(),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.writebacks));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (handleVersionFlag("trace_tool", argc, argv))
        return 0;
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "stats")
        return cmdStats(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    return usage();
}
