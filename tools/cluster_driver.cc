/**
 * @file
 * Cluster simulation driver: run a multi-node CMP cluster under an
 * open-loop arrival stream (Poisson or trace file) and export
 * per-node / cluster-wide metrics as JSONL and CSV.
 *
 * Examples:
 *   cluster_driver --nodes 8 --threads 4 --jobs 200 --seed 7
 *   cluster_driver --nodes 4 --duration 50000000 --mean-interarrival 250000
 *   cluster_driver --trace arrivals.txt --jsonl run.jsonl --csv run.csv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cluster/engine.hh"
#include "common/logging.hh"

using namespace cmpqos;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --nodes N              CMP nodes in the cluster (default 8)\n"
        "  --threads T            worker threads, 0 = hardware (default 0)\n"
        "  --jobs J               Poisson stream length (default 64)\n"
        "  --mean-interarrival C  mean arrival gap in cycles (default 500000)\n"
        "  --instructions I       instructions per job (default 2000000)\n"
        "  --duration C           run-for-duration horizon in cycles\n"
        "                         (default 0 = run to completion)\n"
        "  --quantum C            placement quantum in cycles (default 2000000)\n"
        "  --policy P             first-fit | earliest-slot | least-loaded\n"
        "                         (default least-loaded)\n"
        "  --no-negotiate         reject instead of renegotiating deadlines\n"
        "  --seed S               cluster seed (default 1)\n"
        "  --trace FILE           replay arrivals from FILE instead of Poisson\n"
        "  --jsonl FILE           append the metrics snapshot as JSONL\n"
        "  --csv FILE             write the per-node table as CSV\n",
        argv0);
}

GacPolicy
parsePolicy(const std::string &name)
{
    if (name == "first-fit")
        return GacPolicy::FirstFit;
    if (name == "earliest-slot")
        return GacPolicy::EarliestSlot;
    if (name == "least-loaded")
        return GacPolicy::LeastLoaded;
    cmpqos_fatal("unknown policy '%s' (want first-fit, earliest-slot "
                 "or least-loaded)",
                 name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ClusterConfig config;
    std::uint64_t jobs = 64;
    double mean_interarrival = 500'000.0;
    InstCount instructions = 2'000'000;
    Cycle duration = 0;
    std::string trace_path, jsonl_path, csv_path;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            cmpqos_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--nodes") {
            config.nodes = std::atoi(value(i));
        } else if (arg == "--threads") {
            config.threads =
                static_cast<unsigned>(std::atoi(value(i)));
        } else if (arg == "--jobs") {
            jobs = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--mean-interarrival") {
            mean_interarrival = std::atof(value(i));
        } else if (arg == "--instructions") {
            instructions = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--duration") {
            duration = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--quantum") {
            config.quantum = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--policy") {
            config.policy = parsePolicy(value(i));
        } else if (arg == "--no-negotiate") {
            config.negotiate = false;
        } else if (arg == "--seed") {
            config.seed = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--trace") {
            trace_path = value(i);
        } else if (arg == "--jsonl") {
            jsonl_path = value(i);
        } else if (arg == "--csv") {
            csv_path = value(i);
        } else {
            usage(argv[0]);
            cmpqos_fatal("unknown option '%s'", arg.c_str());
        }
    }

    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = instructions;
    std::unique_ptr<ArrivalProcess> arrivals;
    if (!trace_path.empty()) {
        arrivals = std::make_unique<TraceArrivalProcess>(trace_path, mix);
    } else {
        if (duration == 0 && jobs == 0)
            cmpqos_fatal("an unbounded Poisson stream (--jobs 0) needs "
                         "--duration");
        arrivals = std::make_unique<PoissonArrivalProcess>(
            mean_interarrival, mix, config.seed ^ 0xa11a1ULL, jobs);
    }

    ClusterEngine engine(config);
    std::printf("cluster: %d nodes, %u threads, %s placement, seed %llu\n",
                engine.numNodes(), engine.numThreads(),
                gacPolicyName(config.policy),
                static_cast<unsigned long long>(config.seed));

    const ClusterMetrics m =
        duration == 0 ? engine.runToCompletion(*arrivals)
                      : engine.runForDuration(*arrivals, duration);

    std::printf("\n%-26s %llu\n", "jobs submitted",
                static_cast<unsigned long long>(m.submitted));
    std::printf("%-26s %llu (%.1f%%), %llu negotiated\n", "accepted",
                static_cast<unsigned long long>(m.accepted),
                100.0 * m.acceptRate(),
                static_cast<unsigned long long>(m.negotiated));
    std::printf("%-26s %llu\n", "rejected",
                static_cast<unsigned long long>(m.rejected));
    std::printf("%-26s gold %llu / silver %llu / bronze %llu\n",
                "accepted by tier",
                static_cast<unsigned long long>(m.acceptedByTier[0]),
                static_cast<unsigned long long>(m.acceptedByTier[1]),
                static_cast<unsigned long long>(m.acceptedByTier[2]));
    std::printf("%-26s %llu\n", "completed",
                static_cast<unsigned long long>(m.completed));
    std::printf("%-26s strict %.3f / elastic %.3f / opportunistic %.3f\n",
                "deadline hit rate", m.byMode[0].hitRate(),
                m.byMode[1].hitRate(), m.byMode[2].hitRate());
    std::printf("%-26s %.1fM cycles\n", "cluster virtual time",
                static_cast<double>(m.virtualTime) / 1e6);
    std::printf("%-26s %.3fs wall (%.1f jobs/s)\n", "host time",
                m.wallSeconds, m.jobsPerWallSecond());
    for (const auto &n : m.nodes)
        std::printf("  node %-3d placed %-4llu completed %-4llu "
                    "util %.2f stolen-ways %llu\n",
                    n.node, static_cast<unsigned long long>(n.placed),
                    static_cast<unsigned long long>(n.completed),
                    n.utilisation,
                    static_cast<unsigned long long>(n.stolenWays));

    if (!jsonl_path.empty())
        MetricsExporter::writeJsonlFile(m, jsonl_path);
    if (!csv_path.empty())
        MetricsExporter::writeCsvFile(m, csv_path);
    return 0;
}
