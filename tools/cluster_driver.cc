/**
 * @file
 * Cluster simulation driver: run a multi-node CMP cluster under an
 * open-loop arrival stream (Poisson or trace file) and export
 * per-node / cluster-wide metrics as JSONL and CSV.
 *
 * Examples:
 *   cluster_driver --nodes 8 --threads 4 --jobs 200 --seed 7
 *   cluster_driver --nodes 4 --duration 50000000 --mean-interarrival 250000
 *   cluster_driver --trace arrivals.txt --jsonl run.jsonl --csv run.csv
 *   cluster_driver --jobs 100 --trace-out run-trace.jsonl \
 *                  --trace-chrome run-trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/engine.hh"
#include "common/build_info.hh"
#include "common/logging.hh"
#include "control/config.hh"
#include "fault/plan.hh"
#include "federation/federated_engine.hh"
#include "telemetry/collector.hh"

using namespace cmpqos;

namespace
{

void
usage(const char *argv0, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --nodes N              CMP nodes in the cluster (default 8)\n"
        "  --threads T            worker threads, 0 = hardware (default 0)\n"
        "  --jobs J               Poisson stream length (default 64)\n"
        "  --mean-interarrival C  mean arrival gap in cycles (default 500000)\n"
        "  --instructions I       instructions per job (default 2000000)\n"
        "  --duration C           run-for-duration horizon in cycles\n"
        "                         (default 0 = run to completion)\n"
        "  --quantum C            placement quantum in cycles (default 2000000)\n"
        "  --policy P             first-fit | earliest-slot | least-loaded\n"
        "                         (default least-loaded)\n"
        "  --no-negotiate         reject instead of renegotiating deadlines\n"
        "  --seed S               cluster seed (default 1)\n"
        "  --trace FILE           replay arrivals from FILE instead of Poisson\n"
        "  --jsonl FILE           append the metrics snapshot as JSONL\n"
        "  --csv FILE             write the per-node table as CSV\n"
        "  --trace-out FILE       write the event trace as JSONL (one event\n"
        "                         per line; inspect with telemetry_dump)\n"
        "  --trace-chrome FILE    write the event trace in Chrome trace-event\n"
        "                         JSON (open in chrome://tracing or Perfetto)\n"
        "  --trace-capacity N     per-producer ring slots (default 32768)\n"
        "  --fault-plan FILE      inject the fault plan in FILE (crash,\n"
        "                         restart, probe-drop, probe-timeout,\n"
        "                         dup-reply, slow-quantum directives;\n"
        "                         federated runs also take link-drop,\n"
        "                         link-dup, link-delay, partition)\n"
        "  --shards N             federate the engine over N shard\n"
        "                         controllers (default: single-process)\n"
        "  --transport T          shard transport: inproc | uds\n"
        "                         (default inproc; implies federation)\n"
        "  --shard-bin PATH       uds only: spawn PATH as a worker\n"
        "                         process per shard (default: serve\n"
        "                         threads in-process)\n"
        "  --elastic-x X          Silver tier Elastic(X) budget in [0, 1]\n"
        "                         (default 0.05)\n"
        "  --check-invariants     run the invariant oracle at every quantum\n"
        "                         barrier; exit 2 on any violation\n"
        "  --control SPEC         enable the per-node feedback controller;\n"
        "                         SPEC is a comma-separated key=value run\n"
        "                         (on, slack_low, slack_high, dynamic_slo,\n"
        "                         slo_slowdown, bw_step, min_window,\n"
        "                         p_static, dyn_coeff, power_cap) or just\n"
        "                         'on' for the defaults\n"
        "  --fingerprint          print the canonical metrics fingerprint\n"
        "                         (for replay verification)\n"
        "  --version              print the build identity and exit\n",
        argv0);
}

GacPolicy
parsePolicy(const std::string &name)
{
    if (name == "first-fit")
        return GacPolicy::FirstFit;
    if (name == "earliest-slot")
        return GacPolicy::EarliestSlot;
    if (name == "least-loaded")
        return GacPolicy::LeastLoaded;
    cmpqos_fatal("unknown policy '%s' (want first-fit, earliest-slot "
                 "or least-loaded)",
                 name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (handleVersionFlag("cluster_driver", argc, argv))
        return 0;

    ClusterConfig config;
    std::uint64_t jobs = 64;
    double mean_interarrival = 500'000.0;
    double elastic_x = 0.05;
    bool print_fingerprint = false;
    InstCount instructions = 2'000'000;
    Cycle duration = 0;
    std::string trace_path, jsonl_path, csv_path;
    std::string trace_out_path, trace_chrome_path;
    std::string fault_plan_path;
    TelemetryConfig telemetry_config;
    FaultPlan fault_plan;
    FederationConfig federation;
    bool federated = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            cmpqos_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], stdout);
            return 0;
        } else if (arg == "--nodes") {
            config.nodes = std::atoi(value(i));
        } else if (arg == "--threads") {
            config.threads =
                static_cast<unsigned>(std::atoi(value(i)));
        } else if (arg == "--jobs") {
            jobs = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--mean-interarrival") {
            mean_interarrival = std::atof(value(i));
        } else if (arg == "--instructions") {
            instructions = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--duration") {
            duration = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--quantum") {
            config.quantum = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--policy") {
            config.policy = parsePolicy(value(i));
        } else if (arg == "--no-negotiate") {
            config.negotiate = false;
        } else if (arg == "--seed") {
            config.seed = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--trace") {
            trace_path = value(i);
        } else if (arg == "--jsonl") {
            jsonl_path = value(i);
        } else if (arg == "--csv") {
            csv_path = value(i);
        } else if (arg == "--trace-out") {
            trace_out_path = value(i);
        } else if (arg == "--trace-chrome") {
            trace_chrome_path = value(i);
        } else if (arg == "--trace-capacity") {
            telemetry_config.ringCapacity =
                std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--fault-plan") {
            fault_plan_path = value(i);
        } else if (arg == "--shards") {
            federation.shards = std::atoi(value(i));
            federated = true;
        } else if (arg == "--transport") {
            if (!parseFedTransport(value(i), federation.transport))
                cmpqos_fatal("unknown transport '%s' (want inproc or "
                             "uds)",
                             argv[i]);
            federated = true;
        } else if (arg == "--shard-bin") {
            federation.shardBinary = value(i);
            federated = true;
        } else if (arg == "--elastic-x") {
            elastic_x = std::atof(value(i));
            if (elastic_x < 0.0 || elastic_x > 1.0)
                cmpqos_fatal("--elastic-x wants a fraction in [0, 1]");
        } else if (arg == "--check-invariants") {
            config.checkInvariants = true;
        } else if (arg == "--control") {
            std::string spec_err;
            if (!parseControllerSpec(value(i), config.control,
                                     spec_err))
                cmpqos_fatal("--control: %s", spec_err.c_str());
        } else if (arg == "--fingerprint") {
            print_fingerprint = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], stderr);
            return 2;
        }
    }

    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = instructions;
    mix.tiers[static_cast<std::size_t>(QosTier::Silver)].mode =
        ModeSpec::elastic(elastic_x);
    std::unique_ptr<ArrivalProcess> arrivals;
    if (!trace_path.empty()) {
        arrivals = std::make_unique<TraceArrivalProcess>(trace_path, mix);
    } else {
        if (duration == 0 && jobs == 0)
            cmpqos_fatal("an unbounded Poisson stream (--jobs 0) needs "
                         "--duration");
        arrivals = std::make_unique<PoissonArrivalProcess>(
            mean_interarrival, mix, config.seed ^ 0xa11a1ULL, jobs);
    }

    // Telemetry: one collector for the run, sinks opened up front so
    // a failure to open aborts before any simulation work happens.
    std::unique_ptr<TraceCollector> collector;
    std::ofstream trace_out_file, trace_chrome_file;
    std::unique_ptr<JsonlTraceSink> jsonl_sink;
    std::unique_ptr<ChromeTraceSink> chrome_sink;
    if (!trace_out_path.empty() || !trace_chrome_path.empty()) {
        collector = std::make_unique<TraceCollector>(config.nodes + 1,
                                                     telemetry_config);
        if (!trace_out_path.empty()) {
            trace_out_file.open(trace_out_path);
            if (!trace_out_file)
                cmpqos_fatal("cannot open trace file '%s'",
                             trace_out_path.c_str());
            jsonl_sink =
                std::make_unique<JsonlTraceSink>(trace_out_file);
            collector->addSink(jsonl_sink.get());
        }
        if (!trace_chrome_path.empty()) {
            trace_chrome_file.open(trace_chrome_path);
            if (!trace_chrome_file)
                cmpqos_fatal("cannot open trace file '%s'",
                             trace_chrome_path.c_str());
            chrome_sink =
                std::make_unique<ChromeTraceSink>(trace_chrome_file);
            collector->addSink(chrome_sink.get());
        }
        config.telemetry = collector.get();
    }

    if (!fault_plan_path.empty()) {
        fault_plan = FaultPlan::parseFile(fault_plan_path);
        fault_plan.validate(config.nodes,
                            federated ? federation.shards : 0);
        config.faultPlan = &fault_plan;
    }

    // Shard-side telemetry rings mirror the hub's capacity so drop
    // behaviour matches the single-process engine.
    federation.telemetryRing = telemetry_config.ringCapacity;
    std::unique_ptr<ClusterEngine> engine;
    std::unique_ptr<FederatedEngine> fed_engine;
    unsigned run_threads = 0;
    if (federated) {
        fed_engine =
            std::make_unique<FederatedEngine>(config, federation);
        run_threads = fed_engine->numThreads();
    } else {
        engine = std::make_unique<ClusterEngine>(config);
        run_threads = engine->numThreads();
    }
    std::printf("cluster: %d nodes, %u threads, %s placement, seed %llu\n",
                config.nodes, run_threads, gacPolicyName(config.policy),
                static_cast<unsigned long long>(config.seed));
    if (federated)
        std::printf("federation: %d shards over %s transport%s%s\n",
                    fed_engine->numShards(),
                    fedTransportName(federation.transport),
                    federation.shardBinary.empty() ? ""
                                                   : ", worker ",
                    federation.shardBinary.c_str());
    if (!fault_plan.empty())
        std::printf("fault plan: %zu directives (%s)\n",
                    fault_plan.faults.size(),
                    fault_plan.summary().c_str());

    const ClusterMetrics m =
        federated
            ? (duration == 0
                   ? fed_engine->runToCompletion(*arrivals)
                   : fed_engine->runForDuration(*arrivals, duration))
            : (duration == 0
                   ? engine->runToCompletion(*arrivals)
                   : engine->runForDuration(*arrivals, duration));

    std::printf("\n%-26s %llu\n", "jobs submitted",
                static_cast<unsigned long long>(m.submitted));
    std::printf("%-26s %llu (%.1f%%), %llu negotiated\n", "accepted",
                static_cast<unsigned long long>(m.accepted),
                100.0 * m.acceptRate(),
                static_cast<unsigned long long>(m.negotiated));
    std::printf("%-26s %llu\n", "rejected",
                static_cast<unsigned long long>(m.rejected));
    std::printf("%-26s gold %llu / silver %llu / bronze %llu\n",
                "accepted by tier",
                static_cast<unsigned long long>(m.acceptedByTier[0]),
                static_cast<unsigned long long>(m.acceptedByTier[1]),
                static_cast<unsigned long long>(m.acceptedByTier[2]));
    std::printf("%-26s %llu\n", "completed",
                static_cast<unsigned long long>(m.completed));
    // Modes that never completed a job have no hit rate (NaN).
    auto rate = [](const ModeTally &t) {
        if (!t.hasHitRate())
            return std::string("n/a");
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", t.hitRate());
        return std::string(buf);
    };
    std::printf("%-26s strict %s / elastic %s / opportunistic %s\n",
                "deadline hit rate", rate(m.byMode[0]).c_str(),
                rate(m.byMode[1]).c_str(), rate(m.byMode[2]).c_str());
    std::printf("%-26s %.1fM cycles\n", "cluster virtual time",
                static_cast<double>(m.virtualTime) / 1e6);
    std::printf("%-26s %.3fs wall (%.1f jobs/s)\n", "host time",
                m.wallSeconds, m.jobsPerWallSecond());
    for (const auto &n : m.nodes)
        std::printf("  node %-3d placed %-4llu completed %-4llu "
                    "util %.2f stolen-ways %llu%s\n",
                    n.node, static_cast<unsigned long long>(n.placed),
                    static_cast<unsigned long long>(n.completed),
                    n.utilisation,
                    static_cast<unsigned long long>(n.stolenWays),
                    n.alive ? "" : " [down]");
    if (m.faults.any())
        std::printf("%-26s %llu crashes, %llu restarts, %llu failed, "
                    "%llu relocated (%llu downgraded, %llu rejected), "
                    "%llu probes dropped, %llu probe timeouts, "
                    "%llu dup replies, %llu stalled quanta\n",
                    "faults",
                    static_cast<unsigned long long>(m.faults.crashes),
                    static_cast<unsigned long long>(m.faults.restarts),
                    static_cast<unsigned long long>(m.faults.failedJobs),
                    static_cast<unsigned long long>(
                        m.faults.relocated +
                        m.faults.relocationDowngraded),
                    static_cast<unsigned long long>(
                        m.faults.relocationDowngraded),
                    static_cast<unsigned long long>(
                        m.faults.relocationRejected),
                    static_cast<unsigned long long>(
                        m.faults.probesDropped),
                    static_cast<unsigned long long>(
                        m.faults.probeTimeouts),
                    static_cast<unsigned long long>(
                        m.faults.duplicateReplies),
                    static_cast<unsigned long long>(
                        m.faults.stalledQuanta));
    if (m.faults.linkDrops || m.faults.linkDups ||
        m.faults.linkDelayCycles || m.faults.partitionedQuanta)
        std::printf("%-26s %llu drops, %llu dups, %llu delay cycles, "
                    "%llu partitioned quanta\n",
                    "shard links",
                    static_cast<unsigned long long>(m.faults.linkDrops),
                    static_cast<unsigned long long>(m.faults.linkDups),
                    static_cast<unsigned long long>(
                        m.faults.linkDelayCycles),
                    static_cast<unsigned long long>(
                        m.faults.partitionedQuanta));

    if (m.controllerOn)
        std::printf("%-26s %llu retunes (%llu freq+, %llu freq-, "
                    "%llu way+, %llu way-, %llu bw+, %llu bw-), "
                    "energy %.1f\n",
                    "controller",
                    static_cast<unsigned long long>(m.control.retunes),
                    static_cast<unsigned long long>(
                        m.control.freqBoosts),
                    static_cast<unsigned long long>(
                        m.control.freqDrops),
                    static_cast<unsigned long long>(
                        m.control.wayGrants),
                    static_cast<unsigned long long>(
                        m.control.wayReturns),
                    static_cast<unsigned long long>(
                        m.control.bwGrants),
                    static_cast<unsigned long long>(
                        m.control.bwReturns),
                    m.energy);

    if (print_fingerprint)
        std::printf("fingerprint %s\n", m.fingerprint().c_str());

    if (!jsonl_path.empty())
        MetricsExporter::writeJsonlFile(m, jsonl_path);
    if (!csv_path.empty())
        MetricsExporter::writeCsvFile(m, csv_path);

    if (collector != nullptr) {
        collector->finish(config.seed, run_threads, m.wallSeconds);
        std::printf("%-26s %llu events (%llu dropped)\n", "trace",
                    static_cast<unsigned long long>(
                        collector->eventsDelivered()),
                    static_cast<unsigned long long>(
                        collector->totalDrops()));
    }

    if (config.checkInvariants) {
        std::uint64_t checks = 0;
        std::uint64_t violations = 0;
        std::string report;
        if (federated) {
            checks = fed_engine->invariantChecksRun();
            violations = fed_engine->invariantViolations();
            if (violations != 0)
                report = fed_engine->invariantReport();
        } else {
            const InvariantChecker *checker =
                engine->invariantChecker();
            checks = checker->checksRun();
            violations = checker->totalViolations();
            if (violations != 0)
                report = checker->report();
        }
        std::printf("%-26s %llu checks, %llu violations\n",
                    "invariants",
                    static_cast<unsigned long long>(checks),
                    static_cast<unsigned long long>(violations));
        if (violations != 0) {
            std::printf("%s", report.c_str());
            // Reproducer: seed + plan fully replays the failure.
            std::string topology;
            if (federated)
                topology = " --shards " +
                           std::to_string(federation.shards) +
                           " --transport " +
                           fedTransportName(federation.transport);
            std::printf("reproducer: --seed %llu --nodes %d "
                        "--quantum %llu%s%s%s\n",
                        static_cast<unsigned long long>(config.seed),
                        config.nodes,
                        static_cast<unsigned long long>(
                            config.quantum),
                        topology.c_str(),
                        fault_plan.empty() ? "" : " --fault-plan ",
                        fault_plan.empty()
                            ? ""
                            : fault_plan_path.c_str());
            return 2;
        }
    }
    return 0;
}
