/**
 * @file
 * Quickstart: submit three jobs with different QoS execution modes to
 * a 4-core CMP node and inspect the admission decisions, schedules,
 * and outcomes.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "qos/framework.hh"
#include "sim/report.hh"

using namespace cmpqos;

int
main()
{
    // A CMP node with the paper's configuration: four 2GHz in-order
    // cores, 32KB private L1s, a shared 2MB 16-way L2 with per-set
    // way partitioning, and 6.4GB/s of memory bandwidth.
    FrameworkConfig config;
    QosFramework framework(config);

    const InstCount job_length = 10'000'000;

    // A Strict job: its 1 core + 7 L2 ways and its timeslot are
    // reserved; the deadline is guaranteed if admission succeeds.
    JobRequest strict_req;
    strict_req.benchmark = "bzip2";
    strict_req.mode = ModeSpec::strict();
    strict_req.deadlineFactor = 2.0; // deadline = 2x max wall-clock
    Job *strict_job = framework.submitJob(strict_req, job_length);

    // An Elastic(5%) job: also reserved, but the system may steal
    // unused cache from it as long as its L2 misses grow <= 5%.
    JobRequest elastic_req;
    elastic_req.benchmark = "gobmk"; // cache-insensitive: ideal donor
    elastic_req.mode = ModeSpec::elastic(0.05);
    elastic_req.deadlineFactor = 2.0;
    Job *elastic_job = framework.submitJob(elastic_req, job_length);

    // An Opportunistic job: no reservation; runs on spare resources
    // (and on the cache ways stolen from the Elastic job).
    JobRequest opp_req;
    opp_req.benchmark = "bzip2"; // cache-hungry: ideal beneficiary
    opp_req.mode = ModeSpec::opportunistic();
    opp_req.deadlineFactor = 3.0;
    Job *opp_job = framework.submitJob(opp_req, job_length);

    for (Job *job : {strict_job, elastic_job, opp_job}) {
        if (job == nullptr) {
            std::puts("a job was rejected by admission control");
            continue;
        }
        char slot_end[32];
        if (job->slotEnd == maxCycle)
            std::snprintf(slot_end, sizeof(slot_end), "open");
        else
            std::snprintf(slot_end, sizeof(slot_end), "%.1fM",
                          static_cast<double>(job->slotEnd) / 1e6);
        std::printf("job %d (%s, %s): accepted, slot [%.1fM, %s) "
                    "cycles, deadline %.1fM\n",
                    job->id(), job->benchmark().c_str(),
                    executionModeName(job->mode().mode),
                    static_cast<double>(job->slotStart) / 1e6, slot_end,
                    static_cast<double>(job->deadline) / 1e6);
    }

    // Run the co-simulation until everything completes.
    framework.runToCompletion();

    std::puts("\noutcomes:");
    for (Job *job : {strict_job, elastic_job, opp_job}) {
        if (job == nullptr)
            continue;
        std::printf(
            "job %d (%s, %-13s): wall-clock %6.1fM cycles, CPI %.2f, "
            "L2 miss rate %4.1f%%, deadline %s%s\n",
            job->id(), job->benchmark().c_str(),
            executionModeName(job->mode().mode),
            job->wallClock() / 1e6, job->exec()->cpi(),
            job->exec()->missRate() * 100.0,
            job->deadlineMet() ? "MET" : "MISSED",
            job->mode().mode == ExecutionMode::Elastic
                ? (" (ways stolen: " +
                   std::to_string(job->stolenWays) + ")")
                      .c_str()
                : "");
    }

    std::printf("\nresource stealing: %llu steals, %llu cancels\n\n",
                static_cast<unsigned long long>(
                    framework.stealing().totalSteals()),
                static_cast<unsigned long long>(
                    framework.stealing().totalCancels()));

    printSystemReport(framework.system(), std::cout);
    return 0;
}
