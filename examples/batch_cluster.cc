/**
 * @file
 * Batch-cluster scenario (Section 3.1's working environment): a
 * server with several CMP nodes fronted by a Global Admission
 * Controller. Jobs specify RUM targets the way Lsbatch-style batch
 * systems do (processor count, memory/cache size, maximum wall-clock
 * time, deadline); the GAC probes each node's Local Admission
 * Controller and places each job on a node that can satisfy its QoS
 * target, rejecting or negotiating when none can.
 *
 * This example exercises the admission/reservation machinery across
 * nodes (the paper scopes full multi-node execution out; so do we —
 * reservations are made, and one node's workload is then executed).
 */

#include <cstdio>
#include <vector>

#include "qos/framework.hh"
#include "qos/gac.hh"

using namespace cmpqos;

int
main()
{
    // Three CMP nodes, each with its own LAC.
    constexpr int num_nodes = 3;
    std::vector<std::unique_ptr<QosFramework>> nodes;
    GlobalAdmissionController gac(GacPolicy::EarliestSlot);
    for (int n = 0; n < num_nodes; ++n) {
        nodes.push_back(std::make_unique<QosFramework>(FrameworkConfig()));
        gac.addNode(n, &nodes.back()->lac());
    }

    const InstCount job_length = 6'000'000;
    QosFramework &reference = *nodes[0];

    // A stream of batch submissions: "medium" preset RUM targets
    // (1 core, 7 of 16 ways) with mixed deadlines.
    struct Submission
    {
        const char *benchmark;
        double deadlineFactor;
    };
    const Submission stream[] = {
        {"bzip2", 1.05}, {"gobmk", 1.05}, {"hmmer", 1.05},
        {"mcf", 1.05},   {"soplex", 1.05}, {"sphinx", 1.05},
        {"astar", 1.05}, {"gcc", 2.0},     {"perl", 1.05},
        {"milc", 1.05},  {"namd", 3.0},    {"povray", 1.05},
        {"sjeng", 1.05}, {"h264ref", 1.05}, {"libquantum", 1.05},
    };

    std::vector<std::unique_ptr<Job>> jobs;
    int accepted = 0, rejected = 0, negotiated = 0;
    std::vector<int> per_node(num_nodes, 0);

    for (const auto &sub : stream) {
        JobRequest req;
        req.benchmark = sub.benchmark;
        req.deadlineFactor = sub.deadlineFactor;

        QosTarget target = QosTarget::medium();
        target.maxWallClock =
            reference.maxWallClockFor(req, job_length);
        target.relativeDeadline = static_cast<Cycle>(
            static_cast<double>(target.maxWallClock) *
            sub.deadlineFactor);

        auto job = std::make_unique<Job>(
            static_cast<JobId>(jobs.size()), sub.benchmark, job_length,
            target, ModeSpec::strict());

        const GacDecision d = gac.submit(*job, 0);
        if (d.accepted) {
            ++accepted;
            ++per_node[static_cast<std::size_t>(d.node)];
            std::printf("%-10s -> node %d, slot [%6.1fM, %6.1fM)\n",
                        sub.benchmark, d.node,
                        static_cast<double>(d.local.slotStart) / 1e6,
                        static_cast<double>(d.local.slotEnd) / 1e6);
        } else {
            ++rejected;
            const auto relaxed = gac.negotiateDeadline(*job, 0);
            if (relaxed) {
                ++negotiated;
                std::printf("%-10s -> rejected; negotiable: deadline "
                            "%.1fM instead of %.1fM cycles\n",
                            sub.benchmark,
                            static_cast<double>(*relaxed) / 1e6,
                            static_cast<double>(
                                target.relativeDeadline) /
                                1e6);
            } else {
                std::printf("%-10s -> rejected, no feasible deadline\n",
                            sub.benchmark);
            }
        }
        jobs.push_back(std::move(job));
    }

    std::printf("\nGAC summary: %d accepted (", accepted);
    for (int n = 0; n < num_nodes; ++n)
        std::printf("node%d=%d%s", n, per_node[static_cast<size_t>(n)],
                    n + 1 < num_nodes ? ", " : ")");
    std::printf(", %d rejected of which %d negotiable\n", rejected,
                negotiated);
    std::printf("GAC probes issued: %llu\n",
                static_cast<unsigned long long>(gac.probes()));

    // Execute node 0's share to show reservations are real.
    std::puts("\nexecuting node 0's accepted jobs...");
    QosFramework node0_exec{FrameworkConfig()};
    int ran = 0;
    for (const auto &job : jobs) {
        // Jobs the GAC placed on node 0 (their reservation lives in
        // nodes[0]'s LAC; re-submit to an executing instance).
        // Tight coupling of reservation + execution is what
        // QosFramework::runWorkload does; here we just demonstrate.
        if (job->state() == JobState::Waiting && ran < 2) {
            JobRequest req;
            req.benchmark = job->benchmark();
            req.deadlineFactor = 2.0;
            if (node0_exec.submitJob(req, job_length) != nullptr)
                ++ran;
        }
    }
    node0_exec.runToCompletion();
    std::printf("node 0 executed %d jobs; all deadlines %s\n", ran,
                [&] {
                    for (const auto &j : node0_exec.jobs())
                        if (j->state() == JobState::Completed &&
                            !j->deadlineMet())
                            return "NOT met";
                    return "met";
                }());
    return 0;
}
