/**
 * @file
 * Service-oriented computing scenario (the paper's Section 1
 * motivation): a utility-computing provider hosts clients with
 * different service-level agreements on one CMP node.
 *
 *  - "gold" clients buy Strict execution with a large resource
 *    preset: their throughput and deadline are guaranteed.
 *  - "silver" clients buy Elastic(10%): deadline guaranteed, up to
 *    10% slowdown tolerated, which lets the provider reclaim unused
 *    cache from them.
 *  - "bronze" clients run Opportunistic on whatever is spare.
 *
 * The example submits a stream of mixed-tier transaction jobs, shows
 * the admission decisions (including a rejected gold job and the
 * deadline negotiation a GAC would offer), and reports per-tier
 * outcomes.
 */

#include <cstdio>
#include <vector>

#include "qos/framework.hh"
#include "qos/gac.hh"

using namespace cmpqos;

namespace
{

struct Tier
{
    const char *name;
    const char *benchmark;
    ModeSpec mode;
    unsigned ways;
    double deadlineFactor;
};

} // namespace

int
main()
{
    FrameworkConfig config;
    QosFramework node(config);

    const Tier tiers[] = {
        {"gold", "sphinx", ModeSpec::strict(), 10, 1.4},
        {"silver", "hmmer", ModeSpec::elastic(0.10), 4, 2.0},
        {"bronze", "gobmk", ModeSpec::opportunistic(), 0, 4.0},
    };

    const InstCount job_length = 8'000'000;

    // A burst of client requests: gold, silver, two bronze, and a
    // second gold that the node cannot fit before its deadline.
    std::vector<std::pair<const Tier *, Job *>> submitted;
    auto submit = [&](const Tier &tier) {
        JobRequest r;
        r.benchmark = tier.benchmark;
        r.mode = tier.mode;
        r.ways = tier.ways == 0 ? 7 : tier.ways;
        r.deadlineFactor = tier.deadlineFactor;
        Job *job = node.submitJob(r, job_length);
        submitted.emplace_back(&tier, job);
        std::printf("[%6s] %-7s -> %s\n", tier.name, tier.benchmark,
                    job == nullptr
                        ? "REJECTED (QoS target cannot be satisfied)"
                        : "accepted");
        return job;
    };

    submit(tiers[0]); // gold
    submit(tiers[1]); // silver
    submit(tiers[2]); // bronze
    submit(tiers[2]); // bronze
    Tier second_gold = tiers[0];
    second_gold.ways = 14;          // demands most of the cache...
    second_gold.deadlineFactor = 1.05; // ...with a tight deadline
    Job *rejected = submit(second_gold);

    if (rejected == nullptr) {
        // What a Global Admission Controller would do: negotiate a
        // relaxed deadline the node *can* honour (Section 3.1).
        LocalAdmissionController &lac = node.lac();
        GlobalAdmissionController gac;
        gac.addNode(0, &lac);
        QosTarget t;
        t.cores = 1;
        t.cacheWays = 14;
        t.maxWallClock = node.maxWallClockFor(
            [] {
                JobRequest r;
                r.benchmark = "sphinx";
                r.ways = 14;
                return r;
            }(),
            job_length);
        t.relativeDeadline = static_cast<Cycle>(
            static_cast<double>(t.maxWallClock) * 1.05);
        Job shadow(999, "sphinx", job_length, t, ModeSpec::strict());
        const auto negotiated = gac.negotiateDeadline(
            shadow, node.simulation().now());
        if (negotiated) {
            std::printf(
                "[  gold] negotiation: node can guarantee the job "
                "with a deadline of %.1fM cycles (asked %.1fM)\n",
                static_cast<double>(*negotiated) / 1e6,
                static_cast<double>(t.relativeDeadline) / 1e6);
        }
    }

    node.runToCompletion();

    std::puts("\nper-tier outcomes:");
    for (const auto &[tier, job] : submitted) {
        if (job == nullptr)
            continue;
        std::printf("[%6s] %-7s wall-clock %6.1fM cycles, deadline %s,"
                    " L2 miss %4.1f%%%s\n",
                    tier->name, job->benchmark().c_str(),
                    job->wallClock() / 1e6,
                    job->deadlineMet() ? "MET" : "missed",
                    job->exec()->missRate() * 100.0,
                    job->mode().mode == ExecutionMode::Elastic
                        ? " (donated cache via stealing)"
                        : "");
    }
    std::puts("\nGuarantees held for every accepted gold/silver job;"
              " bronze jobs ran on\nspare capacity; the infeasible"
              " gold request was rejected up front instead of\n"
              "silently degrading everyone — the paper's case for"
              " admission control.");
    return 0;
}
