/**
 * @file
 * Cluster simulation quickstart: a 4-node CMP cluster behind
 * least-loaded global admission, serving an open-loop Poisson stream
 * of tiered jobs (Gold = Strict/tight, Silver = Elastic/moderate,
 * Bronze = Opportunistic) on a worker thread pool, then printing the
 * serving metrics every SLO dashboard wants: accept rate, per-tier
 * placements, per-mode deadline hit rates, node utilisation.
 */

#include <cstdio>
#include <string>

#include "cluster/engine.hh"

using namespace cmpqos;

int
main()
{
    ClusterConfig config;
    config.nodes = 4;
    config.threads = 0; // use every hardware thread
    config.seed = 7;

    // One job every 400K cycles (~0.2ms at 2GHz) on average, drawn
    // from the default mix: bzip2/hmmer/gobmk, 50/30/20 tier split.
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 1'500'000;
    PoissonArrivalProcess arrivals(400'000.0, mix, config.seed, 48);

    ClusterEngine engine(config);
    const ClusterMetrics m = engine.runToCompletion(arrivals);

    std::printf("cluster of %d nodes on %u threads\n", engine.numNodes(),
                engine.numThreads());
    std::printf("submitted %llu: accepted %llu (%.0f%%; %llu after "
                "negotiation), rejected %llu\n",
                static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.accepted),
                100.0 * m.acceptRate(),
                static_cast<unsigned long long>(m.negotiated),
                static_cast<unsigned long long>(m.rejected));
    std::printf("tiers: gold %llu, silver %llu, bronze %llu\n",
                static_cast<unsigned long long>(m.acceptedByTier[0]),
                static_cast<unsigned long long>(m.acceptedByTier[1]),
                static_cast<unsigned long long>(m.acceptedByTier[2]));
    // A mode with no completed jobs has no hit rate (NaN) — print
    // "n/a" rather than a number.
    auto rate = [](const ModeTally &t) {
        if (!t.hasHitRate())
            return std::string("n/a");
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.2f", t.hitRate());
        return std::string(buf);
    };
    std::printf("deadline hit rates: strict %s, elastic %s, "
                "opportunistic %s\n",
                rate(m.byMode[0]).c_str(), rate(m.byMode[1]).c_str(),
                rate(m.byMode[2]).c_str());
    for (const auto &n : m.nodes)
        std::printf("  node %d: %llu placed, utilisation %.2f\n",
                    n.node, static_cast<unsigned long long>(n.placed),
                    n.utilisation);
    std::printf("simulated %.1fM cycles in %.2fs of host time\n",
                static_cast<double>(m.virtualTime) / 1e6,
                m.wallSeconds);
    return 0;
}
