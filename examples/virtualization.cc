/**
 * @file
 * Virtualization scenario (Section 1): a VMM hosts several virtual
 * machines on one CMP. A critical VM (e.g., a production database)
 * gets a Strict reservation; a reporting VM tolerates some slowdown
 * and runs Elastic(5%); two best-effort developer VMs run
 * Opportunistic. The VMM uses the QoS framework to allocate cores
 * and shared-cache capacity to VMs by importance.
 *
 * The example runs the consolidation twice — once on the QoS CMP and
 * once on a no-QoS EqualPart CMP — and compares the critical VM's
 * performance stability (the paper's performance-variation problem).
 */

#include <cstdio>
#include <vector>

#include "qos/framework.hh"

using namespace cmpqos;

namespace
{

struct VmSpec
{
    const char *name;
    const char *benchmark;
    ModeSpec mode;
    unsigned ways;
};

double
runConsolidation(SystemPolicy policy, double &critical_wallclock)
{
    FrameworkConfig config;
    config.policy = policy;
    QosFramework vmm(config);

    const VmSpec vms[] = {
        {"prod-db", "mcf", ModeSpec::strict(), 8},
        {"reporting", "hmmer", ModeSpec::elastic(0.05), 6},
        {"dev-1", "gobmk", ModeSpec::opportunistic(), 7},
        {"dev-2", "bzip2", ModeSpec::opportunistic(), 7},
    };
    const InstCount vm_work = 6'000'000;

    std::vector<std::pair<const VmSpec *, Job *>> placed;
    for (const auto &vm : vms) {
        JobRequest r;
        r.benchmark = vm.benchmark;
        r.mode = vm.mode;
        r.ways = vm.ways;
        r.deadlineFactor = 2.5;
        Job *job = vmm.submitJob(r, vm_work);
        placed.emplace_back(&vm, job);
    }
    vmm.runToCompletion();

    const char *label =
        policy == SystemPolicy::Qos ? "QoS CMP" : "EqualPart CMP";
    std::printf("\n%s:\n", label);
    double makespan = 0.0;
    for (const auto &[vm, job] : placed) {
        if (job == nullptr) {
            std::printf("  %-9s REJECTED\n", vm->name);
            continue;
        }
        makespan = std::max(makespan, job->exec()->endCycle);
        std::printf("  %-9s (%-5s %-13s) wall-clock %6.1fM  IPC %.3f"
                    "  deadline %s\n",
                    vm->name, job->benchmark().c_str(),
                    executionModeName(job->mode().mode),
                    job->wallClock() / 1e6,
                    1.0 / job->exec()->cpi(),
                    job->deadlineMet() ? "met" : "MISSED");
        if (std::string(vm->name) == "prod-db")
            critical_wallclock = job->wallClock();
    }
    return makespan;
}

} // namespace

int
main()
{
    std::puts("VMM consolidation: 4 VMs on one 4-core CMP node");

    double critical_qos = 0.0, critical_equal = 0.0;
    const double makespan_qos =
        runConsolidation(SystemPolicy::Qos, critical_qos);
    const double makespan_equal =
        runConsolidation(SystemPolicy::EqualPart, critical_equal);

    std::printf("\ncritical VM slowdown without QoS: %.1f%%"
                " (wall-clock %0.1fM -> %0.1fM cycles)\n",
                (critical_equal / critical_qos - 1.0) * 100.0,
                critical_qos / 1e6, critical_equal / 1e6);
    std::printf("total makespan: QoS %.1fM vs EqualPart %.1fM cycles\n",
                makespan_qos / 1e6, makespan_equal / 1e6);
    std::puts("\nWith QoS, the critical VM's reservation isolates it"
              " from the co-hosted\nVMs; on the non-QoS CMP it"
              " time-shares a quarter of the cache and slows\ndown —"
              " the performance-variation problem the paper opens"
              " with.");
    return 0;
}
