file(REMOVE_RECURSE
  "CMakeFiles/test_qos.dir/qos/test_admission.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_admission.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_gac.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_gac.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_job.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_job.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_mode.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_mode.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_resource.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_resource.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_scheduler.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_scheduler.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_server.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_server.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_stealing.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_stealing.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_target.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_target.cc.o.d"
  "CMakeFiles/test_qos.dir/qos/test_workload_spec.cc.o"
  "CMakeFiles/test_qos.dir/qos/test_workload_spec.cc.o.d"
  "test_qos"
  "test_qos.pdb"
  "test_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
