# Empty dependencies file for test_mem_cpu.
# This may be replaced when dependencies are built.
