file(REMOVE_RECURSE
  "CMakeFiles/test_mem_cpu.dir/cpu/test_core.cc.o"
  "CMakeFiles/test_mem_cpu.dir/cpu/test_core.cc.o.d"
  "CMakeFiles/test_mem_cpu.dir/cpu/test_cpi_model.cc.o"
  "CMakeFiles/test_mem_cpu.dir/cpu/test_cpi_model.cc.o.d"
  "CMakeFiles/test_mem_cpu.dir/mem/test_bandwidth.cc.o"
  "CMakeFiles/test_mem_cpu.dir/mem/test_bandwidth.cc.o.d"
  "CMakeFiles/test_mem_cpu.dir/mem/test_memory.cc.o"
  "CMakeFiles/test_mem_cpu.dir/mem/test_memory.cc.o.d"
  "test_mem_cpu"
  "test_mem_cpu.pdb"
  "test_mem_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
