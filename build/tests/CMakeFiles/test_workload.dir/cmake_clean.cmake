file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_benchmark.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_benchmark.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_calibration.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_calibration.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_generator.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_generator.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_profile.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_profile.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_stack_sampler.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_stack_sampler.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_trace.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_trace.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
