file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_bandwidth_qos.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_bandwidth_qos.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_cancellation.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_cancellation.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_downgrade.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_downgrade.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_equalpart.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_equalpart.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_framework.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_framework.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_fuzz.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_properties.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_properties.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/test_workload_runs.cc.o"
  "CMakeFiles/test_integration.dir/integration/test_workload_runs.cc.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
