
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/calibration_dump.cc" "tools/CMakeFiles/calibration_dump.dir/calibration_dump.cc.o" "gcc" "tools/CMakeFiles/calibration_dump.dir/calibration_dump.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cmpqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cmpqos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cmpqos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cmpqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cmpqos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmpqos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
