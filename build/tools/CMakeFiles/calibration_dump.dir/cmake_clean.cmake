file(REMOVE_RECURSE
  "CMakeFiles/calibration_dump.dir/calibration_dump.cc.o"
  "CMakeFiles/calibration_dump.dir/calibration_dump.cc.o.d"
  "calibration_dump"
  "calibration_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
