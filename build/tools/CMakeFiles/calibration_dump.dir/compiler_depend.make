# Empty compiler generated dependencies file for calibration_dump.
# This may be replaced when dependencies are built.
