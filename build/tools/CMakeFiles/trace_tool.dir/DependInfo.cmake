
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/trace_tool.cc" "tools/CMakeFiles/trace_tool.dir/trace_tool.cc.o" "gcc" "tools/CMakeFiles/trace_tool.dir/trace_tool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/cmpqos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cmpqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpqos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
