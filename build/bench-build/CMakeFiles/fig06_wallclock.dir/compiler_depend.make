# Empty compiler generated dependencies file for fig06_wallclock.
# This may be replaced when dependencies are built.
