file(REMOVE_RECURSE
  "../bench/fig06_wallclock"
  "../bench/fig06_wallclock.pdb"
  "CMakeFiles/fig06_wallclock.dir/fig06_wallclock.cc.o"
  "CMakeFiles/fig06_wallclock.dir/fig06_wallclock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
