# Empty dependencies file for fig04_sensitivity.
# This may be replaced when dependencies are built.
