file(REMOVE_RECURSE
  "../bench/fig04_sensitivity"
  "../bench/fig04_sensitivity.pdb"
  "CMakeFiles/fig04_sensitivity.dir/fig04_sensitivity.cc.o"
  "CMakeFiles/fig04_sensitivity.dir/fig04_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
