# Empty compiler generated dependencies file for fig08_stealing.
# This may be replaced when dependencies are built.
