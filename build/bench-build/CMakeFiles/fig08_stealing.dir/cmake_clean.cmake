file(REMOVE_RECURSE
  "../bench/fig08_stealing"
  "../bench/fig08_stealing.pdb"
  "CMakeFiles/fig08_stealing.dir/fig08_stealing.cc.o"
  "CMakeFiles/fig08_stealing.dir/fig08_stealing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
