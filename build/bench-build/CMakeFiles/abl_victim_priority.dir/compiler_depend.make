# Empty compiler generated dependencies file for abl_victim_priority.
# This may be replaced when dependencies are built.
