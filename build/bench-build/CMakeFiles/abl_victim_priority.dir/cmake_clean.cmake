file(REMOVE_RECURSE
  "../bench/abl_victim_priority"
  "../bench/abl_victim_priority.pdb"
  "CMakeFiles/abl_victim_priority.dir/abl_victim_priority.cc.o"
  "CMakeFiles/abl_victim_priority.dir/abl_victim_priority.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_victim_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
