# Empty compiler generated dependencies file for ext_bandwidth.
# This may be replaced when dependencies are built.
