file(REMOVE_RECURSE
  "../bench/ext_bandwidth"
  "../bench/ext_bandwidth.pdb"
  "CMakeFiles/ext_bandwidth.dir/ext_bandwidth.cc.o"
  "CMakeFiles/ext_bandwidth.dir/ext_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
