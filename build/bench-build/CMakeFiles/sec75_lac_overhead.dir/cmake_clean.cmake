file(REMOVE_RECURSE
  "../bench/sec75_lac_overhead"
  "../bench/sec75_lac_overhead.pdb"
  "CMakeFiles/sec75_lac_overhead.dir/sec75_lac_overhead.cc.o"
  "CMakeFiles/sec75_lac_overhead.dir/sec75_lac_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec75_lac_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
