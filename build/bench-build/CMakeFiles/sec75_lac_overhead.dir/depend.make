# Empty dependencies file for sec75_lac_overhead.
# This may be replaced when dependencies are built.
