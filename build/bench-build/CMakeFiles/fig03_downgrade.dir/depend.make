# Empty dependencies file for fig03_downgrade.
# This may be replaced when dependencies are built.
