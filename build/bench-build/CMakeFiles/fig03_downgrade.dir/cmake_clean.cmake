file(REMOVE_RECURSE
  "../bench/fig03_downgrade"
  "../bench/fig03_downgrade.pdb"
  "CMakeFiles/fig03_downgrade.dir/fig03_downgrade.cc.o"
  "CMakeFiles/fig03_downgrade.dir/fig03_downgrade.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_downgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
