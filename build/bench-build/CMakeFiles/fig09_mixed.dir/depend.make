# Empty dependencies file for fig09_mixed.
# This may be replaced when dependencies are built.
