file(REMOVE_RECURSE
  "../bench/fig09_mixed"
  "../bench/fig09_mixed.pdb"
  "CMakeFiles/fig09_mixed.dir/fig09_mixed.cc.o"
  "CMakeFiles/fig09_mixed.dir/fig09_mixed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
