# Empty compiler generated dependencies file for abl_partitioning.
# This may be replaced when dependencies are built.
