file(REMOVE_RECURSE
  "../bench/abl_partitioning"
  "../bench/abl_partitioning.pdb"
  "CMakeFiles/abl_partitioning.dir/abl_partitioning.cc.o"
  "CMakeFiles/abl_partitioning.dir/abl_partitioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
