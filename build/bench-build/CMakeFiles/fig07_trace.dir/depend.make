# Empty dependencies file for fig07_trace.
# This may be replaced when dependencies are built.
