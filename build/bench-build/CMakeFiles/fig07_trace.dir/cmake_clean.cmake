file(REMOVE_RECURSE
  "../bench/fig07_trace"
  "../bench/fig07_trace.pdb"
  "CMakeFiles/fig07_trace.dir/fig07_trace.cc.o"
  "CMakeFiles/fig07_trace.dir/fig07_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
