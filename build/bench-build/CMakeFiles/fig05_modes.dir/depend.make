# Empty dependencies file for fig05_modes.
# This may be replaced when dependencies are built.
