file(REMOVE_RECURSE
  "../bench/fig05_modes"
  "../bench/fig05_modes.pdb"
  "CMakeFiles/fig05_modes.dir/fig05_modes.cc.o"
  "CMakeFiles/fig05_modes.dir/fig05_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
