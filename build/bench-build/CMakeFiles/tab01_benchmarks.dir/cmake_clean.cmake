file(REMOVE_RECURSE
  "../bench/tab01_benchmarks"
  "../bench/tab01_benchmarks.pdb"
  "CMakeFiles/tab01_benchmarks.dir/tab01_benchmarks.cc.o"
  "CMakeFiles/tab01_benchmarks.dir/tab01_benchmarks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
