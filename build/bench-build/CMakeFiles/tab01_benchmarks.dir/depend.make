# Empty dependencies file for tab01_benchmarks.
# This may be replaced when dependencies are built.
