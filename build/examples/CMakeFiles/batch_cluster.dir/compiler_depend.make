# Empty compiler generated dependencies file for batch_cluster.
# This may be replaced when dependencies are built.
