file(REMOVE_RECURSE
  "CMakeFiles/batch_cluster.dir/batch_cluster.cc.o"
  "CMakeFiles/batch_cluster.dir/batch_cluster.cc.o.d"
  "batch_cluster"
  "batch_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
