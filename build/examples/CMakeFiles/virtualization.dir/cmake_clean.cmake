file(REMOVE_RECURSE
  "CMakeFiles/virtualization.dir/virtualization.cc.o"
  "CMakeFiles/virtualization.dir/virtualization.cc.o.d"
  "virtualization"
  "virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
