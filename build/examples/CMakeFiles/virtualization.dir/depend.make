# Empty dependencies file for virtualization.
# This may be replaced when dependencies are built.
