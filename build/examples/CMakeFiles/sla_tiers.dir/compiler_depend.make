# Empty compiler generated dependencies file for sla_tiers.
# This may be replaced when dependencies are built.
