file(REMOVE_RECURSE
  "CMakeFiles/sla_tiers.dir/sla_tiers.cc.o"
  "CMakeFiles/sla_tiers.dir/sla_tiers.cc.o.d"
  "sla_tiers"
  "sla_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
