file(REMOVE_RECURSE
  "libcmpqos_common.a"
)
