# Empty compiler generated dependencies file for cmpqos_common.
# This may be replaced when dependencies are built.
