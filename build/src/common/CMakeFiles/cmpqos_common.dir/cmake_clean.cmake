file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_common.dir/logging.cc.o"
  "CMakeFiles/cmpqos_common.dir/logging.cc.o.d"
  "CMakeFiles/cmpqos_common.dir/random.cc.o"
  "CMakeFiles/cmpqos_common.dir/random.cc.o.d"
  "libcmpqos_common.a"
  "libcmpqos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
