# Empty dependencies file for cmpqos_sim.
# This may be replaced when dependencies are built.
