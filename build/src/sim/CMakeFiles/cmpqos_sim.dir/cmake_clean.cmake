file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_sim.dir/cmp_system.cc.o"
  "CMakeFiles/cmpqos_sim.dir/cmp_system.cc.o.d"
  "CMakeFiles/cmpqos_sim.dir/job_exec.cc.o"
  "CMakeFiles/cmpqos_sim.dir/job_exec.cc.o.d"
  "CMakeFiles/cmpqos_sim.dir/report.cc.o"
  "CMakeFiles/cmpqos_sim.dir/report.cc.o.d"
  "CMakeFiles/cmpqos_sim.dir/simulation.cc.o"
  "CMakeFiles/cmpqos_sim.dir/simulation.cc.o.d"
  "libcmpqos_sim.a"
  "libcmpqos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
