file(REMOVE_RECURSE
  "libcmpqos_sim.a"
)
