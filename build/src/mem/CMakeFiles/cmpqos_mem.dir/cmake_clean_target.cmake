file(REMOVE_RECURSE
  "libcmpqos_mem.a"
)
