# Empty compiler generated dependencies file for cmpqos_mem.
# This may be replaced when dependencies are built.
