file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_mem.dir/bandwidth.cc.o"
  "CMakeFiles/cmpqos_mem.dir/bandwidth.cc.o.d"
  "CMakeFiles/cmpqos_mem.dir/memory.cc.o"
  "CMakeFiles/cmpqos_mem.dir/memory.cc.o.d"
  "libcmpqos_mem.a"
  "libcmpqos_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
