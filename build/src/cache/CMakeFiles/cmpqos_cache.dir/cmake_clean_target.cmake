file(REMOVE_RECURSE
  "libcmpqos_cache.a"
)
