file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_cache.dir/cache.cc.o"
  "CMakeFiles/cmpqos_cache.dir/cache.cc.o.d"
  "CMakeFiles/cmpqos_cache.dir/config.cc.o"
  "CMakeFiles/cmpqos_cache.dir/config.cc.o.d"
  "CMakeFiles/cmpqos_cache.dir/duplicate_tags.cc.o"
  "CMakeFiles/cmpqos_cache.dir/duplicate_tags.cc.o.d"
  "CMakeFiles/cmpqos_cache.dir/partition.cc.o"
  "CMakeFiles/cmpqos_cache.dir/partition.cc.o.d"
  "CMakeFiles/cmpqos_cache.dir/partitioned_cache.cc.o"
  "CMakeFiles/cmpqos_cache.dir/partitioned_cache.cc.o.d"
  "libcmpqos_cache.a"
  "libcmpqos_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
