# Empty compiler generated dependencies file for cmpqos_cache.
# This may be replaced when dependencies are built.
