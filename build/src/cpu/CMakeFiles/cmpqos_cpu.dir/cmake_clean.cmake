file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_cpu.dir/core.cc.o"
  "CMakeFiles/cmpqos_cpu.dir/core.cc.o.d"
  "libcmpqos_cpu.a"
  "libcmpqos_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
