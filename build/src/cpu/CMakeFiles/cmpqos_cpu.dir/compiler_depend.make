# Empty compiler generated dependencies file for cmpqos_cpu.
# This may be replaced when dependencies are built.
