file(REMOVE_RECURSE
  "libcmpqos_cpu.a"
)
