# Empty compiler generated dependencies file for cmpqos_workload.
# This may be replaced when dependencies are built.
