file(REMOVE_RECURSE
  "libcmpqos_workload.a"
)
