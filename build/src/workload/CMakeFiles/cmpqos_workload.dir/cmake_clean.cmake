file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_workload.dir/benchmark.cc.o"
  "CMakeFiles/cmpqos_workload.dir/benchmark.cc.o.d"
  "CMakeFiles/cmpqos_workload.dir/generator.cc.o"
  "CMakeFiles/cmpqos_workload.dir/generator.cc.o.d"
  "CMakeFiles/cmpqos_workload.dir/profile.cc.o"
  "CMakeFiles/cmpqos_workload.dir/profile.cc.o.d"
  "CMakeFiles/cmpqos_workload.dir/stack_sampler.cc.o"
  "CMakeFiles/cmpqos_workload.dir/stack_sampler.cc.o.d"
  "CMakeFiles/cmpqos_workload.dir/trace.cc.o"
  "CMakeFiles/cmpqos_workload.dir/trace.cc.o.d"
  "libcmpqos_workload.a"
  "libcmpqos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
