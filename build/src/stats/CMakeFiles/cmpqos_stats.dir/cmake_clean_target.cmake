file(REMOVE_RECURSE
  "libcmpqos_stats.a"
)
