file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_stats.dir/distribution.cc.o"
  "CMakeFiles/cmpqos_stats.dir/distribution.cc.o.d"
  "CMakeFiles/cmpqos_stats.dir/histogram.cc.o"
  "CMakeFiles/cmpqos_stats.dir/histogram.cc.o.d"
  "CMakeFiles/cmpqos_stats.dir/table.cc.o"
  "CMakeFiles/cmpqos_stats.dir/table.cc.o.d"
  "libcmpqos_stats.a"
  "libcmpqos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
