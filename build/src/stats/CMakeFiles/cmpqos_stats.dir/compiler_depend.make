# Empty compiler generated dependencies file for cmpqos_stats.
# This may be replaced when dependencies are built.
