file(REMOVE_RECURSE
  "CMakeFiles/cmpqos_qos.dir/admission.cc.o"
  "CMakeFiles/cmpqos_qos.dir/admission.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/framework.cc.o"
  "CMakeFiles/cmpqos_qos.dir/framework.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/gac.cc.o"
  "CMakeFiles/cmpqos_qos.dir/gac.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/job.cc.o"
  "CMakeFiles/cmpqos_qos.dir/job.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/mode.cc.o"
  "CMakeFiles/cmpqos_qos.dir/mode.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/resource.cc.o"
  "CMakeFiles/cmpqos_qos.dir/resource.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/scheduler.cc.o"
  "CMakeFiles/cmpqos_qos.dir/scheduler.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/server.cc.o"
  "CMakeFiles/cmpqos_qos.dir/server.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/stealing.cc.o"
  "CMakeFiles/cmpqos_qos.dir/stealing.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/target.cc.o"
  "CMakeFiles/cmpqos_qos.dir/target.cc.o.d"
  "CMakeFiles/cmpqos_qos.dir/workload_spec.cc.o"
  "CMakeFiles/cmpqos_qos.dir/workload_spec.cc.o.d"
  "libcmpqos_qos.a"
  "libcmpqos_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpqos_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
