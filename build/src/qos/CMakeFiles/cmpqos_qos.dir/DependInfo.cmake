
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qos/admission.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/admission.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/admission.cc.o.d"
  "/root/repo/src/qos/framework.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/framework.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/framework.cc.o.d"
  "/root/repo/src/qos/gac.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/gac.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/gac.cc.o.d"
  "/root/repo/src/qos/job.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/job.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/job.cc.o.d"
  "/root/repo/src/qos/mode.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/mode.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/mode.cc.o.d"
  "/root/repo/src/qos/resource.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/resource.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/resource.cc.o.d"
  "/root/repo/src/qos/scheduler.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/scheduler.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/scheduler.cc.o.d"
  "/root/repo/src/qos/server.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/server.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/server.cc.o.d"
  "/root/repo/src/qos/stealing.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/stealing.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/stealing.cc.o.d"
  "/root/repo/src/qos/target.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/target.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/target.cc.o.d"
  "/root/repo/src/qos/workload_spec.cc" "src/qos/CMakeFiles/cmpqos_qos.dir/workload_spec.cc.o" "gcc" "src/qos/CMakeFiles/cmpqos_qos.dir/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmpqos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cmpqos_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/cmpqos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cmpqos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmpqos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cmpqos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmpqos_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
