# Empty dependencies file for cmpqos_qos.
# This may be replaced when dependencies are built.
