file(REMOVE_RECURSE
  "libcmpqos_qos.a"
)
