/**
 * @file
 * Figure 5 reproduction: for each single-benchmark 10-job workload
 * (gobmk, hmmer, bzip2) and each Table 2 configuration —
 * (a) the deadline hit rate, and
 * (b) the job throughput (inverse makespan) normalized to All-Strict.
 *
 * Paper reference points: QoS configurations hit 100% of deadlines;
 * EqualPart hits only 50%/10%/20% (gobmk/hmmer/bzip2). EqualPart
 * throughput is +64%/+54%/+25% over All-Strict; Hybrid-1 recovers
 * ~25%; All-Strict+AutoDown recovers +39%/+20%/+13%.
 */

#include <map>

#include "bench/harness.hh"

int
main()
{
    using namespace cmpqos;
    using cmpqos::bench::runSingle;
    using cmpqos::stats::TablePrinter;

    bench::printHeader("Figure 5: deadline hit rate and throughput",
                       "Section 7.1, Figure 5(a)/(b)");

    const ModeConfig configs[] = {
        ModeConfig::AllStrict, ModeConfig::Hybrid1, ModeConfig::Hybrid2,
        ModeConfig::AllStrictAutoDown, ModeConfig::EqualPart};
    const char *benchmarks[] = {"gobmk", "hmmer", "bzip2"};

    TablePrinter hit("(a) deadline hit rate");
    hit.header({"config", "gobmk", "hmmer", "bzip2"});
    TablePrinter thr("(b) throughput normalized to All-Strict");
    thr.header({"config", "gobmk", "hmmer", "bzip2"});

    std::map<std::string, WorkloadResult> bases;
    for (const auto *benchname : benchmarks)
        bases.emplace(benchname,
                      runSingle(ModeConfig::AllStrict, benchname));

    for (const auto config : configs) {
        std::vector<std::string> hit_row{modeConfigName(config)};
        std::vector<std::string> thr_row{modeConfigName(config)};
        for (const auto *benchname : benchmarks) {
            const auto &base = bases.at(benchname);
            const auto r = config == ModeConfig::AllStrict
                               ? base
                               : runSingle(config, benchname);
            const bool qos_only = config != ModeConfig::EqualPart;
            hit_row.push_back(TablePrinter::fmtPercent(
                r.deadlineHitRate(qos_only) * 100.0, 0));
            thr_row.push_back(
                TablePrinter::fmt(r.throughputVs(base), 2));
        }
        hit.row(hit_row);
        thr.row(thr_row);
    }
    hit.print(std::cout);
    std::cout << '\n';
    thr.print(std::cout);

    std::cout
        << "\nPaper shape: 100% hit rate for all QoS configurations;"
           " EqualPart misses\nmost deadlines (50/10/20%). EqualPart"
           " throughput 1.64/1.54/1.25; Hybrid-1 ~1.25;\n"
           "AutoDown 1.39/1.20/1.13. Hybrid-2 tracks Hybrid-1 (the"
           " tenth accepted job is\nStrict and gates the makespan).\n";
    return 0;
}
