/**
 * @file
 * Ablation for Section 4.1: global vs per-set cache partitioning.
 * The paper rejects the global modified-LRU scheme because the
 * per-set distribution of a job's blocks drifts with co-runner
 * behaviour, producing run-to-run miss-rate variation; the per-set
 * scheme converges every set to the target and behaves uniformly.
 *
 * This bench co-schedules bzip2 with different co-runners and seeds
 * under both schemes and reports, per scheme: the spread of bzip2's
 * miss rate across runs and the per-set occupancy spread.
 */

#include "bench/harness.hh"
#include "sim/simulation.hh"

namespace
{

using namespace cmpqos;

struct RunStats
{
    double missRate;
    double occupancySpread;
};

RunStats
runPair(PartitionScheme scheme, const char *co_runner,
        std::uint64_t seed, InstCount instr)
{
    CmpConfig cfg;
    cfg.scheme = scheme;
    cfg.chunkInstructions = 25'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    sys.l2().setTargetWays(0, 7);
    sys.l2().setCoreClass(0, CoreClass::Reserved);
    sys.l2().setTargetWays(1, 7);
    sys.l2().setCoreClass(1, CoreClass::Reserved);

    JobExecution subject(0, BenchmarkRegistry::get("bzip2"), instr,
                         seed);
    JobExecution partner(1, BenchmarkRegistry::get(co_runner),
                         instr * 3, seed + 101);
    sim.startJobOn(0, &subject);
    sim.startJobOn(1, &partner);
    // Stop when the subject finishes.
    sim.setCompletionHandler([&](JobExecution *e) {
        if (e == &subject)
            sim.requestStop();
    });
    sim.run();
    return {subject.missRate(), sys.l2().perSetOccupancySpread(0)};
}

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Ablation: global vs per-set partitioning stability",
        "Section 4.1 (why the paper adopts per-set partitioning)");

    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions() / 4, 5'000'000);
    const char *partners[] = {"gobmk", "mcf", "libquantum", "hmmer"};

    TablePrinter t("bzip2 (7 ways) with varying co-runners and seeds");
    t.header({"scheme", "co-runner", "seed", "bzip2 miss rate",
              "per-set occupancy spread"});

    for (const PartitionScheme scheme :
         {PartitionScheme::Global, PartitionScheme::PerSet}) {
        double mn = 1.0, mx = 0.0;
        for (const char *partner : partners) {
            for (std::uint64_t seed : {11ull, 22ull}) {
                const auto r = runPair(scheme, partner, seed, instr);
                mn = std::min(mn, r.missRate);
                mx = std::max(mx, r.missRate);
                t.row({partitionSchemeName(scheme), partner,
                       std::to_string(seed),
                       TablePrinter::fmtPercent(r.missRate * 100.0, 2),
                       TablePrinter::fmt(r.occupancySpread, 3)});
            }
        }
        t.row({partitionSchemeName(scheme), "=> range", "",
               TablePrinter::fmtPercent((mx - mn) * 100.0, 2), ""});
    }
    t.print(std::cout);

    std::cout << "\nPaper shape: the per-set scheme's miss rate is"
                 " essentially independent of\nthe co-runner (tight"
                 " range, near-zero occupancy spread); the global"
                 " scheme's\nvaries across runs — the motivation for"
                 " adopting per-set partitioning.\n";
    return 0;
}
