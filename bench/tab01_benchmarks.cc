/**
 * @file
 * Table 1 reproduction: the three representative benchmarks' L2 miss
 * rate and L2 misses-per-instruction when allocated 7 of 16 ways,
 * measured by running each synthetic model through the real
 * partitioned L2, next to the paper's reported values.
 */

#include "bench/harness.hh"
#include "sim/simulation.hh"

namespace
{

using namespace cmpqos;

struct Measured
{
    double missRate;
    double mpi;
};

Measured
measure(const BenchmarkProfile &b, unsigned ways, InstCount instr,
        std::uint64_t seed)
{
    CmpConfig cfg;
    cfg.chunkInstructions = 25'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    sys.l2().setTargetWays(0, ways);
    sys.l2().setCoreClass(0, CoreClass::Reserved);

    // Steady-state protocol: pre-fill the job's standing working set
    // (the paper skips init phases and measures post-init windows).
    JobExecution job(0, b, instr, seed);
    job.generator().forEachStandingBlock(
        [&](Addr a) { sys.l2().access(0, a, false); });
    sim.startJobOn(0, &job);
    sim.run();
    return {job.missRate(),
            static_cast<double>(job.l2Misses) /
                static_cast<double>(job.executed())};
}

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Table 1: representative benchmarks at 7 of 16 L2 ways",
        "Section 6, Table 1");

    struct PaperRow
    {
        const char *name;
        double missRate;
        double mpi;
    };
    const PaperRow paper[] = {
        {"bzip2", 0.20, 0.0055},
        {"hmmer", 0.17, 0.0010},
        {"gobmk", 0.24, 0.0040},
    };

    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions(), 10'000'000);

    TablePrinter t("L2 behaviour at 7 ways (measured vs paper)");
    t.header({"benchmark", "input", "miss rate", "paper", "L2 MPI",
              "paper", "skipped(M)"});
    for (const auto &row : paper) {
        const auto &b = BenchmarkRegistry::get(row.name);
        // Fixed L2 access count across benchmarks: scale instructions
        // by 1/h2 so low-h2 benchmarks get equally long measurements.
        const InstCount scaled = static_cast<InstCount>(
            static_cast<double>(instr) * 0.02 / b.h2);
        const Measured m =
            measure(b, 7, scaled, bench::workloadSeed());
        t.row({b.name, b.inputSet,
               TablePrinter::fmtPercent(m.missRate * 100.0, 1),
               TablePrinter::fmtPercent(row.missRate * 100.0, 0),
               TablePrinter::fmt(m.mpi, 4),
               TablePrinter::fmt(row.mpi, 4),
               std::to_string(b.skippedInstrM)});
    }
    t.print(std::cout);
    return 0;
}
