/**
 * @file
 * Figure 4 reproduction: cache-space sensitivity of all fifteen
 * benchmarks — the measured CPI increase when a benchmark's L2
 * allocation shrinks from 7 ways to 1 way (x-axis) and from 7 ways
 * to 4 ways (y-axis), with the resulting Group 1/2/3 classification.
 */

#include "bench/harness.hh"
#include "sim/simulation.hh"

namespace
{

using namespace cmpqos;

/** Measured steady-state CPI of a benchmark alone at @p ways. */
double
measureCpi(const BenchmarkProfile &b, unsigned ways, InstCount instr,
           std::uint64_t seed)
{
    CmpConfig cfg;
    cfg.chunkInstructions = 25'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    sys.l2().setTargetWays(0, ways);
    sys.l2().setCoreClass(0, CoreClass::Reserved);

    // Steady-state protocol: pre-fill the job's standing working set
    // (the paper skips init phases and measures post-init windows).
    JobExecution job(0, b, instr, seed);
    job.generator().forEachStandingBlock(
        [&](Addr a) { sys.l2().access(0, a, false); });
    sim.startJobOn(0, &job);
    sim.run();
    return job.cpi();
}

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Figure 4: benchmark sensitivity to cache capacity",
        "Section 6, Figure 4 (CPI increase 7->1 and 7->4 ways)");

    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions() / 4, 5'000'000);
    const std::uint64_t seed = bench::workloadSeed();

    TablePrinter t("CPI increase when shrinking the L2 allocation");
    t.header({"benchmark", "CPI@7w", "7->1 ways", "7->4 ways",
              "measured group", "declared group"});

    int mismatches = 0;
    for (const auto &b : BenchmarkRegistry::all()) {
        // Fixed L2 access count across benchmarks (see tab01).
        const InstCount scaled = static_cast<InstCount>(
            static_cast<double>(instr) * 0.02 / b.h2);
        const double cpi7 = measureCpi(b, 7, scaled, seed);
        const double cpi4 = measureCpi(b, 4, scaled, seed);
        const double cpi1 = measureCpi(b, 1, scaled, seed);
        const double inc71 = (cpi1 - cpi7) / cpi7;
        const double inc74 = (cpi4 - cpi7) / cpi7;
        const SensitivityGroup measured =
            classifySensitivity(inc71, inc74);
        if (measured != b.group)
            ++mismatches;
        t.row({b.name, TablePrinter::fmt(cpi7, 2),
               TablePrinter::fmtPercent(inc71 * 100.0, 1),
               TablePrinter::fmtPercent(inc74 * 100.0, 1),
               sensitivityGroupName(measured),
               sensitivityGroupName(b.group)});
    }
    t.print(std::cout);
    std::cout << "\nGroup mismatches vs calibration targets: "
              << mismatches << " of "
              << BenchmarkRegistry::all().size() << "\n";
    std::cout << "Paper shape: three clusters — highly sensitive"
                 " (bzip2, mcf, ...),\nmoderately sensitive (hmmer,"
                 " gcc, ...), insensitive (gobmk, milc, ...).\n";
    return mismatches > 2 ? 1 : 0;
}
