/**
 * @file
 * Section 7.5 reproduction: characterization of the Local Admission
 * Controller. The LAC is a user-level program; its modelled cost
 * (per admission test plus per reservation scanned) is accumulated
 * over each workload and reported as occupancy relative to the
 * workload's wall-clock time. The paper reports < 1%, growing
 * proportionally with the submission rate.
 */

#include "bench/harness.hh"

int
main()
{
    using namespace cmpqos;
    using cmpqos::bench::benchFrameworkConfig;
    using cmpqos::stats::TablePrinter;

    bench::printHeader("Section 7.5: LAC overhead characterization",
                       "Section 7.5 (occupancy < 1% of wall-clock)");

    TablePrinter t("LAC occupancy per workload");
    t.header({"workload", "candidates", "accepted", "rejected",
              "LAC cycles", "makespan", "occupancy"});

    for (const char *benchname : {"gobmk", "hmmer", "bzip2"}) {
        QosFramework fw(benchFrameworkConfig(ModeConfig::AllStrict));
        const auto r = fw.runWorkload(makeSingleBenchmarkWorkload(
            ModeConfig::AllStrict, benchname, bench::jobsPerWorkload(),
            bench::jobInstructions(), bench::workloadSeed()));
        t.row({r.workloadName,
               std::to_string(r.candidatesSubmitted),
               std::to_string(r.jobs.size()),
               std::to_string(r.rejected),
               TablePrinter::fmt(
                   static_cast<double>(r.lacOverheadCycles) / 1e6, 2) +
                   "M",
               TablePrinter::fmt(r.makespan / 1e6, 0) + "M",
               TablePrinter::fmtPercent(r.lacOccupancy() * 100.0, 3)});
    }
    t.print(std::cout);

    // Scaling with submission rate: double and quadruple the arrival
    // rate and show occupancy grows roughly proportionally.
    TablePrinter s("occupancy vs submission rate (bzip2)");
    s.header({"arrival rate", "candidates", "occupancy"});
    for (const double mult : {1.0, 2.0, 4.0}) {
        QosFramework fw(benchFrameworkConfig(ModeConfig::AllStrict));
        auto spec = makeSingleBenchmarkWorkload(
            ModeConfig::AllStrict, "bzip2", bench::jobsPerWorkload(),
            bench::jobInstructions(), bench::workloadSeed());
        spec.interArrivalFraction /= mult;
        const auto r = fw.runWorkload(spec);
        s.row({TablePrinter::fmt(mult, 0) + "x",
               std::to_string(r.candidatesSubmitted),
               TablePrinter::fmtPercent(r.lacOccupancy() * 100.0, 3)});
    }
    s.print(std::cout);

    std::cout << "\nPaper shape: occupancy well under 1% of wall-clock"
                 " time, growing\nproportionally with the number of"
                 " submissions probing the LAC.\n";
    return 0;
}
