/**
 * @file
 * Extension bench: off-chip bandwidth partitioning — the RUM
 * dimension the paper defers to future work (Section 3.2) and the
 * gap it notes between its cache-only framework and Virtual Private
 * Caches [15] (the EqualPart configuration explicitly mimics VPC
 * "without bandwidth partitioning").
 *
 * A latency-sensitive mcf holds a 7-way cache reservation while 0-3
 * streaming libquantum jobs hammer the bus. Cache partitioning alone
 * cannot stop them from inflating mcf's miss *latency*; a guaranteed
 * bandwidth share restores it. Besides the table it emits a
 * machine-readable BENCH_bandwidth.json (argv[1] overrides the path).
 */

#include "bench/bench_json.hh"
#include "bench/harness.hh"

namespace
{

using namespace cmpqos;

double
runScenario(int hogs, bool partitioned, InstCount instr)
{
    FrameworkConfig fc;
    fc.cmp.chunkInstructions = 20'000;
    fc.cmp.bandwidthPartitioning = partitioned;
    QosFramework fw(fc);

    JobRequest subject;
    subject.benchmark = "mcf";
    subject.mode = ModeSpec::strict();
    subject.ways = 7;
    subject.bandwidthPercent = partitioned ? 45 : 0;
    subject.deadlineFactor = 4.0;
    Job *job = fw.submitJob(subject, instr);
    if (job == nullptr)
        return -1.0;

    for (int i = 0; i < hogs; ++i) {
        JobRequest hog;
        hog.benchmark = "libquantum";
        hog.mode = ModeSpec::opportunistic();
        hog.deadlineFactor = 8.0;
        fw.submitJob(hog, instr * 2);
    }
    fw.runToCompletion();
    return job->exec()->cpi();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    const std::string json_path =
        bench::benchJsonPath(argc, argv, "bandwidth");

    bench::printHeader(
        "Extension: off-chip bandwidth partitioning",
        "Section 3.2 future work / VPC [15] comparison gap");

    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions() / 4, 4'000'000);

    TablePrinter t("mcf (7-way cache reservation) vs streaming hogs");
    t.header({"co-running hogs", "CPI shared bus",
              "CPI with 45% bandwidth share", "slowdown avoided"});

    bench::BenchJson json("ext_bandwidth");
    json.meta("job_instructions", instr)
        .meta("subject_ways", 7)
        .meta("bandwidth_percent", 45);
    for (int hogs = 0; hogs <= 3; ++hogs) {
        const double shared = runScenario(hogs, false, instr);
        const double insulated = runScenario(hogs, true, instr);
        t.row({std::to_string(hogs), TablePrinter::fmt(shared, 2),
               TablePrinter::fmt(insulated, 2),
               TablePrinter::fmtPercent(
                   (shared / insulated - 1.0) * 100.0, 1)});
        json.addRow()
            .i64("hogs", hogs)
            .f64("cpi_shared", shared, 4)
            .f64("cpi_insulated", insulated, 4)
            .f64("slowdown_avoided_percent",
                 (shared / insulated - 1.0) * 100.0, 1);
    }
    t.print(std::cout);
    if (!json.write(json_path))
        return 1;

    std::cout
        << "\nCache-only QoS (the paper's framework) leaves the"
           " reserved job's miss\nlatency exposed to bus contention;"
           " a guaranteed bandwidth share — the\nextension dimension"
           " in this library's ResourceVector — closes the gap,\n"
           "completing the VPC-style combination of cache + memory"
           " policies.\n";
    return 0;
}
