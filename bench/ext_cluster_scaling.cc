/**
 * @file
 * Extension bench: wall-clock scaling of the parallel cluster engine.
 *
 * Runs the same 8-node open-loop workload (same seed, same arrival
 * stream) at 1, 2, 4 and hardware-concurrency worker threads,
 * reporting wall-clock time, speedup over 1 thread, and the metrics
 * fingerprint — which must be identical at every thread count (the
 * determinism guarantee the tests enforce). Results are recorded in
 * EXPERIMENTS.md; speedup is bounded by the physical cores of the
 * host, so expect ~1.0x on a single-core machine. Besides the table
 * it emits a machine-readable BENCH_cluster_scaling.json (argv[1]
 * overrides the path) so CI can archive a perf trajectory.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hh"
#include "cluster/engine.hh"

using namespace cmpqos;

namespace
{

ClusterMetrics
runOnce(unsigned threads)
{
    ClusterConfig config;
    config.nodes = 8;
    config.threads = threads;
    config.seed = 42;
    config.quantum = 2'000'000;

    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    PoissonArrivalProcess arrivals(250'000.0, mix,
                                   config.seed ^ 0xa11a1ULL, 96);
    ClusterEngine engine(config);
    return engine.runToCompletion(arrivals);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        bench::benchJsonPath(argc, argv, "cluster_scaling");
    std::printf("# ext_cluster_scaling: 8 nodes, 96 Poisson jobs, "
                "seed 42\n");
    std::printf("# hardware concurrency: %u\n\n",
                ThreadPool::hardwareConcurrency());
    std::printf("%-8s %-10s %-9s %-10s %s\n", "threads", "wall_s",
                "speedup", "jobs/s", "deterministic");

    std::vector<unsigned> counts = {1, 2, 4};
    const unsigned hw = ThreadPool::hardwareConcurrency();
    if (hw != 1 && hw != 2 && hw != 4)
        counts.push_back(hw);

    // Warm the solo-CPI calibration memo so the first measured run
    // doesn't pay a one-time cost the later runs skip.
    (void)runOnce(1);

    double base_wall = 0.0;
    std::string base_fp;
    struct Row
    {
        unsigned threads;
        double wallSeconds;
        double jobsPerSecond;
    };
    std::vector<Row> rows;
    for (unsigned t : counts) {
        const ClusterMetrics m = runOnce(t);
        if (t == 1) {
            base_wall = m.wallSeconds;
            base_fp = m.fingerprint();
        }
        const bool same = m.fingerprint() == base_fp;
        std::printf("%-8u %-10.3f %-9.2f %-10.1f %s\n", t,
                    m.wallSeconds,
                    m.wallSeconds > 0.0 ? base_wall / m.wallSeconds
                                        : 0.0,
                    m.jobsPerWallSecond(), same ? "yes" : "NO");
        if (!same) {
            std::printf("fingerprint mismatch at %u threads!\n%s\nvs\n"
                        "%s\n",
                        t, base_fp.c_str(), m.fingerprint().c_str());
            return 1;
        }
        rows.push_back({t, m.wallSeconds, m.jobsPerWallSecond()});
    }

    bench::BenchJson json("ext_cluster_scaling");
    json.meta("nodes", 8).meta("jobs", 96).meta("seed", 42);
    for (const Row &r : rows)
        json.addRow()
            .u64("threads", r.threads)
            .f64("wall_seconds", r.wallSeconds, 6)
            .f64("jobs_per_second", r.jobsPerSecond, 1);
    return json.write(json_path) ? 0 : 1;
}
