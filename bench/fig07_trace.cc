/**
 * @file
 * Figure 7 reproduction: the execution trace of the ten accepted
 * bzip2 jobs under All-Strict versus All-Strict+AutoDown — an ASCII
 * Gantt chart with, per job, acceptance, execution window, deadline,
 * auto-downgrade marking, and the switch-back-to-Strict arrow.
 *
 * Paper reference: All-Strict completes the ten jobs in 3,883M
 * cycles with only two running at a time; AutoDown completes them in
 * 3,451M (-11%) because downgraded jobs start earlier on fragmented
 * resources and reclaimed reservations admit successors sooner.
 */

#include "bench/harness.hh"

namespace
{

using namespace cmpqos;

void
printTrace(const WorkloadResult &r)
{
    using cmpqos::stats::TablePrinter;

    double horizon = r.makespan;
    for (const auto &j : r.jobs)
        horizon = std::max(horizon, static_cast<double>(j.deadline));

    constexpr int width = 72;
    auto col = [&](double t) {
        int c = static_cast<int>(t / horizon * width);
        return std::min(std::max(c, 0), width - 1);
    };

    std::cout << "== " << r.workloadName << " ==\n";
    int ordinal = 0;
    for (const auto &j : r.jobs) {
        ++ordinal;
        std::string line(width, ' ');
        const int a = col(static_cast<double>(j.accept));
        const int s = col(j.startCycle);
        const int e = col(j.endCycle);
        const int d = col(static_cast<double>(j.deadline));
        for (int i = a; i < s; ++i)
            line[i] = '.';                     // accepted, waiting
        for (int i = s; i <= e; ++i)
            line[i] = j.autoDowngraded ? 'o' : '='; // executing
        if (j.autoDowngraded && j.promotedToStrict) {
            const int p = col(static_cast<double>(j.promotionTime));
            for (int i = p; i <= e; ++i)
                line[i] = '#';                 // back in Strict mode
        }
        if (d >= 0 && d < width)
            line[d] = '|';                     // deadline
        std::printf("job%2d %s %s%s\n", ordinal, line.c_str(),
                    j.deadlineMet ? "met " : "MISS",
                    j.autoDowngraded
                        ? (j.promotedToStrict ? " (down,switched back)"
                                              : " (down,finished early)")
                        : "");
    }
    std::cout << "legend: . waiting  = strict run  o opportunistic run"
                 "  # switched back to strict  | deadline\n"
              << "makespan: "
              << cmpqos::stats::TablePrinter::fmt(r.makespan / 1e6, 0)
              << "M cycles\n\n";
}

} // namespace

int
main()
{
    using cmpqos::bench::runSingle;

    bench::printHeader(
        "Figure 7: execution trace, All-Strict vs All-Strict+AutoDown",
        "Section 7.2, Figure 7 (paper: 3,883M vs 3,451M cycles)");

    const auto strict = runSingle(ModeConfig::AllStrict, "bzip2");
    const auto autod = runSingle(ModeConfig::AllStrictAutoDown, "bzip2");

    printTrace(strict);
    printTrace(autod);

    int downgraded = 0, switched = 0;
    for (const auto &j : autod.jobs) {
        downgraded += j.autoDowngraded;
        switched += j.autoDowngraded && j.promotedToStrict;
    }
    std::cout << "AutoDown: " << downgraded << " of " << autod.jobs.size()
              << " jobs auto-downgraded; " << switched
              << " needed the switch back to Strict.\n"
              << "Makespan improvement: "
              << cmpqos::stats::TablePrinter::fmtPercent(
                     (strict.makespan / autod.makespan - 1.0) * 100.0, 1)
              << " (paper: ~12.5%)\n";
    return 0;
}
