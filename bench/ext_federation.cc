/**
 * @file
 * Extension bench: throughput of the federated (multi-shard) engine.
 *
 * Runs the same 8-node open-loop workload single-process first (the
 * fingerprint baseline), then federated at {2,4} shards x {1,4}
 * threads over both transports, reporting wall-clock time, jobs/sec
 * and whether each configuration reproduced the baseline fingerprint
 * byte-for-byte (the determinism contract; any mismatch fails the
 * bench). Besides the human-readable table it emits a
 * machine-readable BENCH_federation.json (argv[1] overrides the
 * path) so CI can archive a perf trajectory — see ROADMAP item 3.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "federation/federated_engine.hh"

using namespace cmpqos;

namespace
{

constexpr int kNodes = 8;
constexpr int kJobs = 96;
constexpr std::uint64_t kSeed = 42;

ClusterConfig
baseConfig(unsigned threads)
{
    ClusterConfig config;
    config.nodes = kNodes;
    config.threads = threads;
    config.seed = kSeed;
    config.quantum = 2'000'000;
    return config;
}

PoissonArrivalProcess
makeArrivals()
{
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    return PoissonArrivalProcess(250'000.0, mix, kSeed ^ 0xa11a1ULL,
                                 kJobs);
}

struct Row
{
    int shards;
    unsigned threads;
    const char *transport;
    double wallSeconds;
    double jobsPerSecond;
    bool match;
};

ClusterMetrics
runSingle(unsigned threads)
{
    PoissonArrivalProcess arrivals = makeArrivals();
    ClusterEngine engine(baseConfig(threads));
    return engine.runToCompletion(arrivals);
}

ClusterMetrics
runFederated(int shards, unsigned threads, FedTransport transport)
{
    PoissonArrivalProcess arrivals = makeArrivals();
    FederationConfig fed;
    fed.shards = shards;
    fed.transport = transport;
    FederatedEngine engine(baseConfig(threads), fed);
    return engine.runToCompletion(arrivals);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_federation.json";

    std::printf("# ext_federation: %d nodes, %d Poisson jobs, seed "
                "%llu\n\n",
                kNodes, kJobs,
                static_cast<unsigned long long>(kSeed));
    std::printf("%-8s %-8s %-10s %-10s %-10s %s\n", "shards",
                "threads", "transport", "wall_s", "jobs/s",
                "deterministic");

    // Warm the solo-CPI calibration memo so the first measured run
    // doesn't pay a one-time cost the later runs skip.
    (void)runSingle(1);

    std::vector<Row> rows;
    const ClusterMetrics base = runSingle(1);
    const std::string base_fp = base.fingerprint();
    rows.push_back({1, 1, "single-process", base.wallSeconds,
                    base.jobsPerWallSecond(), true});

    bool ok = true;
    for (int shards : {2, 4}) {
        for (unsigned threads : {1u, 4u}) {
            for (FedTransport transport :
                 {FedTransport::Inproc, FedTransport::Uds}) {
                const ClusterMetrics m =
                    runFederated(shards, threads, transport);
                const bool match = m.fingerprint() == base_fp;
                ok = ok && match;
                rows.push_back({shards, threads,
                                fedTransportName(transport),
                                m.wallSeconds, m.jobsPerWallSecond(),
                                match});
            }
        }
    }

    for (const Row &r : rows)
        std::printf("%-8d %-8u %-10s %-10.3f %-10.1f %s\n", r.shards,
                    r.threads, r.transport, r.wallSeconds,
                    r.jobsPerSecond, r.match ? "yes" : "NO");

    std::FILE *out = std::fopen(json_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ext_federation\",\n"
                 "  \"git_hash\": \"%s\",\n"
                 "  \"nodes\": %d,\n"
                 "  \"jobs\": %d,\n"
                 "  \"seed\": %llu,\n"
                 "  \"configs\": [\n",
                 buildInfo().gitHash, kNodes, kJobs,
                 static_cast<unsigned long long>(kSeed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(out,
                     "    {\"shards\": %d, \"threads\": %u, "
                     "\"transport\": \"%s\", \"wall_seconds\": %.6f, "
                     "\"jobs_per_second\": %.1f, "
                     "\"fingerprint_match\": %s}%s\n",
                     r.shards, r.threads, r.transport, r.wallSeconds,
                     r.jobsPerSecond, r.match ? "true" : "false",
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());

    if (!ok) {
        std::printf("fingerprint mismatch against the single-process "
                    "baseline!\n");
        return 1;
    }
    return 0;
}
