/**
 * @file
 * Extension bench: throughput of the federated (multi-shard) engine.
 *
 * Runs the same 8-node open-loop workload single-process first (the
 * fingerprint baseline), then federated at {2,4} shards x {1,4}
 * threads over both transports, reporting wall-clock time, jobs/sec
 * and whether each configuration reproduced the baseline fingerprint
 * byte-for-byte (the determinism contract; any mismatch fails the
 * bench). Besides the human-readable table it emits a
 * machine-readable BENCH_federation.json (argv[1] overrides the
 * path) so CI can archive a perf trajectory — see ROADMAP item 3.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hh"
#include "federation/federated_engine.hh"

using namespace cmpqos;

namespace
{

constexpr int kNodes = 8;
constexpr int kJobs = 96;
constexpr std::uint64_t kSeed = 42;

ClusterConfig
baseConfig(unsigned threads)
{
    ClusterConfig config;
    config.nodes = kNodes;
    config.threads = threads;
    config.seed = kSeed;
    config.quantum = 2'000'000;
    return config;
}

PoissonArrivalProcess
makeArrivals()
{
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    return PoissonArrivalProcess(250'000.0, mix, kSeed ^ 0xa11a1ULL,
                                 kJobs);
}

struct Row
{
    int shards;
    unsigned threads;
    const char *transport;
    double wallSeconds;
    double jobsPerSecond;
    bool match;
};

ClusterMetrics
runSingle(unsigned threads)
{
    PoissonArrivalProcess arrivals = makeArrivals();
    ClusterEngine engine(baseConfig(threads));
    return engine.runToCompletion(arrivals);
}

ClusterMetrics
runFederated(int shards, unsigned threads, FedTransport transport)
{
    PoissonArrivalProcess arrivals = makeArrivals();
    FederationConfig fed;
    fed.shards = shards;
    fed.transport = transport;
    FederatedEngine engine(baseConfig(threads), fed);
    return engine.runToCompletion(arrivals);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        bench::benchJsonPath(argc, argv, "federation");

    std::printf("# ext_federation: %d nodes, %d Poisson jobs, seed "
                "%llu\n\n",
                kNodes, kJobs,
                static_cast<unsigned long long>(kSeed));
    std::printf("%-8s %-8s %-10s %-10s %-10s %s\n", "shards",
                "threads", "transport", "wall_s", "jobs/s",
                "deterministic");

    // Warm the solo-CPI calibration memo so the first measured run
    // doesn't pay a one-time cost the later runs skip.
    (void)runSingle(1);

    std::vector<Row> rows;
    const ClusterMetrics base = runSingle(1);
    const std::string base_fp = base.fingerprint();
    rows.push_back({1, 1, "single-process", base.wallSeconds,
                    base.jobsPerWallSecond(), true});

    bool ok = true;
    for (int shards : {2, 4}) {
        for (unsigned threads : {1u, 4u}) {
            for (FedTransport transport :
                 {FedTransport::Inproc, FedTransport::Uds}) {
                const ClusterMetrics m =
                    runFederated(shards, threads, transport);
                const bool match = m.fingerprint() == base_fp;
                ok = ok && match;
                rows.push_back({shards, threads,
                                fedTransportName(transport),
                                m.wallSeconds, m.jobsPerWallSecond(),
                                match});
            }
        }
    }

    for (const Row &r : rows)
        std::printf("%-8d %-8u %-10s %-10.3f %-10.1f %s\n", r.shards,
                    r.threads, r.transport, r.wallSeconds,
                    r.jobsPerSecond, r.match ? "yes" : "NO");

    bench::BenchJson json("ext_federation");
    json.meta("nodes", kNodes).meta("jobs", kJobs).meta("seed", kSeed);
    for (const Row &r : rows)
        json.addRow()
            .i64("shards", r.shards)
            .u64("threads", r.threads)
            .str("transport", r.transport)
            .f64("wall_seconds", r.wallSeconds, 6)
            .f64("jobs_per_second", r.jobsPerSecond, 1)
            .boolean("fingerprint_match", r.match);
    if (!json.write(json_path))
        return 1;

    if (!ok) {
        std::printf("fingerprint mismatch against the single-process "
                    "baseline!\n");
        return 1;
    }
    return 0;
}
