/**
 * @file
 * Extension bench: feedback-controlled colocation vs static
 * overprovisioning (DESIGN.md §14, ROADMAP item 4).
 *
 * A latency-critical Gold tier can be protected two ways. The static
 * answer overprovisions its reservation (12 of 16 ways) so the worst
 * quantum still makes the deadline — and starves co-located batch
 * work at admission. The controlled answer admits Gold at its
 * measured floor (6 ways) and lets the quantum-barrier controller
 * grant ways / restore frequency only when measured slack actually
 * runs low. Three runs on the same 8-node, 96-job arrival stream:
 *
 *   static-12way    Gold asks 12 ways, controller off (overprovision)
 *   static-6way     Gold asks 6 ways, controller off (floor only)
 *   controlled-6way Gold asks 6 ways, controller on
 *
 * The acceptance bar (ISSUE 10): controlled-6way keeps the Gold
 * deadline hit rate at least at static-12way's level while
 * completing more batch (Silver + Bronze) jobs. Results go in
 * EXPERIMENTS.md; a machine-readable BENCH_colocation.json (argv[1]
 * overrides the path) rides along for CI archiving.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hh"
#include "cluster/engine.hh"

using namespace cmpqos;

namespace
{

constexpr int kNodes = 8;
constexpr std::uint64_t kJobs = 144;
constexpr std::uint64_t kSeed = 42;

struct Scenario
{
    const char *name;
    unsigned goldWays;
    bool controlled;
};

ArrivalMix
colocationMix(unsigned gold_ways)
{
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    mix.tiers[static_cast<std::size_t>(QosTier::Gold)].ways =
        gold_ways;
    return mix;
}

ClusterMetrics
runScenario(const Scenario &s)
{
    ClusterConfig config;
    config.nodes = kNodes;
    config.threads = 4;
    config.seed = kSeed;
    config.quantum = 2'000'000;
    config.control.enabled = s.controlled;

    PoissonArrivalProcess arrivals(500'000.0,
                                   colocationMix(s.goldWays),
                                   kSeed ^ 0xa11a1ULL, kJobs);
    ClusterEngine engine(config);
    return engine.runToCompletion(arrivals);
}

std::uint64_t
batchCompleted(const ClusterMetrics &m)
{
    const ModeTally &elastic =
        m.byMode[static_cast<std::size_t>(ExecutionMode::Elastic)];
    const ModeTally &opportunistic =
        m.byMode[static_cast<std::size_t>(
            ExecutionMode::Opportunistic)];
    return elastic.completed + opportunistic.completed;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        bench::benchJsonPath(argc, argv, "colocation");

    std::printf("# ext_colocation: %d nodes, %llu Poisson jobs, seed "
                "%llu; Gold = latency-critical tier\n\n",
                kNodes, static_cast<unsigned long long>(kJobs),
                static_cast<unsigned long long>(kSeed));
    std::printf("%-16s %-6s %-9s %-9s %-10s %-9s %-8s %s\n",
                "scenario", "ways", "acc/sub", "gold_hit",
                "batch/Gcyc", "energy", "retunes", "notes");

    const Scenario scenarios[] = {
        {"static-12way", 12, false},
        {"static-6way", 6, false},
        {"controlled-6way", 6, true},
    };

    // Warm the solo-CPI calibration memo so the first measured run
    // doesn't pay a one-time cost the later runs skip.
    (void)runScenario(scenarios[0]);

    bench::BenchJson json("ext_colocation");
    json.meta("nodes", kNodes).meta("jobs", kJobs).meta("seed", kSeed);

    double static_gold_hit = 0.0;
    double static_batch_rate = 0.0;
    int rc = 0;
    for (const Scenario &s : scenarios) {
        const ClusterMetrics m = runScenario(s);
        const ModeTally &strict =
            m.byMode[static_cast<std::size_t>(ExecutionMode::Strict)];
        const double gold_hit =
            strict.hasHitRate() ? strict.hitRate() : 0.0;
        const std::uint64_t batch = batchCompleted(m);
        const double batch_rate =
            m.virtualTime > 0
                ? 1e9 * static_cast<double>(batch) /
                      static_cast<double>(m.virtualTime)
                : 0.0;

        char acc[24];
        std::snprintf(acc, sizeof(acc), "%llu/%llu",
                      static_cast<unsigned long long>(m.accepted),
                      static_cast<unsigned long long>(m.submitted));
        std::printf("%-16s %-6u %-9s %-9.3f %-10.1f %-9.0f %-8llu "
                    "%s\n",
                    s.name, s.goldWays, acc, gold_hit, batch_rate,
                    m.energy,
                    static_cast<unsigned long long>(
                        m.control.retunes),
                    s.controlled ? "feedback on" : "");

        if (std::string(s.name) == "static-12way") {
            static_gold_hit = gold_hit;
            static_batch_rate = batch_rate;
        }
        if (s.controlled) {
            if (gold_hit + 1e-12 < static_gold_hit) {
                std::printf("UNEXPECTED: controller lost the Gold "
                            "SLO (%.3f < %.3f)\n",
                            gold_hit, static_gold_hit);
                rc = 1;
            }
            if (batch_rate <= static_batch_rate) {
                std::printf("UNEXPECTED: controlled batch throughput "
                            "%.1f/Gcycle did not beat static "
                            "%.1f/Gcycle\n",
                            batch_rate, static_batch_rate);
                rc = 1;
            }
            if (m.control.retunes == 0) {
                std::printf("UNEXPECTED: the controller never "
                            "actuated\n");
                rc = 1;
            }
        }

        json.addRow()
            .str("scenario", s.name)
            .u64("gold_ways", s.goldWays)
            .boolean("controlled", s.controlled)
            .u64("submitted", m.submitted)
            .u64("accepted", m.accepted)
            .u64("completed", m.completed)
            .f64("gold_hit_rate", gold_hit, 4)
            .u64("batch_completed", batch)
            .f64("batch_per_gigacycle", batch_rate, 2)
            .u64("virtual_time", m.virtualTime)
            .f64("energy", m.energy, 0)
            .u64("retunes", m.control.retunes)
            .f64("wall_seconds", m.wallSeconds, 6);
    }
    if (!json.write(json_path))
        rc = 1;
    return rc;
}
