/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * partitioned-L2 access path, the duplicate tag array, the
 * stack-distance sampler, and the LAC admission test — the hot paths
 * of the simulator and framework.
 */

#include <benchmark/benchmark.h>

#include "cache/duplicate_tags.hh"
#include "cache/partitioned_cache.hh"
#include "common/random.hh"
#include "qos/admission.hh"
#include "workload/benchmark.hh"
#include "workload/generator.hh"

namespace
{

using namespace cmpqos;

void
BM_PartitionedCacheAccess(benchmark::State &state)
{
    PartitionedCache l2(CacheConfig::l2Default(), 4,
                        static_cast<PartitionScheme>(state.range(0)));
    l2.setTargetWays(0, 7);
    l2.setCoreClass(0, CoreClass::Reserved);
    Rng rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const Addr addr = (rng.next() & 0xffffff) << 6;
        sink += l2.access(0, addr, false).hit;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionedCacheAccess)
    ->Arg(static_cast<int>(PartitionScheme::None))
    ->Arg(static_cast<int>(PartitionScheme::Global))
    ->Arg(static_cast<int>(PartitionScheme::PerSet));

void
BM_DuplicateTagObserve(benchmark::State &state)
{
    DuplicateTagArray dup(CacheConfig::l2Default(), 7,
                          static_cast<unsigned>(state.range(0)));
    Rng rng(2);
    for (auto _ : state) {
        const Addr addr = (rng.next() & 0xffffff) << 6;
        benchmark::DoNotOptimize(dup.observe(addr, true));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DuplicateTagObserve)->Arg(1)->Arg(8);

void
BM_StackSamplerAccess(benchmark::State &state)
{
    LruStackSampler stack;
    Rng rng(3);
    // Populate.
    for (int i = 0; i < 50'000; ++i)
        stack.accessNew();
    for (auto _ : state) {
        const std::uint64_t d = 1 + rng.uniformInt(40'000);
        benchmark::DoNotOptimize(stack.accessAtDistance(d));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StackSamplerAccess);

void
BM_GeneratorRun(benchmark::State &state)
{
    const auto &b = BenchmarkRegistry::get("bzip2");
    AccessGenerator gen(b, 4, 0);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        gen.run(1000, [&](Addr a, bool) { sink += a; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
    state.SetLabel("items = instructions");
}
BENCHMARK(BM_GeneratorRun);

void
BM_LacAdmissionTest(benchmark::State &state)
{
    LocalAdmissionController lac;
    // Pre-load the timeline with reservations to scan.
    const int preload = static_cast<int>(state.range(0));
    for (int i = 0; i < preload; ++i) {
        QosTarget t;
        t.cores = 1;
        t.cacheWays = 7;
        t.maxWallClock = 1000;
        t.relativeDeadline = 100'000'000;
        Job j(i, "bzip2", 1, t, ModeSpec::strict());
        lac.submit(j, 0);
    }
    QosTarget t;
    t.cores = 1;
    t.cacheWays = 7;
    t.maxWallClock = 1000;
    t.relativeDeadline = 2000;
    Job probe_job(preload + 1, "bzip2", 1, t, ModeSpec::strict());
    for (auto _ : state)
        benchmark::DoNotOptimize(lac.probe(probe_job, 0));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LacAdmissionTest)->Arg(2)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
