/**
 * @file
 * Figure 3 reproduction: the manual mode-downgrade illustration.
 * Six jobs are submitted back-to-back; each requests ~40% of the
 * shared cache (7 of 16 ways) and has a deadline 1.5T after
 * acceptance, where T is its Strict-mode execution time.
 *
 *  (a) all six Strict           -> two at a time, ~3T total
 *  (b) jobs 3 and 6 Opportunistic -> more parallelism, ~2.5T total
 *  (c) plus jobs 2 and 5 Elastic(X) -> resource stealing feeds the
 *      Opportunistic jobs, finishing earlier still
 *
 * The bench runs all three scenarios through the real framework and
 * prints each job's start/completion (in units of T) plus the total.
 */

#include <algorithm>
#include <array>

#include "bench/harness.hh"

namespace
{

using namespace cmpqos;

struct Scenario
{
    const char *name;
    std::array<ModeSpec, 6> modes;
};

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader("Figure 3: impact of manual mode downgrade",
                       "Section 3.4, Figure 3 (a)-(c)");

    // A moderately cache-hungry synthetic job: ~40% of the cache
    // gives it its full speed (the figure's abstract 'job').
    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions() / 6, 3'000'000);

    const Scenario scenarios[] = {
        {"(a) all Strict",
         {ModeSpec::strict(), ModeSpec::strict(), ModeSpec::strict(),
          ModeSpec::strict(), ModeSpec::strict(), ModeSpec::strict()}},
        {"(b) 3,6 Opportunistic",
         {ModeSpec::strict(), ModeSpec::strict(),
          ModeSpec::opportunistic(), ModeSpec::strict(),
          ModeSpec::strict(), ModeSpec::opportunistic()}},
        {"(c) 2,5 Elastic(20%), 3,6 Opportunistic",
         {ModeSpec::strict(), ModeSpec::elastic(0.20),
          ModeSpec::opportunistic(), ModeSpec::strict(),
          ModeSpec::elastic(0.20), ModeSpec::opportunistic()}},
    };

    double t_unit = 0.0; // strict-mode execution time, measured in (a)

    for (const auto &sc : scenarios) {
        FrameworkConfig fc;
        fc.stealing.intervalInstructions =
            std::max<InstCount>(instr / 60, 50'000);
        QosFramework fw(fc);

        // The figure's jobs are submitted sequentially: Strict pairs
        // arrive as capacity frees (at ~0, T, 2T), Opportunistic jobs
        // arrive up front and soak up the fragmented resources.
        const Cycle t_estimate =
            fw.maxWallClockFor(
                [] {
                    JobRequest r;
                    r.benchmark = "soplex";
                    return r;
                }(),
                instr);
        std::vector<Job *> jobs;
        int strict_seen = 0;
        for (int i = 0; i < 6; ++i) {
            JobRequest r;
            r.benchmark = "soplex"; // hungry enough to need its ways
            r.mode = sc.modes[static_cast<std::size_t>(i)];
            // The figure's deadline is 1.5T; jobs users downgrade to
            // Opportunistic are ones "whose deadlines are still far
            // away" (Section 3.3) — they trade the guarantee away.
            r.deadlineFactor =
                r.mode.mode == ExecutionMode::Opportunistic ? 3.0
                                                            : 1.5;
            Cycle when = 0;
            if (r.mode.mode != ExecutionMode::Opportunistic) {
                when = static_cast<Cycle>(strict_seen / 2) *
                       (t_estimate * 95 / 100);
                ++strict_seen;
            }
            fw.simulation().schedule(when, [&fw, r, instr, &jobs]() {
                Job *j = fw.submitJob(r, instr);
                if (j != nullptr)
                    jobs.push_back(j);
            });
        }
        fw.runToCompletion();
        std::sort(jobs.begin(), jobs.end(),
                  [](const Job *a, const Job *b) {
                      return a->id() < b->id();
                  });

        if (t_unit == 0.0 && !jobs.empty())
            t_unit = jobs[0]->wallClock(); // T from scenario (a)

        TablePrinter t(sc.name);
        t.header({"job", "mode", "start(T)", "end(T)", "wallclk(T)",
                  "deadline met"});
        double total = 0.0;
        for (Job *j : jobs) {
            total = std::max(total, j->exec()->endCycle);
            t.row({std::to_string(j->id() + 1),
                   executionModeName(j->mode().mode),
                   TablePrinter::fmt(j->exec()->startCycle / t_unit, 2),
                   TablePrinter::fmt(j->exec()->endCycle / t_unit, 2),
                   TablePrinter::fmt(j->wallClock() / t_unit, 2),
                   j->deadlineMet() ? "yes" : "NO"});
        }
        t.print(std::cout);
        std::cout << "accepted jobs: " << jobs.size() << " of 6"
                  << ", all complete at "
                  << TablePrinter::fmt(total / t_unit, 2) << " T\n\n";
    }

    std::cout << "Paper shape: (a) completes ~3T with only two jobs at"
                 " a time; (b) ~2.5T\nbecause Opportunistic jobs use"
                 " the fragmented resources; in (c) resource\nstealing"
                 " from the Elastic jobs speeds the Opportunistic jobs"
                 " up further\n(the makespan itself stays gated by the"
                 " last reserved pair).\n";
    return 0;
}
