/**
 * @file
 * Figure 6 reproduction: average / min / max wall-clock time of jobs
 * per execution mode in every configuration, for the bzip2
 * single-benchmark workload.
 *
 * Paper shape: Strict jobs have short, almost-constant wall-clock
 * times under reservation; Elastic(X) runs slightly longer (stolen
 * capacity) with little variation; Opportunistic jobs have higher
 * mean and spread; AutoDowngraded Strict jobs trade a larger mean
 * and spread for throughput while still meeting deadlines; EqualPart
 * suffers a high mean AND spread from time-sharing without admission
 * control.
 */

#include "bench/harness.hh"

namespace
{

using namespace cmpqos;
using cmpqos::stats::TablePrinter;

void
summarize(TablePrinter &t, const char *config, const char *mode_label,
          const std::vector<double> &wcs, double norm)
{
    if (wcs.empty())
        return;
    double mn = wcs[0], mx = wcs[0], sum = 0.0;
    for (double v : wcs) {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sum += v;
    }
    const double avg = sum / static_cast<double>(wcs.size());
    t.row({config, mode_label, std::to_string(wcs.size()),
           TablePrinter::fmt(avg / norm, 2),
           TablePrinter::fmt(mn / norm, 2),
           TablePrinter::fmt(mx / norm, 2),
           TablePrinter::fmtPercent((mx - mn) / avg * 100.0, 0)});
}

} // namespace

int
main()
{
    using cmpqos::bench::runSingle;

    bench::printHeader(
        "Figure 6: wall-clock time per mode and configuration (bzip2)",
        "Section 7.1, Figure 6 (candles = min/avg/max)");

    const ModeConfig configs[] = {
        ModeConfig::AllStrict, ModeConfig::Hybrid1, ModeConfig::Hybrid2,
        ModeConfig::AllStrictAutoDown, ModeConfig::EqualPart};

    // Normalize to the All-Strict Strict-job mean.
    const auto base = runSingle(ModeConfig::AllStrict, "bzip2");
    const auto base_wcs = base.wallClocks(ExecutionMode::Strict);
    double norm = 0.0;
    for (double v : base_wcs)
        norm += v;
    norm /= static_cast<double>(base_wcs.size());

    TablePrinter t("wall-clock times (normalized to All-Strict mean)");
    t.header({"config", "mode", "jobs", "avg", "min", "max", "spread"});

    for (const auto config : configs) {
        const auto r = runSingle(config, "bzip2");
        // Split Strict jobs into reserved-run and auto-downgraded.
        std::vector<double> strict, autod, elastic, opp;
        for (const auto &j : r.jobs) {
            switch (j.mode) {
              case ExecutionMode::Strict:
                (j.autoDowngraded ? autod : strict)
                    .push_back(j.wallClock);
                break;
              case ExecutionMode::Elastic:
                elastic.push_back(j.wallClock);
                break;
              case ExecutionMode::Opportunistic:
                opp.push_back(j.wallClock);
                break;
            }
        }
        const char *name = modeConfigName(config);
        summarize(t, name, "Strict", strict, norm);
        summarize(t, name, "Strict(autodown)", autod, norm);
        summarize(t, name, "Elastic(5%)", elastic, norm);
        summarize(t, name, "Opportunistic", opp, norm);
    }
    t.print(std::cout);

    std::cout << "\nPaper shape: Strict ~1.0 with tiny spread;"
                 " Elastic slightly above 1.0;\nOpportunistic higher"
                 " mean+spread (lower in Hybrid-2 than Hybrid-1 thanks"
                 " to\nstolen capacity); AutoDown and EqualPart have"
                 " the largest means and spreads.\n";
    return 0;
}
