/**
 * @file
 * Extension bench: what event tracing costs the cluster engine.
 *
 * Runs the same 8-node open-loop workload four ways — no collector
 * attached (baseline), collector attached but runtime-disabled,
 * enabled with default-size rings, and enabled with deliberately
 * saturated (tiny) rings — reporting wall-clock, throughput delta vs
 * baseline, and the capture's delivered/dropped event counts. The
 * PR's acceptance bar: the disabled path stays within ~2% of
 * baseline, and a saturated ring sheds events instead of blocking a
 * worker (the fingerprint must match the baseline in every regime).
 * Results are recorded in EXPERIMENTS.md; a machine-readable
 * BENCH_telemetry_overhead.json (argv[1] overrides the path) rides
 * along for CI archiving.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_json.hh"
#include "cluster/engine.hh"
#include "telemetry/collector.hh"

using namespace cmpqos;

namespace
{

/** Discards events: measures capture cost without export I/O. */
struct NullSink : public TraceSink
{
    void consume(const TraceEvent &) override {}
    void close(const TraceMeta &) override {}
};

enum class Regime
{
    NoCollector,
    Disabled,
    Enabled,
    Saturated,
};

struct Result
{
    double wall = 0.0;
    double jobsPerSec = 0.0;
    std::uint64_t events = 0;
    std::uint64_t drops = 0;
    std::string fingerprint;
};

Result
runOnce(Regime regime)
{
    ClusterConfig config;
    config.nodes = 8;
    config.threads = 4;
    config.seed = 42;
    config.quantum = 2'000'000;

    TelemetryConfig tc;
    tc.enabled = regime != Regime::Disabled;
    if (regime == Regime::Saturated)
        tc.ringCapacity = 16;
    TraceCollector collector(config.nodes + 1, tc);
    NullSink sink;
    collector.addSink(&sink);
    if (regime != Regime::NoCollector)
        config.telemetry = &collector;

    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    PoissonArrivalProcess arrivals(250'000.0, mix,
                                   config.seed ^ 0xa11a1ULL, 96);
    ClusterEngine engine(config);
    const ClusterMetrics m = engine.runToCompletion(arrivals);

    Result r;
    r.wall = m.wallSeconds;
    r.jobsPerSec = m.jobsPerWallSecond();
    r.events = collector.eventsDelivered();
    r.drops = collector.totalDrops();
    r.fingerprint = m.fingerprint();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        bench::benchJsonPath(argc, argv, "telemetry_overhead");
    constexpr int kReps = 5;
    std::printf("# ext_telemetry_overhead: 8 nodes, 4 threads, 96 "
                "Poisson jobs, seed 42, best of %d interleaved\n",
                kReps);
    std::printf("# telemetry compiled %s\n\n",
                telemetryCompiledIn ? "in" : "out");

    // Warm the solo-CPI calibration memo first.
    (void)runOnce(Regime::NoCollector);

    struct Row
    {
        const char *name;
        Regime regime;
        Result best;
    };
    Row regimes[] = {
        {"no-collector", Regime::NoCollector, {}},
        {"disabled", Regime::Disabled, {}},
        {"enabled", Regime::Enabled, {}},
        {"saturated-16", Regime::Saturated, {}},
    };

    // Interleave the regimes so host-load drift hits all of them
    // equally instead of biasing whichever ran first.
    for (int rep = 0; rep < kReps; ++rep) {
        for (Row &row : regimes) {
            const Result r = runOnce(row.regime);
            if (rep == 0 || r.wall < row.best.wall)
                row.best = r;
        }
    }

    std::printf("%-14s %-10s %-10s %-9s %-9s %-8s %s\n", "regime",
                "wall_s", "jobs/s", "delta", "events", "drops",
                "deterministic");
    const double base_wall = regimes[0].best.wall;
    const std::string base_fp = regimes[0].best.fingerprint;
    bench::BenchJson json("ext_telemetry_overhead");
    json.meta("nodes", 8).meta("jobs", 96).meta("seed", 42).meta(
        "reps", kReps);
    bool ok = true;
    for (const Row &row : regimes) {
        const Result &r = row.best;
        const bool same = r.fingerprint == base_fp;
        ok = ok && same;
        char delta[16];
        std::snprintf(delta, sizeof(delta), "%+.1f%%",
                      base_wall > 0.0
                          ? 100.0 * (r.wall - base_wall) / base_wall
                          : 0.0);
        std::printf("%-14s %-10.3f %-10.1f %-9s %-9llu %-8llu %s\n",
                    row.name, r.wall, r.jobsPerSec, delta,
                    static_cast<unsigned long long>(r.events),
                    static_cast<unsigned long long>(r.drops),
                    same ? "yes" : "NO");
        json.addRow()
            .str("regime", row.name)
            .f64("wall_seconds", r.wall, 6)
            .f64("jobs_per_second", r.jobsPerSec, 1)
            .f64("delta_percent",
                 base_wall > 0.0
                     ? 100.0 * (r.wall - base_wall) / base_wall
                     : 0.0,
                 1)
            .u64("events", r.events)
            .u64("drops", r.drops)
            .boolean("deterministic", same);
    }
    if (!json.write(json_path))
        return 1;
    if (!ok) {
        std::printf("\ntracing perturbed the simulation!\n");
        return 1;
    }
    return 0;
}
