/**
 * @file
 * Extension bench: QoS resilience and oracle overhead under injected
 * faults.
 *
 * Runs the same 8-node open-loop workload (seed 42, 96 Poisson jobs)
 * through a ladder of fault scenarios — none, checker-only (the
 * zero-perturbation overhead case), a crash/restart storm, and seeded
 * random plans of growing density — with the invariant oracle armed.
 * Reports completion/failure accounting, per-mode deadline hit rates
 * among completed jobs, recovery actions (relocations, downgrades)
 * and the oracle's verdict. Results go in EXPERIMENTS.md; a
 * machine-readable BENCH_fault_recovery.json (argv[1] overrides the
 * path) rides along for CI archiving.
 */

#include <cstdio>
#include <string>

#include "bench/bench_json.hh"
#include "cluster/engine.hh"
#include "fault/plan.hh"

using namespace cmpqos;

namespace
{

struct Scenario
{
    const char *name;
    FaultPlan plan;
    bool useFaults = true;
    bool check = true;
};

ClusterMetrics
runScenario(const Scenario &s, std::uint64_t *violations)
{
    ClusterConfig config;
    config.nodes = 8;
    config.threads = 4;
    config.seed = 42;
    config.quantum = 2'000'000;
    if (s.useFaults)
        config.faultPlan = &s.plan;
    config.checkInvariants = s.check;

    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    PoissonArrivalProcess arrivals(250'000.0, mix,
                                   config.seed ^ 0xa11a1ULL, 96);
    ClusterEngine engine(config);
    const ClusterMetrics m = engine.runToCompletion(arrivals);
    *violations = engine.invariantChecker() != nullptr
                      ? engine.invariantChecker()->totalViolations()
                      : 0;
    return m;
}

FaultPlan
crashStorm()
{
    FaultPlan plan;
    // Three staggered crashes; two heal, one stays down.
    plan.faults.push_back({FaultType::NodeCrash, 1, 2, 1, 1, 0});
    plan.faults.push_back({FaultType::NodeRestart, 1, 4, 1, 1, 0});
    plan.faults.push_back({FaultType::NodeCrash, 3, 5, 1, 1, 0});
    plan.faults.push_back({FaultType::NodeRestart, 3, 8, 1, 1, 0});
    plan.faults.push_back({FaultType::NodeCrash, 6, 7, 1, 1, 0});
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        cmpqos::bench::benchJsonPath(argc, argv, "fault_recovery");
    std::printf("# ext_fault_recovery: 8 nodes, 96 Poisson jobs, "
                "seed 42, oracle at every barrier\n\n");
    std::printf("%-16s %-8s %-11s %-7s %-10s %-8s %-8s %-6s %s\n",
                "scenario", "wall_s", "done/acc", "failed",
                "reloc(dg)", "strict", "elastic", "viol", "notes");

    Scenario scenarios[] = {
        {"baseline", {}, false, false},
        {"checker-only", {}, true, true},
        {"crash-storm", crashStorm(), true, true},
        {"random-4", FaultPlan::random(7, 8, 10, 4), true, true},
        {"random-8", FaultPlan::random(7, 8, 10, 8), true, true},
        {"random-16", FaultPlan::random(7, 8, 10, 16), true, true},
    };

    // Warm the solo-CPI calibration memo so the baseline doesn't pay
    // a one-time cost the later scenarios skip (it would make the
    // checker-only overhead read as negative).
    {
        std::uint64_t ignored = 0;
        (void)runScenario(scenarios[0], &ignored);
    }

    cmpqos::bench::BenchJson json("ext_fault_recovery");
    json.meta("nodes", 8).meta("jobs", 96).meta("seed", 42);

    double base_wall = 0.0;
    int rc = 0;
    for (const Scenario &s : scenarios) {
        std::uint64_t violations = 0;
        const ClusterMetrics m = runScenario(s, &violations);
        if (std::string(s.name) == "baseline")
            base_wall = m.wallSeconds;

        char done[24];
        std::snprintf(done, sizeof(done), "%llu/%llu",
                      static_cast<unsigned long long>(m.completed),
                      static_cast<unsigned long long>(m.accepted));
        char reloc[24];
        std::snprintf(
            reloc, sizeof(reloc), "%llu(%llu)",
            static_cast<unsigned long long>(m.faults.relocated),
            static_cast<unsigned long long>(
                m.faults.relocationDowngraded));
        char notes[64] = "";
        if (std::string(s.name) == "checker-only" && base_wall > 0.0)
            std::snprintf(notes, sizeof(notes), "+%.1f%% wall",
                          100.0 * (m.wallSeconds / base_wall - 1.0));
        else if (m.faults.crashes > 0)
            std::snprintf(
                notes, sizeof(notes), "%llu crash / %llu restart",
                static_cast<unsigned long long>(m.faults.crashes),
                static_cast<unsigned long long>(m.faults.restarts));

        const ModeTally &strict =
            m.byMode[static_cast<std::size_t>(ExecutionMode::Strict)];
        const ModeTally &elastic =
            m.byMode[static_cast<std::size_t>(ExecutionMode::Elastic)];
        std::printf("%-16s %-8.3f %-11s %-7llu %-10s %-8.3f %-8.3f "
                    "%-6llu %s\n",
                    s.name, m.wallSeconds, done,
                    static_cast<unsigned long long>(
                        m.faults.failedJobs),
                    reloc,
                    strict.hasHitRate() ? strict.hitRate() : 0.0,
                    elastic.hasHitRate() ? elastic.hitRate() : 0.0,
                    static_cast<unsigned long long>(violations),
                    notes);

        if (violations != 0) {
            std::printf("UNEXPECTED: oracle fired on scenario %s\n",
                        s.name);
            rc = 1;
        }
        if (m.completed + m.faults.failedJobs != m.accepted) {
            std::printf("UNEXPECTED: accounting identity broken on "
                        "%s\n",
                        s.name);
            rc = 1;
        }

        json.addRow()
            .str("scenario", s.name)
            .f64("wall_seconds", m.wallSeconds, 6)
            .u64("accepted", m.accepted)
            .u64("completed", m.completed)
            .u64("failed", m.faults.failedJobs)
            .u64("relocated", m.faults.relocated)
            .u64("downgraded", m.faults.relocationDowngraded)
            .f64("strict_hit_rate",
                 strict.hasHitRate() ? strict.hitRate() : 0.0, 4)
            .f64("elastic_hit_rate",
                 elastic.hasHitRate() ? elastic.hitRate() : 0.0, 4)
            .u64("violations", violations);
    }
    if (!json.write(json_path))
        rc = 1;
    return rc;
}
