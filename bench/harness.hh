/**
 * @file
 * Shared helpers for the per-figure/per-table benchmark harnesses.
 *
 * Each bench binary reproduces one table or figure from the paper:
 * it runs the relevant workloads and prints the same rows/series the
 * paper reports (plus the paper's reference values where they are
 * stated). Scale knobs come from the environment:
 *
 *   CMPQOS_JOB_INSTR  instructions per job   (default 30,000,000)
 *   CMPQOS_JOBS       accepted jobs/workload (default 10, as in the
 *                     paper)
 *   CMPQOS_SEED       workload seed          (default 1)
 *
 * The paper simulates 200M-instruction jobs on Simics; the scaled
 * default keeps every bench in the seconds range while preserving the
 * shapes (see DESIGN.md).
 */

#ifndef CMPQOS_BENCH_HARNESS_HH
#define CMPQOS_BENCH_HARNESS_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "qos/framework.hh"
#include "qos/workload_spec.hh"
#include "stats/table.hh"

namespace cmpqos::bench
{

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
}

inline InstCount
jobInstructions()
{
    return envOr("CMPQOS_JOB_INSTR", 30'000'000);
}

inline std::size_t
jobsPerWorkload()
{
    return static_cast<std::size_t>(envOr("CMPQOS_JOBS", 10));
}

inline std::uint64_t
workloadSeed()
{
    return envOr("CMPQOS_SEED", 1);
}

/** Framework config tuned for bench runs (paper parameters). */
inline FrameworkConfig
benchFrameworkConfig(ModeConfig config)
{
    FrameworkConfig fc = FrameworkConfig::forModeConfig(config);
    // Paper: repartitioning every 2M Elastic-job instructions; scale
    // with job length so short runs still repartition ~15 times.
    const InstCount instr = jobInstructions();
    fc.stealing.intervalInstructions =
        std::max<InstCount>(instr / 100, 100'000);
    return fc;
}

/** Run one Table 2 configuration on a single-benchmark workload. */
inline WorkloadResult
runSingle(ModeConfig config, const std::string &benchmark)
{
    QosFramework fw(benchFrameworkConfig(config));
    return fw.runWorkload(makeSingleBenchmarkWorkload(
        config, benchmark, jobsPerWorkload(), jobInstructions(),
        workloadSeed()));
}

/** Run one Table 2 configuration on a Table 3 mixed workload. */
inline WorkloadResult
runMixed(ModeConfig config, MixType mix)
{
    QosFramework fw(benchFrameworkConfig(config));
    return fw.runWorkload(makeMixedWorkload(config, mix,
                                            jobsPerWorkload(),
                                            jobInstructions(),
                                            workloadSeed()));
}

inline void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n################################################\n"
              << "# " << title << "\n"
              << "# Paper reference: " << paper_ref << "\n"
              << "# job_instr=" << jobInstructions()
              << " jobs=" << jobsPerWorkload()
              << " seed=" << workloadSeed() << "\n"
              << "################################################\n";
}

} // namespace cmpqos::bench

#endif // CMPQOS_BENCH_HARNESS_HH
