/**
 * @file
 * Figure 1 reproduction: IPC of 1-4 simultaneous instances of bzip2
 * on a 4-core CMP with a shared 2MB L2 equally divided among the
 * instances by a resource manager that tries to satisfy everyone.
 * The QoS target is an IPC of at least 0.25 (= 2/3 of the alone
 * IPC). The paper's point: targets are met with 1-2 instances but
 * violated with 3-4 — partitioning alone cannot provide QoS.
 */

#include <vector>

#include "bench/harness.hh"
#include "sim/simulation.hh"

namespace
{

using namespace cmpqos;

/** Run n bzip2 instances concurrently with an equal L2 split. */
std::vector<double>
runInstances(int n, InstCount instr, std::uint64_t seed)
{
    CmpConfig cfg;
    cfg.chunkInstructions = 25'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);

    const unsigned ways_each =
        sys.l2().config().assoc / static_cast<unsigned>(n);
    std::vector<std::unique_ptr<JobExecution>> jobs;
    for (int i = 0; i < n; ++i) {
        sys.l2().setTargetWays(i, ways_each);
        sys.l2().setCoreClass(i, CoreClass::Reserved);
        jobs.push_back(std::make_unique<JobExecution>(
            i, BenchmarkRegistry::get("bzip2"), instr, seed + i));
        // Steady-state measurement: pre-fill each job's standing
        // working set (the paper measures post-initialisation
        // windows of long-running jobs).
        JobExecution *job = jobs.back().get();
        job->generator().forEachStandingBlock(
            [&](Addr a) { sys.l2().access(i, a, false); });
        sim.startJobOn(i, job);
    }
    sim.run();

    std::vector<double> ipcs;
    for (const auto &j : jobs)
        ipcs.push_back(1.0 / j->cpi());
    return ipcs;
}

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Figure 1: IPC of N bzip2 instances under equal partitioning",
        "Section 1, Figure 1 (QoS target IPC >= 0.25 = 2/3 of alone)");

    const InstCount instr =
        std::max<InstCount>(bench::jobInstructions() / 5, 4'000'000);
    const std::uint64_t seed = bench::workloadSeed();

    const double alone = runInstances(1, instr, seed)[0];
    const double target = alone * 2.0 / 3.0;

    TablePrinter t("IPC vs number of bzip2 instances");
    t.header({"instances", "ways/job", "avg IPC", "min IPC", "target",
              "target met?"});
    for (int n = 1; n <= 4; ++n) {
        const auto ipcs = runInstances(n, instr, seed);
        double sum = 0.0, mn = 1e9;
        for (double v : ipcs) {
            sum += v;
            mn = std::min(mn, v);
        }
        const double avg = sum / static_cast<double>(n);
        t.row({std::to_string(n), std::to_string(16 / n),
               TablePrinter::fmt(avg, 3), TablePrinter::fmt(mn, 3),
               TablePrinter::fmt(target, 3),
               mn >= target ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\nPaper shape: alone IPC ~0.375; the 0.25 target is met"
                 " at 1-2 instances\nand violated at 3-4 instances.\n";
    return 0;
}
