/**
 * @file
 * Ablation for Section 4.1's victim-selection refinement: on a miss
 * by an under-target core, prefer victims from *over-allocated
 * Strict/Elastic* cores before touching Opportunistic blocks, so
 * shrunken partitions converge to their new targets fast and stolen
 * ways reach Opportunistic jobs quickly.
 *
 * The bench shrinks an Elastic core's target by 3 ways (as resource
 * stealing would) and measures how many of the pool's fills it takes
 * until the donor's per-set occupancy reaches the new target.
 */

#include "bench/harness.hh"
#include "sim/simulation.hh"

namespace
{

using namespace cmpqos;

/** Fills by the pool core until the donor converges, under the real
 *  (priority) policy; the comparison point is the block surplus. */
std::uint64_t
convergenceFills(InstCount instr, std::uint64_t seed)
{
    CmpConfig cfg;
    cfg.chunkInstructions = 25'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    // Donor (Elastic-like) on core 0 at 7 ways; a second Reserved job
    // on core 1; pool core 2 runs a hungry opportunistic job.
    sys.l2().setTargetWays(0, 7);
    sys.l2().setCoreClass(0, CoreClass::Reserved);
    sys.l2().setTargetWays(1, 7);
    sys.l2().setCoreClass(1, CoreClass::Reserved);
    sys.l2().setCoreClass(2, CoreClass::Opportunistic);

    JobExecution donor(0, BenchmarkRegistry::get("gobmk"), instr, seed);
    JobExecution other(1, BenchmarkRegistry::get("hmmer"), instr,
                       seed + 1);
    JobExecution hungry(2, BenchmarkRegistry::get("bzip2"), instr,
                        seed + 2);
    sim.startJobOn(0, &donor);
    sim.startJobOn(1, &other);
    sim.startJobOn(2, &hungry);

    // Warm everything up, then steal 3 ways from the donor.
    sim.run(30'000'000);
    const std::uint64_t before = sys.l2().blocksOwnedBy(0);
    sys.l2().setTargetWays(0, 4);

    const std::uint64_t target_blocks =
        4ULL * sys.l2().config().numSets();
    std::uint64_t fills = 0;
    sim.setQuantumHook([&](CoreId core, JobExecution *) {
        if (core == 2)
            ++fills;
        if (sys.l2().blocksOwnedBy(0) <= target_blocks)
            sim.requestStop();
    });
    sim.run();
    std::cout << "donor blocks before steal: " << before
              << ", after convergence: " << sys.l2().blocksOwnedBy(0)
              << " (target " << target_blocks << ")\n";
    return fills;
}

} // namespace

int
main()
{
    using namespace cmpqos;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Ablation: QoS-aware victim priority accelerates convergence",
        "Section 4.1 (victim selection by execution mode)");

    const InstCount instr = 200'000'000; // effectively unbounded
    TablePrinter t("pool-side chunks until donor reaches new target");
    t.header({"seed", "chunks until converged"});
    for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
        t.row({std::to_string(seed),
               std::to_string(convergenceFills(instr, seed))});
    }
    t.print(std::cout);

    std::cout << "\nThe over-allocated donor is drained by the pool's"
                 " demand fills alone —\nconvergence completes within"
                 " a few thousand pool chunks because victims are\n"
                 "taken from the over-allocated Reserved core first"
                 " (Section 4.1's refinement).\n";
    return 0;
}
