/**
 * @file
 * Extension bench: energy saved by economizing under relaxed SLOs
 * (DESIGN.md §14, ROADMAP item 4).
 *
 * Static reservations run every core at nominal frequency no matter
 * how much deadline slack the jobs have. With relaxed (batch-like)
 * deadlines the controller's economize path — bandwidth to floor,
 * granted ways returned, then down-clock — converts that slack into
 * modelled energy savings; a power cap forces further down-clocks.
 * Four runs on the same 8-node, 96-job relaxed-deadline stream, all
 * with the controller's energy meter on:
 *
 *   no-economize  slack_high so large the economize path never fires
 *                 (static-reservation energy baseline, all nominal)
 *   slo-0.5       dynamic SLO allows 50% over standalone CPI
 *   slo-0.8       dynamic SLO allows 80% over standalone CPI
 *   cap-2.6       50% SLO plus a 2.6 energy/cycle node power cap
 *
 * The default 10% SLO slowdown allowance correctly forbids
 * down-clocking (the slack band sits inside the allowance), so the
 * economizing rows relax slo_slowdown — the per-job service-level
 * knob — rather than the hysteresis band alone.
 *
 * The acceptance bar (ISSUE 10): every economizing run shows lower
 * modelled energy than no-economize at an unchanged QoS floor (the
 * Strict deadline hit rate does not regress). Results go in
 * EXPERIMENTS.md; a machine-readable BENCH_energy_cap.json (argv[1]
 * overrides the path) rides along for CI archiving.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.hh"
#include "cluster/engine.hh"

using namespace cmpqos;

namespace
{

constexpr int kNodes = 8;
constexpr std::uint64_t kJobs = 96;
constexpr std::uint64_t kSeed = 42;

struct Scenario
{
    const char *name;
    double sloSlowdown;
    double slackHigh;
    double powerCap;
};

ArrivalMix
relaxedMix()
{
    // Batch-like SLAs: every tier gets generous deadline headroom, so
    // measured slack (not the deadline) is what limits economizing.
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = 2'000'000;
    mix.tiers[static_cast<std::size_t>(QosTier::Gold)]
        .deadlineFactor = 2.0;
    mix.tiers[static_cast<std::size_t>(QosTier::Silver)]
        .deadlineFactor = 3.0;
    mix.tiers[static_cast<std::size_t>(QosTier::Bronze)]
        .deadlineFactor = 4.0;
    return mix;
}

ClusterMetrics
runScenario(const Scenario &s)
{
    ClusterConfig config;
    config.nodes = kNodes;
    config.threads = 4;
    config.seed = kSeed;
    config.quantum = 2'000'000;
    config.control.enabled = true;
    config.control.sloSlowdown = s.sloSlowdown;
    config.control.slackHigh = s.slackHigh;
    config.control.powerCap = s.powerCap;

    PoissonArrivalProcess arrivals(250'000.0, relaxedMix(),
                                   kSeed ^ 0xa11a1ULL, kJobs);
    ClusterEngine engine(config);
    return engine.runToCompletion(arrivals);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        bench::benchJsonPath(argc, argv, "energy_cap");

    std::printf("# ext_energy_cap: %d nodes, %llu relaxed-deadline "
                "Poisson jobs, seed %llu\n\n",
                kNodes, static_cast<unsigned long long>(kJobs),
                static_cast<unsigned long long>(kSeed));
    std::printf("%-14s %-12s %-8s %-10s %-8s %-8s %-8s %s\n",
                "config", "energy", "saved", "strict_hit", "freq-",
                "way-", "bw-", "completed");

    const Scenario scenarios[] = {
        {"no-economize", 0.10, 1e9, 0.0},
        {"slo-0.5", 0.50, 0.25, 0.0},
        {"slo-0.8", 0.80, 0.30, 0.0},
        {"cap-2.6", 0.50, 0.25, 2.6},
    };

    // Warm the solo-CPI calibration memo so the first measured run
    // doesn't pay a one-time cost the later runs skip.
    (void)runScenario(scenarios[0]);

    bench::BenchJson json("ext_energy_cap");
    json.meta("nodes", kNodes).meta("jobs", kJobs).meta("seed", kSeed);

    double base_energy = 0.0;
    double base_strict_hit = 0.0;
    int rc = 0;
    for (const Scenario &s : scenarios) {
        const ClusterMetrics m = runScenario(s);
        const ModeTally &strict =
            m.byMode[static_cast<std::size_t>(ExecutionMode::Strict)];
        const double strict_hit =
            strict.hasHitRate() ? strict.hitRate() : 0.0;
        const bool baseline = std::string(s.name) == "no-economize";
        if (baseline) {
            base_energy = m.energy;
            base_strict_hit = strict_hit;
        }
        const double saved =
            base_energy > 0.0
                ? 100.0 * (1.0 - m.energy / base_energy)
                : 0.0;

        std::printf("%-14s %-12.0f %-8.1f %-10.3f %-8llu %-8llu "
                    "%-8llu %llu\n",
                    s.name, m.energy, saved, strict_hit,
                    static_cast<unsigned long long>(
                        m.control.freqDrops),
                    static_cast<unsigned long long>(
                        m.control.wayReturns),
                    static_cast<unsigned long long>(
                        m.control.bwReturns),
                    static_cast<unsigned long long>(m.completed));

        if (!baseline) {
            if (m.energy >= base_energy) {
                std::printf("UNEXPECTED: %s did not save energy "
                            "(%.0f >= %.0f)\n",
                            s.name, m.energy, base_energy);
                rc = 1;
            }
            if (strict_hit + 1e-12 < base_strict_hit) {
                std::printf("UNEXPECTED: %s regressed the Strict hit "
                            "rate (%.3f < %.3f)\n",
                            s.name, strict_hit, base_strict_hit);
                rc = 1;
            }
        }

        json.addRow()
            .str("config", s.name)
            .f64("slo_slowdown", s.sloSlowdown, 2)
            .f64("power_cap", s.powerCap, 1)
            .f64("energy", m.energy, 0)
            .f64("saved_percent", saved, 1)
            .f64("strict_hit_rate", strict_hit, 4)
            .u64("freq_drops", m.control.freqDrops)
            .u64("way_returns", m.control.wayReturns)
            .u64("bw_returns", m.control.bwReturns)
            .u64("retunes", m.control.retunes)
            .u64("completed", m.completed)
            .f64("wall_seconds", m.wallSeconds, 6);
    }
    if (!json.write(json_path))
        rc = 1;
    return rc;
}
