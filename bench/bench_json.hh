/**
 * @file
 * Shared machine-readable emitter for the extension benches.
 *
 * Every ext_* bench writes a BENCH_<name>.json next to its
 * human-readable table so CI can archive a perf trajectory and
 * bench/baselines/ can pin a reference shape. The document is the
 * same for every bench:
 *
 *   {
 *     "bench": "<name>",
 *     "git_hash": "<build hash>",
 *     <meta scalars, insertion order>,
 *     "configs": [ {<row fields, insertion order>}, ... ]
 *   }
 *
 * Fields are pre-rendered strings so each bench keeps exact control
 * of its numeric formatting (a perf trajectory diff should not churn
 * because a printf width changed). argv[1] conventionally overrides
 * the output path; see benchJsonPath().
 */

#ifndef CMPQOS_BENCH_BENCH_JSON_HH
#define CMPQOS_BENCH_BENCH_JSON_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/build_info.hh"

namespace cmpqos::bench
{

/** Default output path, overridable by the bench's argv[1]. */
inline std::string
benchJsonPath(int argc, char **argv, const std::string &bench)
{
    return argc > 1 ? argv[1] : "BENCH_" + bench + ".json";
}

class BenchJson
{
  public:
    /** One "configs" entry; fields render in insertion order. */
    class Row
    {
      public:
        Row &u64(const std::string &key, std::uint64_t v)
        {
            return raw(key, std::to_string(v));
        }

        Row &i64(const std::string &key, std::int64_t v)
        {
            return raw(key, std::to_string(v));
        }

        /** Fixed-point double; precision picks the printf %.*f. */
        Row &f64(const std::string &key, double v, int precision)
        {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
            return raw(key, buf);
        }

        Row &str(const std::string &key, const std::string &v)
        {
            return raw(key, "\"" + v + "\"");
        }

        Row &boolean(const std::string &key, bool v)
        {
            return raw(key, v ? "true" : "false");
        }

        /** Pre-rendered JSON value (escape hatch). */
        Row &raw(const std::string &key, std::string value)
        {
            fields_.emplace_back(key, std::move(value));
            return *this;
        }

      private:
        friend class BenchJson;
        std::vector<std::pair<std::string, std::string>> fields_;
    };

    explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

    /** Top-level scalar, emitted after git_hash in insertion order. */
    BenchJson &meta(const std::string &key, std::uint64_t v)
    {
        return metaRaw(key, std::to_string(v));
    }

    BenchJson &meta(const std::string &key, std::int64_t v)
    {
        return metaRaw(key, std::to_string(v));
    }

    BenchJson &meta(const std::string &key, int v)
    {
        return metaRaw(key, std::to_string(v));
    }

    BenchJson &metaStr(const std::string &key, const std::string &v)
    {
        return metaRaw(key, "\"" + v + "\"");
    }

    BenchJson &metaRaw(const std::string &key, std::string value)
    {
        meta_.emplace_back(key, std::move(value));
        return *this;
    }

    Row &addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /**
     * Write the document; prints "wrote <path>" on success, an error
     * to stderr on failure. Returns false on I/O failure so the
     * bench can exit non-zero.
     */
    bool write(const std::string &path) const
    {
        std::FILE *out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(out,
                     "{\n"
                     "  \"bench\": \"%s\",\n"
                     "  \"git_hash\": \"%s\",\n",
                     bench_.c_str(), buildInfo().gitHash);
        for (const auto &[key, value] : meta_)
            std::fprintf(out, "  \"%s\": %s,\n", key.c_str(),
                         value.c_str());
        std::fprintf(out, "  \"configs\": [\n");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(out, "    {");
            const auto &fields = rows_[i].fields_;
            for (std::size_t j = 0; j < fields.size(); ++j)
                std::fprintf(out, "%s\"%s\": %s",
                             j > 0 ? ", " : "", fields[j].first.c_str(),
                             fields[j].second.c_str());
            std::fprintf(out, "}%s\n",
                         i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
        std::printf("\nwrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string bench_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<Row> rows_;
};

} // namespace cmpqos::bench

#endif // CMPQOS_BENCH_BENCH_JSON_HH
