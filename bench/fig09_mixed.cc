/**
 * @file
 * Figure 9 reproduction: the two mixed-benchmark workloads (Table 3)
 * across all configurations — (a) deadline hit rates and (b)
 * throughput normalized to the respective All-Strict case.
 *
 * Paper reference: QoS configurations hit 100% of deadlines while
 * EqualPart hits 30%/40% (Mix-1/Mix-2). Hybrid-1 gains 35%/42%;
 * Hybrid-2 gains 47%/39% — stealing helps Mix-1 more because its
 * Elastic donor (gobmk) is cache-insensitive and its Opportunistic
 * beneficiary (bzip2) is cache-hungry, while Mix-2 swaps the roles.
 */

#include "bench/harness.hh"

int
main()
{
    using namespace cmpqos;
    using cmpqos::bench::runMixed;
    using cmpqos::stats::TablePrinter;

    bench::printHeader("Figure 9: mixed-benchmark workloads",
                       "Section 7.4, Figure 9(a)/(b), Table 3");

    const ModeConfig configs[] = {
        ModeConfig::AllStrict, ModeConfig::Hybrid1, ModeConfig::Hybrid2,
        ModeConfig::AllStrictAutoDown, ModeConfig::EqualPart};

    TablePrinter hit("(a) deadline hit rate");
    hit.header({"config", "Mix-1", "Mix-2"});
    TablePrinter thr("(b) throughput normalized to All-Strict");
    thr.header({"config", "Mix-1", "Mix-2"});

    const auto base1 = runMixed(ModeConfig::AllStrict, MixType::Mix1);
    const auto base2 = runMixed(ModeConfig::AllStrict, MixType::Mix2);

    for (const auto config : configs) {
        const auto r1 = runMixed(config, MixType::Mix1);
        const auto r2 = runMixed(config, MixType::Mix2);
        const bool qos_only = config != ModeConfig::EqualPart;
        hit.row({modeConfigName(config),
                 TablePrinter::fmtPercent(
                     r1.deadlineHitRate(qos_only) * 100.0, 0),
                 TablePrinter::fmtPercent(
                     r2.deadlineHitRate(qos_only) * 100.0, 0)});
        thr.row({modeConfigName(config),
                 TablePrinter::fmt(r1.throughputVs(base1), 2),
                 TablePrinter::fmt(r2.throughputVs(base2), 2)});
    }
    hit.print(std::cout);
    std::cout << '\n';
    thr.print(std::cout);

    std::cout << "\nPaper shape: 100% deadline hit rate in every QoS"
                 " configuration vs 30/40%\nin EqualPart. Hybrid-2 >"
                 " Hybrid-1 for Mix-1 (stealing-favourable roles) and"
                 "\nHybrid-2 < Hybrid-1 for Mix-2 (roles swapped).\n";
    return 0;
}
