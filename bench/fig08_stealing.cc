/**
 * @file
 * Figure 8 reproduction: the impact of the Elastic(X) slack amount in
 * the Hybrid-2 bzip2 workload —
 *  (a) the Elastic jobs' realized L2 miss-rate increase (should track
 *      the slack bound X) and their CPI increase (should run at
 *      roughly one third to one half of the miss-rate increase), and
 *  (b) the average wall-clock time of Opportunistic jobs (decreasing
 *      in X with diminishing returns).
 */

#include "bench/harness.hh"

int
main()
{
    using namespace cmpqos;
    using cmpqos::bench::benchFrameworkConfig;
    using cmpqos::stats::TablePrinter;

    bench::printHeader(
        "Figure 8: Elastic(X) slack sweep in Hybrid-2 (bzip2)",
        "Section 7.3, Figure 8(a)/(b)");

    const double slacks[] = {0.02, 0.05, 0.10, 0.15, 0.20};

    // Workload builder: Hybrid-2 with the Elastic slack overridden.
    // An Elastic(X) reservation spans tw*(1+X); a tight 1.05tw
    // deadline cannot admit X > 5%, so Elastic jobs get deadlines
    // that accommodate the slack (a user requesting more slack
    // implicitly accepts later completion).
    auto make_spec = [&](double x) {
        auto spec = makeSingleBenchmarkWorkload(
            ModeConfig::Hybrid2, "bzip2", bench::jobsPerWorkload(),
            bench::jobInstructions(), bench::workloadSeed());
        for (auto &r : spec.jobs) {
            if (r.mode.mode == ExecutionMode::Elastic) {
                r.mode.slack = x;
                r.deadlineFactor =
                    std::max(r.deadlineFactor, (1.0 + x) * 1.05);
            }
        }
        return spec;
    };

    struct Row
    {
        double missInc = 0.0;
        double elasticCpi = 0.0;
        double oppWallClock = 0.0;
        int cancels = 0;
    };
    auto summarize = [](const WorkloadResult &res) {
        Row row;
        int el_n = 0, opp_n = 0;
        for (const auto &j : res.jobs) {
            if (j.mode == ExecutionMode::Elastic) {
                row.missInc += j.observedMissIncrease;
                row.elasticCpi += j.cpi;
                row.cancels += j.stealingCancelled;
                ++el_n;
            } else if (j.mode == ExecutionMode::Opportunistic) {
                row.oppWallClock += j.wallClock;
                ++opp_n;
            }
        }
        row.missInc /= std::max(el_n, 1);
        row.elasticCpi /= std::max(el_n, 1);
        row.oppWallClock /= std::max(opp_n, 1);
        return row;
    };

    // Baseline: identical workload with resource stealing disabled.
    Row base;
    {
        FrameworkConfig fc = benchFrameworkConfig(ModeConfig::Hybrid2);
        fc.stealing.enabled = false;
        QosFramework fw(fc);
        base = summarize(fw.runWorkload(make_spec(0.05)));
    }

    TablePrinter t("slack sweep (baseline: stealing disabled)");
    t.header({"X", "elastic miss incr", "elastic CPI incr",
              "CPI/miss ratio", "opp avg wallclock", "opp speedup",
              "cancelled jobs"});
    t.row({"off", "0.0%", "0.0%", "-",
           TablePrinter::fmt(base.oppWallClock / 1e6, 1) + "M", "0.0%",
           "0"});

    for (const double x : slacks) {
        QosFramework fw(benchFrameworkConfig(ModeConfig::Hybrid2));
        const Row row = summarize(fw.runWorkload(make_spec(x)));
        const double cpi_inc =
            (row.elasticCpi - base.elasticCpi) / base.elasticCpi;
        t.row({TablePrinter::fmtPercent(x * 100.0, 0),
               TablePrinter::fmtPercent(row.missInc * 100.0, 1),
               TablePrinter::fmtPercent(cpi_inc * 100.0, 1),
               row.missInc > 0.001
                   ? TablePrinter::fmt(cpi_inc / row.missInc, 2)
                   : "-",
               TablePrinter::fmt(row.oppWallClock / 1e6, 1) + "M",
               TablePrinter::fmtPercent(
                   (base.oppWallClock / row.oppWallClock - 1.0) * 100.0,
                   1),
               std::to_string(row.cancels)});
    }
    t.print(std::cout);

    std::cout
        << "\nPaper shape: (a) realized miss increase tracks the slack"
           " bound; CPI\nincrease runs at ~1/3-1/2 of it (the additive-"
           "CPI safety property).\n(b) Opportunistic wall-clock falls"
           " with X but with diminishing returns\n(X=5% already buys"
           " most of the recoverable capacity).\n";
    return 0;
}
