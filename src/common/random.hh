/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic components (synthetic access generators, Poisson job
 * arrivals, pseudo-random deadline assignment) draw from explicitly
 * seeded Rng instances so that every experiment is reproducible and
 * run-to-run variation can be studied by varying seeds (Section 4.1's
 * global-vs-per-set partitioning stability comparison depends on this).
 *
 * The core generator is xoshiro256** (Blackman & Vigna), seeded via
 * SplitMix64.
 */

#ifndef CMPQOS_COMMON_RANDOM_HH
#define CMPQOS_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace cmpqos
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed, expanded through SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform integer in [0, bound) — bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /**
     * @return an exponentially distributed sample with the given mean
     * (used for Poisson inter-arrival times, Section 6).
     */
    double exponential(double mean);

    /**
     * @return a geometrically distributed integer >= 0 with success
     * probability @p p in (0, 1].
     */
    std::uint64_t geometric(double p);

    /**
     * Sample an index from a discrete distribution given by
     * (unnormalised, non-negative) weights. Weights must not all be 0.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** @return true with probability @p p. */
    bool bernoulli(double p);

    /** Fork an independent stream, deterministic in this stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace cmpqos

#endif // CMPQOS_COMMON_RANDOM_HH
