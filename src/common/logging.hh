/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated: a cmpqos bug. Aborts.
 * fatal()  — the user asked for something impossible (bad config).
 *            Exits with an error code.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — progress / informational messages.
 */

#ifndef CMPQOS_COMMON_LOGGING_HH
#define CMPQOS_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cmpqos
{

/** Verbosity control: when false, inform() output is suppressed. */
void setVerbose(bool verbose);

/** @return whether inform() messages are currently printed. */
bool verboseEnabled();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace cmpqos

/** Abort on an internal simulator bug. */
#define cmpqos_panic(...)                                                    \
    ::cmpqos::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::cmpqos::detail::format(__VA_ARGS__))

/** Exit on a user configuration error. */
#define cmpqos_fatal(...)                                                    \
    ::cmpqos::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::cmpqos::detail::format(__VA_ARGS__))

/** Warn about a condition that might indicate a problem. */
#define cmpqos_warn(...)                                                     \
    ::cmpqos::detail::warnImpl(::cmpqos::detail::format(__VA_ARGS__))

/** Informational progress message (suppressed unless verbose). */
#define cmpqos_inform(...)                                                   \
    ::cmpqos::detail::informImpl(::cmpqos::detail::format(__VA_ARGS__))

/** Panic when @p cond does not hold. */
#define cmpqos_assert(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            cmpqos_panic("assertion '%s' failed: %s", #cond,                 \
                         ::cmpqos::detail::format(__VA_ARGS__).c_str());     \
        }                                                                    \
    } while (0)

#endif // CMPQOS_COMMON_LOGGING_HH
