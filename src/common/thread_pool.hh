/**
 * @file
 * A fixed-size worker thread pool with a batch-barrier API, used by
 * the cluster engine (src/cluster) to advance independent CMP node
 * simulations concurrently.
 *
 * The pool deliberately exposes only parallelFor: run fn(i) for every
 * i in [0, n) and block until all calls return. Cluster determinism
 * rests on this shape — each index is an independent unit of work
 * (one node), so the result is identical no matter how many workers
 * execute the batch or how indices interleave.
 *
 * All batch-cursor state is guarded by mu_ and checked by Clang's
 * thread-safety analysis (CMPQOS_THREAD_SAFETY=ON).
 */

#ifndef CMPQOS_COMMON_THREAD_POOL_HH
#define CMPQOS_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hh"

namespace cmpqos
{

/**
 * Fixed set of worker threads executing index batches.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (must be >= 1). */
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run fn(0) .. fn(n-1) on the pool's workers and block until all
     * calls have returned. Calls must be independent of one another;
     * fn must not call back into the pool. fn must not throw (the
     * simulator reports errors via panic/fatal, which abort).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
        CMPQOS_EXCLUDES(mu_);

    /** std::thread::hardware_concurrency(), but never 0. */
    static unsigned hardwareConcurrency();

  private:
    void workerLoop() CMPQOS_EXCLUDES(mu_);

    std::vector<std::thread> workers_;

    Mutex mu_;
    /** condition_variable_any: its lock argument is the annotated
     *  MutexLock, so waits stay visible to the analysis. */
    std::condition_variable_any workReady_;
    std::condition_variable_any batchDone_;
    /** Incremented per parallelFor call; wakes workers. */
    std::uint64_t batchId_ CMPQOS_GUARDED_BY(mu_) = 0;
    const std::function<void(std::size_t)> *fn_ CMPQOS_GUARDED_BY(mu_) =
        nullptr;
    std::size_t nextIndex_ CMPQOS_GUARDED_BY(mu_) = 0;
    std::size_t total_ CMPQOS_GUARDED_BY(mu_) = 0;
    std::size_t completed_ CMPQOS_GUARDED_BY(mu_) = 0;
    bool shutdown_ CMPQOS_GUARDED_BY(mu_) = false;
};

} // namespace cmpqos

#endif // CMPQOS_COMMON_THREAD_POOL_HH
