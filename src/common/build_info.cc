#include "build_info.hh"

#include <cstdio>
#include <cstring>

// The four identity macros come from CMPQOS_BUILD_INFO_DEFS in the
// top-level CMakeLists; fall back to placeholders so stray compiles
// (IDE single-file checks) still build.
#ifndef CMPQOS_VERSION_STRING
#define CMPQOS_VERSION_STRING "0.0.0"
#endif
#ifndef CMPQOS_GIT_HASH
#define CMPQOS_GIT_HASH "nogit"
#endif
#ifndef CMPQOS_BUILD_TYPE
#define CMPQOS_BUILD_TYPE "unknown"
#endif
#ifndef CMPQOS_BUILD_OPTIONS
#define CMPQOS_BUILD_OPTIONS ""
#endif

namespace cmpqos
{

namespace
{

const char *
compilerString()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown-compiler";
#endif
}

} // namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = {
        CMPQOS_VERSION_STRING, CMPQOS_GIT_HASH, compilerString(),
        CMPQOS_BUILD_TYPE,     CMPQOS_BUILD_OPTIONS,
    };
    return info;
}

std::string
buildInfoLine(const std::string &tool)
{
    const BuildInfo &b = buildInfo();
    std::string line = tool + " (cmpqos " + b.version + ", git " +
                       b.gitHash + ", " + b.compiler + ", " +
                       b.buildType;
    if (b.options[0] != '\0') {
        line += ", ";
        line += b.options;
    }
    line += ")";
    return line;
}

bool
handleVersionFlag(const std::string &tool, int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s\n", buildInfoLine(tool).c_str());
            return true;
        }
    }
    return false;
}

} // namespace cmpqos
