/**
 * @file
 * Fundamental scalar types and identifiers used across the cmpqos
 * simulator and QoS framework.
 *
 * Conventions follow the paper's machine model (Section 6): a 4-core
 * CMP clocked at 2GHz, cycle-granularity timing, and jobs identified
 * by small dense integers assigned at submission time.
 */

#ifndef CMPQOS_COMMON_TYPES_HH
#define CMPQOS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace cmpqos
{

/** Simulated time expressed in core clock cycles. */
using Cycle = std::uint64_t;

/** A count of retired instructions. */
using InstCount = std::uint64_t;

/** A physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a processor core within one CMP node. */
using CoreId = int;

/** Identifier of a job submitted to the admission controller. */
using JobId = int;

/** Identifier of a CMP node within a server (used by the GAC). */
using NodeId = int;

/** Sentinel meaning "no core" / "not pinned". */
constexpr CoreId invalidCore = -1;

/** Sentinel meaning "no job" / "unowned cache block". */
constexpr JobId invalidJob = -1;

/** Largest representable cycle count; used as "never" for deadlines. */
constexpr Cycle maxCycle = std::numeric_limits<Cycle>::max();

/** Core clock frequency of the simulated CMP (Section 6: 2GHz). */
constexpr std::uint64_t coreClockHz = 2'000'000'000ULL;

/** Convert a cycle count to seconds at the core clock. */
constexpr double
cyclesToSeconds(Cycle c)
{
    return static_cast<double>(c) / static_cast<double>(coreClockHz);
}

/** Convert seconds to core clock cycles (rounds down). */
constexpr Cycle
secondsToCycles(double s)
{
    return static_cast<Cycle>(s * static_cast<double>(coreClockHz));
}

} // namespace cmpqos

#endif // CMPQOS_COMMON_TYPES_HH
