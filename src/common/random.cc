#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace cmpqos
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    cmpqos_assert(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    cmpqos_assert(lo <= hi, "uniformRange requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::exponential(double mean)
{
    cmpqos_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::uint64_t
Rng::geometric(double p)
{
    cmpqos_assert(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        cmpqos_assert(w >= 0.0, "discrete weights must be non-negative");
        total += w;
    }
    cmpqos_assert(total > 0.0, "discrete weights must not all be zero");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace cmpqos
