/**
 * @file
 * Byte-size helpers for cache and memory geometry.
 */

#ifndef CMPQOS_COMMON_UNITS_HH
#define CMPQOS_COMMON_UNITS_HH

#include <cstdint>

namespace cmpqos
{

constexpr std::uint64_t kib = 1024ULL;
constexpr std::uint64_t mib = 1024ULL * kib;
constexpr std::uint64_t gib = 1024ULL * mib;

/** User-defined literals so cache geometry reads like the paper. */
namespace units
{

constexpr std::uint64_t
operator""_KiB(unsigned long long v)
{
    return v * kib;
}

constexpr std::uint64_t
operator""_MiB(unsigned long long v)
{
    return v * mib;
}

constexpr std::uint64_t
operator""_GiB(unsigned long long v)
{
    return v * gib;
}

} // namespace units

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

} // namespace cmpqos

#endif // CMPQOS_COMMON_UNITS_HH
