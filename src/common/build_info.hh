/**
 * @file
 * Build identity shared by every CLI's `--version` flag and reported
 * by `qosd` in its protocol handshake: semantic version, git hash,
 * compiler, build type and the option set the binary was compiled
 * with. One helper, one format, so a version line from any tool (or a
 * daemon handshake captured in a bug report) pins the exact build.
 */

#ifndef CMPQOS_COMMON_BUILD_INFO_HH
#define CMPQOS_COMMON_BUILD_INFO_HH

#include <string>

namespace cmpqos
{

/** Static build identity, filled in at compile time. */
struct BuildInfo
{
    /** Semantic version (CMake project version). */
    const char *version;
    /** Short git hash of the source tree ("nogit" outside a repo). */
    const char *gitHash;
    /** Compiler name and version. */
    const char *compiler;
    /** CMake build type (Release, RelWithDebInfo, ...). */
    const char *buildType;
    /** Space-separated option summary (telemetry, sanitizers, ...). */
    const char *options;
};

/** The build identity of this binary. */
const BuildInfo &buildInfo();

/**
 * Canonical one-line form:
 * `<tool> (cmpqos <version>, git <hash>, <compiler>, <type>, <opts>)`.
 */
std::string buildInfoLine(const std::string &tool);

/**
 * Shared `--version` handling: when any argument is `--version`,
 * print buildInfoLine(@p tool) and return true (caller exits 0).
 * Scans the whole argv so `--version` works in any position.
 */
bool handleVersionFlag(const std::string &tool, int argc,
                       char **argv);

} // namespace cmpqos

#endif // CMPQOS_COMMON_BUILD_INFO_HH
