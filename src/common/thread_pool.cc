#include "thread_pool.hh"

#include "logging.hh"

namespace cmpqos
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    cmpqos_assert(num_threads >= 1, "thread pool needs >= 1 worker");
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    MutexLock lock(mu_);
    cmpqos_assert(fn_ == nullptr,
                  "parallelFor is not reentrant (fn called the pool?)");
    fn_ = &fn;
    nextIndex_ = 0;
    total_ = n;
    completed_ = 0;
    ++batchId_;
    workReady_.notify_all();
    while (completed_ != total_)
        batchDone_.wait(lock);
    fn_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_batch = 0;
    for (;;) {
        MutexLock lock(mu_);
        while (!(shutdown_ ||
                 (batchId_ != seen_batch && nextIndex_ < total_)))
            workReady_.wait(lock);
        if (shutdown_)
            return;
        if (nextIndex_ >= total_) {
            seen_batch = batchId_;
            continue;
        }
        // Claim indices one at a time until the batch drains. Units
        // of work (whole node simulations) are coarse, so per-index
        // locking is noise.
        while (nextIndex_ < total_) {
            const std::size_t i = nextIndex_++;
            // Snapshot fn_ while still holding mu_: parallelFor
            // resets it once `completed_ == total_`, so reading it
            // after the unlock would race the batch owner.
            const auto *fn = fn_;
            lock.unlock();
            (*fn)(i);
            lock.lock();
            ++completed_;
        }
        seen_batch = batchId_;
        if (completed_ == total_)
            batchDone_.notify_all();
    }
}

} // namespace cmpqos
