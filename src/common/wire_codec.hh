/**
 * @file
 * The shared binary field codec behind every cmpqos wire format.
 *
 * `src/service/protocol` introduced the idiom: each message type lists
 * its fields once, in wire order, inside a `visitFields` template, and
 * the codec directions are visitors over that list. BinWriter and
 * BinReader are the binary pair — little-endian fixed-width integers,
 * bit-cast doubles, u16-length-prefixed strings — and live here so the
 * federation layer's shard protocol shares one battle-tested
 * implementation with the admission-service protocol instead of
 * growing a second one.
 *
 * BinReader never throws and never reads past its buffer: a short or
 * hostile input flips `ok` to false with a field-naming error, and
 * every later field read becomes a no-op. Length-prefixed fields
 * (strings, byte blobs, lists) are bounded by the bytes actually
 * remaining, so a forged length cannot trigger an oversized
 * allocation.
 */

#ifndef CMPQOS_COMMON_WIRE_CODEC_HH
#define CMPQOS_COMMON_WIRE_CODEC_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hh"

namespace cmpqos
{

/** Field-visitor that appends the binary encoding to `out`. */
struct BinWriter
{
    std::string out;

    void push16(std::uint16_t v)
    {
        out.push_back(static_cast<char>(v & 0xff));
        out.push_back(static_cast<char>((v >> 8) & 0xff));
    }
    void push32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    void push64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void u8(const char *, std::uint8_t v)
    {
        out.push_back(static_cast<char>(v));
    }
    void u32(const char *, std::uint32_t v) { push32(v); }
    void u64(const char *, std::uint64_t v) { push64(v); }
    void i32(const char *, std::int32_t v)
    {
        push32(static_cast<std::uint32_t>(v));
    }
    void f64(const char *, double v)
    {
        push64(std::bit_cast<std::uint64_t>(v));
    }
    void str(const char *name, const std::string &s)
    {
        cmpqos_assert(s.size() <= 0xffff,
                      "wire string '%s' too long (%zu bytes)", name,
                      s.size());
        push16(static_cast<std::uint16_t>(s.size()));
        out.append(s);
    }
    /** Opaque byte blob with a u32 length prefix. */
    void bytes(const char *name, const std::string &b)
    {
        cmpqos_assert(b.size() <= 0xffffffffu,
                      "wire blob '%s' too long (%zu bytes)", name,
                      b.size());
        push32(static_cast<std::uint32_t>(b.size()));
        out.append(b);
    }
    void u64vec(const char *name, const std::vector<std::uint64_t> &v)
    {
        cmpqos_assert(v.size() <= 0xffffffffu,
                      "wire vector '%s' too long", name);
        push32(static_cast<std::uint32_t>(v.size()));
        for (std::uint64_t x : v)
            push64(x);
    }
    /** Length-prefixed list of sub-messages (each visits its own
     *  fields through this writer). */
    template <typename T>
    void list(const char *name, std::vector<T> &items)
    {
        cmpqos_assert(items.size() <= 0xffffffffu,
                      "wire list '%s' too long", name);
        push32(static_cast<std::uint32_t>(items.size()));
        for (T &item : items)
            visitFields(item, *this);
    }
};

/** Field-visitor that decodes the binary encoding from `in`. */
struct BinReader
{
    std::string_view in;
    std::size_t pos = 0;
    bool ok = true;
    std::string err;

    bool need(std::size_t n, const char *name)
    {
        if (!ok)
            return false;
        if (in.size() - pos < n) {
            ok = false;
            err = std::string("truncated field '") + name + "'";
            return false;
        }
        return true;
    }
    std::uint64_t take(std::size_t n)
    {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < n; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(in[pos + i]))
                 << (8 * i);
        pos += n;
        return v;
    }

    void u8(const char *name, std::uint8_t &v)
    {
        if (need(1, name))
            v = static_cast<std::uint8_t>(take(1));
    }
    void u32(const char *name, std::uint32_t &v)
    {
        if (need(4, name))
            v = static_cast<std::uint32_t>(take(4));
    }
    void u64(const char *name, std::uint64_t &v)
    {
        if (need(8, name))
            v = take(8);
    }
    void i32(const char *name, std::int32_t &v)
    {
        if (need(4, name))
            v = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(take(4)));
    }
    void f64(const char *name, double &v)
    {
        if (need(8, name))
            v = std::bit_cast<double>(take(8));
    }
    void str(const char *name, std::string &v)
    {
        if (!need(2, name))
            return;
        const auto len = static_cast<std::size_t>(take(2));
        if (!need(len, name))
            return;
        v.assign(in.substr(pos, len));
        pos += len;
    }
    void bytes(const char *name, std::string &v)
    {
        if (!need(4, name))
            return;
        const auto len = static_cast<std::size_t>(take(4));
        if (!need(len, name))
            return;
        v.assign(in.substr(pos, len));
        pos += len;
    }
    void u64vec(const char *name, std::vector<std::uint64_t> &v)
    {
        v.clear();
        if (!need(4, name))
            return;
        const auto count = static_cast<std::size_t>(take(4));
        // Each element is 8 bytes: a forged count larger than the
        // remaining payload fails fast instead of allocating.
        if (!need(count * 8, name))
            return;
        v.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            v.push_back(take(8));
    }
    template <typename T>
    void list(const char *name, std::vector<T> &items)
    {
        items.clear();
        if (!need(4, name))
            return;
        const auto count = static_cast<std::size_t>(take(4));
        // Every sub-message encodes at least one byte, so a count
        // beyond the remaining bytes can never decode; reject it
        // before reserving anything.
        if (count > in.size() - pos) {
            ok = false;
            err = std::string("oversized list '") + name + "'";
            return;
        }
        items.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            items.emplace_back();
            visitFields(items.back(), *this);
            if (!ok)
                return;
        }
    }
};

} // namespace cmpqos

#endif // CMPQOS_COMMON_WIRE_CODEC_HH
