/**
 * @file
 * Clang thread-safety annotations for the concurrent subsystems.
 *
 * The macros expand to Clang's capability attributes when compiling
 * with Clang and to nothing everywhere else, so annotated code builds
 * unchanged under GCC. The `CMPQOS_THREAD_SAFETY` CMake option turns
 * on `-Wthread-safety` (Clang only); with `CMPQOS_WERROR=ON` any
 * violation of the contracts below fails the build.
 *
 * Two kinds of capability are used in this codebase:
 *
 *  - cmpqos::Mutex, a real lock (wrapping std::mutex) whose
 *    acquire/release sites the analysis tracks exactly. ThreadPool is
 *    the one class with genuinely contended state, and it is fully
 *    checked: every access to its batch-cursor fields must hold mu_.
 *
 *  - cmpqos::OwnerRole, a phantom capability with no runtime state.
 *    Most shared structures here (NodeWorker, ClusterEngine's
 *    admission counters, the telemetry collector's consumer side, the
 *    SPSC ring endpoints) are not lock-protected: exclusivity comes
 *    from the barrier-stepped ownership protocol (see engine.hh).
 *    A role names that protocol so the compiler can still enforce the
 *    *internal* discipline — members tagged CMPQOS_GUARDED_BY(role)
 *    are only reachable through entry points that assert the role,
 *    and private helpers declare CMPQOS_REQUIRES(role) so they cannot
 *    be called from a context that never established ownership.
 *    grant() is Clang's assert_capability: "the surrounding protocol
 *    guarantees exclusivity here" — exactly the barrier handoff.
 */

#ifndef CMPQOS_COMMON_ANNOTATIONS_HH
#define CMPQOS_COMMON_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define CMPQOS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CMPQOS_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (name shown in warnings). */
#define CMPQOS_CAPABILITY(x) CMPQOS_THREAD_ANNOTATION(capability(x))
/** Marks an RAII class whose lifetime holds a capability. */
#define CMPQOS_SCOPED_CAPABILITY CMPQOS_THREAD_ANNOTATION(scoped_lockable)
/** Data member readable/writable only while holding @p x. */
#define CMPQOS_GUARDED_BY(x) CMPQOS_THREAD_ANNOTATION(guarded_by(x))
/** Pointee readable/writable only while holding @p x. */
#define CMPQOS_PT_GUARDED_BY(x) CMPQOS_THREAD_ANNOTATION(pt_guarded_by(x))
/** Function callable only while holding the listed capabilities. */
#define CMPQOS_REQUIRES(...) \
    CMPQOS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/** Function callable while holding the capabilities at least shared. */
#define CMPQOS_REQUIRES_SHARED(...) \
    CMPQOS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/** Function acquires the listed capabilities (or `this` if empty). */
#define CMPQOS_ACQUIRE(...) \
    CMPQOS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/** Function releases the listed capabilities (or `this` if empty). */
#define CMPQOS_RELEASE(...) \
    CMPQOS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/** Function conditionally acquires; first arg is the success value. */
#define CMPQOS_TRY_ACQUIRE(...) \
    CMPQOS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/** Function must NOT be called while holding the capabilities. */
#define CMPQOS_EXCLUDES(...) \
    CMPQOS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/** Asserts (without acquiring) that @p x is held past this call. */
#define CMPQOS_ASSERT_CAPABILITY(x) \
    CMPQOS_THREAD_ANNOTATION(assert_capability(x))
/** Function returns a reference aliasing capability @p x. */
#define CMPQOS_RETURN_CAPABILITY(x) \
    CMPQOS_THREAD_ANNOTATION(lock_returned(x))
/** Opt a function out of the analysis (use sparingly, say why). */
#define CMPQOS_NO_THREAD_SAFETY_ANALYSIS \
    CMPQOS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cmpqos
{

/**
 * std::mutex wrapped as an annotated capability. libstdc++'s
 * std::mutex carries no capability attributes, so guarded data would
 * be invisible to the analysis without this shim.
 */
class CMPQOS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() CMPQOS_ACQUIRE() { m_.lock(); }
    void unlock() CMPQOS_RELEASE() { m_.unlock(); }
    bool try_lock() CMPQOS_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    // qoslint:allow(raw-mutex): this wrapper is the one sanctioned
    // home of std::mutex; everything else must go through it.
    std::mutex m_;
};

/**
 * RAII lock for cmpqos::Mutex, with manual unlock()/lock() for
 * drop-the-lock-around-work sections. Satisfies BasicLockable, so it
 * is the lock argument for std::condition_variable_any waits (the
 * wait's internal unlock/relock happens inside a system header, which
 * the analysis treats as opaque — the capability is considered held
 * across the wait, which is exactly the guarantee re-established on
 * wakeup).
 */
class CMPQOS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) CMPQOS_ACQUIRE(m) : mu_(m), held_(true)
    {
        mu_.lock();
    }

    ~MutexLock() CMPQOS_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Temporarily drop the lock (re-take with lock()). */
    void
    unlock() CMPQOS_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    /** Re-take a lock dropped with unlock(). */
    void
    lock() CMPQOS_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex &mu_;
    bool held_;
};

/**
 * A phantom capability for protocol-established exclusive ownership.
 *
 * No runtime state and no blocking: grant() tells the analysis that
 * the calling context owns the role, which is true by construction of
 * the surrounding protocol (the cluster engine's quantum barriers
 * hand each NodeWorker to exactly one thread at a time; the driver
 * thread alone runs placement and drains telemetry). Public entry
 * points grant the role they embody; private helpers declare
 * CMPQOS_REQUIRES(role) so they are uncallable from unowned contexts.
 */
class CMPQOS_CAPABILITY("role") OwnerRole
{
  public:
    OwnerRole() = default;
    OwnerRole(const OwnerRole &) = delete;
    OwnerRole &operator=(const OwnerRole &) = delete;

    /** Assert that the ownership protocol grants the caller this
     *  role for the duration of the enclosing scope. */
    void grant() const CMPQOS_ASSERT_CAPABILITY(this) {}
};

} // namespace cmpqos

#endif // CMPQOS_COMMON_ANNOTATIONS_HH
