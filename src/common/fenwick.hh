/**
 * @file
 * A Fenwick (binary indexed) tree over integer counts, with an
 * O(log n) "find the index holding the k-th unit" query.
 *
 * Used by the LRU stack-distance sampler (src/workload) to locate the
 * d-th most-recently-used block among active timestamp slots.
 */

#ifndef CMPQOS_COMMON_FENWICK_HH
#define CMPQOS_COMMON_FENWICK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace cmpqos
{

/**
 * Fenwick tree over a fixed-capacity array of non-negative counts.
 */
class FenwickTree
{
  public:
    /** Build a tree of @p size zero-initialised slots. */
    explicit FenwickTree(std::size_t size)
        : tree_(size + 1, 0), total_(0)
    {
    }

    /** Number of addressable slots. */
    std::size_t size() const { return tree_.size() - 1; }

    /** Sum of all slot values. */
    std::int64_t total() const { return total_; }

    /** Add @p delta to slot @p idx (0-based). */
    void
    add(std::size_t idx, std::int64_t delta)
    {
        cmpqos_assert(idx < size(), "fenwick index %zu out of range", idx);
        total_ += delta;
        for (std::size_t i = idx + 1; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Prefix sum of slots [0, idx] (0-based, inclusive). */
    std::int64_t
    prefixSum(std::size_t idx) const
    {
        cmpqos_assert(idx < size(), "fenwick index %zu out of range", idx);
        std::int64_t sum = 0;
        for (std::size_t i = idx + 1; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

    /** Sum of slots in [lo, hi] inclusive. */
    std::int64_t
    rangeSum(std::size_t lo, std::size_t hi) const
    {
        cmpqos_assert(lo <= hi, "fenwick range inverted");
        std::int64_t s = prefixSum(hi);
        if (lo > 0)
            s -= prefixSum(lo - 1);
        return s;
    }

    /**
     * Find the smallest index idx such that prefixSum(idx) >= k,
     * for k in [1, total()]. All slot values must be non-negative
     * for this query to be meaningful.
     */
    std::size_t
    findKth(std::int64_t k) const
    {
        cmpqos_assert(k >= 1 && k <= total_,
                      "findKth k=%lld out of [1,%lld]",
                      static_cast<long long>(k),
                      static_cast<long long>(total_));
        std::size_t pos = 0;
        std::size_t mask = 1;
        while ((mask << 1) <= size())
            mask <<= 1;
        std::int64_t remaining = k;
        for (; mask > 0; mask >>= 1) {
            std::size_t nxt = pos + mask;
            if (nxt < tree_.size() && tree_[nxt] < remaining) {
                pos = nxt;
                remaining -= tree_[nxt];
            }
        }
        return pos; // 0-based slot index
    }

  private:
    std::vector<std::int64_t> tree_;
    std::int64_t total_;
};

} // namespace cmpqos

#endif // CMPQOS_COMMON_FENWICK_HH
