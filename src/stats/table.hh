/**
 * @file
 * Paper-style ASCII table and series printing for the benchmark
 * harnesses. Every bench binary prints the rows/columns of the table
 * or figure it reproduces through this printer, plus optional CSV.
 */

#ifndef CMPQOS_STATS_TABLE_HH
#define CMPQOS_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace cmpqos::stats
{

/**
 * Collects rows of string cells and renders them with aligned columns.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render to the given stream as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header first if present). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows (excludes header). */
    std::size_t rows() const { return rows_.size(); }

    /** Format helpers for consistent numeric cells. */
    static std::string fmt(double v, int precision = 3);
    static std::string fmtPercent(double v, int precision = 1);
    static std::string fmtInt(long long v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a horizontal ASCII bar chart row: label, value, scaled bar.
 * Useful for figure-style output (e.g., normalized throughput bars).
 */
std::string asciiBar(const std::string &label, double value, double maxValue,
                     int width = 40, const std::string &suffix = "");

} // namespace cmpqos::stats

#endif // CMPQOS_STATS_TABLE_HH
