/**
 * @file
 * Scalar event counters, in the spirit of gem5's Stats package.
 */

#ifndef CMPQOS_STATS_COUNTER_HH
#define CMPQOS_STATS_COUNTER_HH

#include <cstdint>
#include <string>

namespace cmpqos::stats
{

/**
 * A named monotonically adjustable scalar counter.
 */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    std::uint64_t value() const { return value_; }

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t d) { value_ += d; return *this; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/**
 * Ratio of two counters, guarded against division by zero.
 * Returned as a plain double; callers decide formatting.
 */
inline double
ratio(std::uint64_t numer, std::uint64_t denom)
{
    return denom == 0 ? 0.0
                      : static_cast<double>(numer) /
                            static_cast<double>(denom);
}

/** Percentage change from @p before to @p after (positive = increase). */
inline double
percentChange(double before, double after)
{
    return before == 0.0 ? 0.0 : (after - before) / before * 100.0;
}

} // namespace cmpqos::stats

#endif // CMPQOS_STATS_COUNTER_HH
