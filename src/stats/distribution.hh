/**
 * @file
 * Running sample distributions (min / max / mean / stddev) used for
 * the paper's candle plots (Figure 6: min/avg/max wall-clock time).
 */

#ifndef CMPQOS_STATS_DISTRIBUTION_HH
#define CMPQOS_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cmpqos::stats
{

/**
 * Accumulates scalar samples and reports summary statistics.
 * Samples are retained so percentiles can be computed exactly.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Record one sample. */
    void sample(double v);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation (n-1 denominator); 0 if n < 2. */
    double stddev() const;
    double sum() const { return sum_; }

    /**
     * Exact percentile by nearest-rank, p in [0, 100].
     * Sorts a copy; intended for end-of-run reporting.
     */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

    void reset();

  private:
    std::string name_;
    std::vector<double> samples_;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace cmpqos::stats

#endif // CMPQOS_STATS_DISTRIBUTION_HH
