#include "distribution.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cmpqos::stats
{

void
Distribution::sample(double v)
{
    samples_.push_back(v);
    sum_ += v;
    sumSq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Distribution::min() const
{
    cmpqos_assert(!samples_.empty(), "min() on empty distribution");
    return min_;
}

double
Distribution::max() const
{
    cmpqos_assert(!samples_.empty(), "max() on empty distribution");
    return max_;
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double
Distribution::stddev() const
{
    const std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    const double m = mean();
    double var = (sumSq_ - static_cast<double>(n) * m * m) /
                 static_cast<double>(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Distribution::percentile(double p) const
{
    cmpqos_assert(!samples_.empty(), "percentile() on empty distribution");
    cmpqos_assert(p >= 0.0 && p <= 100.0, "percentile p out of range");
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0.0)
        return sorted.front();
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank, sorted.size()) - 1];
}

void
Distribution::reset()
{
    samples_.clear();
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

} // namespace cmpqos::stats
