#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cmpqos::stats
{

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    // Compute per-column widths over header and all rows.
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    std::vector<std::size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    if (!header_.empty())
        widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            os << cell;
            if (i + 1 < cols)
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t line = 0;
        for (std::size_t i = 0; i < cols; ++i)
            line += widths[i] + (i + 1 < cols ? 2 : 0);
        os << std::string(line, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ',';
            os << r[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtPercent(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

std::string
TablePrinter::fmtInt(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
asciiBar(const std::string &label, double value, double maxValue, int width,
         const std::string &suffix)
{
    std::ostringstream oss;
    int filled = 0;
    if (maxValue > 0.0) {
        filled = static_cast<int>(value / maxValue *
                                  static_cast<double>(width) + 0.5);
        filled = std::clamp(filled, 0, width);
    }
    oss << label << " |" << std::string(filled, '#')
        << std::string(width - filled, ' ') << "| "
        << TablePrinter::fmt(value, 3) << suffix;
    return oss.str();
}

} // namespace cmpqos::stats
