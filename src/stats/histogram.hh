/**
 * @file
 * Fixed-width bucket histogram for distributions over bounded ranges
 * (e.g., per-set occupancy, stack-distance realisations).
 */

#ifndef CMPQOS_STATS_HISTOGRAM_HH
#define CMPQOS_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cmpqos::stats
{

/**
 * Histogram over [lo, hi) with a fixed bucket count; samples outside
 * the range are clamped into the first/last bucket and counted.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets,
              std::string name = "");

    void sample(double v, std::uint64_t weight = 1);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    /** Lower edge of bucket i. */
    double bucketLo(std::size_t i) const;
    std::uint64_t totalSamples() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::string &name() const { return name_; }

    /** Mean of recorded samples (using bucket midpoints for clamped). */
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    void reset();

  private:
    std::string name_;
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

} // namespace cmpqos::stats

#endif // CMPQOS_STATS_HISTOGRAM_HH
