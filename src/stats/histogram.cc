#include "histogram.hh"

#include "common/logging.hh"

namespace cmpqos::stats
{

Histogram::Histogram(double lo, double hi, std::size_t buckets,
                     std::string name)
    : name_(std::move(name)), lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    cmpqos_assert(hi > lo, "histogram range must be non-empty");
    cmpqos_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    std::size_t idx;
    if (v < lo_) {
        underflow_ += weight;
        idx = 0;
    } else if (v >= hi_) {
        overflow_ += weight;
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
    }
    counts_[idx] += weight;
    total_ += weight;
    sum_ += v * static_cast<double>(weight);
}

double
Histogram::bucketLo(std::size_t i) const
{
    cmpqos_assert(i < counts_.size(), "bucket index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = underflow_ = overflow_ = 0;
    sum_ = 0.0;
}

} // namespace cmpqos::stats
