#include "connection.hh"

#include <ostream>
#include <sstream>

#include "common/random.hh"

namespace cmpqos
{

const char *
connFaultTypeName(ConnFaultType t)
{
    switch (t) {
      case ConnFaultType::TruncateFrame: return "truncate";
      case ConnFaultType::OversizeFrame: return "oversize";
      case ConnFaultType::GarbageBytes: return "garbage";
      case ConnFaultType::CorruptByte: return "corrupt";
    }
    return "?";
}

std::string
ConnFaultSpec::format() const
{
    std::string s = connFaultTypeName(type);
    s += ' ';
    s += std::to_string(param);
    if (type == ConnFaultType::GarbageBytes) {
        s += ' ';
        s += std::to_string(seed);
    }
    return s;
}

std::string
ConnFaultPlan::summary() const
{
    std::string s;
    for (const ConnFaultSpec &f : faults) {
        if (!s.empty())
            s += "; ";
        s += f.format();
    }
    return s;
}

void
ConnFaultPlan::write(std::ostream &os) const
{
    for (const ConnFaultSpec &f : faults)
        os << f.format() << '\n';
}

bool
ConnFaultPlan::tryParse(std::istream &is, ConnFaultPlan &out,
                        std::string &error)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string word;
        if (!(fields >> word))
            continue; // blank / comment-only line
        ConnFaultSpec spec;
        if (word == "truncate")
            spec.type = ConnFaultType::TruncateFrame;
        else if (word == "oversize")
            spec.type = ConnFaultType::OversizeFrame;
        else if (word == "garbage")
            spec.type = ConnFaultType::GarbageBytes;
        else if (word == "corrupt")
            spec.type = ConnFaultType::CorruptByte;
        else {
            error = "line " + std::to_string(lineno) +
                    ": unknown directive '" + word + "'";
            return false;
        }
        if (!(fields >> spec.param)) {
            error = "line " + std::to_string(lineno) + ": '" + word +
                    "' needs a numeric parameter";
            return false;
        }
        if (spec.type == ConnFaultType::GarbageBytes)
            fields >> spec.seed; // optional; default kept on failure
        out.faults.push_back(spec);
    }
    return true;
}

std::string
corruptFrame(std::string_view frame, const ConnFaultSpec &fault)
{
    switch (fault.type) {
      case ConnFaultType::TruncateFrame:
        return std::string(
            frame.substr(0, static_cast<std::size_t>(fault.param)));
      case ConnFaultType::OversizeFrame: {
        std::string out;
        const auto len = static_cast<std::uint32_t>(fault.param);
        for (int i = 0; i < 4; ++i)
            out.push_back(
                static_cast<char>((len >> (8 * i)) & 0xff));
        return out;
      }
      case ConnFaultType::GarbageBytes: {
        std::string out;
        Rng rng(fault.seed);
        out.reserve(static_cast<std::size_t>(fault.param));
        for (std::uint64_t i = 0; i < fault.param; ++i)
            out.push_back(static_cast<char>(rng.next() & 0xff));
        return out;
      }
      case ConnFaultType::CorruptByte: {
        std::string out(frame);
        if (fault.param < out.size())
            out[static_cast<std::size_t>(fault.param)] ^= 0x01;
        return out;
      }
    }
    return std::string(frame);
}

} // namespace cmpqos
