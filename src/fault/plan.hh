/**
 * @file
 * Declarative fault plans for the cluster engine.
 *
 * A FaultPlan is a list of faults pinned to placement quanta of the
 * simulated clock — node crashes and restarts fire at a quantum
 * barrier, probe drops / probe timeouts / duplicated negotiation
 * replies / slow quanta cover a window of quanta. Because every fault
 * is keyed to *virtual* time and executed by the driver thread at a
 * barrier, a plan replays bit-identically at any worker-thread count;
 * `seed + plan` is a complete reproducer for any failure it provokes.
 *
 * Plans have a line-oriented text form (one directive per line, `#`
 * comments), so failing cases can be copied straight out of a test
 * log into `cluster_driver --fault-plan`:
 *
 *     crash <node> <quantum>
 *     restart <node> <quantum>
 *     probe-drop <node> <quantum> [quanta]
 *     probe-timeout <node> <quantum> [quanta] [failures]
 *     dup-reply <node> <quantum> [quanta]
 *     slow-quantum <node> <quantum> [quanta] [stall_cycles]
 *
 * Shard-link directives (federated engine only; the target id names a
 * SHARD, not a node — a plan containing them is rejected by the
 * single-process engine):
 *
 *     link-drop <shard> <quantum> [quanta]
 *     link-dup <shard> <quantum> [quanta]
 *     link-delay <shard> <quantum> [quanta] [delay_cycles]
 *     partition <shard> <quantum> [quanta]
 */

#ifndef CMPQOS_FAULT_PLAN_HH
#define CMPQOS_FAULT_PLAN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cmpqos
{

/** The fault taxonomy the injector knows how to execute. */
enum class FaultType
{
    /** Node dies at a quantum barrier: running jobs fail, waiting
     *  jobs are offered for relocation, probes stop. */
    NodeCrash,
    /** Crashed node comes back with a fresh (empty) framework. */
    NodeRestart,
    /** GAC->LAC probes to the node are silently lost (no reply). */
    ProbeDrop,
    /** Probes time out `failures` times before succeeding; beyond
     *  the retry budget the node counts as unreachable. */
    ProbeTimeout,
    /** The node's negotiation acceptance reply arrives twice. */
    DuplicateReply,
    /** The node advances `stallCycles` short of each quantum target
     *  inside the window (a latency spike, in virtual time). */
    SlowQuantum,
    /** Coordinator->shard messages lose their first transmission and
     *  are retransmitted (federated engine; target is a shard id). */
    LinkDrop,
    /** Coordinator->shard messages are delivered twice; the shard's
     *  sequence dedup must absorb the copy (target is a shard id). */
    LinkDup,
    /** Coordinator->shard messages are charged `stallCycles` of
     *  virtual link latency (target is a shard id). */
    LinkDelay,
    /** The shard is unreachable for the window: its nodes take no
     *  placements and its quantum advances are deferred until the
     *  partition heals (target is a shard id). */
    Partition,
};

const char *faultTypeName(FaultType t);

/** True when the fault targets a shard link (federated engine only)
 *  rather than a node. */
bool faultTargetsShard(FaultType t);

/** One planned fault. */
struct FaultSpec
{
    FaultType type = FaultType::NodeCrash;
    NodeId node = 0;
    /** Quantum index the fault fires at (crash/restart) or the first
     *  quantum of its window (the rest). */
    std::uint64_t quantum = 0;
    /** Window length in quanta (window faults only). */
    std::uint64_t durationQuanta = 1;
    /** ProbeTimeout: timed-out attempts before a probe succeeds. */
    unsigned failures = 1;
    /** SlowQuantum: cycles the node falls short of each target.
     *  LinkDelay: virtual link latency charged per message. */
    Cycle stallCycles = 250'000;

    /** The directive's text form (one plan line). */
    std::string format() const;
};

/**
 * An ordered list of faults plus the text round-trip and the seeded
 * random generator the chaos tests sweep with.
 */
struct FaultPlan
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Semicolon-joined directives — the one-line reproducer form. */
    std::string summary() const;

    /** One directive per line (re-parseable). */
    void write(std::ostream &os) const;

    /**
     * Parse the text form. @return false (with @p error filled) on a
     * malformed directive; the plan is left partially filled.
     */
    static bool tryParse(std::istream &is, FaultPlan &out,
                        std::string &error);

    /** Parse a plan file; fatal() on I/O or syntax errors. */
    static FaultPlan parseFile(const std::string &path);

    /**
     * Seeded random plan over @p nodes nodes and quanta
     * [1, max_quantum]: roughly @p events faults mixing every type,
     * with most crashes paired with a later restart. Deterministic in
     * @p seed.
     */
    static FaultPlan random(std::uint64_t seed, int nodes,
                            std::uint64_t max_quantum,
                            std::size_t events);

    /**
     * Seeded random plan for a federated run: node faults as random()
     * plus shard-link faults (drop/dup/delay/partition) over @p shards
     * shards. Deterministic in @p seed.
     */
    static FaultPlan randomFederated(std::uint64_t seed, int nodes,
                                     int shards,
                                     std::uint64_t max_quantum,
                                     std::size_t events);

    /** True when any directive targets a shard link. */
    bool hasLinkFaults() const;

    /**
     * Fatal() unless every node directive targets a node in
     * [0, nodes) and every shard-link directive targets a shard in
     * [0, shards). @p shards 0 (the single-process engine) rejects
     * any plan containing link faults — they would silently no-op.
     */
    void validate(int nodes, int shards = 0) const;
};

} // namespace cmpqos

#endif // CMPQOS_FAULT_PLAN_HH
