#include "plan.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace cmpqos
{

const char *
faultTypeName(FaultType t)
{
    switch (t) {
      case FaultType::NodeCrash: return "crash";
      case FaultType::NodeRestart: return "restart";
      case FaultType::ProbeDrop: return "probe-drop";
      case FaultType::ProbeTimeout: return "probe-timeout";
      case FaultType::DuplicateReply: return "dup-reply";
      case FaultType::SlowQuantum: return "slow-quantum";
      case FaultType::LinkDrop: return "link-drop";
      case FaultType::LinkDup: return "link-dup";
      case FaultType::LinkDelay: return "link-delay";
      case FaultType::Partition: return "partition";
    }
    return "?";
}

bool
faultTargetsShard(FaultType t)
{
    return t == FaultType::LinkDrop || t == FaultType::LinkDup ||
           t == FaultType::LinkDelay || t == FaultType::Partition;
}

namespace
{

bool
faultTypeFromName(const std::string &name, FaultType &out)
{
    for (FaultType t :
         {FaultType::NodeCrash, FaultType::NodeRestart,
          FaultType::ProbeDrop, FaultType::ProbeTimeout,
          FaultType::DuplicateReply, FaultType::SlowQuantum,
          FaultType::LinkDrop, FaultType::LinkDup,
          FaultType::LinkDelay, FaultType::Partition}) {
        if (name == faultTypeName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
hasWindow(FaultType t)
{
    return t != FaultType::NodeCrash && t != FaultType::NodeRestart;
}

} // namespace

std::string
FaultSpec::format() const
{
    std::ostringstream os;
    os << faultTypeName(type) << " " << node << " " << quantum;
    if (hasWindow(type))
        os << " " << durationQuanta;
    if (type == FaultType::ProbeTimeout)
        os << " " << failures;
    if (type == FaultType::SlowQuantum || type == FaultType::LinkDelay)
        os << " " << stallCycles;
    return os.str();
}

std::string
FaultPlan::summary() const
{
    if (faults.empty())
        return "(empty)";
    std::string s;
    for (const FaultSpec &f : faults) {
        if (!s.empty())
            s += "; ";
        s += f.format();
    }
    return s;
}

void
FaultPlan::write(std::ostream &os) const
{
    for (const FaultSpec &f : faults)
        os << f.format() << "\n";
}

bool
FaultPlan::tryParse(std::istream &is, FaultPlan &out, std::string &error)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue; // blank / comment-only line
        FaultSpec spec;
        if (!faultTypeFromName(word, spec.type)) {
            error = "line " + std::to_string(lineno) +
                    ": unknown fault type '" + word + "'";
            return false;
        }
        long long node = -1;
        if (!(ls >> node >> spec.quantum) || node < 0) {
            error = "line " + std::to_string(lineno) +
                    ": expected '" + word + " <node> <quantum> ...'";
            return false;
        }
        spec.node = static_cast<NodeId>(node);
        if (hasWindow(spec.type)) {
            if (ls >> spec.durationQuanta) {
                if (spec.durationQuanta == 0) {
                    error = "line " + std::to_string(lineno) +
                            ": window length must be >= 1 quantum";
                    return false;
                }
            } else {
                spec.durationQuanta = 1;
            }
        }
        if (spec.type == FaultType::ProbeTimeout)
            ls >> spec.failures;
        if (spec.type == FaultType::SlowQuantum ||
            spec.type == FaultType::LinkDelay)
            ls >> spec.stallCycles;
        out.faults.push_back(spec);
    }
    return true;
}

FaultPlan
FaultPlan::parseFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        cmpqos_fatal("cannot open fault plan '%s'", path.c_str());
    FaultPlan plan;
    std::string error;
    if (!tryParse(is, plan, error))
        cmpqos_fatal("fault plan '%s': %s", path.c_str(),
                     error.c_str());
    return plan;
}

FaultPlan
FaultPlan::random(std::uint64_t seed, int nodes,
                  std::uint64_t max_quantum, std::size_t events)
{
    cmpqos_assert(nodes > 0, "random plan needs at least one node");
    cmpqos_assert(max_quantum > 0, "random plan needs a horizon");
    Rng rng(seed);
    FaultPlan plan;
    for (std::size_t i = 0; i < events; ++i) {
        FaultSpec spec;
        spec.node = static_cast<NodeId>(
            rng.uniformInt(static_cast<std::uint64_t>(nodes)));
        spec.quantum = 1 + rng.uniformInt(max_quantum);
        switch (rng.uniformInt(5)) {
          case 0: {
            spec.type = FaultType::NodeCrash;
            plan.faults.push_back(spec);
            // Most crashes heal: pair a restart a few quanta later so
            // random plans exercise reconciliation both ways.
            if (rng.uniform() < 0.75) {
                FaultSpec heal = spec;
                heal.type = FaultType::NodeRestart;
                heal.quantum += 1 + rng.uniformInt(4);
                plan.faults.push_back(heal);
            }
            continue;
          }
          case 1:
            spec.type = FaultType::ProbeDrop;
            spec.durationQuanta = 1 + rng.uniformInt(3);
            break;
          case 2:
            spec.type = FaultType::ProbeTimeout;
            spec.durationQuanta = 1 + rng.uniformInt(3);
            // Mix recoverable (within the default retry budget) and
            // unreachable (beyond it) timeout windows.
            spec.failures =
                1 + static_cast<unsigned>(rng.uniformInt(5));
            break;
          case 3:
            spec.type = FaultType::DuplicateReply;
            spec.durationQuanta = 1 + rng.uniformInt(3);
            break;
          default:
            spec.type = FaultType::SlowQuantum;
            spec.durationQuanta = 1 + rng.uniformInt(4);
            spec.stallCycles = 50'000 + rng.uniformInt(400'000);
            break;
        }
        plan.faults.push_back(spec);
    }
    return plan;
}

FaultPlan
FaultPlan::randomFederated(std::uint64_t seed, int nodes, int shards,
                           std::uint64_t max_quantum,
                           std::size_t events)
{
    cmpqos_assert(shards > 0, "federated plan needs at least one shard");
    // Node faults first (same generator, distinct stream), then a
    // link-fault sprinkle over the shards: roughly one link event per
    // three node events, mixing every link type.
    FaultPlan plan = random(seed, nodes, max_quantum, events);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
    const std::size_t link_events = 1 + events / 3;
    for (std::size_t i = 0; i < link_events; ++i) {
        FaultSpec spec;
        spec.node = static_cast<NodeId>(
            rng.uniformInt(static_cast<std::uint64_t>(shards)));
        spec.quantum = 1 + rng.uniformInt(max_quantum);
        spec.durationQuanta = 1 + rng.uniformInt(3);
        switch (rng.uniformInt(4)) {
          case 0: spec.type = FaultType::LinkDrop; break;
          case 1: spec.type = FaultType::LinkDup; break;
          case 2:
            spec.type = FaultType::LinkDelay;
            spec.stallCycles = 10'000 + rng.uniformInt(200'000);
            break;
          default: spec.type = FaultType::Partition; break;
        }
        plan.faults.push_back(spec);
    }
    return plan;
}

bool
FaultPlan::hasLinkFaults() const
{
    for (const FaultSpec &f : faults)
        if (faultTargetsShard(f.type))
            return true;
    return false;
}

void
FaultPlan::validate(int nodes, int shards) const
{
    for (const FaultSpec &f : faults) {
        if (faultTargetsShard(f.type)) {
            if (shards <= 0)
                cmpqos_fatal("fault plan contains shard-link faults "
                             "('%s') but the engine is not federated",
                             f.format().c_str());
            if (f.node < 0 || f.node >= shards)
                cmpqos_fatal("fault plan targets shard %d, federation "
                             "has %d shards ('%s')",
                             f.node, shards, f.format().c_str());
        } else if (f.node < 0 || f.node >= nodes) {
            cmpqos_fatal("fault plan targets node %d, cluster has %d "
                         "nodes ('%s')",
                         f.node, nodes, f.format().c_str());
        }
        if (hasWindow(f.type) && f.durationQuanta == 0)
            cmpqos_fatal("fault plan window must cover >= 1 quantum "
                         "('%s')",
                         f.format().c_str());
    }
}

} // namespace cmpqos
