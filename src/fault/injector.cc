#include "injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

FaultInjector::FaultInjector(const FaultPlan &plan, Cycle quantum_cycles)
{
    cmpqos_assert(quantum_cycles > 0, "injector needs a quantum length");
    for (const FaultSpec &spec : plan.faults) {
        const Cycle begin = spec.quantum * quantum_cycles;
        switch (spec.type) {
          case FaultType::NodeCrash:
          case FaultType::NodeRestart:
            actions_.push_back(
                {spec.type, spec.node, begin, spec.quantum});
            break;
          default:
            windows_.push_back({spec.type, spec.node, begin,
                                begin + spec.durationQuanta *
                                            quantum_cycles,
                                spec.failures, spec.stallCycles});
            break;
        }
    }
    // Stable: same-barrier actions keep plan order (a plan may crash
    // and restart the same node at one barrier; the crash must win).
    std::stable_sort(actions_.begin(), actions_.end(),
                     [](const FaultAction &a, const FaultAction &b) {
                         return a.when < b.when;
                     });
}

std::vector<FaultAction>
FaultInjector::actionsDue(Cycle t)
{
    driver_.grant(); // barrier protocol: driver thread only
    std::vector<FaultAction> due;
    while (cursor_ < actions_.size() && actions_[cursor_].when <= t)
        due.push_back(actions_[cursor_++]);
    return due;
}

Cycle
FaultInjector::nextEventTime(Cycle after) const
{
    driver_.grant(); // barrier protocol: driver thread only
    Cycle next = maxCycle;
    if (cursor_ < actions_.size() && actions_[cursor_].when > after)
        next = actions_[cursor_].when;
    for (const Window &w : windows_) {
        if (w.begin > after && w.begin < next)
            next = w.begin;
        else if (w.begin <= after && after < w.end && after + 1 < next)
            // Window active right now: report immediate activity so
            // the engine steps quantum-by-quantum instead of jumping
            // (window faults apply per quantum inside the window).
            next = after + 1;
    }
    return next;
}

bool
FaultInjector::inWindow(FaultType type, NodeId node, Cycle t) const
{
    for (const Window &w : windows_)
        if (w.type == type && w.node == node && t >= w.begin &&
            t < w.end)
            return true;
    return false;
}

bool
FaultInjector::probeDropped(NodeId node, Cycle t) const
{
    return inWindow(FaultType::ProbeDrop, node, t);
}

unsigned
FaultInjector::probeTimeoutFailures(NodeId node, Cycle t) const
{
    unsigned failures = 0;
    for (const Window &w : windows_)
        if (w.type == FaultType::ProbeTimeout && w.node == node &&
            t >= w.begin && t < w.end)
            failures = std::max(failures, w.failures);
    return failures;
}

bool
FaultInjector::duplicateReply(NodeId node, Cycle t) const
{
    return inWindow(FaultType::DuplicateReply, node, t);
}

Cycle
FaultInjector::stallCycles(NodeId node, Cycle t) const
{
    Cycle stall = 0;
    for (const Window &w : windows_)
        if (w.type == FaultType::SlowQuantum && w.node == node &&
            t >= w.begin && t < w.end)
            stall = std::max(stall, w.stall);
    return stall;
}

bool
FaultInjector::linkDropped(int shard, Cycle t) const
{
    return inWindow(FaultType::LinkDrop, static_cast<NodeId>(shard), t);
}

bool
FaultInjector::linkDuplicated(int shard, Cycle t) const
{
    return inWindow(FaultType::LinkDup, static_cast<NodeId>(shard), t);
}

Cycle
FaultInjector::linkDelayCycles(int shard, Cycle t) const
{
    Cycle delay = 0;
    for (const Window &w : windows_)
        if (w.type == FaultType::LinkDelay &&
            w.node == static_cast<NodeId>(shard) && t >= w.begin &&
            t < w.end)
            delay = std::max(delay, w.stall);
    return delay;
}

bool
FaultInjector::partitioned(int shard, Cycle t) const
{
    return inWindow(FaultType::Partition, static_cast<NodeId>(shard),
                    t);
}

} // namespace cmpqos
