#include "invariants.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "cpu/dvfs.hh"

namespace cmpqos
{

std::string
InvariantViolation::format() const
{
    std::ostringstream os;
    os << invariant << " node=" << node << " t=" << time << ": "
       << detail;
    return os.str();
}

InvariantChecker::InvariantChecker(std::size_t max_recorded)
    : maxRecorded_(max_recorded)
{
}

void
InvariantChecker::record(const char *invariant, NodeId node, Cycle now,
                         const std::string &subject, std::string detail)
{
    // One report per breached condition, not one per barrier.
    std::string key = invariant;
    key += '/';
    key += std::to_string(node);
    key += '/';
    key += subject;
    if (!reported_.insert(std::move(key)).second)
        return;
    ++total_;
    if (violations_.size() < maxRecorded_)
        violations_.push_back(
            {invariant, node, now, std::move(detail)});
}

WaySnapshot
InvariantChecker::captureWays(const QosFramework &fw)
{
    const PartitionedCache &l2 = fw.system().l2();
    const WayAllocationTable &alloc = l2.allocation();
    WaySnapshot snap;
    snap.assoc = alloc.assoc();
    snap.reservedTargets.resize(
        static_cast<std::size_t>(alloc.numCores()), 0);
    for (int c = 0; c < alloc.numCores(); ++c)
        if (alloc.coreClass(c) == CoreClass::Reserved)
            snap.reservedTargets[static_cast<std::size_t>(c)] =
                alloc.target(c);
    const std::uint64_t sets = l2.config().numSets();
    snap.setOwned.resize(sets, 0);
    for (std::uint64_t s = 0; s < sets; ++s) {
        unsigned owned = 0;
        for (int c = 0; c < l2.numCores(); ++c)
            owned += l2.blocksInSet(s, c);
        snap.setOwned[s] = owned;
    }
    return snap;
}

void
InvariantChecker::checkWays(NodeId node, Cycle now,
                            const WaySnapshot &snap)
{
    driver_.grant(); // barrier protocol: driver thread only
    unsigned reserved = 0;
    for (std::size_t c = 0; c < snap.reservedTargets.size(); ++c) {
        const unsigned target = snap.reservedTargets[c];
        reserved += target;
        if (target > snap.assoc) {
            std::ostringstream os;
            os << "core " << c << " target " << target
               << " ways exceeds associativity " << snap.assoc;
            record("way-conservation", node, now,
                   "core" + std::to_string(c), os.str());
        }
    }
    if (reserved > snap.assoc) {
        std::ostringstream os;
        os << "reserved targets sum to " << reserved
           << " ways, associativity is " << snap.assoc;
        record("way-conservation", node, now, "sum", os.str());
    }
    for (std::size_t s = 0; s < snap.setOwned.size(); ++s) {
        if (snap.setOwned[s] > snap.assoc) {
            std::ostringstream os;
            os << "set " << s << " owns " << snap.setOwned[s]
               << " blocks, associativity is " << snap.assoc;
            record("way-conservation", node, now,
                   "set" + std::to_string(s), os.str());
        }
    }
}

namespace
{

const Job *
jobById(const QosFramework &fw, JobId id)
{
    for (const auto &job : fw.jobs())
        if (job->id() == id)
            return job.get();
    return nullptr;
}

} // namespace

void
InvariantChecker::checkPartitions(NodeId node, const QosFramework &fw,
                                  Cycle now)
{
    const PartitionedCache &l2 = fw.system().l2();
    const Scheduler &sched = fw.scheduler();
    const unsigned min_ways = fw.stealing().config().minWays;
    for (int c = 0; c < fw.system().numCores(); ++c) {
        const JobId occupant = sched.reservedOccupant(c);
        if (occupant == invalidJob)
            continue;
        const Job *job = jobById(fw, occupant);
        if (job == nullptr || !job->runsReservedNow())
            continue;
        const unsigned have = l2.targetWays(c);
        const unsigned demanded = job->target().cacheWays;
        unsigned floor = demanded;
        if (job->mode().mode == ExecutionMode::Elastic) {
            const unsigned stolen = fw.stealing().stolenWays(*job);
            floor = demanded > stolen ? demanded - stolen : 0;
            floor = std::max(floor, std::min(min_ways, demanded));
        }
        if (have < floor) {
            std::ostringstream os;
            os << executionModeName(job->mode().mode) << " job "
               << job->id() << " on core " << c << " holds " << have
               << " ways, floor is " << floor << " (demanded "
               << demanded << ")";
            record("strict-partition", node, now,
                   "job" + std::to_string(job->id()), os.str());
        }
    }
}

void
InvariantChecker::checkStealReturns(NodeId node, const QosFramework &fw,
                                    Cycle now)
{
    for (const auto &job : fw.jobs()) {
        if (!fw.stealing().cancelActive(*job))
            continue;
        const unsigned held = fw.stealing().stolenWays(*job);
        if (held != 0) {
            std::ostringstream os;
            os << "job " << job->id() << " cancelled stealing but "
               << held << " stolen ways were not returned";
            record("steal-return", node, now,
                   "job" + std::to_string(job->id()), os.str());
        }
    }
}

void
InvariantChecker::checkReservations(NodeId node, const QosFramework &fw,
                                    Cycle now)
{
    const ResourceTimeline &tl = fw.lac().timeline();
    const ResourceVector &cap = tl.capacity();
    const auto &rs = tl.reservations();
    for (std::size_t i = 0; i < rs.size(); ++i) {
        // Reserved load is piecewise constant between reservation
        // starts, so checking at every start covers every instant.
        const ResourceVector at = tl.reservedAt(rs[i].start);
        if (!at.fitsWithin(cap)) {
            std::ostringstream os;
            os << "at t=" << rs[i].start << " reserved " << at.cores
               << "c/" << at.ways << "w/" << at.bandwidth
               << "bw exceeds capacity " << cap.cores << "c/"
               << cap.ways << "w/" << cap.bandwidth << "bw";
            record("reservation-capacity", node, now,
                   "t" + std::to_string(rs[i].start), os.str());
        }
        for (std::size_t j = i + 1; j < rs.size(); ++j) {
            if (rs[i].job == rs[j].job &&
                rs[i].overlaps(rs[j].start, rs[j].end)) {
                std::ostringstream os;
                os << "job " << rs[i].job
                   << " holds two overlapping reservations (["
                   << rs[i].start << "," << rs[i].end << ") and ["
                   << rs[j].start << "," << rs[j].end << "))";
                record("reservation-capacity", node, now,
                       "job" + std::to_string(rs[i].job), os.str());
            }
        }
    }
}

void
InvariantChecker::checkDeadlines(NodeId node, const QosFramework &fw,
                                 Cycle now)
{
    for (const auto &job : fw.jobs()) {
        if (job->state() != JobState::Completed)
            continue;
        if (!job->countsForQos() || job->deadlineMet())
            continue;
        std::ostringstream os;
        os << executionModeName(job->mode().mode) << " job "
           << job->id() << " (" << job->benchmark()
           << ") completed after its deadline " << job->deadline;
        record("deadline", node, now,
               "job" + std::to_string(job->id()), os.str());
    }
}

void
InvariantChecker::checkFrequencies(NodeId node, const QosFramework &fw,
                                   Cycle now)
{
    for (int c = 0; c < fw.system().numCores(); ++c) {
        const std::uint32_t step = fw.system().core(c).frequencyStep();
        if (!dvfsStepValid(step)) {
            std::ostringstream os;
            os << "core " << c << " at DVFS step " << step
               << ", table has " << numDvfsSteps << " steps";
            record("frequency-bounds", node, now,
                   "core" + std::to_string(c), os.str());
        }
    }
}

void
InvariantChecker::checkBandwidthFloors(NodeId node,
                                       const QosFramework &fw,
                                       Cycle now)
{
    const BandwidthRegulator *bw = fw.system().bandwidth();
    if (bw == nullptr)
        return; // bandwidth partitioning off: nothing to floor
    const Scheduler &sched = fw.scheduler();
    for (int c = 0; c < fw.system().numCores(); ++c) {
        const JobId occupant = sched.reservedOccupant(c);
        if (occupant == invalidJob)
            continue;
        const Job *job = jobById(fw, occupant);
        if (job == nullptr || !job->runsReservedNow())
            continue;
        const unsigned share = bw->share(c);
        const unsigned floor = job->target().bandwidthPercent;
        if (share < floor) {
            std::ostringstream os;
            os << executionModeName(job->mode().mode) << " job "
               << job->id() << " on core " << c << " holds " << share
               << "% bandwidth, admission granted " << floor << "%";
            record("bandwidth-floor", node, now,
                   "job" + std::to_string(job->id()), os.str());
        }
    }
}

void
InvariantChecker::checkNode(NodeId node, const QosFramework &fw,
                            Cycle now)
{
    driver_.grant(); // barrier protocol: driver thread only
    ++checks_;
    checkWays(node, now, captureWays(fw));
    checkPartitions(node, fw, now);
    checkStealReturns(node, fw, now);
    checkReservations(node, fw, now);
    checkDeadlines(node, fw, now);
    checkFrequencies(node, fw, now);
    checkBandwidthFloors(node, fw, now);
}

std::string
InvariantChecker::report(std::size_t max) const
{
    driver_.grant();
    std::string out;
    for (std::size_t i = 0; i < violations_.size() && i < max; ++i) {
        out += violations_[i].format();
        out += '\n';
    }
    if (total_ > violations_.size() || total_ > max) {
        out += "(" + std::to_string(total_) +
               " distinct violations in total)\n";
    }
    return out;
}

} // namespace cmpqos
