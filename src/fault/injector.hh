/**
 * @file
 * Deterministic execution of a FaultPlan against the cluster engine's
 * barrier-stepped clock.
 *
 * The injector compiles a plan's quantum indices into cycle times once
 * and then answers two kinds of queries, both made only by the driver
 * thread at quantum barriers (which is what keeps fault execution
 * bit-identical at any worker-thread count):
 *
 *  - actionsDue(t): crash/restart actions whose barrier has been
 *    reached, in plan order (a consuming cursor — each action fires
 *    exactly once);
 *  - window queries (probeDropped / probeTimeoutFailures /
 *    duplicateReply / stallCycles): read-only membership tests against
 *    the compiled [begin, end) cycle windows.
 *
 * nextEventTime() lets the engine cap its idle-jump shortcut so a
 * quantum with scheduled fault activity is never skipped over.
 */

#ifndef CMPQOS_FAULT_INJECTOR_HH
#define CMPQOS_FAULT_INJECTOR_HH

#include <vector>

#include "common/annotations.hh"
#include "common/types.hh"
#include "fault/plan.hh"

namespace cmpqos
{

/** One compiled crash/restart action. */
struct FaultAction
{
    FaultType type = FaultType::NodeCrash;
    NodeId node = 0;
    /** Barrier cycle the action fires at (quantum * quantum_len). */
    Cycle when = 0;
    std::uint64_t quantum = 0;
};

/**
 * Compiled, replayable fault schedule (see file header).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, Cycle quantum_cycles);

    bool empty() const
    {
        return actions_.empty() && windows_.empty();
    }

    /** Crash/restart actions not yet fired. */
    bool
    actionsPending() const
    {
        driver_.grant();
        return cursor_ < actions_.size();
    }

    /**
     * Consume and return every pending action with `when <= t`, in
     * schedule order (by barrier cycle, ties by plan order).
     */
    std::vector<FaultAction> actionsDue(Cycle t);

    /**
     * Earliest cycle > @p after at which anything is scheduled — a
     * pending action or a window opening. maxCycle when nothing is.
     */
    Cycle nextEventTime(Cycle after) const;

    /** Probes to @p node at time @p t are silently dropped. */
    bool probeDropped(NodeId node, Cycle t) const;

    /**
     * Timed-out probe attempts to @p node at time @p t before one
     * succeeds (0 = no timeout fault active; max over overlapping
     * windows).
     */
    unsigned probeTimeoutFailures(NodeId node, Cycle t) const;

    /** Node @p node delivers its negotiation reply twice at @p t. */
    bool duplicateReply(NodeId node, Cycle t) const;

    /** Cycles @p node falls short of a quantum target starting at
     *  @p t (0 = no slow-quantum window; max over overlaps). */
    Cycle stallCycles(NodeId node, Cycle t) const;

    // Shard-link queries (federated engine; the id names a shard).

    /** Messages to @p shard at @p t lose their first transmission. */
    bool linkDropped(int shard, Cycle t) const;

    /** Messages to @p shard at @p t are delivered twice. */
    bool linkDuplicated(int shard, Cycle t) const;

    /** Virtual link latency charged per message to @p shard at @p t
     *  (0 = healthy link; max over overlapping windows). */
    Cycle linkDelayCycles(int shard, Cycle t) const;

    /** @p shard is unreachable at @p t (transient partition). */
    bool partitioned(int shard, Cycle t) const;

    bool anyWindows() const { return !windows_.empty(); }

  private:
    struct Window
    {
        FaultType type;
        NodeId node;
        Cycle begin;
        Cycle end;
        unsigned failures;
        Cycle stall;
    };

    bool inWindow(FaultType type, NodeId node, Cycle t) const;

    std::vector<FaultAction> actions_; // sorted by (when, plan order)
    /** Single-owner protocol: only the driver thread queries the
     *  injector, at quantum barriers (see file header). The phantom
     *  role documents that and guards the consuming cursor. */
    OwnerRole driver_;
    std::size_t cursor_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::vector<Window> windows_;
};

} // namespace cmpqos

#endif // CMPQOS_FAULT_INJECTOR_HH
