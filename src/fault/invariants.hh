/**
 * @file
 * The invariant-checking oracle: read-only safety properties of one
 * QoS node, evaluated at quantum barriers (and once more after the
 * final drain) while fault plans batter the cluster.
 *
 * Checked invariants:
 *  1. way-conservation — reserved way targets never exceed the L2
 *     associativity (per core and summed over Reserved cores), and no
 *     cache set holds more owned blocks than it has ways;
 *  2. strict-partition — a pinned Strict job's core never has a way
 *     target below the job's reserved share; an Elastic victim never
 *     drops below the stealing floor (min ways) or below
 *     target - stolen;
 *  3. steal-return — while a steal cancellation is in force, every
 *     stolen way has been returned (the victim's target is restored);
 *  4. reservation-capacity — the LAC timeline never commits more than
 *     its capacity at any instant, and no job holds two overlapping
 *     reservations;
 *  5. deadline — every *completed* Strict/Elastic job met its
 *     (possibly renegotiated) deadline. Jobs lost to a crash never
 *     reach Completed, so the crash exemption is structural: they are
 *     reported through the failed-job tallies instead;
 *  6. frequency-bounds — every core's DVFS step indexes the frequency
 *     table (src/cpu/dvfs.hh), so the feedback controller can never
 *     leave a core at an undefined operating point;
 *  7. bandwidth-floor — a reserved running job's regulator share
 *     never drops below the bandwidth percentage admission granted
 *     it, however the controller retunes the pool.
 *
 * Every check is side-effect-free on the simulation (probe-style
 * reads only), so enabling the checker cannot perturb determinism —
 * the zero-perturbation property test pins that.
 *
 * Violations are deduplicated on (invariant, node, subject) so a
 * persistent breach reports once, not once per barrier, and each
 * carries a human-readable detail string for the one-line reproducer.
 */

#ifndef CMPQOS_FAULT_INVARIANTS_HH
#define CMPQOS_FAULT_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/annotations.hh"
#include "common/types.hh"
#include "qos/framework.hh"

namespace cmpqos
{

/** One detected invariant breach. */
struct InvariantViolation
{
    /** Invariant key: "way-conservation", "strict-partition",
     *  "steal-return", "reservation-capacity", "deadline",
     *  "frequency-bounds", "bandwidth-floor". */
    std::string invariant;
    NodeId node = -1;
    Cycle time = 0;
    std::string detail;

    std::string format() const;
};

/**
 * Snapshot of one node's L2 allocation state — the seam the
 * way-conservation mutation test corrupts to prove the oracle fires.
 */
struct WaySnapshot
{
    unsigned assoc = 0;
    /** Per-core reserved way target (0 for non-Reserved cores). */
    std::vector<unsigned> reservedTargets;
    /** Per-set total owned blocks, summed over cores. */
    std::vector<unsigned> setOwned;
};

/**
 * Stateful oracle accumulating violations across barrier checks.
 */
class InvariantChecker
{
  public:
    /** @param max_recorded violations kept verbatim; the total count
     *         keeps growing past it. */
    explicit InvariantChecker(std::size_t max_recorded = 64);

    /** Run every invariant against one quiescent node. */
    void checkNode(NodeId node, const QosFramework &fw, Cycle now);

    /** Way-conservation against an explicit snapshot (test seam). */
    void checkWays(NodeId node, Cycle now, const WaySnapshot &snap);

    /** Capture the allocation state checkWays() consumes. */
    static WaySnapshot captureWays(const QosFramework &fw);

    // clang-format off
    bool ok() const { driver_.grant(); return total_ == 0; }
    std::uint64_t totalViolations() const { driver_.grant(); return total_; }
    std::uint64_t checksRun() const { driver_.grant(); return checks_; }
    // clang-format on
    const std::vector<InvariantViolation> &
    violations() const
    {
        driver_.grant();
        return violations_;
    }

    /** First @p max violations, one per line (empty when ok()). */
    std::string report(std::size_t max = 10) const;

  private:
    void record(const char *invariant, NodeId node, Cycle now,
                const std::string &subject, std::string detail)
        CMPQOS_REQUIRES(driver_);

    void checkPartitions(NodeId node, const QosFramework &fw,
                         Cycle now) CMPQOS_REQUIRES(driver_);
    void checkStealReturns(NodeId node, const QosFramework &fw,
                           Cycle now) CMPQOS_REQUIRES(driver_);
    void checkReservations(NodeId node, const QosFramework &fw,
                           Cycle now) CMPQOS_REQUIRES(driver_);
    void checkDeadlines(NodeId node, const QosFramework &fw,
                        Cycle now) CMPQOS_REQUIRES(driver_);
    void checkFrequencies(NodeId node, const QosFramework &fw,
                          Cycle now) CMPQOS_REQUIRES(driver_);
    void checkBandwidthFloors(NodeId node, const QosFramework &fw,
                              Cycle now) CMPQOS_REQUIRES(driver_);

    /** Single-owner protocol: the oracle runs on the driver thread at
     *  quantum barriers, over quiescent nodes. Public entry points
     *  assert the role; the check/record helpers require it. */
    OwnerRole driver_;

    std::size_t maxRecorded_;
    std::vector<InvariantViolation> violations_ CMPQOS_GUARDED_BY(driver_);
    std::unordered_set<std::string> reported_ CMPQOS_GUARDED_BY(driver_);
    std::uint64_t total_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t checks_ CMPQOS_GUARDED_BY(driver_) = 0;
};

} // namespace cmpqos

#endif // CMPQOS_FAULT_INVARIANTS_HH
