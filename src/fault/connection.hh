/**
 * @file
 * Connection-level fault injection for the qosd wire protocol.
 *
 * Where plan.hh injects faults into the *simulation* (crashes, lost
 * probes), this file injects faults into the *transport*: frames cut
 * short, length prefixes claiming absurd sizes, garbage bytes, and
 * clients that vanish mid-submission. The service tests drive these
 * against a live daemon and assert the containment contract: the
 * connection is dropped cleanly, the journal gains no line, the
 * invariant oracle stays green, and the epoch fingerprint is
 * unchanged by the attack.
 *
 * Faults have the same line-oriented text form as fault plans
 * (`# comments`, one directive per line):
 *
 *     truncate <keep_bytes>       send only the first N bytes, then
 *                                 disconnect (mid-frame death)
 *     oversize <claimed_len>      binary length prefix claiming N
 *                                 payload bytes (tests the frame
 *                                 ceiling; nothing follows)
 *     garbage <n_bytes> [seed]    N deterministic pseudo-random bytes
 *     corrupt <byte_offset>       flip the low bit at offset N
 *                                 (payload corruption, length intact)
 *
 * corruptFrame() is pure: it maps an honest encoded frame to the
 * byte string the fault would put on the wire, so the tests stay
 * deterministic and need no real packet mangling.
 */

#ifndef CMPQOS_FAULT_CONNECTION_HH
#define CMPQOS_FAULT_CONNECTION_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cmpqos
{

/** The transport-fault taxonomy. */
enum class ConnFaultType
{
    /** Keep the first `param` bytes of the frame, drop the rest. */
    TruncateFrame,
    /** Emit a binary length prefix claiming `param` payload bytes
     *  (and no payload). */
    OversizeFrame,
    /** Replace the frame with `param` seeded pseudo-random bytes. */
    GarbageBytes,
    /** Flip the low bit of the byte at offset `param`. */
    CorruptByte,
};

const char *connFaultTypeName(ConnFaultType t);

/** One planned transport fault. */
struct ConnFaultSpec
{
    ConnFaultType type = ConnFaultType::TruncateFrame;
    std::uint64_t param = 0;
    /** GarbageBytes: generator seed (deterministic stream). */
    std::uint64_t seed = 1;

    /** The directive's text form (one plan line). */
    std::string format() const;
};

/** An ordered list of transport faults with the text round-trip. */
struct ConnFaultPlan
{
    std::vector<ConnFaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Semicolon-joined directives — the one-line reproducer form. */
    std::string summary() const;

    /** One directive per line (re-parseable). */
    void write(std::ostream &os) const;

    /** Parse the text form; false (with @p error filled) on a
     *  malformed directive. */
    static bool tryParse(std::istream &is, ConnFaultPlan &out,
                         std::string &error);
};

/**
 * The bytes @p fault puts on the wire in place of the honestly
 * encoded @p frame. Pure and deterministic. TruncateFrame with
 * param >= frame size and CorruptByte with an out-of-range offset
 * return the frame unchanged (a no-op fault, not an error).
 */
std::string corruptFrame(std::string_view frame,
                         const ConnFaultSpec &fault);

} // namespace cmpqos

#endif // CMPQOS_FAULT_CONNECTION_HH
