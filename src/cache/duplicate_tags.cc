#include "duplicate_tags.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace cmpqos
{

DuplicateTagArray::DuplicateTagArray(const CacheConfig &l2_config,
                                     unsigned baseline_ways,
                                     unsigned sample_period)
    : l2Config_(l2_config), baselineWays_(baseline_ways),
      samplePeriod_(sample_period)
{
    l2Config_.validate();
    cmpqos_assert(baseline_ways > 0 && baseline_ways <= l2_config.assoc,
                  "baseline ways %u out of range", baseline_ways);
    cmpqos_assert(sample_period > 0, "sample period must be positive");
    blockShift_ = floorLog2(l2Config_.blockSize);
    setMask_ = l2Config_.numSets() - 1;
    sampledSets_ = (l2Config_.numSets() + samplePeriod_ - 1) / samplePeriod_;
    shadow_.resize(sampledSets_ * baselineWays_);
}

bool
DuplicateTagArray::observe(Addr addr, bool main_hit)
{
    const Addr block_addr = addr >> blockShift_;
    const std::uint64_t set = block_addr & setMask_;
    if (!isSampled(set))
        return false;

    ++sampledAccesses_;
    if (!main_hit)
        ++mainMisses_;

    const std::uint64_t shadow_set = set / samplePeriod_;
    CacheBlock *base = &shadow_[shadow_set * baselineWays_];

    // Lookup in the shadow partition.
    for (unsigned w = 0; w < baselineWays_; ++w) {
        if (base[w].valid && base[w].blockAddr == block_addr) {
            base[w].lruStamp = ++stampCounter_;
            return true;
        }
    }

    // Shadow miss: fill with LRU replacement within the partition.
    ++shadowMisses_;
    unsigned victim = 0;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < baselineWays_; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lruStamp < best) {
            best = base[w].lruStamp;
            victim = w;
        }
    }
    base[victim].blockAddr = block_addr;
    base[victim].valid = true;
    base[victim].lruStamp = ++stampCounter_;
    return true;
}

double
DuplicateTagArray::missIncrease() const
{
    if (shadowMisses_ == 0)
        return 0.0;
    const double main = static_cast<double>(mainMisses_);
    const double shadow = static_cast<double>(shadowMisses_);
    return (main - shadow) / shadow;
}

bool
DuplicateTagArray::exceedsSlack(double slack_fraction) const
{
    return missIncrease() >= slack_fraction;
}

void
DuplicateTagArray::reset()
{
    for (auto &blk : shadow_)
        blk.invalidate();
    stampCounter_ = 0;
    sampledAccesses_ = 0;
    mainMisses_ = 0;
    shadowMisses_ = 0;
}

} // namespace cmpqos
