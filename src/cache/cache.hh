/**
 * @file
 * A plain set-associative cache with LRU replacement and write-back /
 * write-allocate policy. Used for the private L1 instruction and data
 * caches (Section 6) and as the base functional model that the
 * partitioned L2 extends.
 */

#ifndef CMPQOS_CACHE_CACHE_HH
#define CMPQOS_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/block.hh"
#include "cache/config.hh"
#include "common/types.hh"

namespace cmpqos
{

/** Outcome of a single cache access. */
struct AccessResult
{
    bool hit = false;
    /** A dirty block was evicted and must be written back. */
    bool writeback = false;
    /** Block address of the evicted victim (valid iff evicted). */
    Addr victimAddr = 0;
    bool evicted = false;
};

/**
 * Functional set-associative cache. Timing is not modelled here; the
 * CPU model charges latencies based on hit/miss outcomes.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);
    virtual ~SetAssocCache() = default;

    /**
     * Access one block. On a miss the block is allocated
     * (write-allocate) and a victim may be evicted.
     *
     * @param addr byte address of the access
     * @param is_write true for stores
     * @return hit/miss and eviction information
     */
    AccessResult access(Addr addr, bool is_write);

    /** Probe without side effects. @return true if the block is present. */
    bool contains(Addr addr) const;

    /** Invalidate the block holding @p addr if present. */
    void invalidate(Addr addr);

    /** Invalidate the entire cache and reset recency state. */
    void flush();

    const CacheConfig &config() const { return config_; }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t hits() const { return accesses_ - misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double missRate() const;

    /** Reset statistics without touching cache contents. */
    void resetStats();

    /** Number of currently valid blocks (O(blocks); for tests). */
    std::uint64_t validBlocks() const;

  protected:
    /** Map a byte address to its block address. */
    Addr blockAddrOf(Addr addr) const { return addr >> blockShift_; }

    /** Map a block address to its set index. */
    std::uint64_t setIndexOf(Addr block_addr) const
    {
        return block_addr & setMask_;
    }

    /** Access to the ways of one set. */
    CacheBlock *setBase(std::uint64_t set)
    {
        return &blocks_[set * config_.assoc];
    }
    const CacheBlock *setBase(std::uint64_t set) const
    {
        return &blocks_[set * config_.assoc];
    }

    /** Advance and return the global recency stamp. */
    std::uint64_t nextStamp() { return ++stampCounter_; }

    CacheConfig config_;
    unsigned blockShift_;
    std::uint64_t setMask_;
    std::vector<CacheBlock> blocks_;
    std::uint64_t stampCounter_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;

  private:
    /** Find the way holding @p block_addr in @p set, or -1. */
    int findWay(std::uint64_t set, Addr block_addr) const;

    /** Choose a victim way in @p set: invalid first, else LRU. */
    unsigned victimWay(std::uint64_t set) const;
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_CACHE_HH
