#include "partitioned_cache.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace cmpqos
{

PartitionedCache::PartitionedCache(const CacheConfig &config, int num_cores,
                                   PartitionScheme scheme)
    : config_(config), numCores_(num_cores), scheme_(scheme),
      alloc_(num_cores, config.assoc)
{
    config_.validate();
    cmpqos_assert(num_cores > 0, "need at least one core");
    blockShift_ = floorLog2(config_.blockSize);
    setMask_ = config_.numSets() - 1;
    blocks_.resize(config_.numBlocks());
    counts_.assign(config_.numSets() * static_cast<std::uint64_t>(numCores_),
                   0);
    gcounts_.assign(static_cast<std::size_t>(numCores_), 0);
    stats_.resize(static_cast<std::size_t>(numCores_));
}

void
PartitionedCache::setTargetWays(CoreId core, unsigned ways)
{
    const unsigned old = alloc_.target(core);
    alloc_.setTarget(core, ways);
    if (trace_ != nullptr && trace_->active() && ways != old) {
        TraceEvent e = traceEvent(TraceEventType::Repartition,
                                  traceClock_ ? *traceClock_ : 0);
        e.a = static_cast<std::uint64_t>(core);
        e.b = ways;
        e.x = old;
        trace_->emit(e);
    }
}

void
PartitionedCache::setCoreClass(CoreId core, CoreClass cls)
{
    alloc_.setCoreClass(core, cls);
}

void
PartitionedCache::releaseCore(CoreId core)
{
    alloc_.release(core);
}

int
PartitionedCache::findWay(std::uint64_t set, Addr block_addr) const
{
    const CacheBlock *base = setBase(set);
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].blockAddr == block_addr)
            return static_cast<int>(w);
    }
    return -1;
}

template <typename Pred>
int
PartitionedCache::lruAmong(std::uint64_t set, Pred pred) const
{
    const CacheBlock *base = setBase(set);
    int victim = -1;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            continue;
        if (!pred(base[w]))
            continue;
        if (base[w].lruStamp < best) {
            best = base[w].lruStamp;
            victim = static_cast<int>(w);
        }
    }
    return victim;
}

unsigned
PartitionedCache::poolCount(std::uint64_t set) const
{
    unsigned n = 0;
    for (int c = 0; c < numCores_; ++c)
        if (alloc_.coreClass(c) == CoreClass::Opportunistic)
            n += countOf(set, c);
    return n;
}

unsigned
PartitionedCache::selectVictimPerSet(std::uint64_t set, CoreId core)
{
    const CoreClass cls = alloc_.coreClass(core);
    const bool requester_pooled = cls != CoreClass::Reserved;
    const unsigned own_count =
        requester_pooled ? poolCount(set) : countOf(set, core);
    const unsigned own_target =
        requester_pooled ? alloc_.poolWays() : alloc_.target(core);

    int victim = -1;
    if (own_count < own_target) {
        // Under target: claim free capacity first — invalid ways,
        // then blocks abandoned by inactive cores (orphans).
        const CacheBlock *base = setBase(set);
        for (unsigned w = 0; w < config_.assoc; ++w)
            if (!base[w].valid)
                return w;
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return alloc_.coreClass(b.owner) == CoreClass::Inactive;
        });
        if (victim >= 0)
            return static_cast<unsigned>(victim);

        // Then take from an over-allocated entity. Prefer
        // over-allocated Reserved cores (accelerates convergence of
        // Strict/Elastic partitions and frees stolen ways fastest).
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return alloc_.coreClass(b.owner) == CoreClass::Reserved &&
                   b.owner != core &&
                   countOf(set, b.owner) > alloc_.target(b.owner);
        });
        if (victim >= 0)
            return static_cast<unsigned>(victim);

        // Then the opportunistic pool, if it is over its budget or if
        // the requester is itself reserved (the pool yields to
        // reservations unconditionally).
        const bool pool_yields =
            !requester_pooled || poolCount(set) > alloc_.poolWays();
        if (pool_yields) {
            victim = lruAmong(set, [&](const CacheBlock &b) {
                return alloc_.coreClass(b.owner) ==
                       CoreClass::Opportunistic;
            });
            if (victim >= 0)
                return static_cast<unsigned>(victim);
        }
    }

    // At/over target (or nothing stealable): replace within the
    // requester's own entity. Crucially, an at-target core must NOT
    // claim invalid ways — that would let it occupy capacity beyond
    // its allocation and defeat way-partitioned isolation.
    if (requester_pooled) {
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return alloc_.coreClass(b.owner) == CoreClass::Opportunistic;
        });
    } else {
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return b.owner == core;
        });
    }
    if (victim >= 0)
        return static_cast<unsigned>(victim);

    // Fallback for corner cases (e.g., an entity with a zero target
    // and no resident blocks): free capacity, orphans, global LRU.
    const CacheBlock *base = setBase(set);
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (!base[w].valid)
            return w;
    victim = lruAmong(set, [&](const CacheBlock &b) {
        return alloc_.coreClass(b.owner) == CoreClass::Inactive;
    });
    if (victim < 0)
        victim = lruAmong(set, [](const CacheBlock &) { return true; });
    cmpqos_assert(victim >= 0, "full set with no victim candidate");
    return static_cast<unsigned>(victim);
}

unsigned
PartitionedCache::selectVictimGlobal(std::uint64_t set, CoreId core)
{
    int victim = -1;

    // Global target expressed in blocks: ways * numSets.
    auto global_target = [&](CoreId c) -> std::uint64_t {
        if (alloc_.coreClass(c) == CoreClass::Opportunistic) {
            // Pool cores share the pool budget evenly for the global
            // counter comparison.
            int pool_cores = 0;
            for (int i = 0; i < numCores_; ++i)
                if (alloc_.coreClass(i) == CoreClass::Opportunistic)
                    ++pool_cores;
            return pool_cores == 0
                       ? 0
                       : static_cast<std::uint64_t>(alloc_.poolWays()) *
                             config_.numSets() /
                             static_cast<std::uint64_t>(pool_cores);
        }
        return static_cast<std::uint64_t>(alloc_.target(c)) *
               config_.numSets();
    };

    if (gcounts_[static_cast<std::size_t>(core)] < global_target(core)) {
        // Under global target: free capacity and orphans first.
        const CacheBlock *base = setBase(set);
        for (unsigned w = 0; w < config_.assoc; ++w)
            if (!base[w].valid)
                return w;
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return alloc_.coreClass(b.owner) == CoreClass::Inactive;
        });
        if (victim >= 0)
            return static_cast<unsigned>(victim);

        // Victimise any over-allocated core's block present in this
        // set; Reserved cores first, as in the per-set scheme.
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return alloc_.coreClass(b.owner) == CoreClass::Reserved &&
                   b.owner != core &&
                   gcounts_[static_cast<std::size_t>(b.owner)] >
                       global_target(b.owner);
        });
        if (victim < 0) {
            victim = lruAmong(set, [&](const CacheBlock &b) {
                return b.owner != core &&
                       gcounts_[static_cast<std::size_t>(b.owner)] >
                           global_target(b.owner);
            });
        }
        if (victim >= 0)
            return static_cast<unsigned>(victim);
    } else {
        victim = lruAmong(set, [&](const CacheBlock &b) {
            return b.owner == core;
        });
        if (victim >= 0)
            return static_cast<unsigned>(victim);
    }

    // Fallback: free capacity, orphans, then global LRU.
    const CacheBlock *base = setBase(set);
    for (unsigned w = 0; w < config_.assoc; ++w)
        if (!base[w].valid)
            return w;
    victim = lruAmong(set, [&](const CacheBlock &b) {
        return alloc_.coreClass(b.owner) == CoreClass::Inactive;
    });
    if (victim < 0)
        victim = lruAmong(set, [](const CacheBlock &) { return true; });
    cmpqos_assert(victim >= 0, "full set with no victim candidate");
    return static_cast<unsigned>(victim);
}

unsigned
PartitionedCache::selectVictim(std::uint64_t set, CoreId core)
{
    switch (scheme_) {
      case PartitionScheme::None: {
        // Unpartitioned: invalid ways first, then plain LRU.
        const CacheBlock *base = setBase(set);
        for (unsigned w = 0; w < config_.assoc; ++w)
            if (!base[w].valid)
                return w;
        int victim = lruAmong(set, [](const CacheBlock &) { return true; });
        return static_cast<unsigned>(victim);
      }
      case PartitionScheme::Global:
        return selectVictimGlobal(set, core);
      case PartitionScheme::PerSet:
        return selectVictimPerSet(set, core);
    }
    cmpqos_panic("unknown partition scheme");
}

AccessResult
PartitionedCache::access(CoreId core, Addr addr, bool is_write)
{
    cmpqos_assert(core >= 0 && core < numCores_, "core %d out of range",
                  core);
    auto &st = stats_[static_cast<std::size_t>(core)];
    ++st.accesses;

    const Addr block_addr = blockAddrOf(addr);
    const std::uint64_t set = setIndexOf(block_addr);
    CacheBlock *base = setBase(set);

    AccessResult result;
    int way = findWay(set, block_addr);
    if (way >= 0) {
        result.hit = true;
        base[way].lruStamp = ++stampCounter_;
        if (is_write)
            base[way].dirty = true;
        return result;
    }

    ++st.misses;
    const unsigned victim = selectVictim(set, core);
    CacheBlock &blk = base[victim];
    if (blk.valid) {
        result.evicted = true;
        result.victimAddr = blk.blockAddr;
        if (blk.dirty) {
            result.writeback = true;
            ++st.writebacks;
        }
        if (blk.owner != core)
            ++st.interferenceEvictions;
        // Maintain ownership counters.
        cmpqos_assert(blk.owner >= 0 && blk.owner < numCores_,
                      "valid block with bad owner");
        --count(set, blk.owner);
        --gcounts_[static_cast<std::size_t>(blk.owner)];
    }
    blk.blockAddr = block_addr;
    blk.valid = true;
    blk.dirty = is_write;
    blk.owner = core;
    blk.lruStamp = ++stampCounter_;
    ++count(set, core);
    ++gcounts_[static_cast<std::size_t>(core)];
    return result;
}

bool
PartitionedCache::contains(Addr addr) const
{
    const Addr block_addr = blockAddrOf(addr);
    return findWay(setIndexOf(block_addr), block_addr) >= 0;
}

std::uint64_t
PartitionedCache::blocksOwnedBy(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < numCores_, "core out of range");
    return gcounts_[static_cast<std::size_t>(core)];
}

unsigned
PartitionedCache::blocksInSet(std::uint64_t set, CoreId core) const
{
    cmpqos_assert(set < config_.numSets(), "set out of range");
    cmpqos_assert(core >= 0 && core < numCores_, "core out of range");
    return countOf(set, core);
}

const CoreCacheStats &
PartitionedCache::coreStats(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < numCores_, "core out of range");
    return stats_[static_cast<std::size_t>(core)];
}

void
PartitionedCache::resetStats()
{
    for (auto &s : stats_)
        s = CoreCacheStats();
}

double
PartitionedCache::missRate() const
{
    const std::uint64_t a = totalAccesses();
    return a == 0 ? 0.0
                  : static_cast<double>(totalMisses()) /
                        static_cast<double>(a);
}

std::uint64_t
PartitionedCache::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &s : stats_)
        n += s.accesses;
    return n;
}

std::uint64_t
PartitionedCache::totalMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : stats_)
        n += s.misses;
    return n;
}

void
PartitionedCache::flush()
{
    for (auto &blk : blocks_)
        blk.invalidate();
    for (auto &c : counts_)
        c = 0;
    for (auto &g : gcounts_)
        g = 0;
    stampCounter_ = 0;
}

double
PartitionedCache::perSetOccupancySpread(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < numCores_, "core out of range");
    const std::uint64_t sets = config_.numSets();
    double sum = 0.0, sum_sq = 0.0;
    for (std::uint64_t s = 0; s < sets; ++s) {
        const double v = static_cast<double>(countOf(s, core));
        sum += v;
        sum_sq += v * v;
    }
    const double n = static_cast<double>(sets);
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

} // namespace cmpqos
