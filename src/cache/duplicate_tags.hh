/**
 * @file
 * Set-sampled duplicate tag array (Section 4.3).
 *
 * While resource stealing shrinks an Elastic(X) job's partition, a
 * duplicate tag array tracks what the job's partition would contain
 * had stealing *not* been applied, so the hardware can compare the
 * actual (main-tag) miss count against the would-have-been
 * (duplicate-tag) miss count. To bound storage, only every Nth set
 * carries duplicate tags (set sampling, after [17, 18]); the paper
 * samples every 8th set (1/8 of sets).
 *
 * Both miss counters accumulate from activation and are *not* reset
 * at repartitioning intervals, so the bound "total misses since the
 * Elastic(X) job started must not grow by more than X%" holds over
 * the job's whole execution.
 */

#ifndef CMPQOS_CACHE_DUPLICATE_TAGS_HH
#define CMPQOS_CACHE_DUPLICATE_TAGS_HH

#include <cstdint>
#include <vector>

#include "cache/block.hh"
#include "cache/config.hh"
#include "common/types.hh"

namespace cmpqos
{

/**
 * Shadow tags for one Elastic(X) job, modelling its original
 * (pre-stealing) way allocation with plain LRU within the partition.
 */
class DuplicateTagArray
{
  public:
    /**
     * @param l2_config geometry of the shared L2 being shadowed
     * @param baseline_ways the job's reserved way count before any
     *        stealing; the shadow models a private baseline_ways-way
     *        partition
     * @param sample_period shadow every sample_period-th set
     *        (8 in the paper)
     */
    DuplicateTagArray(const CacheConfig &l2_config, unsigned baseline_ways,
                      unsigned sample_period = 8);

    /**
     * Observe one L2 access by the shadowed job.
     *
     * Updates the shadow tags if the access falls in a sampled set and
     * records both the shadow outcome and the supplied main-tag
     * outcome so the two miss counts stay comparable (same access
     * subset).
     *
     * @param addr byte address accessed
     * @param main_hit whether the access hit in the real L2
     * @return true if the access fell in a sampled set
     */
    bool observe(Addr addr, bool main_hit);

    /** Accesses that fell in sampled sets. */
    std::uint64_t sampledAccesses() const { return sampledAccesses_; }

    /** Misses the real (stolen-from) partition took on sampled sets. */
    std::uint64_t mainMisses() const { return mainMisses_; }

    /** Misses the un-stolen partition would have taken. */
    std::uint64_t shadowMisses() const { return shadowMisses_; }

    /**
     * Relative excess of real misses over would-have-been misses,
     * e.g. 0.05 = the job has taken 5% more misses than it would have
     * without stealing. Returns 0 while shadowMisses() == 0.
     */
    double missIncrease() const;

    /**
     * Whether the observed miss increase exceeds @p slack_fraction
     * (e.g. 0.05 for Elastic(5%)). The paper cancels stealing and
     * returns all stolen ways when this trips.
     */
    bool exceedsSlack(double slack_fraction) const;

    unsigned baselineWays() const { return baselineWays_; }
    unsigned samplePeriod() const { return samplePeriod_; }

    /** Number of shadowed sets. */
    std::uint64_t sampledSets() const { return sampledSets_; }

    /** Clear tags and counters (job restart). */
    void reset();

  private:
    bool isSampled(std::uint64_t set) const
    {
        return set % samplePeriod_ == 0;
    }

    CacheConfig l2Config_;
    unsigned baselineWays_;
    unsigned samplePeriod_;
    unsigned blockShift_;
    std::uint64_t setMask_;
    std::uint64_t sampledSets_;

    std::vector<CacheBlock> shadow_;
    std::uint64_t stampCounter_ = 0;

    std::uint64_t sampledAccesses_ = 0;
    std::uint64_t mainMisses_ = 0;
    std::uint64_t shadowMisses_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_DUPLICATE_TAGS_HH
