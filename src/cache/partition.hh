/**
 * @file
 * Way-partitioning vocabulary shared by the partitioned L2 cache and
 * the QoS layer: partitioning schemes (Section 4.1), core classes for
 * victim-selection priority, and the way-allocation table that tracks
 * per-core target allocations.
 */

#ifndef CMPQOS_CACHE_PARTITION_HH
#define CMPQOS_CACHE_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cmpqos
{

/**
 * How the shared cache is partitioned among cores (Section 4.1).
 */
enum class PartitionScheme
{
    /** No partitioning: plain shared LRU (a non-QoS CMP). */
    None,
    /**
     * Global modified-LRU (Suh et al. [27]): one global allocation
     * counter per core; per-set distribution is left to chance, which
     * causes run-to-run performance variation.
     */
    Global,
    /**
     * Per-set partitioning (Iyer [10], Nesbit et al. [15]): each set
     * converges to the per-core target way counts, giving uniform
     * run-to-run behaviour. This is the scheme the paper adopts.
     */
    PerSet,
};

/**
 * Classification of the job currently pinned to a core, as seen by
 * the cache's victim-selection logic.
 *
 * Reserved covers Strict and Elastic(X) jobs (they hold reserved
 * ways); Opportunistic cores share the unreserved pool; Inactive
 * cores run nothing and their leftover blocks are preferred victims.
 */
enum class CoreClass
{
    Inactive,
    Reserved,
    Opportunistic,
};

const char *coreClassName(CoreClass cls);
const char *partitionSchemeName(PartitionScheme scheme);

/**
 * Tracks per-core target way allocations for a shared cache and
 * enforces that reserved targets never exceed the associativity.
 *
 * Opportunistic cores have no individual target: collectively they
 * own the pool of unreserved ways (poolWays()).
 */
class WayAllocationTable
{
  public:
    WayAllocationTable(int num_cores, unsigned assoc);

    int numCores() const { return numCores_; }
    unsigned assoc() const { return assoc_; }

    /** Set a core's reserved way target (0 for none). */
    void setTarget(CoreId core, unsigned ways);
    unsigned target(CoreId core) const;

    void setCoreClass(CoreId core, CoreClass cls);
    CoreClass coreClass(CoreId core) const;

    /** Sum of reserved targets over Reserved cores. */
    unsigned reservedWays() const;

    /** Ways left for the opportunistic pool. */
    unsigned poolWays() const { return assoc_ - reservedWays(); }

    /** Mark a core inactive and clear its target. */
    void release(CoreId core);

  private:
    void checkCore(CoreId core) const;

    int numCores_;
    unsigned assoc_;
    std::vector<unsigned> targets_;
    std::vector<CoreClass> classes_;
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_PARTITION_HH
