/**
 * @file
 * The per-block metadata kept by all tag arrays.
 */

#ifndef CMPQOS_CACHE_BLOCK_HH
#define CMPQOS_CACHE_BLOCK_HH

#include <cstdint>

#include "common/types.hh"

namespace cmpqos
{

/**
 * One cache block's tag-array entry. The "tag" stored here is the
 * full block address (address / blockSize), which uniquely identifies
 * the block regardless of indexing; this keeps lookup logic simple in
 * a functional simulator.
 */
struct CacheBlock
{
    Addr blockAddr = 0;
    bool valid = false;
    bool dirty = false;
    /** Core that owns (brought in) this block; drives partitioning. */
    CoreId owner = invalidCore;
    /** Monotonic recency stamp; larger = more recently used. */
    std::uint64_t lruStamp = 0;

    void
    invalidate()
    {
        valid = false;
        dirty = false;
        owner = invalidCore;
        lruStamp = 0;
    }
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_BLOCK_HH
