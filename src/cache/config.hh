/**
 * @file
 * Geometry and latency configuration for caches.
 *
 * Defaults follow Section 6 of the paper: 32KB / 4-way / 64B / 2-cycle
 * private L1s and a 2MB / 16-way / 64B / 10-cycle shared L2.
 */

#ifndef CMPQOS_CACHE_CONFIG_HH
#define CMPQOS_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "common/units.hh"

namespace cmpqos
{

/**
 * Static cache geometry. All fields must be powers of two except
 * latency, and size must be divisible by assoc * blockSize.
 */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * kib;
    unsigned assoc = 4;
    unsigned blockSize = 64;
    Cycle hitLatency = 2;

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * blockSize);
    }

    /** Total number of blocks in the cache. */
    std::uint64_t
    numBlocks() const
    {
        return sizeBytes / blockSize;
    }

    /** Capacity of a single way in bytes. */
    std::uint64_t
    wayBytes() const
    {
        return sizeBytes / assoc;
    }

    /** Validate geometry; calls fatal() on bad configuration. */
    void validate() const;

    /** The paper's private L1 configuration. */
    static CacheConfig l1Default();

    /** The paper's shared L2 configuration. */
    static CacheConfig l2Default();
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_CONFIG_HH
