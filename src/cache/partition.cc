#include "partition.hh"

#include "common/logging.hh"

namespace cmpqos
{

const char *
coreClassName(CoreClass cls)
{
    switch (cls) {
      case CoreClass::Inactive: return "Inactive";
      case CoreClass::Reserved: return "Reserved";
      case CoreClass::Opportunistic: return "Opportunistic";
    }
    return "?";
}

const char *
partitionSchemeName(PartitionScheme scheme)
{
    switch (scheme) {
      case PartitionScheme::None: return "None";
      case PartitionScheme::Global: return "Global";
      case PartitionScheme::PerSet: return "PerSet";
    }
    return "?";
}

WayAllocationTable::WayAllocationTable(int num_cores, unsigned assoc)
    : numCores_(num_cores), assoc_(assoc),
      targets_(static_cast<std::size_t>(num_cores), 0),
      classes_(static_cast<std::size_t>(num_cores), CoreClass::Inactive)
{
    cmpqos_assert(num_cores > 0, "need at least one core");
    cmpqos_assert(assoc > 0, "need at least one way");
}

void
WayAllocationTable::checkCore(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < numCores_, "core %d out of range",
                  core);
}

void
WayAllocationTable::setTarget(CoreId core, unsigned ways)
{
    checkCore(core);
    unsigned others = 0;
    for (int c = 0; c < numCores_; ++c) {
        if (c != core && classes_[c] == CoreClass::Reserved)
            others += targets_[c];
    }
    if (classes_[core] == CoreClass::Reserved && others + ways > assoc_) {
        cmpqos_fatal("reserved targets (%u + %u) exceed associativity %u",
                     others, ways, assoc_);
    }
    targets_[core] = ways;
}

unsigned
WayAllocationTable::target(CoreId core) const
{
    checkCore(core);
    return targets_[core];
}

void
WayAllocationTable::setCoreClass(CoreId core, CoreClass cls)
{
    checkCore(core);
    classes_[core] = cls;
    if (cls == CoreClass::Reserved) {
        // Re-validate the reserved total now that this core counts.
        unsigned total = 0;
        for (int c = 0; c < numCores_; ++c)
            if (classes_[c] == CoreClass::Reserved)
                total += targets_[c];
        if (total > assoc_)
            cmpqos_fatal("reserved targets %u exceed associativity %u",
                         total, assoc_);
    }
}

CoreClass
WayAllocationTable::coreClass(CoreId core) const
{
    checkCore(core);
    return classes_[core];
}

unsigned
WayAllocationTable::reservedWays() const
{
    unsigned total = 0;
    for (int c = 0; c < numCores_; ++c)
        if (classes_[c] == CoreClass::Reserved)
            total += targets_[c];
    return total;
}

void
WayAllocationTable::release(CoreId core)
{
    checkCore(core);
    targets_[core] = 0;
    classes_[core] = CoreClass::Inactive;
}

} // namespace cmpqos
