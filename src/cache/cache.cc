#include "cache.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace cmpqos
{

SetAssocCache::SetAssocCache(const CacheConfig &config) : config_(config)
{
    config_.validate();
    blockShift_ = floorLog2(config_.blockSize);
    setMask_ = config_.numSets() - 1;
    blocks_.resize(config_.numBlocks());
}

int
SetAssocCache::findWay(std::uint64_t set, Addr block_addr) const
{
    const CacheBlock *base = setBase(set);
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].blockAddr == block_addr)
            return static_cast<int>(w);
    }
    return -1;
}

unsigned
SetAssocCache::victimWay(std::uint64_t set) const
{
    const CacheBlock *base = setBase(set);
    unsigned victim = 0;
    std::uint64_t best = ~0ULL;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        if (!base[w].valid)
            return w;
        if (base[w].lruStamp < best) {
            best = base[w].lruStamp;
            victim = w;
        }
    }
    return victim;
}

AccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    ++accesses_;
    const Addr block_addr = blockAddrOf(addr);
    const std::uint64_t set = setIndexOf(block_addr);
    CacheBlock *base = setBase(set);

    AccessResult result;
    int way = findWay(set, block_addr);
    if (way >= 0) {
        result.hit = true;
        base[way].lruStamp = nextStamp();
        if (is_write)
            base[way].dirty = true;
        return result;
    }

    ++misses_;
    const unsigned victim = victimWay(set);
    CacheBlock &blk = base[victim];
    if (blk.valid) {
        result.evicted = true;
        result.victimAddr = blk.blockAddr;
        if (blk.dirty) {
            result.writeback = true;
            ++writebacks_;
        }
    }
    blk.blockAddr = block_addr;
    blk.valid = true;
    blk.dirty = is_write;
    blk.lruStamp = nextStamp();
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const Addr block_addr = blockAddrOf(addr);
    return findWay(setIndexOf(block_addr), block_addr) >= 0;
}

void
SetAssocCache::invalidate(Addr addr)
{
    const Addr block_addr = blockAddrOf(addr);
    const std::uint64_t set = setIndexOf(block_addr);
    int way = findWay(set, block_addr);
    if (way >= 0)
        setBase(set)[way].invalidate();
}

void
SetAssocCache::flush()
{
    for (auto &blk : blocks_)
        blk.invalidate();
    stampCounter_ = 0;
}

double
SetAssocCache::missRate() const
{
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses_) /
                     static_cast<double>(accesses_);
}

void
SetAssocCache::resetStats()
{
    accesses_ = misses_ = writebacks_ = 0;
}

std::uint64_t
SetAssocCache::validBlocks() const
{
    std::uint64_t n = 0;
    for (const auto &blk : blocks_)
        if (blk.valid)
            ++n;
    return n;
}

} // namespace cmpqos
