#include "config.hh"

#include "common/logging.hh"

namespace cmpqos
{

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(blockSize))
        cmpqos_fatal("%s: block size %u not a power of two", name.c_str(),
                     blockSize);
    if (assoc == 0)
        cmpqos_fatal("%s: associativity must be positive", name.c_str());
    if (sizeBytes % (static_cast<std::uint64_t>(assoc) * blockSize) != 0)
        cmpqos_fatal("%s: size %llu not divisible by assoc*blockSize",
                     name.c_str(),
                     static_cast<unsigned long long>(sizeBytes));
    if (!isPowerOfTwo(numSets()))
        cmpqos_fatal("%s: number of sets %llu not a power of two",
                     name.c_str(),
                     static_cast<unsigned long long>(numSets()));
}

CacheConfig
CacheConfig::l1Default()
{
    CacheConfig c;
    c.name = "L1";
    c.sizeBytes = 32 * kib;
    c.assoc = 4;
    c.blockSize = 64;
    c.hitLatency = 2;
    return c;
}

CacheConfig
CacheConfig::l2Default()
{
    CacheConfig c;
    c.name = "L2";
    c.sizeBytes = 2 * mib;
    c.assoc = 16;
    c.blockSize = 64;
    c.hitLatency = 10;
    return c;
}

} // namespace cmpqos
