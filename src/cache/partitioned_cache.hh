/**
 * @file
 * The shared, way-partitioned L2 cache — the microarchitectural heart
 * of the QoS framework (Section 4.1).
 *
 * Three partitioning schemes are supported:
 *  - None:   plain shared LRU (non-QoS CMP).
 *  - Global: modified LRU with global per-core allocation counters
 *            (Suh et al.); per-set block distribution drifts with
 *            co-runner behaviour, causing run-to-run variation.
 *  - PerSet: per-set allocation counters converge every set to the
 *            per-core targets (Iyer, Nesbit et al.), the scheme the
 *            paper adopts for QoS.
 *
 * Victim selection is QoS-aware, per the paper's modification: when
 * the requester is under its target and there are over-allocated
 * cores, victims are taken first from over-allocated *Reserved*
 * (Strict/Elastic) cores to accelerate their convergence, and only
 * then from Opportunistic blocks (LRU among them). Blocks left by
 * inactive cores are reclaimed before anything else.
 */

#ifndef CMPQOS_CACHE_PARTITIONED_CACHE_HH
#define CMPQOS_CACHE_PARTITIONED_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/block.hh"
#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/partition.hh"
#include "common/types.hh"
#include "telemetry/recorder.hh"

namespace cmpqos
{

/** Per-core statistics kept by the partitioned cache. */
struct CoreCacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    /** Misses where the victim came from another core's blocks. */
    std::uint64_t interferenceEvictions = 0;

    double
    missRate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

/**
 * Shared L2 cache with way partitioning and QoS-aware replacement.
 */
class PartitionedCache
{
  public:
    PartitionedCache(const CacheConfig &config, int num_cores,
                     PartitionScheme scheme = PartitionScheme::PerSet);

    /** Access one block on behalf of @p core. */
    AccessResult access(CoreId core, Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    const CacheConfig &config() const { return config_; }
    int numCores() const { return numCores_; }
    PartitionScheme scheme() const { return scheme_; }
    void setScheme(PartitionScheme scheme) { scheme_ = scheme; }

    /** The allocation table (targets and core classes). */
    WayAllocationTable &allocation() { return alloc_; }
    const WayAllocationTable &allocation() const { return alloc_; }

    /** Convenience forwarding to the allocation table. */
    void setTargetWays(CoreId core, unsigned ways);
    unsigned targetWays(CoreId core) const { return alloc_.target(core); }
    void setCoreClass(CoreId core, CoreClass cls);
    CoreClass coreClass(CoreId core) const { return alloc_.coreClass(core); }

    /**
     * Release a core: mark it inactive and clear its target. Its
     * blocks remain cached but become preferred victims (orphans).
     */
    void releaseCore(CoreId core);

    /**
     * Telemetry: emit a Repartition event whenever a core's target
     * way count changes. @p clock points at the owning simulation's
     * virtual clock (the cache has no clock of its own).
     */
    void
    setTrace(TraceRecorder *trace, const Cycle *clock)
    {
        trace_ = trace;
        traceClock_ = clock;
    }

    /** Total blocks currently owned by @p core across all sets. */
    std::uint64_t blocksOwnedBy(CoreId core) const;

    /** Blocks owned by @p core in one set (for convergence tests). */
    unsigned blocksInSet(std::uint64_t set, CoreId core) const;

    const CoreCacheStats &coreStats(CoreId core) const;
    void resetStats();

    /** Aggregate miss rate over all cores. */
    double missRate() const;
    std::uint64_t totalAccesses() const;
    std::uint64_t totalMisses() const;

    /** Invalidate everything (also clears ownership counters). */
    void flush();

    /**
     * Standard deviation of per-set block counts for @p core —
     * measures how uneven a core's allocation is across sets (the
     * per-set scheme drives this toward 0, the global scheme does
     * not; used by the Section 4.1 ablation).
     */
    double perSetOccupancySpread(CoreId core) const;

  private:
    Addr blockAddrOf(Addr addr) const { return addr >> blockShift_; }
    std::uint64_t setIndexOf(Addr block_addr) const
    {
        return block_addr & setMask_;
    }
    CacheBlock *setBase(std::uint64_t set)
    {
        return &blocks_[set * config_.assoc];
    }
    const CacheBlock *setBase(std::uint64_t set) const
    {
        return &blocks_[set * config_.assoc];
    }
    unsigned &count(std::uint64_t set, CoreId core)
    {
        return counts_[set * static_cast<std::uint64_t>(numCores_) +
                       static_cast<std::uint64_t>(core)];
    }
    unsigned countOf(std::uint64_t set, CoreId core) const
    {
        return counts_[set * static_cast<std::uint64_t>(numCores_) +
                       static_cast<std::uint64_t>(core)];
    }

    int findWay(std::uint64_t set, Addr block_addr) const;

    /** Pick the victim way for a miss by @p core in @p set. */
    unsigned selectVictim(std::uint64_t set, CoreId core);

    /** Victim selection under the per-set QoS-aware policy. */
    unsigned selectVictimPerSet(std::uint64_t set, CoreId core);

    /** Victim selection under the global modified-LRU policy. */
    unsigned selectVictimGlobal(std::uint64_t set, CoreId core);

    /** LRU way among ways satisfying @p pred; -1 if none. */
    template <typename Pred>
    int lruAmong(std::uint64_t set, Pred pred) const;

    /** Whether the opportunistic pool is over its way budget in a set. */
    unsigned poolCount(std::uint64_t set) const;

    CacheConfig config_;
    int numCores_;
    PartitionScheme scheme_;
    WayAllocationTable alloc_;

    unsigned blockShift_;
    std::uint64_t setMask_;
    std::vector<CacheBlock> blocks_;
    std::vector<unsigned> counts_;      // per-set per-core
    std::vector<std::uint64_t> gcounts_; // global per-core
    std::uint64_t stampCounter_ = 0;

    std::vector<CoreCacheStats> stats_;

    TraceRecorder *trace_ = nullptr;
    const Cycle *traceClock_ = nullptr;
};

} // namespace cmpqos

#endif // CMPQOS_CACHE_PARTITIONED_CACHE_HH
