/**
 * @file
 * Main-memory timing model (Section 6: 4GB, 300-cycle access,
 * 6.4GB/s peak bandwidth).
 *
 * The model follows the paper's footnote 2: prior to bus saturation,
 * queueing delay is roughly constant (Little's law), so the effective
 * L2-miss penalty is the base access latency plus a utilisation-
 * dependent queueing term that grows sharply only near saturation.
 * The paper also notes two mitigations used with resource stealing:
 * memory requests from Elastic(X) jobs may be prioritised over those
 * from Opportunistic jobs, and stealing is disabled once the bus
 * saturates — both are modelled here (priority requests skip the
 * queueing term; saturated() exposes the stealing cut-off).
 */

#ifndef CMPQOS_MEM_MEMORY_HH
#define CMPQOS_MEM_MEMORY_HH

#include <cstdint>

#include "common/types.hh"

namespace cmpqos
{

/** Configuration of the memory subsystem. */
struct MemoryConfig
{
    /** Base access latency in core cycles. */
    Cycle accessLatency = 300;
    /** Peak bandwidth in bytes per second. */
    double peakBandwidthBytesPerSec = 6.4e9;
    /** Transfer size per miss/writeback (one L2 block). */
    unsigned blockBytes = 64;
    /** Utilisation above which the bus counts as saturated. */
    double saturationThreshold = 0.85;
    /** EWMA coefficient for the utilisation estimate. */
    double ewmaAlpha = 0.5;
    /** Cap on queueing delay as a multiple of the base latency. */
    double maxQueueingFactor = 3.0;
};

/**
 * Main memory with a windowed bandwidth/queueing model.
 *
 * The simulation engine reports traffic in windows (bytes moved over
 * a span of cycles); the model maintains an EWMA utilisation and
 * derives an effective miss penalty from an M/D/1-style queueing
 * approximation: wait = service * rho / (2 * (1 - rho)).
 */
class MainMemory
{
  public:
    explicit MainMemory(const MemoryConfig &config = MemoryConfig());

    /** Report @p bytes of traffic generated during @p cycles. */
    void noteWindow(std::uint64_t bytes, Cycle cycles);

    /** Current EWMA bus utilisation in [0, 1]. */
    double utilization() const { return utilization_; }

    /** Whether utilisation is past the saturation threshold. */
    bool saturated() const;

    /**
     * Effective L2-miss penalty. Priority requests (Elastic jobs,
     * per footnote 2) skip the queueing term.
     */
    double missPenalty(bool priority = false) const;

    /** Bytes per core cycle the bus can move at peak. */
    double bytesPerCycle() const { return bytesPerCycle_; }

    const MemoryConfig &config() const { return config_; }

    std::uint64_t totalBytes() const { return totalBytes_; }

    void reset();

  private:
    MemoryConfig config_;
    double bytesPerCycle_;
    double utilization_ = 0.0;
    std::uint64_t totalBytes_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_MEM_MEMORY_HH
