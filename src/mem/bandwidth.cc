#include "bandwidth.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

BandwidthRegulator::BandwidthRegulator(const MemoryConfig &config,
                                       int num_cores)
    : config_(config), numCores_(num_cores),
      peakBytesPerCycle_(config.peakBandwidthBytesPerSec /
                         static_cast<double>(coreClockHz)),
      shares_(static_cast<std::size_t>(num_cores), 0),
      demand_(static_cast<std::size_t>(num_cores), 0.0)
{
    cmpqos_assert(num_cores > 0, "need at least one core");
}

void
BandwidthRegulator::checkCore(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < numCores_, "core %d out of range",
                  core);
}

void
BandwidthRegulator::setShare(CoreId core, unsigned percent)
{
    checkCore(core);
    unsigned others = 0;
    for (int c = 0; c < numCores_; ++c)
        if (c != core)
            others += shares_[static_cast<std::size_t>(c)];
    if (others + percent > 100)
        cmpqos_fatal("bandwidth shares (%u + %u) exceed 100%%", others,
                     percent);
    shares_[static_cast<std::size_t>(core)] = percent;
}

unsigned
BandwidthRegulator::share(CoreId core) const
{
    checkCore(core);
    return shares_[static_cast<std::size_t>(core)];
}

unsigned
BandwidthRegulator::reservedPercent() const
{
    unsigned total = 0;
    for (unsigned s : shares_)
        total += s;
    return total;
}

void
BandwidthRegulator::noteWindow(CoreId core, std::uint64_t bytes,
                               Cycle cycles)
{
    checkCore(core);
    if (cycles == 0)
        return;
    const double rate =
        static_cast<double>(bytes) / static_cast<double>(cycles);
    const double alpha = config_.ewmaAlpha;
    auto &d = demand_[static_cast<std::size_t>(core)];
    d = alpha * rate + (1.0 - alpha) * d;
}

double
BandwidthRegulator::poolDemand() const
{
    // Concurrent traffic sums across cores: the pool's demand is the
    // sum of its members' per-core rate estimates.
    double total = 0.0;
    for (int c = 0; c < numCores_; ++c)
        if (shares_[static_cast<std::size_t>(c)] == 0)
            total += demand_[static_cast<std::size_t>(c)];
    return total;
}

double
BandwidthRegulator::entitledBytesPerCycle(CoreId core) const
{
    const unsigned s = shares_[static_cast<std::size_t>(core)];
    const unsigned effective = s > 0 ? s : poolPercent();
    // A zero-entitlement core (pool exhausted by reservations) still
    // trickles: floor at 1%.
    return peakBytesPerCycle_ *
           static_cast<double>(std::max(effective, 1u)) / 100.0;
}

double
BandwidthRegulator::utilization(CoreId core) const
{
    checkCore(core);
    const unsigned s = shares_[static_cast<std::size_t>(core)];
    const double demand =
        s > 0 ? demand_[static_cast<std::size_t>(core)] : poolDemand();
    return std::min(1.0, demand / entitledBytesPerCycle(core));
}

double
BandwidthRegulator::missPenalty(CoreId core, bool priority) const
{
    const double base = static_cast<double>(config_.accessLatency);
    if (priority)
        return base;
    const double rho = std::min(utilization(core), 0.95);
    const double wait = base * rho / (2.0 * (1.0 - rho));
    return base + std::min(wait, base * config_.maxQueueingFactor);
}

bool
BandwidthRegulator::saturated(CoreId core) const
{
    return utilization(core) >= config_.saturationThreshold;
}

void
BandwidthRegulator::reset()
{
    for (auto &d : demand_)
        d = 0.0;
}

} // namespace cmpqos
