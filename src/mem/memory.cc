#include "memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

MainMemory::MainMemory(const MemoryConfig &config) : config_(config)
{
    cmpqos_assert(config_.peakBandwidthBytesPerSec > 0.0,
                  "peak bandwidth must be positive");
    bytesPerCycle_ = config_.peakBandwidthBytesPerSec /
                     static_cast<double>(coreClockHz);
}

void
MainMemory::noteWindow(std::uint64_t bytes, Cycle cycles)
{
    totalBytes_ += bytes;
    if (cycles == 0)
        return;
    const double inst = std::min(
        1.0, static_cast<double>(bytes) /
                 (static_cast<double>(cycles) * bytesPerCycle_));
    utilization_ = config_.ewmaAlpha * inst +
                   (1.0 - config_.ewmaAlpha) * utilization_;
}

bool
MainMemory::saturated() const
{
    return utilization_ >= config_.saturationThreshold;
}

double
MainMemory::missPenalty(bool priority) const
{
    const double base = static_cast<double>(config_.accessLatency);
    if (priority)
        return base;
    // M/D/1 mean wait, clamped away from the rho -> 1 pole.
    const double rho = std::min(utilization_, 0.95);
    const double wait = base * rho / (2.0 * (1.0 - rho));
    return base + std::min(wait, base * config_.maxQueueingFactor);
}

void
MainMemory::reset()
{
    utilization_ = 0.0;
    totalBytes_ = 0;
}

} // namespace cmpqos
