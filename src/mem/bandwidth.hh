/**
 * @file
 * Off-chip bandwidth partitioning — the RUM dimension the paper
 * explicitly defers to future work (Section 3.2: "a complete QoS
 * target would include off-chip bandwidth rate...") and the piece
 * that separates its cache-only framework from Virtual Private
 * Caches [15], which combine cache and memory-controller policies.
 *
 * Model: each core may hold a guaranteed share of the peak memory
 * bandwidth (a percentage); unreserved cores compete for the residual
 * pool. A core's effective miss penalty is derived from the
 * utilisation of *its own* share (reserved cores) or of the shared
 * residual (pool cores), using the same M/D/1-style queueing term as
 * the unpartitioned bus — so a reserved core's latency is insulated
 * from other cores' traffic, the bandwidth analogue of way
 * partitioning.
 */

#ifndef CMPQOS_MEM_BANDWIDTH_HH
#define CMPQOS_MEM_BANDWIDTH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/memory.hh"

namespace cmpqos
{

/**
 * Per-core bandwidth shares and windowed per-core utilisation.
 */
class BandwidthRegulator
{
  public:
    BandwidthRegulator(const MemoryConfig &config, int num_cores);

    int numCores() const { return numCores_; }

    /**
     * Reserve @p percent of peak bandwidth for @p core (0 returns the
     * core to the pool). Total reserved share must stay <= 100.
     */
    void setShare(CoreId core, unsigned percent);
    unsigned share(CoreId core) const;

    /** Sum of reserved shares (percent). */
    unsigned reservedPercent() const;

    /** Residual share available to pool cores (percent). */
    unsigned poolPercent() const { return 100 - reservedPercent(); }

    /** Report @p bytes moved by @p core over @p cycles. */
    void noteWindow(CoreId core, std::uint64_t bytes, Cycle cycles);

    /**
     * Utilisation of the capacity @p core is entitled to: its own
     * share if reserved, else the pool share divided among pool
     * cores' combined traffic.
     */
    double utilization(CoreId core) const;

    /** Effective miss penalty for @p core under its entitlement. */
    double missPenalty(CoreId core, bool priority = false) const;

    /** Whether @p core's entitled bandwidth is saturated. */
    bool saturated(CoreId core) const;

    void reset();

  private:
    void checkCore(CoreId core) const;
    double entitledBytesPerCycle(CoreId core) const;

    /** Combined demand of pool (share == 0) cores, bytes/cycle. */
    double poolDemand() const;

    MemoryConfig config_;
    int numCores_;
    double peakBytesPerCycle_;
    std::vector<unsigned> shares_;
    /** EWMA bytes-per-cycle demand per core. */
    std::vector<double> demand_;
};

} // namespace cmpqos

#endif // CMPQOS_MEM_BANDWIDTH_HH
