/**
 * @file
 * The simulated CMP node (Section 6): four 2GHz in-order cores with
 * private L1s, a shared way-partitioned L2, and main memory behind a
 * bandwidth-modelled bus. Holds per-core run queues (one pinned job
 * for Strict/Elastic cores; possibly several time-shared jobs on
 * Opportunistic or EqualPart cores) and advances the job at the head
 * of a core's queue in instruction chunks.
 */

#ifndef CMPQOS_SIM_CMP_SYSTEM_HH
#define CMPQOS_SIM_CMP_SYSTEM_HH

#include <deque>
#include <memory>
#include <vector>

#include "cache/config.hh"
#include "cache/partitioned_cache.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "mem/bandwidth.hh"
#include "mem/memory.hh"
#include "sim/job_exec.hh"
#include "workload/generator.hh"

namespace cmpqos
{

/** Static configuration of one CMP node. */
struct CmpConfig
{
    int numCores = 4;
    CacheConfig l1 = CacheConfig::l1Default();
    CacheConfig l2 = CacheConfig::l2Default();
    MemoryConfig mem = MemoryConfig();
    PartitionScheme scheme = PartitionScheme::PerSet;
    TraceMode traceMode = TraceMode::L2Stream;
    /** Instructions advanced per co-simulation chunk. */
    InstCount chunkInstructions = 20'000;
    /** OS timeslice for time-shared cores, in cycles. */
    Cycle timeslice = 2'000'000;
    /**
     * Partition off-chip bandwidth per core (extension; see
     * mem/bandwidth.hh). When off, all cores share one bus model.
     */
    bool bandwidthPartitioning = false;
};

/** Result of advancing one core by one chunk. */
struct AdvanceResult
{
    InstCount instructions = 0;
    double cycles = 0.0;
    /** Job that completed during this chunk (already dequeued). */
    JobExecution *completed = nullptr;
};

/**
 * One CMP node: cores + shared L2 + memory + run queues.
 */
class CmpSystem
{
  public:
    explicit CmpSystem(const CmpConfig &config = CmpConfig());

    const CmpConfig &config() const { return config_; }
    int numCores() const { return config_.numCores; }

    PartitionedCache &l2() { return l2_; }
    const PartitionedCache &l2() const { return l2_; }
    MainMemory &memory() { return memory_; }
    const MainMemory &memory() const { return memory_; }

    /** Bandwidth regulator (nullptr unless bandwidthPartitioning). */
    BandwidthRegulator *bandwidth() { return bandwidth_.get(); }
    const BandwidthRegulator *bandwidth() const
    {
        return bandwidth_.get();
    }
    InOrderCore &core(CoreId c);
    const InOrderCore &core(CoreId c) const;

    /** Append a job to a core's run queue. */
    void enqueueJob(CoreId core, JobExecution *job);

    /** Remove a job from whatever queue holds it (no-op if absent). */
    void dequeueJob(JobExecution *job);

    /** Move a job between cores (e.g., auto-downgrade promotion). */
    void moveJob(JobExecution *job, CoreId to);

    /** Job currently at the head of a core's queue (nullptr if idle). */
    JobExecution *runningJob(CoreId core) const;

    /** Jobs queued on a core. */
    std::size_t queueLength(CoreId core) const;

    /** Core hosting @p job, or invalidCore. */
    CoreId coreOf(const JobExecution *job) const;

    /** Rotate a core's run queue (timeslice expiry). */
    void rotate(CoreId core);

    /**
     * Advance the job at the head of @p core's queue by up to
     * @p max_instr instructions, driving its accesses through the
     * memory hierarchy and charging cycles via the additive model.
     * Advances the core's local time. No-op when the core is idle.
     */
    AdvanceResult advance(CoreId core, InstCount max_instr);

    /** Total jobs currently queued across all cores. */
    std::size_t totalQueued() const;

    /** Lowest-id core with an empty run queue, or invalidCore. */
    CoreId findIdleCore() const;

    /** Core with the shortest queue (ties to lowest id). */
    CoreId leastLoadedCore() const;

  private:
    void checkCore(CoreId core) const;

    CmpConfig config_;
    std::vector<std::unique_ptr<InOrderCore>> cores_;
    PartitionedCache l2_;
    MainMemory memory_;
    std::unique_ptr<BandwidthRegulator> bandwidth_;
    std::vector<std::deque<JobExecution *>> queues_;
};

} // namespace cmpqos

#endif // CMPQOS_SIM_CMP_SYSTEM_HH
