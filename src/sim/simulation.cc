#include "simulation.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

Simulation::Simulation(CmpSystem &sys)
    : sys_(sys),
      sliceCycles_(static_cast<std::size_t>(sys.numCores()), 0.0)
{
}

void
Simulation::schedule(Cycle when, EventQueue::Callback fn, std::string label)
{
    events_.schedule(when, std::move(fn), std::move(label));
}

void
Simulation::scheduleAfter(Cycle delay, EventQueue::Callback fn,
                          std::string label)
{
    events_.schedule(now_ + delay, std::move(fn), std::move(label));
}

void
Simulation::startJobOn(CoreId core, JobExecution *job)
{
    InOrderCore &cpu = sys_.core(core);
    const double t_now = static_cast<double>(now_);
    if (cpu.localTime() < t_now) {
        cpu.ledger().idleCycles += t_now - cpu.localTime();
        cpu.setTime(t_now);
    }
    sys_.enqueueJob(core, job);
    if (trace_ != nullptr && trace_->active()) {
        TraceEvent e =
            traceEvent(TraceEventType::JobStarted, now_, job->id());
        e.a = static_cast<std::uint64_t>(core);
        trace_->emit(e);
    }
}

CoreId
Simulation::pickLaggard() const
{
    CoreId best = invalidCore;
    double best_t = 0.0;
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (sys_.queueLength(c) == 0)
            continue;
        const double t = sys_.core(c).localTime();
        if (best == invalidCore || t < best_t) {
            best = c;
            best_t = t;
        }
    }
    return best;
}

void
Simulation::run(Cycle until)
{
    stop_ = false;
    while (!stop_ && now_ < until) {
        const Cycle ev_time = events_.nextTime();
        const CoreId core = pickLaggard();

        if (core == invalidCore) {
            // Nothing executing: jump straight to the next event.
            if (ev_time == maxCycle)
                break;
            now_ = std::max(now_, ev_time);
            events_.runNext();
            ++eventsProcessed_;
            continue;
        }

        const double core_t = sys_.core(core).localTime();
        if (ev_time != maxCycle &&
            static_cast<double>(ev_time) <= core_t) {
            now_ = std::max(now_, ev_time);
            events_.runNext();
            ++eventsProcessed_;
            continue;
        }

        JobExecution *job = sys_.runningJob(core);
        AdvanceResult res =
            sys_.advance(core, sys_.config().chunkInstructions);
        ++chunksExecuted_;

        // Global time follows the lagging active core (monotonic).
        const CoreId lag = pickLaggard();
        const double lag_t = lag == invalidCore
                                 ? sys_.core(core).localTime()
                                 : sys_.core(lag).localTime();
        now_ = std::max(now_, static_cast<Cycle>(lag_t));

        // Timeslice accounting for time-shared cores.
        auto &slice = sliceCycles_[static_cast<std::size_t>(core)];
        slice += res.cycles;
        if (slice >= static_cast<double>(sys_.config().timeslice)) {
            slice = 0.0;
            sys_.rotate(core);
        }

        if (res.completed != nullptr && onComplete_)
            onComplete_(res.completed);
        if (quantumHook_)
            quantumHook_(core, job);
    }
}

} // namespace cmpqos
