/**
 * @file
 * Human-readable system reports: per-core execution ledgers, L2
 * partition state and per-core cache statistics, and memory/bus
 * figures — the summary a simulator prints at the end of a run.
 */

#ifndef CMPQOS_SIM_REPORT_HH
#define CMPQOS_SIM_REPORT_HH

#include <iosfwd>

#include "sim/cmp_system.hh"

namespace cmpqos
{

/** Print core / cache / memory summary tables for @p sys. */
void printSystemReport(const CmpSystem &sys, std::ostream &os);

} // namespace cmpqos

#endif // CMPQOS_SIM_REPORT_HH
