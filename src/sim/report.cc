#include "report.hh"

#include <ostream>

#include "stats/table.hh"

namespace cmpqos
{

void
printSystemReport(const CmpSystem &sys, std::ostream &os)
{
    using stats::TablePrinter;

    TablePrinter cores("cores");
    cores.header({"core", "class", "ways", "instr", "cycles", "IPC",
                  "idle cycles", "bw share"});
    for (int c = 0; c < sys.numCores(); ++c) {
        const auto &ledger = sys.core(c).ledger();
        cores.row({std::to_string(c),
                   coreClassName(sys.l2().coreClass(c)),
                   std::to_string(sys.l2().targetWays(c)),
                   TablePrinter::fmtInt(
                       static_cast<long long>(ledger.instructions)),
                   TablePrinter::fmt(ledger.cycles / 1e6, 1) + "M",
                   TablePrinter::fmt(ledger.ipc(), 3),
                   TablePrinter::fmt(ledger.idleCycles / 1e6, 1) + "M",
                   std::to_string(sys.bandwidth()->share(c)) + "%"});
    }
    cores.print(os);

    TablePrinter l2("shared L2");
    l2.header({"core", "accesses", "misses", "miss rate", "writebacks",
               "interference evictions", "blocks held"});
    for (int c = 0; c < sys.numCores(); ++c) {
        const auto &st = sys.l2().coreStats(c);
        l2.row({std::to_string(c),
                TablePrinter::fmtInt(
                    static_cast<long long>(st.accesses)),
                TablePrinter::fmtInt(static_cast<long long>(st.misses)),
                TablePrinter::fmtPercent(st.missRate() * 100.0, 1),
                TablePrinter::fmtInt(
                    static_cast<long long>(st.writebacks)),
                TablePrinter::fmtInt(
                    static_cast<long long>(st.interferenceEvictions)),
                TablePrinter::fmtInt(static_cast<long long>(
                    sys.l2().blocksOwnedBy(c)))});
    }
    l2.print(os);

    TablePrinter mem("memory");
    mem.header({"total bytes", "bus utilisation", "miss penalty",
                "saturated"});
    mem.row({TablePrinter::fmt(
                 static_cast<double>(sys.memory().totalBytes()) / 1e6,
                 1) +
                 "MB",
             TablePrinter::fmtPercent(
                 sys.memory().utilization() * 100.0, 1),
             TablePrinter::fmt(sys.memory().missPenalty(false), 0) +
                 " cycles",
             sys.memory().saturated() ? "yes" : "no"});
    mem.print(os);
}

} // namespace cmpqos
