/**
 * @file
 * Runtime state of one executing job: its synthetic access generator,
 * progress, per-job cache/cycle statistics, and the optional
 * duplicate tag array attached while the job runs as Elastic(X).
 */

#ifndef CMPQOS_SIM_JOB_EXEC_HH
#define CMPQOS_SIM_JOB_EXEC_HH

#include <memory>

#include "cache/duplicate_tags.hh"
#include "common/types.hh"
#include "cpu/cpi_model.hh"
#include "workload/benchmark.hh"
#include "workload/generator.hh"

namespace cmpqos
{

/**
 * Execution-side representation of a job (the QoS-side Job object in
 * src/qos owns policy state; this owns microarchitectural state).
 */
class JobExecution
{
  public:
    JobExecution(JobId id, const BenchmarkProfile &profile,
                 InstCount length, std::uint64_t seed,
                 TraceMode mode = TraceMode::L2Stream);

    JobId id() const { return id_; }
    const BenchmarkProfile &profile() const { return *profile_; }
    AccessGenerator &generator() { return generator_; }

    InstCount length() const { return length_; }
    InstCount executed() const { return executed_; }
    InstCount
    remaining() const
    {
        return executed_ >= length_ ? 0 : length_ - executed_;
    }
    bool complete() const { return executed_ >= length_; }

    void noteExecuted(InstCount n) { executed_ += n; }

    /** Per-job L2 activity accumulated over its whole run. */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t writebacks = 0;
    /** Cycles this job spent executing (excludes queueing). */
    double cyclesRun = 0.0;

    /** First cycle the job executed on a core. */
    double startCycle = -1.0;
    /** Cycle the job completed. */
    double endCycle = -1.0;
    bool started() const { return startCycle >= 0.0; }

    double
    wallClock() const
    {
        return (endCycle >= 0.0 && startCycle >= 0.0)
                   ? endCycle - startCycle
                   : 0.0;
    }

    double
    missRate() const
    {
        return l2Accesses == 0
                   ? 0.0
                   : static_cast<double>(l2Misses) /
                         static_cast<double>(l2Accesses);
    }

    double
    cpi() const
    {
        return executed_ == 0 ? 0.0
                              : cyclesRun /
                                    static_cast<double>(executed_);
    }

    /** Additive-model constants for this job's benchmark. */
    CpiParams cpiParams(double t2) const;

    /** Elastic jobs get memory-priority requests (footnote 2). */
    bool memPriority = false;

    /** Attach shadow tags while the job runs as Elastic(X). */
    void
    attachDuplicateTags(std::unique_ptr<DuplicateTagArray> tags)
    {
        dupTags_ = std::move(tags);
    }
    DuplicateTagArray *duplicateTags() { return dupTags_.get(); }
    void detachDuplicateTags() { dupTags_.reset(); }

  private:
    JobId id_;
    const BenchmarkProfile *profile_;
    InstCount length_;
    InstCount executed_ = 0;
    AccessGenerator generator_;
    std::unique_ptr<DuplicateTagArray> dupTags_;
};

} // namespace cmpqos

#endif // CMPQOS_SIM_JOB_EXEC_HH
