/**
 * @file
 * The co-simulation driver: interleaves per-core job execution in
 * small instruction chunks (so jobs sharing the L2 interleave their
 * access streams realistically) with a discrete-event queue for job
 * arrivals, reservation-slot starts, and mode switches.
 *
 * Scheduling rule: always advance the laggard — the active core with
 * the smallest local time — unless a pending event is due first.
 * Event firing may be late by at most one chunk's worth of cycles
 * (bounded skew); chunks default to 20K instructions, well below any
 * policy-relevant time constant in the paper (the shortest is the 2M
 * instruction repartitioning interval).
 */

#ifndef CMPQOS_SIM_SIMULATION_HH
#define CMPQOS_SIM_SIMULATION_HH

#include <functional>

#include "common/types.hh"
#include "sim/cmp_system.hh"
#include "sim/event_queue.hh"
#include "telemetry/recorder.hh"

namespace cmpqos
{

/**
 * Drives one CmpSystem forward in time.
 */
class Simulation
{
  public:
    using CompletionHandler = std::function<void(JobExecution *)>;
    /** Called after every chunk: (core, job advanced). */
    using QuantumHook = std::function<void(CoreId, JobExecution *)>;

    explicit Simulation(CmpSystem &sys);

    CmpSystem &system() { return sys_; }

    /** Current global simulated time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Stable address of the virtual clock, for clock-less components
     * (partitioned cache, stealing engine) stamping trace events.
     */
    const Cycle *clockPtr() const { return &now_; }

    /** Telemetry: emit JobStarted when an execution lands on a core. */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }

    /** Schedule a callback at absolute cycle @p when. */
    void schedule(Cycle when, EventQueue::Callback fn,
                  std::string label = "");

    /** Schedule a callback @p delay cycles from now. */
    void scheduleAfter(Cycle delay, EventQueue::Callback fn,
                       std::string label = "");

    /** Invoked whenever a job completes (after it is dequeued). */
    void setCompletionHandler(CompletionHandler h)
    {
        onComplete_ = std::move(h);
    }

    /** Invoked after every execution chunk (resource stealing etc.). */
    void setQuantumHook(QuantumHook h) { quantumHook_ = std::move(h); }

    /**
     * Place @p job at the back of @p core's run queue, syncing the
     * core's local clock (and idle accounting) to global time first.
     */
    void startJobOn(CoreId core, JobExecution *job);

    /**
     * Run until the event queue drains and all cores idle, until
     * simulated time passes @p until, or until requestStop().
     */
    void run(Cycle until = maxCycle);

    void requestStop() { stop_ = true; }
    bool stopped() const { return stop_; }

    std::uint64_t eventsProcessed() const { return eventsProcessed_; }
    std::uint64_t chunksExecuted() const { return chunksExecuted_; }

  private:
    /** Active core with the smallest local time; invalidCore if none. */
    CoreId pickLaggard() const;

    CmpSystem &sys_;
    EventQueue events_;
    TraceRecorder *trace_ = nullptr;
    Cycle now_ = 0;
    bool stop_ = false;
    CompletionHandler onComplete_;
    QuantumHook quantumHook_;
    std::vector<double> sliceCycles_;
    std::uint64_t eventsProcessed_ = 0;
    std::uint64_t chunksExecuted_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_SIM_SIMULATION_HH
