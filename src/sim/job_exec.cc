#include "job_exec.hh"

namespace cmpqos
{

JobExecution::JobExecution(JobId id, const BenchmarkProfile &profile,
                           InstCount length, std::uint64_t seed,
                           TraceMode mode)
    : id_(id), profile_(&profile), length_(length),
      generator_(profile, seed, jobAddressBase(id), mode)
{
}

CpiParams
JobExecution::cpiParams(double t2) const
{
    CpiParams p;
    p.cpiL1Inf = profile_->cpiL1Inf;
    p.t2 = t2;
    return p;
}

} // namespace cmpqos
