#include "cmp_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

CmpSystem::CmpSystem(const CmpConfig &config)
    : config_(config), l2_(config.l2, config.numCores, config.scheme),
      memory_(config.mem),
      queues_(static_cast<std::size_t>(config.numCores))
{
    cmpqos_assert(config_.numCores > 0, "need at least one core");
    // The regulator always exists: with no shares programmed, every
    // core sits in the pool and the model degenerates to one shared
    // bus whose utilisation is the *sum* of per-core demand (the
    // paper's unpartitioned 6.4GB/s bus). The bandwidthPartitioning
    // flag controls whether the scheduler programs shares.
    bandwidth_ = std::make_unique<BandwidthRegulator>(config_.mem,
                                                      config_.numCores);
    const bool with_l1 = config_.traceMode == TraceMode::Full;
    cores_.reserve(static_cast<std::size_t>(config_.numCores));
    for (int c = 0; c < config_.numCores; ++c) {
        cores_.push_back(
            std::make_unique<InOrderCore>(c, with_l1, config_.l1));
    }
}

void
CmpSystem::checkCore(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < config_.numCores,
                  "core %d out of range", core);
}

InOrderCore &
CmpSystem::core(CoreId c)
{
    checkCore(c);
    return *cores_[static_cast<std::size_t>(c)];
}

const InOrderCore &
CmpSystem::core(CoreId c) const
{
    checkCore(c);
    return *cores_[static_cast<std::size_t>(c)];
}

void
CmpSystem::enqueueJob(CoreId core, JobExecution *job)
{
    checkCore(core);
    cmpqos_assert(job != nullptr, "null job");
    cmpqos_assert(coreOf(job) == invalidCore, "job %d already queued",
                  job->id());
    queues_[static_cast<std::size_t>(core)].push_back(job);
}

void
CmpSystem::dequeueJob(JobExecution *job)
{
    for (auto &q : queues_) {
        auto it = std::find(q.begin(), q.end(), job);
        if (it != q.end()) {
            q.erase(it);
            return;
        }
    }
}

void
CmpSystem::moveJob(JobExecution *job, CoreId to)
{
    checkCore(to);
    dequeueJob(job);
    queues_[static_cast<std::size_t>(to)].push_back(job);
}

JobExecution *
CmpSystem::runningJob(CoreId core) const
{
    checkCore(core);
    const auto &q = queues_[static_cast<std::size_t>(core)];
    return q.empty() ? nullptr : q.front();
}

std::size_t
CmpSystem::queueLength(CoreId core) const
{
    checkCore(core);
    return queues_[static_cast<std::size_t>(core)].size();
}

CoreId
CmpSystem::coreOf(const JobExecution *job) const
{
    for (int c = 0; c < config_.numCores; ++c) {
        const auto &q = queues_[static_cast<std::size_t>(c)];
        if (std::find(q.begin(), q.end(), job) != q.end())
            return c;
    }
    return invalidCore;
}

void
CmpSystem::rotate(CoreId core)
{
    checkCore(core);
    auto &q = queues_[static_cast<std::size_t>(core)];
    if (q.size() > 1) {
        q.push_back(q.front());
        q.pop_front();
    }
}

AdvanceResult
CmpSystem::advance(CoreId core_id, InstCount max_instr)
{
    checkCore(core_id);
    AdvanceResult result;
    auto &q = queues_[static_cast<std::size_t>(core_id)];
    if (q.empty())
        return result;

    JobExecution *job = q.front();
    InOrderCore &cpu = *cores_[static_cast<std::size_t>(core_id)];

    const InstCount n = std::min<InstCount>(max_instr, job->remaining());
    cmpqos_assert(n > 0, "advancing a completed job");

    if (!job->started())
        job->startCycle = cpu.localTime();

    // Drive the job's access stream through the hierarchy.
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t writebacks = 0;
    DuplicateTagArray *dup = job->duplicateTags();
    SetAssocCache *l1 = cpu.l1();

    job->generator().run(n, [&](Addr addr, bool is_write) {
        if (l1 != nullptr) {
            // Full-trace mode: filter through the private L1.
            AccessResult r1 = l1->access(addr, is_write);
            if (r1.hit)
                return;
            if (r1.writeback)
                l2_.access(core_id, r1.victimAddr, true);
            // The demand miss continues to the L2 below.
            is_write = false; // L1 refill; dirtiness stays in L1
        }
        ++l2_accesses;
        AccessResult r2 = l2_.access(core_id, addr, is_write);
        if (!r2.hit)
            ++l2_misses;
        if (r2.writeback)
            ++writebacks;
        if (dup != nullptr)
            dup->observe(addr, r2.hit);
    });

    // Charge cycles via the additive model with the current
    // bandwidth-dependent miss penalty: this core's own entitlement
    // if a share is programmed, else the shared pool. Only the
    // core-bound term stretches under DVFS; at nominal frequency
    // (scale 1.0) the division is exact and the result is
    // bit-identical to the unscaled model.
    const double tm =
        bandwidth_->missPenalty(core_id, job->memPriority);
    const CpiParams params =
        job->cpiParams(static_cast<double>(config_.l2.hitLatency));
    const double f = cpu.frequencyScale();
    const double cycles = AdditiveCpiModel::cycles(
        params, n, l2_accesses, l2_misses, tm, f);

    // Report bus traffic (miss fills + dirty writebacks).
    const std::uint64_t bytes =
        (l2_misses + writebacks) *
        static_cast<std::uint64_t>(config_.mem.blockBytes);
    memory_.noteWindow(bytes, static_cast<Cycle>(cycles));
    bandwidth_->noteWindow(core_id, bytes, static_cast<Cycle>(cycles));

    // Bookkeeping.
    job->noteExecuted(n);
    job->l2Accesses += l2_accesses;
    job->l2Misses += l2_misses;
    job->writebacks += writebacks;
    job->cyclesRun += cycles;

    cpu.ledger().instructions += n;
    cpu.ledger().cycles += cycles;
    cpu.ledger().l2Accesses += l2_accesses;
    cpu.ledger().l2Misses += l2_misses;
    cpu.ledger().dynWork +=
        f * f * AdditiveCpiModel::scalableCycles(params, n);
    cpu.advanceTime(cycles);

    result.instructions = n;
    result.cycles = cycles;

    if (job->complete()) {
        job->endCycle = cpu.localTime();
        q.pop_front();
        result.completed = job;
    }
    return result;
}

std::size_t
CmpSystem::totalQueued() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

CoreId
CmpSystem::findIdleCore() const
{
    for (int c = 0; c < config_.numCores; ++c)
        if (queues_[static_cast<std::size_t>(c)].empty())
            return c;
    return invalidCore;
}

CoreId
CmpSystem::leastLoadedCore() const
{
    CoreId best = 0;
    std::size_t best_len = queues_[0].size();
    for (int c = 1; c < config_.numCores; ++c) {
        if (queues_[static_cast<std::size_t>(c)].size() < best_len) {
            best = c;
            best_len = queues_[static_cast<std::size_t>(c)].size();
        }
    }
    return best;
}

} // namespace cmpqos
