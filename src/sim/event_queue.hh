/**
 * @file
 * A minimal discrete-event queue: time-ordered callbacks with FIFO
 * tie-breaking, used for job arrivals, reservation-slot starts,
 * mode-switch points, and repartitioning intervals.
 */

#ifndef CMPQOS_SIM_EVENT_QUEUE_HH
#define CMPQOS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cmpqos
{

/**
 * Priority queue of (time, callback) events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn at absolute cycle @p when. */
    void
    schedule(Cycle when, Callback fn, std::string label = "")
    {
        heap_.push(Event{when, seq_++, std::move(label), std::move(fn)});
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; maxCycle if none. */
    Cycle
    nextTime() const
    {
        return heap_.empty() ? maxCycle : heap_.top().when;
    }

    /** Label of the earliest pending event (debugging aid). */
    const std::string &
    nextLabel() const
    {
        static const std::string none = "";
        return heap_.empty() ? none : heap_.top().label;
    }

    /**
     * Pop and run the earliest event.
     * @return the event's scheduled time
     */
    Cycle
    runNext()
    {
        Event ev = heap_.top();
        heap_.pop();
        ev.fn();
        return ev.when;
    }

    /** Drop all pending events. */
    void
    clear()
    {
        heap_ = decltype(heap_)();
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::string label;
        Callback fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    std::uint64_t seq_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_SIM_EVENT_QUEUE_HH
