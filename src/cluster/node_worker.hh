/**
 * @file
 * One CMP node inside the cluster engine: a QosFramework co-simulation
 * advanced in bounded quanta by the worker thread pool.
 *
 * A NodeWorker is only ever touched from one thread at a time — the
 * driver thread between quanta (placement probes and submissions) and
 * exactly one pool worker during a quantum (advanceTo / drain). The
 * engine's barrier-step loop enforces that ownership handoff, so the
 * worker itself needs no locks.
 */

#ifndef CMPQOS_CLUSTER_NODE_WORKER_HH
#define CMPQOS_CLUSTER_NODE_WORKER_HH

#include <memory>

#include "qos/framework.hh"

namespace cmpqos
{

/**
 * A cluster node: framework + per-node placement counters.
 */
class NodeWorker
{
  public:
    /**
     * @param seed Per-node RNG stream seed (the engine derives these
     *        from the cluster seed via SplitMix so streams are
     *        independent and reproducible at any thread count).
     */
    NodeWorker(NodeId id, const FrameworkConfig &config,
               std::uint64_t seed);

    NodeId id() const { return id_; }
    QosFramework &framework() { return *framework_; }
    const QosFramework &framework() const { return *framework_; }

    /** Node-local virtual time. */
    Cycle virtualNow() const { return framework_->simulation().now(); }

    /**
     * Advance the node's co-simulation to at least @p t (exactly t
     * when the node idles before then; overshoot is bounded by one
     * execution chunk otherwise).
     */
    void advanceTo(Cycle t);

    /** Run until every submitted job has completed. */
    void drain();

    /** Side-effect-free admission probe at the node's local time. */
    AdmissionDecision probe(const JobRequest &request,
                            InstCount instructions) const;

    /** Submit (commits on acceptance). @return the job or nullptr. */
    Job *submit(const JobRequest &request, InstCount instructions);

    /** Jobs placed on this node so far. */
    std::uint64_t placed() const { return placed_; }

    /** Jobs currently in flight (submitted, not finished). */
    std::size_t inFlight() const { return framework_->pendingJobs(); }

    /**
     * Telemetry: wire @p trace through the node's framework and emit
     * QuantumBegin/QuantumEnd around each advanceTo. The recorder's
     * ring is SPSC-safe for the node's one-owner-at-a-time handoff
     * (driver between quanta, one pool worker during one).
     */
    void setTrace(TraceRecorder *trace);

  private:
    NodeId id_;
    std::unique_ptr<QosFramework> framework_;
    TraceRecorder *trace_ = nullptr;
    std::uint64_t placed_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_NODE_WORKER_HH
