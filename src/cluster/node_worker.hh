/**
 * @file
 * One CMP node inside the cluster engine: a QosFramework co-simulation
 * advanced in bounded quanta by the worker thread pool.
 *
 * A NodeWorker is only ever touched from one thread at a time — the
 * driver thread between quanta (placement probes, submissions, and
 * fault actions) and exactly one pool worker during a quantum
 * (advanceTo / drain). The engine's barrier-step loop enforces that
 * ownership handoff, so the worker itself needs no locks.
 *
 * Crash/restart: crash() retires the current framework — completed
 * work is folded into carried tallies so metrics survive the loss,
 * running jobs are counted failed, and waiting jobs are handed back
 * for relocation. restart() brings the node back with a fresh
 * framework whose seed is derived deterministically from the node
 * seed and the restart ordinal, so fault runs replay bit-identically
 * at any thread count.
 */

#ifndef CMPQOS_CLUSTER_NODE_WORKER_HH
#define CMPQOS_CLUSTER_NODE_WORKER_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/annotations.hh"
#include "control/controller.hh"
#include "qos/framework.hh"

namespace cmpqos
{

/**
 * Tallies accumulated over retired framework incarnations (crashes),
 * folded into the node's metrics alongside the live framework.
 */
struct NodeCarried
{
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::array<std::uint64_t, 3> modeCompleted{}; // by ExecutionMode
    std::array<std::uint64_t, 3> modeDeadlineHits{};
    InstCount instructions = 0;
    double busyCycles = 0.0;
    std::uint64_t stolenWays = 0;
    /** Node clock at the (last) crash — frozen while dead. */
    Cycle virtualTime = 0;
    /** Dynamic-energy work term folded in from retired cores. */
    double dynWork = 0.0;
    /** Controller tallies of retired incarnations. */
    ControlTallies control;
};

/**
 * A cluster node: framework + per-node placement counters.
 */
class NodeWorker
{
  public:
    /**
     * @param seed Per-node RNG stream seed (the engine derives these
     *        from the cluster seed via SplitMix so streams are
     *        independent and reproducible at any thread count).
     */
    NodeWorker(NodeId id, const FrameworkConfig &config,
               std::uint64_t seed);

    NodeId id() const { return id_; }

    QosFramework &
    framework()
    {
        owner_.grant();
        return *framework_;
    }

    const QosFramework &
    framework() const
    {
        owner_.grant();
        return *framework_;
    }

    /** Node-local virtual time (frozen at the crash while dead). */
    Cycle
    virtualNow() const
    {
        owner_.grant();
        return alive_ ? framework_->simulation().now()
                      : carried_.virtualTime;
    }

    /**
     * Advance the node's co-simulation to at least @p t (exactly t
     * when the node idles before then; overshoot is bounded by one
     * execution chunk otherwise). Dead nodes do not advance.
     *
     * @param stall Slow-quantum fault: fall this many cycles short of
     *        @p t (clamped at the current clock; 0 = no fault).
     */
    void advanceTo(Cycle t, Cycle stall = 0);

    /** Run until every submitted job has completed (no-op if dead). */
    void drain();

    /** Side-effect-free admission probe at the node's local time. */
    AdmissionDecision probe(const JobRequest &request,
                            InstCount instructions) const;

    /** Submit (commits on acceptance). @return the job or nullptr. */
    Job *submit(const JobRequest &request, InstCount instructions);

    /** Jobs placed on this node so far (all incarnations). */
    std::uint64_t
    placed() const
    {
        owner_.grant();
        return placed_;
    }

    /** Jobs currently in flight (submitted, not finished). */
    std::size_t
    inFlight() const
    {
        owner_.grant();
        return alive_ ? framework_->pendingJobs() : 0;
    }

    /** The node accepts probes / submissions / advances. */
    bool
    alive() const
    {
        owner_.grant();
        return alive_;
    }

    /** Completed restarts. */
    std::uint64_t
    restarts() const
    {
        owner_.grant();
        return restarts_;
    }

    /** A job lost in a crash while waiting for its slot. */
    struct LostJob
    {
        JobId localJob = invalidJob;
        JobRequest request;
        InstCount instructions = 0;
        ExecutionMode mode = ExecutionMode::Strict;
    };

    /** What a crash destroyed. */
    struct CrashReport
    {
        /** Local ids of jobs that were running (now failed). */
        std::vector<JobId> failedRunning;
        /** Waiting jobs the engine may relocate to other nodes. */
        std::vector<LostJob> waiting;
    };

    /**
     * Kill the node at a quantum barrier: fold the framework's
     * completed work into the carried tallies, count running jobs as
     * failed, and report waiting jobs for relocation. The node stops
     * probing, accepting and advancing until restart().
     */
    CrashReport crash();

    /**
     * Bring a crashed node back at time @p now with a fresh, empty
     * framework (seed derived from node seed + restart ordinal) whose
     * clock is aligned to the cluster barrier.
     */
    void restart(Cycle now);

    /** Count one waiting job that could not be relocated anywhere. */
    void
    recordRelocationFailure()
    {
        owner_.grant();
        ++carried_.failed;
    }

    /** Tallies carried over retired incarnations. */
    const NodeCarried &
    carried() const
    {
        owner_.grant();
        return carried_;
    }

    /**
     * Telemetry: wire @p trace through the node's framework and emit
     * QuantumBegin/QuantumEnd around each advanceTo. The recorder's
     * ring is SPSC-safe for the node's one-owner-at-a-time handoff
     * (driver between quanta, one pool worker during one).
     */
    void setTrace(TraceRecorder *trace);

    /**
     * Arm the feedback controller (src/control) on this node. Call
     * before the first quantum; survives crash/restart with fresh
     * per-incarnation measurement state.
     */
    void enableController(const ControllerConfig &config);

    /** Whether the feedback controller is armed. */
    bool
    controllerOn() const
    {
        owner_.grant();
        return controllerConfig_.enabled;
    }

    /**
     * One controller step at the quantum barrier, before the node
     * advances. No-op when the controller is off or the node is dead.
     */
    void controllerStep();

    /** Controller tallies across all incarnations. */
    ControlTallies controlTallies() const;

    /**
     * Modelled energy consumed by this node so far (static + dynamic
     * across incarnations). 0 when the controller is off — energy
     * only joins metrics/fingerprints on controller-enabled runs.
     */
    double energy() const;

  private:
    struct PendingRequest
    {
        JobRequest request;
        InstCount instructions = 0;
    };

    /**
     * The ownership role behind the "one thread at a time" comment
     * above: the driver between quanta, exactly one pool worker
     * during one. Every public entry point asserts it, and all
     * mutable node state is guarded by it, so any future access path
     * that bypasses the barrier handoff shows up as a thread-safety
     * error instead of a data race.
     */
    OwnerRole owner_;

    NodeId id_;
    FrameworkConfig config_;
    std::uint64_t seed_ = 0;
    std::unique_ptr<QosFramework> framework_ CMPQOS_GUARDED_BY(owner_);
    TraceRecorder *trace_ CMPQOS_GUARDED_BY(owner_) = nullptr;
    std::uint64_t placed_ CMPQOS_GUARDED_BY(owner_) = 0;
    bool alive_ CMPQOS_GUARDED_BY(owner_) = true;
    std::uint64_t restarts_ CMPQOS_GUARDED_BY(owner_) = 0;
    NodeCarried carried_ CMPQOS_GUARDED_BY(owner_);
    /** Requests of in-flight jobs, for crash-time relocation. */
    std::unordered_map<JobId, PendingRequest> pendingRequests_
        CMPQOS_GUARDED_BY(owner_);
    ControllerConfig controllerConfig_;
    std::unique_ptr<NodeController> controller_
        CMPQOS_GUARDED_BY(owner_);
};

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_NODE_WORKER_HH
