/**
 * @file
 * Cluster metrics: per-node and cluster-wide counters aggregated from
 * the node workers after (or during) a cluster run, exportable as
 * JSONL and CSV snapshots — the accept/reject/downgrade, deadline-
 * hit-rate and utilisation measurements that serving-oriented QoS
 * work (e.g. SLO-aware cluster schedulers) reports continuously.
 *
 * The aggregate also provides a canonical fingerprint string covering
 * every simulation-determined counter (and excluding wall-clock
 * time), which the determinism tests compare across worker-thread
 * counts: same seed => same fingerprint at 1, 2, or N threads.
 */

#ifndef CMPQOS_CLUSTER_METRICS_HH
#define CMPQOS_CLUSTER_METRICS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/node_worker.hh"
#include "qos/mode.hh"

namespace cmpqos
{

/** Completion counters for one execution mode. */
struct ModeTally
{
    std::uint64_t completed = 0;
    std::uint64_t deadlineHits = 0;

    /**
     * Deadline hit rate. With no completions there is no rate: the
     * result is NaN, not 1.0 — a mode that never finished a job must
     * not read as "100% of deadlines met". Exporters skip such modes;
     * printers should test hasHitRate() first.
     */
    double
    hitRate() const
    {
        return completed == 0 ? std::numeric_limits<double>::quiet_NaN()
                              : static_cast<double>(deadlineHits) /
                                    static_cast<double>(completed);
    }

    /** True when at least one job completed, so hitRate() is defined. */
    bool hasHitRate() const { return completed != 0; }
};

/** Snapshot of one node's counters. */
struct NodeMetrics
{
    NodeId node = -1;
    Cycle virtualTime = 0;
    std::uint64_t placed = 0;
    std::uint64_t completed = 0;
    std::uint64_t inFlight = 0;
    /** Instructions retired across the node's cores. */
    InstCount instructions = 0;
    /** Core-busy fraction of (cores x virtual time). */
    double utilisation = 0.0;
    /** Cache ways stolen for Elastic jobs (Section 4's engine). */
    std::uint64_t stolenWays = 0;
    /** Jobs lost to crashes / failed relocation (distinct outcome —
     *  never folded into completed or silently dropped). */
    std::uint64_t failed = 0;
    /** Crash->restart cycles this node went through. */
    std::uint64_t restarts = 0;
    /** False while the node is crashed at snapshot time. */
    bool alive = true;
    std::array<ModeTally, 3> byMode; // indexed by ExecutionMode
    /** Modelled energy (0 unless the feedback controller is on). */
    double energy = 0.0;
    /** Feedback-controller activity (src/control). */
    ControlTallies control;
};

/**
 * Driver-side fault and recovery counters (all zero on fault-free
 * runs — the fingerprint only includes them when any() is true, so a
 * run with an empty fault plan fingerprints byte-identically to a
 * build without the fault layer).
 */
struct FaultTallies
{
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    /** Jobs lost: running at a crash, or relocation rejected. */
    std::uint64_t failedJobs = 0;
    /** Waiting jobs re-admitted elsewhere (as-is or renegotiated). */
    std::uint64_t relocated = 0;
    /** Elastic waiting jobs relocated as Opportunistic. */
    std::uint64_t relocationDowngraded = 0;
    /** Waiting jobs no alive node would take (counted failed). */
    std::uint64_t relocationRejected = 0;
    /** Placement probes lost to drop windows. */
    std::uint64_t probesDropped = 0;
    /** Probes abandoned after the retry budget. */
    std::uint64_t probeTimeouts = 0;
    /** Probe retries that eventually succeeded. */
    std::uint64_t probeRetries = 0;
    /** Virtual cycles charged to retry backoff. */
    Cycle backoffCycles = 0;
    /** Duplicated negotiation replies detected and dropped. */
    std::uint64_t duplicateReplies = 0;
    /** (node, quantum) pairs hit by a slow-quantum window. */
    std::uint64_t stalledQuanta = 0;

    // Shard-link tallies (federated engine only; always zero in the
    // single-process engine, so they stay fingerprint-invisible).

    /** Shard messages whose first transmission was lost and resent. */
    std::uint64_t linkDrops = 0;
    /** Shard messages delivered twice and absorbed by seq dedup. */
    std::uint64_t linkDups = 0;
    /** Virtual cycles charged to shard-link latency windows. */
    Cycle linkDelayCycles = 0;
    /** (shard, quantum) advances deferred by a partition window. */
    std::uint64_t partitionedQuanta = 0;

    bool
    any() const
    {
        return crashes || restarts || failedJobs || relocated ||
               relocationDowngraded || relocationRejected ||
               probesDropped || probeTimeouts || probeRetries ||
               backoffCycles || duplicateReplies || stalledQuanta ||
               linkDrops || linkDups || linkDelayCycles ||
               partitionedQuanta;
    }
};

/** Snapshot of the whole cluster. */
struct ClusterMetrics
{
    // Run identity.
    std::uint64_t seed = 0;
    unsigned threads = 1;
    /** Shard processes/controllers the run was federated over (1 =
     *  the single-process engine). Excluded from the fingerprint,
     *  like threads: shard count must not perturb results. */
    int shards = 1;
    Cycle quantum = 0;

    // Driver-side admission counters.
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    /** Accepted only after deadline renegotiation. */
    std::uint64_t negotiated = 0;
    /** Arrivals past the run horizon, never offered for admission. */
    std::uint64_t truncated = 0;
    std::array<std::uint64_t, numQosTiers> acceptedByTier{};

    // Simulation-side aggregates.
    Cycle virtualTime = 0;
    InstCount instructions = 0;
    std::uint64_t completed = 0;
    std::uint64_t stolenWays = 0;
    std::array<ModeTally, 3> byMode;

    // Fault-injection tallies (zero and fingerprint-invisible on
    // fault-free runs).
    FaultTallies faults;
    /** Distinct invariant violations the oracle recorded (0 = ok). */
    std::uint64_t invariantViolations = 0;

    // Feedback-controller aggregates (src/control). Like the fault
    // tallies, they only join the fingerprint and the exports when
    // the controller ran, so controller-off output is byte-identical
    // to a build without the control layer.
    bool controllerOn = false;
    double energy = 0.0;
    ControlTallies control;

    // Host-side measurement (excluded from the fingerprint).
    double wallSeconds = 0.0;

    std::vector<NodeMetrics> nodes;

    double
    acceptRate() const
    {
        return submitted == 0 ? 1.0
                              : static_cast<double>(accepted) /
                                    static_cast<double>(submitted);
    }

    /** Completed jobs per host-side second. */
    double
    jobsPerWallSecond() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(completed) / wallSeconds;
    }

    /**
     * Canonical digest of every simulation-determined counter —
     * admission totals, per-mode deadline hits, per-node placement
     * and instruction totals — for determinism comparisons. Wall
     * clock and thread count are deliberately excluded.
     */
    std::string fingerprint() const;
};

/**
 * Aggregates node-worker state into snapshots and writes them out.
 */
class MetricsExporter
{
  public:
    /** Collect one node's counters (node must be quiescent). */
    static NodeMetrics collectNode(const NodeWorker &worker);

    /**
     * Fold per-node snapshots into @p cluster (fills the
     * simulation-side aggregates and the nodes vector).
     */
    static void aggregate(ClusterMetrics &cluster,
                          const std::vector<NodeMetrics> &nodes);

    /** One JSON object per line: a cluster line, then a node line
     *  per node. */
    static void writeJsonl(const ClusterMetrics &m, std::ostream &os);

    /** CSV: header plus one row per node. */
    static void writeCsv(const ClusterMetrics &m, std::ostream &os);

    /** File variants; fatal() when the path cannot be opened. */
    static void writeJsonlFile(const ClusterMetrics &m,
                               const std::string &path);
    static void writeCsvFile(const ClusterMetrics &m,
                             const std::string &path);
};

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_METRICS_HH
