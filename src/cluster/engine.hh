/**
 * @file
 * The cluster engine: many independent CMP node co-simulations
 * advanced concurrently on a worker thread pool, fed by an open-loop
 * arrival stream placed through global admission — Section 3.1's
 * server of CMP nodes behind a Global Admission Controller, run as a
 * parallel simulation instead of the sequential drain CmpServer does.
 *
 * Execution is barrier-stepped: virtual time is cut into placement
 * quanta of `quantum` cycles. At each boundary the driver thread
 * (alone) places every arrival falling inside the next quantum —
 * probing all nodes, choosing one per GacPolicy, negotiating relaxed
 * deadlines when every node rejects — then the pool advances all
 * nodes through the quantum in parallel. Admission decisions are
 * therefore causally ordered with node virtual time to within one
 * quantum (plus the co-simulator's one-chunk skew), and, because
 * nodes share no state and per-node work is deterministic, the whole
 * run is bit-identical for a given seed at ANY worker thread count.
 */

#ifndef CMPQOS_CLUSTER_ENGINE_HH
#define CMPQOS_CLUSTER_ENGINE_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/metrics.hh"
#include "cluster/node_worker.hh"
#include "common/annotations.hh"
#include "common/thread_pool.hh"
#include "fault/injector.hh"
#include "fault/invariants.hh"
#include "qos/gac.hh"
#include "telemetry/collector.hh"

namespace cmpqos
{

/** What admission decided about one arrival (observer callback). */
struct PlacementOutcome
{
    /** Global submission sequence number (order offered to the GAC). */
    std::uint64_t seq = 0;
    bool accepted = false;
    bool negotiated = false;
    /** Accepting node, -1 when rejected. */
    NodeId node = -1;
    /** Reserved timeslot start from the accepting node's probe
     *  (only populated when an observer is installed; the extra probe
     *  is side-effect-free so observed and unobserved runs stay
     *  bit-identical). */
    Cycle slotStart = 0;
    /** Deadline factor actually granted (== requested unless
     *  negotiation relaxed it). */
    double deadlineFactor = 0.0;
};

/**
 * Passive observation points on the driver thread. Callbacks run
 * synchronously inside the run loop — between an arrival's placement
 * and the next, or at a quantum barrier while every node is quiescent
 * — and must not touch the engine (the driver role is held by the run
 * loop for the duration). The engine's control flow and state are
 * identical with or without an observer installed; qosd relies on
 * that to make live runs replayable from the journal alone.
 */
class EngineObserver
{
  public:
    virtual ~EngineObserver() = default;

    /** One arrival went through admission (accepted or not). */
    virtual void onPlacement(const ClusterArrival &arrival,
                             const PlacementOutcome &outcome)
    {
        (void)arrival;
        (void)outcome;
    }

    /** A quantum barrier completed; telemetry has been drained and
     *  cluster virtual time is @p now. */
    virtual void onQuantum(Cycle now) { (void)now; }
};

/** Cluster engine configuration. */
struct ClusterConfig
{
    /** CMP nodes in the cluster. */
    int nodes = 8;
    /** Worker threads (0 = hardware concurrency). */
    unsigned threads = 0;
    /** Placement quantum in cycles (bounded-quanta step size). */
    Cycle quantum = 2'000'000;
    /** Placement policy across nodes. */
    GacPolicy policy = GacPolicy::LeastLoaded;
    /** Renegotiate a relaxed deadline when every node rejects. */
    bool negotiate = true;
    /** Largest deadline relaxation factor offered (Section 3.1's
     *  "negotiate with the user for an acceptable QoS target"). */
    double negotiateMaxFactor = 4.0;
    /** Relaxation step as a fraction of the requested deadline. */
    double negotiateStep = 0.25;
    /** Cluster seed; per-node streams are SplitMix-derived from it. */
    std::uint64_t seed = 1;
    /** Per-node framework configuration (seed field is overridden). */
    FrameworkConfig node;
    /**
     * Optional telemetry hub (not owned; may be nullptr). Must be
     * built with at least nodes + 1 producers: producer 0 takes the
     * driver's placement events, producer i+1 node i's. The engine
     * drains it at every quantum barrier; the caller still calls
     * TraceCollector::finish() when the run (or runs) are over.
     */
    TraceCollector *telemetry = nullptr;
    /**
     * Optional fault plan (not owned; nullptr or empty = fault-free).
     * Faults execute on the driver thread at quantum barriers, so a
     * given seed + plan replays bit-identically at any thread count.
     */
    const FaultPlan *faultPlan = nullptr;
    /** Evaluate the invariant oracle at every quantum barrier (and
     *  once more after the final drain). */
    bool checkInvariants = false;
    /** Retry/backoff budget charged against probe-timeout faults. */
    GacRetryConfig probeRetry;
    /** Optional passive observer (not owned; may be nullptr). Called
     *  on the driver thread only; see EngineObserver. */
    EngineObserver *observer = nullptr;
    /**
     * Per-node feedback controller (src/control; disabled by
     * default). Stepped on the driver thread at every quantum
     * barrier — after placements, before the nodes advance — so
     * controller-on runs stay bit-identical at any thread or shard
     * count.
     */
    ControllerConfig control;
};

/**
 * Parallel multi-node cluster simulation.
 */
class ClusterEngine
{
  public:
    explicit ClusterEngine(const ClusterConfig &config);

    int numNodes() const { return static_cast<int>(nodes_.size()); }
    unsigned numThreads() const { return pool_.size(); }
    NodeWorker &node(NodeId n);

    /**
     * Consume the whole arrival stream, then drain every node;
     * returns the final metrics snapshot.
     */
    ClusterMetrics runToCompletion(ArrivalProcess &arrivals);

    /**
     * Run until cluster virtual time reaches @p duration; arrivals
     * beyond it are counted as truncated, jobs still in flight stay
     * in flight (open-loop semantics: the snapshot reports a running
     * system, not a drained one).
     */
    ClusterMetrics runForDuration(ArrivalProcess &arrivals,
                                  Cycle duration);

    /** The oracle, when checkInvariants was set (else nullptr). */
    const InvariantChecker *invariantChecker() const
    {
        return checker_.get();
    }

    /** Driver-side fault tallies so far (failedJobs lives in the
     *  per-node metrics; see snapshot()). */
    const FaultTallies &
    faultTallies() const
    {
        // Read between runs on the thread that drove them: the same
        // barrier protocol that makes run() exclusive covers this.
        driver_.grant();
        return faults_;
    }

  private:
    struct Placement
    {
        bool accepted = false;
        bool negotiated = false;
        NodeId node = -1;
    };

    ClusterMetrics run(ArrivalProcess &arrivals, Cycle horizon,
                       bool drain) CMPQOS_REQUIRES(driver_);
    Placement place(const ClusterArrival &arrival)
        CMPQOS_REQUIRES(driver_);
    /**
     * Choose among accepting nodes per policy; -1 if none accept.
     * Dead nodes never probe. @p probe_faults applies the current
     * drop/timeout skip set (relocation bypasses it: the GAC re-places
     * from its own records, not through a lossy probe).
     */
    NodeId choose(const JobRequest &request, InstCount instructions,
                  bool probe_faults = true) CMPQOS_REQUIRES(driver_);
    void advanceAll(Cycle from, Cycle to) CMPQOS_REQUIRES(driver_);
    ClusterMetrics snapshot() const CMPQOS_REQUIRES(driver_);

    // Fault machinery (all driver-thread, all barrier-aligned).
    void applyFaultActions(Cycle t) CMPQOS_REQUIRES(driver_);
    void relocate(NodeId origin, const NodeWorker::LostJob &lost,
                  Cycle t) CMPQOS_REQUIRES(driver_);
    void refreshProbeFaults(Cycle t) CMPQOS_REQUIRES(driver_);
    void checkAll() CMPQOS_REQUIRES(driver_);

    /**
     * The driver role: placement, fault actions, telemetry drains and
     * the admission counters all belong to the one thread driving
     * run(). runToCompletion/runForDuration assert it (the caller's
     * thread becomes the driver for the duration of the call); the
     * private machinery requires it.
     */
    OwnerRole driver_;

    ClusterConfig config_;
    ThreadPool pool_;
    std::vector<std::unique_ptr<NodeWorker>> nodes_;
    TraceRecorder *driverTrace_ = nullptr;

    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<InvariantChecker> checker_;
    FaultTallies faults_ CMPQOS_GUARDED_BY(driver_);
    /** Per-node probe-fault skip set for the arrival being placed. */
    std::vector<char> probeSkip_ CMPQOS_GUARDED_BY(driver_);
    /** Arrival seqs whose acceptance committed (duplicate-reply
     *  dedup; maintained only under an active injector). */
    std::unordered_set<std::uint64_t> committedSeqs_
        CMPQOS_GUARDED_BY(driver_);

    // Driver-side admission counters.
    std::uint64_t submitted_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t accepted_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t rejected_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t negotiated_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t truncated_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::array<std::uint64_t, numQosTiers>
        acceptedByTier_ CMPQOS_GUARDED_BY(driver_){};
    double wallSeconds_ CMPQOS_GUARDED_BY(driver_) = 0.0;
};

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_ENGINE_HH
