/**
 * @file
 * The cluster engine: many independent CMP node co-simulations
 * advanced concurrently on a worker thread pool, fed by an open-loop
 * arrival stream placed through global admission — Section 3.1's
 * server of CMP nodes behind a Global Admission Controller, run as a
 * parallel simulation instead of the sequential drain CmpServer does.
 *
 * Execution is barrier-stepped: virtual time is cut into placement
 * quanta of `quantum` cycles. At each boundary the driver thread
 * (alone) places every arrival falling inside the next quantum —
 * probing all nodes, choosing one per GacPolicy, negotiating relaxed
 * deadlines when every node rejects — then the pool advances all
 * nodes through the quantum in parallel. Admission decisions are
 * therefore causally ordered with node virtual time to within one
 * quantum (plus the co-simulator's one-chunk skew), and, because
 * nodes share no state and per-node work is deterministic, the whole
 * run is bit-identical for a given seed at ANY worker thread count.
 */

#ifndef CMPQOS_CLUSTER_ENGINE_HH
#define CMPQOS_CLUSTER_ENGINE_HH

#include <memory>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/metrics.hh"
#include "cluster/node_worker.hh"
#include "common/thread_pool.hh"
#include "qos/gac.hh"
#include "telemetry/collector.hh"

namespace cmpqos
{

/** Cluster engine configuration. */
struct ClusterConfig
{
    /** CMP nodes in the cluster. */
    int nodes = 8;
    /** Worker threads (0 = hardware concurrency). */
    unsigned threads = 0;
    /** Placement quantum in cycles (bounded-quanta step size). */
    Cycle quantum = 2'000'000;
    /** Placement policy across nodes. */
    GacPolicy policy = GacPolicy::LeastLoaded;
    /** Renegotiate a relaxed deadline when every node rejects. */
    bool negotiate = true;
    /** Largest deadline relaxation factor offered (Section 3.1's
     *  "negotiate with the user for an acceptable QoS target"). */
    double negotiateMaxFactor = 4.0;
    /** Relaxation step as a fraction of the requested deadline. */
    double negotiateStep = 0.25;
    /** Cluster seed; per-node streams are SplitMix-derived from it. */
    std::uint64_t seed = 1;
    /** Per-node framework configuration (seed field is overridden). */
    FrameworkConfig node;
    /**
     * Optional telemetry hub (not owned; may be nullptr). Must be
     * built with at least nodes + 1 producers: producer 0 takes the
     * driver's placement events, producer i+1 node i's. The engine
     * drains it at every quantum barrier; the caller still calls
     * TraceCollector::finish() when the run (or runs) are over.
     */
    TraceCollector *telemetry = nullptr;
};

/**
 * Parallel multi-node cluster simulation.
 */
class ClusterEngine
{
  public:
    explicit ClusterEngine(const ClusterConfig &config);

    int numNodes() const { return static_cast<int>(nodes_.size()); }
    unsigned numThreads() const { return pool_.size(); }
    NodeWorker &node(NodeId n);

    /**
     * Consume the whole arrival stream, then drain every node;
     * returns the final metrics snapshot.
     */
    ClusterMetrics runToCompletion(ArrivalProcess &arrivals);

    /**
     * Run until cluster virtual time reaches @p duration; arrivals
     * beyond it are counted as truncated, jobs still in flight stay
     * in flight (open-loop semantics: the snapshot reports a running
     * system, not a drained one).
     */
    ClusterMetrics runForDuration(ArrivalProcess &arrivals,
                                  Cycle duration);

  private:
    struct Placement
    {
        bool accepted = false;
        bool negotiated = false;
        NodeId node = -1;
    };

    ClusterMetrics run(ArrivalProcess &arrivals, Cycle horizon,
                       bool drain);
    Placement place(const ClusterArrival &arrival);
    /** Choose among accepting nodes per policy; -1 if none accept. */
    NodeId choose(const JobRequest &request, InstCount instructions);
    void advanceAll(Cycle t);
    ClusterMetrics snapshot() const;

    ClusterConfig config_;
    ThreadPool pool_;
    std::vector<std::unique_ptr<NodeWorker>> nodes_;
    TraceRecorder *driverTrace_ = nullptr;

    // Driver-side admission counters.
    std::uint64_t submitted_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t negotiated_ = 0;
    std::uint64_t truncated_ = 0;
    std::array<std::uint64_t, numQosTiers> acceptedByTier_{};
    double wallSeconds_ = 0.0;
};

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_ENGINE_HH
