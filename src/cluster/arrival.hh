/**
 * @file
 * Open-loop job arrival processes for the cluster engine: a stream of
 * timestamped, SLO-tagged job requests generated independently of the
 * system's admission decisions (jobs keep arriving whether or not the
 * cluster keeps up — the serving-system shape of Section 3.1's
 * working environment, where a Global Admission Controller fronts a
 * fleet of CMP nodes).
 *
 * Two concrete processes are provided: Poisson arrivals with
 * per-job benchmark / QoS-tier / deadline sampling over the
 * BenchmarkRegistry workloads, and a replayable trace-file process
 * for regression experiments. Both are fully determined by their
 * construction parameters (seeded Rng; file contents), which the
 * cluster determinism guarantee builds on.
 */

#ifndef CMPQOS_CLUSTER_ARRIVAL_HH
#define CMPQOS_CLUSTER_ARRIVAL_HH

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "qos/workload_spec.hh"

namespace cmpqos
{

/**
 * Service tiers a request is tagged with, mapping onto the paper's
 * execution modes (Section 3.3): Gold buys a strict reservation with
 * a tight deadline, Silver an elastic reservation with a moderate
 * deadline, Bronze runs opportunistically on spare resources.
 */
enum class QosTier
{
    Gold,
    Silver,
    Bronze,
};

constexpr std::size_t numQosTiers = 3;

const char *qosTierName(QosTier t);

/** How one tier translates into a concrete job request. */
struct TierSpec
{
    ModeSpec mode = ModeSpec::strict();
    /** (td - ta) / tw for jobs of this tier. */
    double deadlineFactor = 1.05;
    /** L2 ways requested. */
    unsigned ways = 7;
    /** Sampling weight within the mix. */
    double weight = 1.0;
};

/**
 * The population a Poisson process samples each arrival from.
 */
struct ArrivalMix
{
    /** Benchmarks drawn per arrival (must be registry names). */
    std::vector<std::string> benchmarks;
    /** Per-benchmark weights; empty = uniform. */
    std::vector<double> benchmarkWeights;
    /** Tier translation + weights, indexed by QosTier. */
    std::array<TierSpec, numQosTiers> tiers;
    /** Instructions per job. */
    InstCount instructions = 2'000'000;

    /**
     * Default mix: the paper's three representative benchmarks
     * (bzip2 / hmmer / gobmk, uniform), tiers weighted
     * Gold 50% / Silver 30% / Bronze 20% — the tight/moderate/relaxed
     * deadline proportions of Section 6 recast as service classes.
     */
    static ArrivalMix defaults();
};

/** One arrival: when, what, and under which SLO. */
struct ClusterArrival
{
    Cycle time = 0;
    QosTier tier = QosTier::Gold;
    JobRequest request;
    InstCount instructions = 0;
};

/**
 * A monotone stream of job arrivals.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * The next arrival, with time >= every previously returned time;
     * nullopt once the stream ends.
     */
    virtual std::optional<ClusterArrival> next() = 0;
};

/**
 * Poisson (exponential inter-arrival) process over an ArrivalMix.
 */
class PoissonArrivalProcess : public ArrivalProcess
{
  public:
    /**
     * @param mean_interarrival Mean gap between arrivals, cycles.
     * @param max_jobs Stream length (stream is infinite if 0 — pair
     *        with ClusterEngine::runForDuration).
     */
    PoissonArrivalProcess(double mean_interarrival, ArrivalMix mix,
                          std::uint64_t seed, std::uint64_t max_jobs);

    std::optional<ClusterArrival> next() override;

  private:
    double meanInterarrival_;
    ArrivalMix mix_;
    Rng rng_;
    std::uint64_t maxJobs_;
    std::uint64_t emitted_ = 0;
    double clock_ = 0.0;
};

/**
 * Replays arrivals from a text trace. Each non-comment line is
 *
 *   <time_cycles> <benchmark> <gold|silver|bronze> [instructions]
 *
 * separated by whitespace; '#' starts a comment. Lines must be sorted
 * by time. Tier translation comes from the supplied ArrivalMix.
 */
class TraceArrivalProcess : public ArrivalProcess
{
  public:
    /** Parse from a stream (@p origin names it in error messages). */
    TraceArrivalProcess(std::istream &in, ArrivalMix mix,
                        const std::string &origin = "<stream>");

    /** Parse from a file; fatal() if unreadable. */
    TraceArrivalProcess(const std::string &path, ArrivalMix mix);

    std::optional<ClusterArrival> next() override;

    std::size_t totalArrivals() const { return arrivals_.size(); }

  private:
    void parse(std::istream &in, const std::string &origin);

    ArrivalMix mix_;
    std::vector<ClusterArrival> arrivals_;
    std::size_t pos_ = 0;
};

/** Build a JobRequest for @p benchmark under tier @p t of @p mix. */
JobRequest tierRequest(const ArrivalMix &mix, QosTier t,
                       const std::string &benchmark);

} // namespace cmpqos

#endif // CMPQOS_CLUSTER_ARRIVAL_HH
