#include "engine.hh"

#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

ClusterEngine::ClusterEngine(const ClusterConfig &config)
    : config_(config),
      pool_(config.threads == 0 ? ThreadPool::hardwareConcurrency()
                                : config.threads)
{
    cmpqos_assert(config_.nodes > 0, "cluster needs at least one node");
    cmpqos_assert(config_.quantum > 0, "placement quantum must be > 0");
    // Independent, reproducible per-node RNG streams: one SplitMix
    // expansion of the cluster seed per node (Rng seeds via
    // SplitMix64), so results do not depend on the thread count.
    Rng seeder(config_.seed);
    nodes_.reserve(static_cast<std::size_t>(config_.nodes));
    for (int n = 0; n < config_.nodes; ++n)
        nodes_.push_back(std::make_unique<NodeWorker>(
            n, config_.node, seeder.next()));

    if (config_.telemetry != nullptr) {
        cmpqos_assert(config_.telemetry->producers() >= config_.nodes + 1,
                      "telemetry collector has %d producers, cluster "
                      "needs %d (nodes + driver)",
                      config_.telemetry->producers(), config_.nodes + 1);
        driverTrace_ = config_.telemetry->driverRecorder();
        for (int n = 0; n < config_.nodes; ++n)
            nodes_[static_cast<std::size_t>(n)]->setTrace(
                config_.telemetry->nodeRecorder(n));
    }
}

NodeWorker &
ClusterEngine::node(NodeId n)
{
    cmpqos_assert(n >= 0 && n < numNodes(), "node %d out of range", n);
    return *nodes_[static_cast<std::size_t>(n)];
}

NodeId
ClusterEngine::choose(const JobRequest &request, InstCount instructions)
{
    NodeId best = -1;
    Cycle best_slot = maxCycle;
    std::size_t best_load = 0;
    unsigned best_ways = 0;
    for (auto &node : nodes_) {
        const AdmissionDecision d = node->probe(request, instructions);
        if (!d.accepted)
            continue;
        switch (config_.policy) {
          case GacPolicy::FirstFit:
            return node->id();
          case GacPolicy::EarliestSlot:
            if (best < 0 || d.slotStart < best_slot) {
                best = node->id();
                best_slot = d.slotStart;
            }
            break;
          case GacPolicy::LeastLoaded: {
            const std::size_t load = node->inFlight();
            const unsigned ways =
                node->framework()
                    .lac()
                    .timeline()
                    .reservedAt(node->virtualNow())
                    .ways;
            if (best < 0 || load < best_load ||
                (load == best_load && ways < best_ways)) {
                best = node->id();
                best_load = load;
                best_ways = ways;
            }
            break;
          }
        }
    }
    return best;
}

ClusterEngine::Placement
ClusterEngine::place(const ClusterArrival &arrival)
{
    // Driver-side events carry the global arrival sequence number as
    // their job id (node-local JobIds collide across nodes); the
    // ArrivalPlaced event records the node-local id for correlation.
    const auto seq = static_cast<JobId>(submitted_);
    ++submitted_;
    const bool tracing = driverTrace_ != nullptr && driverTrace_->active();
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::JobSubmitted,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(arrival.tier);
        e.b = arrival.instructions;
        e.x = arrival.request.deadlineFactor;
        e.setName(arrival.request.benchmark);
        driverTrace_->emit(e);
    }
    Placement p;
    JobRequest request = arrival.request;
    NodeId target = choose(request, arrival.instructions);

    if (target < 0 && config_.negotiate) {
        // Global negotiation (Section 3.1): offer the smallest
        // relaxed deadline some node would accept.
        const double base = request.deadlineFactor;
        for (double f = 1.0 + config_.negotiateStep;
             f <= config_.negotiateMaxFactor + 1e-9;
             f += config_.negotiateStep) {
            request.deadlineFactor = base * f;
            target = choose(request, arrival.instructions);
            if (target >= 0) {
                p.negotiated = true;
                break;
            }
        }
    }

    if (target < 0) {
        ++rejected_;
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::JobRejected,
                                      arrival.time, seq);
            e.setName("no node accepted");
            driverTrace_->emit(e);
        }
        return p;
    }

    Job *job = nodes_[static_cast<std::size_t>(target)]->submit(
        request, arrival.instructions);
    if (job == nullptr) {
        // Probe and submit run back-to-back at the same node time, so
        // they must agree.
        cmpqos_panic("probe/submit disagreement on node %d", target);
    }
    ++accepted_;
    if (p.negotiated)
        ++negotiated_;
    ++acceptedByTier_[static_cast<std::size_t>(arrival.tier)];
    p.accepted = true;
    p.node = target;
    if (tracing) {
        if (p.negotiated) {
            TraceEvent n = traceEvent(TraceEventType::JobNegotiated,
                                      arrival.time, seq);
            n.a = static_cast<std::uint64_t>(target);
            n.x = request.deadlineFactor /
                  arrival.request.deadlineFactor;
            n.setName(arrival.request.benchmark);
            driverTrace_->emit(n);
        }
        TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(target);
        e.b = static_cast<std::uint64_t>(job->id());
        driverTrace_->emit(e);
    }
    return p;
}

void
ClusterEngine::advanceAll(Cycle t)
{
    pool_.parallelFor(nodes_.size(), [this, t](std::size_t i) {
        nodes_[i]->advanceTo(t);
    });
}

ClusterMetrics
ClusterEngine::run(ArrivalProcess &arrivals, Cycle horizon, bool drain)
{
    const auto wall_start = std::chrono::steady_clock::now();

    std::optional<ClusterArrival> pending = arrivals.next();
    Cycle t = 0;
    while (t < horizon) {
        Cycle next_q = t + config_.quantum;
        if (pending && pending->time >= next_q) {
            // Nothing to place for a while: jump to the quantum
            // boundary at or before the next arrival (driver-side
            // shortcut, identical at every thread count).
            const Cycle boundary =
                pending->time - (pending->time % config_.quantum);
            next_q = std::max(next_q, boundary);
        }
        if (next_q > horizon)
            next_q = horizon;

        while (pending && pending->time < next_q) {
            if (pending->time >= horizon)
                break;
            place(*pending);
            pending = arrivals.next();
        }

        if (!pending && !drain)
            break;
        if (!pending && drain) {
            // Stream exhausted: no more placements can happen, so
            // the remaining work has no quantum constraint.
            break;
        }
        advanceAll(next_q);
        // Quantum barrier: every node is quiescent, so the rings can
        // be emptied into the sinks in producer order.
        if (config_.telemetry != nullptr)
            config_.telemetry->drain();
        t = next_q;
    }

    if (drain) {
        pool_.parallelFor(nodes_.size(), [this](std::size_t i) {
            nodes_[i]->drain();
        });
    } else {
        advanceAll(horizon);
        // Open-loop truncation: the arrival already pulled past the
        // horizon was never offered for admission.
        if (pending)
            ++truncated_;
    }
    if (config_.telemetry != nullptr)
        config_.telemetry->drain();

    const auto wall_end = std::chrono::steady_clock::now();
    wallSeconds_ +=
        std::chrono::duration<double>(wall_end - wall_start).count();
    return snapshot();
}

ClusterMetrics
ClusterEngine::runToCompletion(ArrivalProcess &arrivals)
{
    return run(arrivals, maxCycle, true);
}

ClusterMetrics
ClusterEngine::runForDuration(ArrivalProcess &arrivals, Cycle duration)
{
    cmpqos_assert(duration > 0, "duration must be > 0");
    return run(arrivals, duration, false);
}

ClusterMetrics
ClusterEngine::snapshot() const
{
    ClusterMetrics m;
    m.seed = config_.seed;
    m.threads = pool_.size();
    m.quantum = config_.quantum;
    m.submitted = submitted_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.negotiated = negotiated_;
    m.truncated = truncated_;
    m.acceptedByTier = acceptedByTier_;
    m.wallSeconds = wallSeconds_;

    std::vector<NodeMetrics> per_node;
    per_node.reserve(nodes_.size());
    for (const auto &node : nodes_)
        per_node.push_back(MetricsExporter::collectNode(*node));
    MetricsExporter::aggregate(m, per_node);
    return m;
}

} // namespace cmpqos
