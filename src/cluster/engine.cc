#include "engine.hh"

#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

ClusterEngine::ClusterEngine(const ClusterConfig &config)
    : config_(config),
      pool_(config.threads == 0 ? ThreadPool::hardwareConcurrency()
                                : config.threads)
{
    cmpqos_assert(config_.nodes > 0, "cluster needs at least one node");
    cmpqos_assert(config_.quantum > 0, "placement quantum must be > 0");
    // Independent, reproducible per-node RNG streams: one SplitMix
    // expansion of the cluster seed per node (Rng seeds via
    // SplitMix64), so results do not depend on the thread count.
    Rng seeder(config_.seed);
    nodes_.reserve(static_cast<std::size_t>(config_.nodes));
    for (int n = 0; n < config_.nodes; ++n)
        nodes_.push_back(std::make_unique<NodeWorker>(
            n, config_.node, seeder.next()));

    if (config_.telemetry != nullptr) {
        cmpqos_assert(config_.telemetry->producers() >= config_.nodes + 1,
                      "telemetry collector has %d producers, cluster "
                      "needs %d (nodes + driver)",
                      config_.telemetry->producers(), config_.nodes + 1);
        driverTrace_ = config_.telemetry->driverRecorder();
        for (int n = 0; n < config_.nodes; ++n)
            nodes_[static_cast<std::size_t>(n)]->setTrace(
                config_.telemetry->nodeRecorder(n));
    }

    if (config_.control.enabled)
        for (auto &node : nodes_)
            node->enableController(config_.control);

    probeSkip_.assign(static_cast<std::size_t>(config_.nodes), 0);
    if (config_.faultPlan != nullptr && !config_.faultPlan->empty()) {
        config_.faultPlan->validate(config_.nodes);
        injector_ = std::make_unique<FaultInjector>(*config_.faultPlan,
                                                    config_.quantum);
    }
    if (config_.checkInvariants)
        checker_ = std::make_unique<InvariantChecker>();
}

NodeWorker &
ClusterEngine::node(NodeId n)
{
    cmpqos_assert(n >= 0 && n < numNodes(), "node %d out of range", n);
    return *nodes_[static_cast<std::size_t>(n)];
}

NodeId
ClusterEngine::choose(const JobRequest &request, InstCount instructions,
                      bool probe_faults)
{
    NodeId best = -1;
    Cycle best_slot = maxCycle;
    std::size_t best_load = 0;
    unsigned best_ways = 0;
    for (auto &node : nodes_) {
        if (!node->alive())
            continue;
        if (probe_faults &&
            probeSkip_[static_cast<std::size_t>(node->id())])
            continue;
        const AdmissionDecision d = node->probe(request, instructions);
        if (!d.accepted)
            continue;
        switch (config_.policy) {
          case GacPolicy::FirstFit:
            return node->id();
          case GacPolicy::EarliestSlot:
            if (best < 0 || d.slotStart < best_slot) {
                best = node->id();
                best_slot = d.slotStart;
            }
            break;
          case GacPolicy::LeastLoaded: {
            const std::size_t load = node->inFlight();
            const unsigned ways =
                node->framework()
                    .lac()
                    .timeline()
                    .reservedAt(node->virtualNow())
                    .ways;
            if (best < 0 || load < best_load ||
                (load == best_load && ways < best_ways)) {
                best = node->id();
                best_load = load;
                best_ways = ways;
            }
            break;
          }
        }
    }
    return best;
}

void
ClusterEngine::refreshProbeFaults(Cycle t)
{
    if (injector_ == nullptr || !injector_->anyWindows())
        return;
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    for (const auto &node : nodes_) {
        const auto i = static_cast<std::size_t>(node->id());
        probeSkip_[i] = 0;
        if (!node->alive())
            continue;
        if (injector_->probeDropped(node->id(), t)) {
            probeSkip_[i] = 1;
            ++faults_.probesDropped;
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::ProbeDropped, t);
                e.a = static_cast<std::uint64_t>(node->id());
                driverTrace_->emit(e);
            }
            continue;
        }
        const unsigned failures =
            injector_->probeTimeoutFailures(node->id(), t);
        if (failures == 0)
            continue;
        const bool abandoned = failures > config_.probeRetry.maxRetries;
        if (abandoned) {
            // Retry budget exhausted: the node counts as unreachable
            // for this placement.
            probeSkip_[i] = 1;
            ++faults_.probeTimeouts;
        } else {
            faults_.probeRetries += failures;
            faults_.backoffCycles +=
                config_.probeRetry.totalBackoff(failures);
        }
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::ProbeTimeout, t);
            e.a = static_cast<std::uint64_t>(node->id());
            e.b = failures;
            e.setName(abandoned ? "abandoned" : "recovered");
            driverTrace_->emit(e);
        }
    }
}

ClusterEngine::Placement
ClusterEngine::place(const ClusterArrival &arrival)
{
    // Driver-side events carry the global arrival sequence number as
    // their job id (node-local JobIds collide across nodes); the
    // ArrivalPlaced event records the node-local id for correlation.
    const auto seq = static_cast<JobId>(submitted_);
    ++submitted_;
    const bool tracing = driverTrace_ != nullptr && driverTrace_->active();
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::JobSubmitted,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(arrival.tier);
        e.b = arrival.instructions;
        e.x = arrival.request.deadlineFactor;
        e.setName(arrival.request.benchmark);
        driverTrace_->emit(e);
    }
    refreshProbeFaults(arrival.time);
    Placement p;
    JobRequest request = arrival.request;
    NodeId target = choose(request, arrival.instructions);

    if (target < 0 && config_.negotiate) {
        // Global negotiation (Section 3.1): offer the smallest
        // relaxed deadline some node would accept.
        const double base = request.deadlineFactor;
        for (double f = 1.0 + config_.negotiateStep;
             f <= config_.negotiateMaxFactor + 1e-9;
             f += config_.negotiateStep) {
            request.deadlineFactor = base * f;
            target = choose(request, arrival.instructions);
            if (target >= 0) {
                p.negotiated = true;
                break;
            }
        }
    }

    if (target < 0) {
        ++rejected_;
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::JobRejected,
                                      arrival.time, seq);
            e.setName("no node accepted");
            driverTrace_->emit(e);
        }
        if (config_.observer != nullptr) {
            PlacementOutcome o;
            o.seq = static_cast<std::uint64_t>(seq);
            o.deadlineFactor = arrival.request.deadlineFactor;
            config_.observer->onPlacement(arrival, o);
        }
        return p;
    }

    Cycle observed_slot = 0;
    if (config_.observer != nullptr) {
        // Probe the chosen node once more for the reserved slot the
        // reply will advertise. probe() is side-effect-free, so runs
        // with and without an observer stay bit-identical.
        const AdmissionDecision d =
            nodes_[static_cast<std::size_t>(target)]->probe(
                request, arrival.instructions);
        observed_slot = d.slotStart;
    }
    Job *job = nodes_[static_cast<std::size_t>(target)]->submit(
        request, arrival.instructions);
    if (job == nullptr) {
        // Probe and submit run back-to-back at the same node time, so
        // they must agree.
        cmpqos_panic("probe/submit disagreement on node %d", target);
    }
    ++accepted_;
    if (p.negotiated)
        ++negotiated_;
    ++acceptedByTier_[static_cast<std::size_t>(arrival.tier)];
    p.accepted = true;
    p.node = target;
    if (injector_ != nullptr) {
        // Idempotent commit: acceptance replies are keyed by arrival
        // sequence, so a duplicated reply from the node is detected
        // and dropped instead of double-placing the job.
        const bool fresh =
            committedSeqs_.insert(static_cast<std::uint64_t>(seq))
                .second;
        cmpqos_assert(fresh, "arrival %d committed twice", seq);
        if (injector_->duplicateReply(target, arrival.time)) {
            const bool dup =
                committedSeqs_.insert(static_cast<std::uint64_t>(seq))
                    .second;
            cmpqos_assert(!dup,
                          "duplicate reply slipped past the dedup");
            ++faults_.duplicateReplies;
            if (tracing) {
                TraceEvent e = traceEvent(
                    TraceEventType::DuplicateReplyDropped,
                    arrival.time, seq);
                e.a = static_cast<std::uint64_t>(target);
                driverTrace_->emit(e);
            }
        }
    }
    if (tracing) {
        if (p.negotiated) {
            TraceEvent n = traceEvent(TraceEventType::JobNegotiated,
                                      arrival.time, seq);
            n.a = static_cast<std::uint64_t>(target);
            n.x = request.deadlineFactor /
                  arrival.request.deadlineFactor;
            n.setName(arrival.request.benchmark);
            driverTrace_->emit(n);
        }
        TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(target);
        e.b = static_cast<std::uint64_t>(job->id());
        driverTrace_->emit(e);
    }
    if (config_.observer != nullptr) {
        PlacementOutcome o;
        o.seq = static_cast<std::uint64_t>(seq);
        o.accepted = true;
        o.negotiated = p.negotiated;
        o.node = target;
        o.slotStart = observed_slot;
        o.deadlineFactor = request.deadlineFactor;
        config_.observer->onPlacement(arrival, o);
    }
    return p;
}

void
ClusterEngine::relocate(NodeId origin, const NodeWorker::LostJob &lost,
                        Cycle t)
{
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    // Relocation probes bypass probe-fault windows: the GAC is
    // re-placing from its own records, not racing a lossy probe.
    JobRequest request = lost.request;
    NodeId target = choose(request, lost.instructions, false);
    bool negotiated = false;
    bool downgraded = false;
    if (target < 0 && config_.negotiate &&
        lost.mode != ExecutionMode::Opportunistic) {
        const double base = request.deadlineFactor;
        for (double f = 1.0 + config_.negotiateStep;
             f <= config_.negotiateMaxFactor + 1e-9;
             f += config_.negotiateStep) {
            request.deadlineFactor = base * f;
            target = choose(request, lost.instructions, false);
            if (target >= 0) {
                negotiated = true;
                break;
            }
        }
    }
    if (target < 0 && lost.mode == ExecutionMode::Elastic) {
        // Elastic fallback: rather than lose the job, re-admit it
        // best-effort (a QoS downgrade the tallies make visible).
        JobRequest fallback = lost.request;
        fallback.mode = ModeSpec::opportunistic();
        target = choose(fallback, lost.instructions, false);
        if (target >= 0) {
            request = fallback;
            downgraded = true;
        }
    }
    if (target < 0) {
        // No alive node can take the job: a distinct failure outcome,
        // never a silent drop.
        ++faults_.relocationRejected;
        nodes_[static_cast<std::size_t>(origin)]
            ->recordRelocationFailure();
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::JobFailed, t,
                                      lost.localJob);
            e.a = static_cast<std::uint64_t>(origin);
            e.b = static_cast<std::uint64_t>(lost.localJob);
            e.setName("relocation-failed");
            driverTrace_->emit(e);
        }
        return;
    }
    Job *job = nodes_[static_cast<std::size_t>(target)]->submit(
        request, lost.instructions);
    if (job == nullptr)
        cmpqos_panic("relocation probe/submit disagreement on node %d",
                     target);
    if (downgraded)
        ++faults_.relocationDowngraded;
    else
        ++faults_.relocated;
    if (tracing) {
        TraceEvent e =
            traceEvent(TraceEventType::JobRelocated, t, lost.localJob);
        e.a = static_cast<std::uint64_t>(origin);
        e.b = static_cast<std::uint64_t>(target);
        e.setName(downgraded    ? "downgraded"
                  : negotiated ? "renegotiated"
                               : "readmitted");
        driverTrace_->emit(e);
    }
}

void
ClusterEngine::applyFaultActions(Cycle t)
{
    if (injector_ == nullptr)
        return;
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    for (const FaultAction &action : injector_->actionsDue(t)) {
        NodeWorker &w = *nodes_[static_cast<std::size_t>(action.node)];
        if (action.type == FaultType::NodeCrash) {
            if (!w.alive())
                continue; // already down: tolerated plan sloppiness
            ++faults_.crashes;
            NodeWorker::CrashReport report = w.crash();
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::NodeCrashed, t);
                e.a = static_cast<std::uint64_t>(action.node);
                e.b = action.quantum;
                driverTrace_->emit(e);
                for (JobId j : report.failedRunning) {
                    TraceEvent f =
                        traceEvent(TraceEventType::JobFailed, t, j);
                    f.a = static_cast<std::uint64_t>(action.node);
                    f.b = static_cast<std::uint64_t>(j);
                    f.setName("node-crash");
                    driverTrace_->emit(f);
                }
            }
            for (const NodeWorker::LostJob &lost : report.waiting)
                relocate(action.node, lost, t);
        } else {
            if (w.alive())
                continue; // restart without a crash: no-op
            ++faults_.restarts;
            w.restart(t);
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::NodeRestarted, t);
                e.a = static_cast<std::uint64_t>(action.node);
                e.b = action.quantum;
                driverTrace_->emit(e);
            }
        }
    }
}

void
ClusterEngine::checkAll()
{
    for (const auto &node : nodes_)
        if (node->alive())
            checker_->checkNode(node->id(), node->framework(),
                                node->virtualNow());
}

void
ClusterEngine::advanceAll(Cycle from, Cycle to)
{
    const bool stalls_possible =
        injector_ != nullptr && injector_->anyWindows();
    std::vector<Cycle> stalls;
    if (stalls_possible) {
        // Slow-quantum stalls are computed on the driver thread so
        // the parallel advance stays deterministic.
        stalls.assign(nodes_.size(), 0);
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            if (!nodes_[i]->alive())
                continue;
            stalls[i] =
                injector_->stallCycles(nodes_[i]->id(), from);
            if (stalls[i] > 0)
                ++faults_.stalledQuanta;
        }
    }
    pool_.parallelFor(nodes_.size(),
                      [this, to, &stalls](std::size_t i) {
                          nodes_[i]->advanceTo(
                              to, stalls.empty() ? 0 : stalls[i]);
                      });
}

ClusterMetrics
ClusterEngine::run(ArrivalProcess &arrivals, Cycle horizon, bool drain)
{
    // detlint:allow(wall-clock): measurement-only host wall time for
    // the metrics snapshot; never feeds virtual time or placement.
    const auto wall_start = std::chrono::steady_clock::now();

    std::optional<ClusterArrival> pending = arrivals.next();
    Cycle t = 0;
    while (t < horizon) {
        applyFaultActions(t);

        Cycle next_q = t + config_.quantum;
        if (pending && pending->time >= next_q) {
            // Nothing to place for a while: jump to the quantum
            // boundary at or before the next arrival (driver-side
            // shortcut, identical at every thread count).
            const Cycle boundary =
                pending->time - (pending->time % config_.quantum);
            next_q = std::max(next_q, boundary);
        }
        if (injector_ != nullptr) {
            const Cycle ev = injector_->nextEventTime(t);
            if (ev < next_q) {
                // Never jump past a barrier with scheduled fault
                // activity; inside a window, step one quantum at a
                // time so per-quantum faults land on every quantum.
                next_q = t + config_.quantum;
            } else if (!pending && injector_->actionsPending() &&
                       ev != maxCycle && ev > next_q) {
                // Stream is dry but crash/restart work remains:
                // jump straight to the next fault barrier.
                next_q = ev;
            }
        }
        if (next_q > horizon)
            next_q = horizon;

        while (pending && pending->time < next_q) {
            if (pending->time >= horizon)
                break;
            place(*pending);
            pending = arrivals.next();
        }

        if (!pending && !drain)
            break;
        if (!pending && drain &&
            !(injector_ != nullptr && injector_->actionsPending())) {
            // Stream exhausted: no more placements can happen, so
            // the remaining work has no quantum constraint.
            break;
        }
        // Controller step: after this barrier's placements committed,
        // before the nodes advance — each controller sees the
        // reservations just placed and can revert way grants ahead of
        // any reserved-start headroom check inside the quantum. The
        // federated shard steps at the same point (start of its
        // FedAdvance), exactly once per advance, so controller-on
        // runs stay identical across engines.
        if (config_.control.enabled)
            for (auto &node : nodes_)
                node->controllerStep();
        advanceAll(t, next_q);
        // Quantum barrier: every node is quiescent, so the rings can
        // be emptied into the sinks in producer order.
        if (config_.telemetry != nullptr)
            config_.telemetry->drain();
        if (checker_ != nullptr)
            checkAll();
        t = next_q;
        if (config_.observer != nullptr)
            config_.observer->onQuantum(t);
    }

    if (drain) {
        pool_.parallelFor(nodes_.size(), [this](std::size_t i) {
            nodes_[i]->drain();
        });
    } else {
        advanceAll(t, horizon);
        // Open-loop truncation: the arrival already pulled past the
        // horizon was never offered for admission.
        if (pending)
            ++truncated_;
    }
    if (config_.telemetry != nullptr)
        config_.telemetry->drain();
    if (checker_ != nullptr)
        checkAll();
    if (config_.observer != nullptr)
        config_.observer->onQuantum(drain ? t : horizon);

    // detlint:allow(wall-clock): measurement-only host wall time for
    // the metrics snapshot; never feeds virtual time or placement.
    const auto wall_end = std::chrono::steady_clock::now();
    wallSeconds_ +=
        std::chrono::duration<double>(wall_end - wall_start).count();
    return snapshot();
}

ClusterMetrics
ClusterEngine::runToCompletion(ArrivalProcess &arrivals)
{
    // The calling thread is the driver for the whole run: the barrier
    // protocol gives it exclusive use of the placement machinery.
    driver_.grant();
    return run(arrivals, maxCycle, true);
}

ClusterMetrics
ClusterEngine::runForDuration(ArrivalProcess &arrivals, Cycle duration)
{
    cmpqos_assert(duration > 0, "duration must be > 0");
    driver_.grant();
    return run(arrivals, duration, false);
}

ClusterMetrics
ClusterEngine::snapshot() const
{
    ClusterMetrics m;
    m.seed = config_.seed;
    m.threads = pool_.size();
    m.quantum = config_.quantum;
    m.submitted = submitted_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.negotiated = negotiated_;
    m.truncated = truncated_;
    m.acceptedByTier = acceptedByTier_;
    m.wallSeconds = wallSeconds_;
    m.faults = faults_;
    m.controllerOn = config_.control.enabled;
    if (checker_ != nullptr)
        m.invariantViolations = checker_->totalViolations();

    std::vector<NodeMetrics> per_node;
    per_node.reserve(nodes_.size());
    for (const auto &node : nodes_)
        per_node.push_back(MetricsExporter::collectNode(*node));
    MetricsExporter::aggregate(m, per_node);
    return m;
}

} // namespace cmpqos
