#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace cmpqos
{

namespace
{

std::size_t
modeIndex(ExecutionMode m)
{
    return static_cast<std::size_t>(m);
}

const char *const modeKey[3] = {"strict", "elastic", "opportunistic"};
const char *const tierKey[numQosTiers] = {"gold", "silver", "bronze"};

std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

NodeMetrics
MetricsExporter::collectNode(const NodeWorker &worker)
{
    NodeMetrics m;
    m.node = worker.id();
    m.virtualTime = worker.virtualNow();
    m.placed = worker.placed();
    m.inFlight = worker.inFlight();
    m.alive = worker.alive();
    m.restarts = worker.restarts();

    // Work lost to crashes lives in the carried tallies; the live
    // framework is only scanned while the node is up (a crashed
    // node's framework is retired — crash() already folded it in).
    const NodeCarried &carried = worker.carried();
    m.failed = carried.failed;
    m.completed = carried.completed;
    m.instructions = carried.instructions;
    m.stolenWays = carried.stolenWays;
    double busy = carried.busyCycles;
    for (std::size_t i = 0; i < m.byMode.size(); ++i) {
        m.byMode[i].completed = carried.modeCompleted[i];
        m.byMode[i].deadlineHits = carried.modeDeadlineHits[i];
    }

    if (worker.alive()) {
        const QosFramework &fw = worker.framework();
        for (const auto &job : fw.jobs()) {
            if (job->state() == JobState::Completed) {
                ++m.completed;
                auto &tally = m.byMode[modeIndex(job->mode().mode)];
                ++tally.completed;
                if (job->deadlineMet())
                    ++tally.deadlineHits;
            }
            m.stolenWays += job->stolenWays;
        }
        const CmpSystem &sys = fw.system();
        for (int c = 0; c < sys.numCores(); ++c) {
            const CoreLedger &ledger = sys.core(c).ledger();
            m.instructions += ledger.instructions;
            busy += ledger.cycles;
        }
    }
    m.energy = worker.energy();
    m.control = worker.controlTallies();
    const double capacity =
        static_cast<double>(m.virtualTime) *
        static_cast<double>(worker.framework().system().numCores());
    m.utilisation = capacity <= 0.0 ? 0.0 : busy / capacity;
    if (m.utilisation > 1.0)
        m.utilisation = 1.0;
    return m;
}

void
MetricsExporter::aggregate(ClusterMetrics &cluster,
                           const std::vector<NodeMetrics> &nodes)
{
    cluster.nodes = nodes;
    cluster.virtualTime = 0;
    cluster.instructions = 0;
    cluster.completed = 0;
    cluster.stolenWays = 0;
    cluster.byMode = {};
    cluster.faults.failedJobs = 0;
    cluster.energy = 0.0;
    cluster.control = ControlTallies();
    for (const auto &n : nodes) {
        cluster.virtualTime = std::max(cluster.virtualTime,
                                       n.virtualTime);
        cluster.instructions += n.instructions;
        cluster.completed += n.completed;
        cluster.stolenWays += n.stolenWays;
        cluster.faults.failedJobs += n.failed;
        cluster.energy += n.energy;
        cluster.control.accumulate(n.control);
        for (std::size_t i = 0; i < cluster.byMode.size(); ++i) {
            cluster.byMode[i].completed += n.byMode[i].completed;
            cluster.byMode[i].deadlineHits += n.byMode[i].deadlineHits;
        }
    }
}

std::string
ClusterMetrics::fingerprint() const
{
    std::ostringstream os;
    os << "seed=" << seed << " submitted=" << submitted
       << " accepted=" << accepted << " rejected=" << rejected
       << " negotiated=" << negotiated << " truncated=" << truncated
       << " tiers=" << acceptedByTier[0] << "/" << acceptedByTier[1]
       << "/" << acceptedByTier[2] << " vt=" << virtualTime
       << " instr=" << instructions << " completed=" << completed
       << " stolen=" << stolenWays;
    for (std::size_t i = 0; i < byMode.size(); ++i)
        os << " " << modeKey[i] << "=" << byMode[i].completed << ":"
           << byMode[i].deadlineHits;
    // Fault fields only join the digest when something faulted: an
    // empty fault plan must fingerprint byte-identically to a build
    // without the fault layer (zero-perturbation guarantee).
    const bool faulty = faults.any() || invariantViolations != 0;
    if (faulty)
        os << " faults=" << faults.crashes << ":" << faults.restarts
           << ":" << faults.failedJobs << ":" << faults.relocated
           << ":" << faults.relocationDowngraded << ":"
           << faults.relocationRejected << ":" << faults.probesDropped
           << ":" << faults.probeTimeouts << ":" << faults.probeRetries
           << ":" << faults.backoffCycles << ":"
           << faults.duplicateReplies << ":" << faults.stalledQuanta
           << ":" << faults.linkDrops << ":" << faults.linkDups << ":"
           << faults.linkDelayCycles << ":" << faults.partitionedQuanta
           << " violations=" << invariantViolations;
    // Controller fields join the digest only on controller-enabled
    // runs, with energy fixed to milli-units so the formatting is
    // platform-stable (same gating idea as the fault fields above).
    if (controllerOn)
        os << " energy=" << std::llround(energy * 1e3)
           << " control=" << control.retunes << ":"
           << control.freqBoosts << ":" << control.freqDrops << ":"
           << control.wayGrants << ":" << control.wayReturns << ":"
           << control.bwGrants << ":" << control.bwReturns;
    for (const auto &n : nodes) {
        os << " n" << n.node << "=" << n.placed << ":" << n.completed
           << ":" << n.inFlight << ":" << n.instructions << ":"
           << n.stolenWays << ":" << n.virtualTime;
        if (faulty)
            os << ":" << n.failed << ":" << n.restarts << ":"
               << (n.alive ? 1 : 0);
        if (controllerOn)
            os << ":" << std::llround(n.energy * 1e3) << ":"
               << n.control.retunes;
    }
    return os.str();
}

void
MetricsExporter::writeJsonl(const ClusterMetrics &m, std::ostream &os)
{
    os << "{\"type\":\"cluster\",\"seed\":" << m.seed
       << ",\"threads\":" << m.threads << ",\"shards\":" << m.shards
       << ",\"quantum\":" << m.quantum
       << ",\"submitted\":" << m.submitted
       << ",\"accepted\":" << m.accepted
       << ",\"rejected\":" << m.rejected
       << ",\"negotiated\":" << m.negotiated
       << ",\"truncated\":" << m.truncated << ",\"accepted_by_tier\":{";
    for (std::size_t t = 0; t < numQosTiers; ++t)
        os << (t ? "," : "") << "\"" << tierKey[t]
           << "\":" << m.acceptedByTier[t];
    os << "},\"accept_rate\":" << num(m.acceptRate())
       << ",\"completed\":" << m.completed
       << ",\"virtual_cycles\":" << m.virtualTime
       << ",\"instructions\":" << m.instructions
       << ",\"stolen_ways\":" << m.stolenWays
       << ",\"deadline_hit_rate\":{";
    // Modes with no completions have no defined rate (hitRate() is
    // NaN, which JSON cannot carry): leave them out of the map.
    bool first_rate = true;
    for (std::size_t i = 0; i < m.byMode.size(); ++i) {
        if (!m.byMode[i].hasHitRate())
            continue;
        os << (first_rate ? "" : ",") << "\"" << modeKey[i]
           << "\":" << num(m.byMode[i].hitRate());
        first_rate = false;
    }
    os << "},\"faults\":{\"crashes\":" << m.faults.crashes
       << ",\"restarts\":" << m.faults.restarts
       << ",\"failed_jobs\":" << m.faults.failedJobs
       << ",\"relocated\":" << m.faults.relocated
       << ",\"relocation_downgraded\":" << m.faults.relocationDowngraded
       << ",\"relocation_rejected\":" << m.faults.relocationRejected
       << ",\"probes_dropped\":" << m.faults.probesDropped
       << ",\"probe_timeouts\":" << m.faults.probeTimeouts
       << ",\"probe_retries\":" << m.faults.probeRetries
       << ",\"backoff_cycles\":" << m.faults.backoffCycles
       << ",\"duplicate_replies\":" << m.faults.duplicateReplies
       << ",\"stalled_quanta\":" << m.faults.stalledQuanta
       << ",\"link_drops\":" << m.faults.linkDrops
       << ",\"link_dups\":" << m.faults.linkDups
       << ",\"link_delay_cycles\":" << m.faults.linkDelayCycles
       << ",\"partitioned_quanta\":" << m.faults.partitionedQuanta
       << "},\"invariant_violations\":" << m.invariantViolations;
    // Controller keys appear only on controller-enabled runs so
    // controller-off JSONL stays byte-identical to older captures.
    if (m.controllerOn)
        os << ",\"controller\":{\"energy\":" << num(m.energy)
           << ",\"retunes\":" << m.control.retunes
           << ",\"freq_boosts\":" << m.control.freqBoosts
           << ",\"freq_drops\":" << m.control.freqDrops
           << ",\"way_grants\":" << m.control.wayGrants
           << ",\"way_returns\":" << m.control.wayReturns
           << ",\"bw_grants\":" << m.control.bwGrants
           << ",\"bw_returns\":" << m.control.bwReturns << "}";
    os << ",\"wall_seconds\":" << num(m.wallSeconds)
       << ",\"jobs_per_second\":" << num(m.jobsPerWallSecond()) << "}\n";

    for (const auto &n : m.nodes) {
        os << "{\"type\":\"node\",\"node\":" << n.node
           << ",\"virtual_cycles\":" << n.virtualTime
           << ",\"placed\":" << n.placed
           << ",\"completed\":" << n.completed
           << ",\"in_flight\":" << n.inFlight
           << ",\"instructions\":" << n.instructions
           << ",\"utilisation\":" << num(n.utilisation)
           << ",\"stolen_ways\":" << n.stolenWays
           << ",\"failed\":" << n.failed
           << ",\"restarts\":" << n.restarts
           << ",\"alive\":" << (n.alive ? "true" : "false");
        for (std::size_t i = 0; i < n.byMode.size(); ++i)
            os << ",\"" << modeKey[i]
               << "_completed\":" << n.byMode[i].completed << ",\""
               << modeKey[i]
               << "_deadline_hits\":" << n.byMode[i].deadlineHits;
        if (m.controllerOn)
            os << ",\"energy\":" << num(n.energy)
               << ",\"retunes\":" << n.control.retunes;
        os << "}\n";
    }
}

void
MetricsExporter::writeCsv(const ClusterMetrics &m, std::ostream &os)
{
    os << "node,virtual_cycles,placed,completed,in_flight,"
          "instructions,utilisation,stolen_ways,failed,restarts,alive";
    for (const char *key : modeKey)
        os << "," << key << "_completed," << key << "_deadline_hits,"
           << key << "_hit_rate";
    // Controller columns only exist on controller-enabled runs (the
    // fixed header above is golden-tested on controller-off output).
    if (m.controllerOn)
        os << ",energy,retunes";
    os << "\n";
    for (const auto &n : m.nodes) {
        os << n.node << "," << n.virtualTime << "," << n.placed << ","
           << n.completed << "," << n.inFlight << ","
           << n.instructions << "," << num(n.utilisation) << ","
           << n.stolenWays << "," << n.failed << "," << n.restarts
           << "," << (n.alive ? 1 : 0);
        for (const auto &tally : n.byMode) {
            os << "," << tally.completed << "," << tally.deadlineHits
               << ",";
            // No completions: the rate is undefined; leave the cell
            // empty rather than writing a fictitious 1.0 (or NaN).
            if (tally.hasHitRate())
                os << num(tally.hitRate());
        }
        if (m.controllerOn)
            os << "," << num(n.energy) << "," << n.control.retunes;
        os << "\n";
    }
}

void
MetricsExporter::writeJsonlFile(const ClusterMetrics &m,
                                const std::string &path)
{
    std::ofstream os(path, std::ios::app);
    if (!os)
        cmpqos_fatal("cannot open metrics file '%s'", path.c_str());
    writeJsonl(m, os);
}

void
MetricsExporter::writeCsvFile(const ClusterMetrics &m,
                              const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        cmpqos_fatal("cannot open metrics file '%s'", path.c_str());
    writeCsv(m, os);
}

} // namespace cmpqos
