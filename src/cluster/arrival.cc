#include "arrival.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "workload/benchmark.hh"

namespace cmpqos
{

const char *
qosTierName(QosTier t)
{
    switch (t) {
      case QosTier::Gold: return "gold";
      case QosTier::Silver: return "silver";
      case QosTier::Bronze: return "bronze";
    }
    return "?";
}

ArrivalMix
ArrivalMix::defaults()
{
    ArrivalMix mix;
    mix.benchmarks = BenchmarkRegistry::representatives();
    mix.tiers[static_cast<std::size_t>(QosTier::Gold)] =
        TierSpec{ModeSpec::strict(), 1.05, 7, 0.5};
    mix.tiers[static_cast<std::size_t>(QosTier::Silver)] =
        TierSpec{ModeSpec::elastic(0.05), 2.0, 7, 0.3};
    mix.tiers[static_cast<std::size_t>(QosTier::Bronze)] =
        TierSpec{ModeSpec::opportunistic(), 3.0, 4, 0.2};
    return mix;
}

JobRequest
tierRequest(const ArrivalMix &mix, QosTier t, const std::string &benchmark)
{
    const TierSpec &spec = mix.tiers[static_cast<std::size_t>(t)];
    JobRequest req;
    req.benchmark = benchmark;
    req.mode = spec.mode;
    req.deadlineFactor = spec.deadlineFactor;
    req.ways = spec.ways;
    return req;
}

PoissonArrivalProcess::PoissonArrivalProcess(double mean_interarrival,
                                             ArrivalMix mix,
                                             std::uint64_t seed,
                                             std::uint64_t max_jobs)
    : meanInterarrival_(mean_interarrival), mix_(std::move(mix)),
      rng_(seed), maxJobs_(max_jobs)
{
    cmpqos_assert(mean_interarrival > 0.0,
                  "mean inter-arrival time must be positive");
    cmpqos_assert(!mix_.benchmarks.empty(),
                  "arrival mix has no benchmarks");
    for (const auto &b : mix_.benchmarks) {
        if (!BenchmarkRegistry::has(b))
            cmpqos_fatal("arrival mix names unknown benchmark '%s'",
                         b.c_str());
    }
    if (!mix_.benchmarkWeights.empty() &&
        mix_.benchmarkWeights.size() != mix_.benchmarks.size()) {
        cmpqos_fatal("arrival mix has %zu benchmarks but %zu weights",
                     mix_.benchmarks.size(),
                     mix_.benchmarkWeights.size());
    }
}

std::optional<ClusterArrival>
PoissonArrivalProcess::next()
{
    if (maxJobs_ != 0 && emitted_ >= maxJobs_)
        return std::nullopt;
    ++emitted_;
    clock_ += rng_.exponential(meanInterarrival_);

    const std::size_t bench =
        mix_.benchmarkWeights.empty()
            ? static_cast<std::size_t>(
                  rng_.uniformInt(mix_.benchmarks.size()))
            : rng_.discrete(mix_.benchmarkWeights);
    std::vector<double> tier_weights(numQosTiers);
    for (std::size_t t = 0; t < numQosTiers; ++t)
        tier_weights[t] = mix_.tiers[t].weight;
    const auto tier = static_cast<QosTier>(rng_.discrete(tier_weights));

    ClusterArrival a;
    a.time = static_cast<Cycle>(clock_);
    a.tier = tier;
    a.request = tierRequest(mix_, tier, mix_.benchmarks[bench]);
    a.instructions = mix_.instructions;
    return a;
}

TraceArrivalProcess::TraceArrivalProcess(std::istream &in, ArrivalMix mix,
                                         const std::string &origin)
    : mix_(std::move(mix))
{
    parse(in, origin);
}

TraceArrivalProcess::TraceArrivalProcess(const std::string &path,
                                         ArrivalMix mix)
    : mix_(std::move(mix))
{
    std::ifstream in(path);
    if (!in)
        cmpqos_fatal("cannot open arrival trace '%s'", path.c_str());
    parse(in, path);
}

void
TraceArrivalProcess::parse(std::istream &in, const std::string &origin)
{
    std::string line;
    std::size_t lineno = 0;
    Cycle last = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::uint64_t time = 0;
        std::string benchmark, tier_name;
        if (!(fields >> time))
            continue; // blank / comment-only line
        if (!(fields >> benchmark >> tier_name))
            cmpqos_fatal("%s:%zu: expected '<time> <benchmark> <tier> "
                         "[instructions]'",
                         origin.c_str(), lineno);
        if (!BenchmarkRegistry::has(benchmark))
            cmpqos_fatal("%s:%zu: unknown benchmark '%s'",
                         origin.c_str(), lineno, benchmark.c_str());
        QosTier tier;
        if (tier_name == "gold")
            tier = QosTier::Gold;
        else if (tier_name == "silver")
            tier = QosTier::Silver;
        else if (tier_name == "bronze")
            tier = QosTier::Bronze;
        else
            cmpqos_fatal("%s:%zu: unknown tier '%s' (want gold, silver "
                         "or bronze)",
                         origin.c_str(), lineno, tier_name.c_str());
        InstCount instructions = mix_.instructions;
        fields >> instructions; // optional; keeps default on failure
        if (time < last)
            cmpqos_fatal("%s:%zu: arrival times must be sorted "
                         "(%llu after %llu)",
                         origin.c_str(), lineno,
                         static_cast<unsigned long long>(time),
                         static_cast<unsigned long long>(last));
        last = time;

        ClusterArrival a;
        a.time = time;
        a.tier = tier;
        a.request = tierRequest(mix_, tier, benchmark);
        a.instructions = instructions;
        arrivals_.push_back(std::move(a));
    }
}

std::optional<ClusterArrival>
TraceArrivalProcess::next()
{
    if (pos_ >= arrivals_.size())
        return std::nullopt;
    return arrivals_[pos_++];
}

} // namespace cmpqos
