#include "node_worker.hh"

namespace cmpqos
{

NodeWorker::NodeWorker(NodeId id, const FrameworkConfig &config,
                       std::uint64_t seed)
    : id_(id)
{
    FrameworkConfig node_config = config;
    node_config.seed = seed;
    framework_ = std::make_unique<QosFramework>(node_config);
}

void
NodeWorker::advanceTo(Cycle t)
{
    Simulation &sim = framework_->simulation();
    if (sim.now() >= t)
        return;
    // A no-op event at t pins the clock to the quantum boundary even
    // when the node has nothing to execute, so admission probes in
    // the next quantum see a consistent "now" on every node.
    sim.schedule(t, []() {}, "quantum");
    sim.run(t);
}

void
NodeWorker::drain()
{
    framework_->runToCompletion();
}

AdmissionDecision
NodeWorker::probe(const JobRequest &request, InstCount instructions) const
{
    return framework_->probeJob(request, instructions);
}

Job *
NodeWorker::submit(const JobRequest &request, InstCount instructions)
{
    Job *job = framework_->submitJob(request, instructions);
    if (job != nullptr)
        ++placed_;
    return job;
}

} // namespace cmpqos
