#include "node_worker.hh"

namespace cmpqos
{

NodeWorker::NodeWorker(NodeId id, const FrameworkConfig &config,
                       std::uint64_t seed)
    : id_(id)
{
    FrameworkConfig node_config = config;
    node_config.seed = seed;
    framework_ = std::make_unique<QosFramework>(node_config);
}

void
NodeWorker::setTrace(TraceRecorder *trace)
{
    trace_ = trace;
    framework_->setTrace(trace);
}

void
NodeWorker::advanceTo(Cycle t)
{
    Simulation &sim = framework_->simulation();
    if (sim.now() >= t)
        return;
    const bool tracing = trace_ != nullptr && trace_->active();
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::QuantumBegin, sim.now());
        e.a = t;
        trace_->emit(e);
    }
    // A no-op event at t pins the clock to the quantum boundary even
    // when the node has nothing to execute, so admission probes in
    // the next quantum see a consistent "now" on every node.
    sim.schedule(t, []() {}, "quantum");
    sim.run(t);
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::QuantumEnd, sim.now());
        e.a = t;
        trace_->emit(e);
    }
}

void
NodeWorker::drain()
{
    framework_->runToCompletion();
}

AdmissionDecision
NodeWorker::probe(const JobRequest &request, InstCount instructions) const
{
    return framework_->probeJob(request, instructions);
}

Job *
NodeWorker::submit(const JobRequest &request, InstCount instructions)
{
    Job *job = framework_->submitJob(request, instructions);
    if (job != nullptr)
        ++placed_;
    return job;
}

} // namespace cmpqos
