#include "node_worker.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace cmpqos
{

NodeWorker::NodeWorker(NodeId id, const FrameworkConfig &config,
                       std::uint64_t seed)
    : id_(id), config_(config), seed_(seed)
{
    FrameworkConfig node_config = config;
    node_config.seed = seed;
    framework_ = std::make_unique<QosFramework>(node_config);
}

void
NodeWorker::setTrace(TraceRecorder *trace)
{
    owner_.grant();
    trace_ = trace;
    framework_->setTrace(trace);
}

void
NodeWorker::enableController(const ControllerConfig &config)
{
    owner_.grant();
    controllerConfig_ = config;
    controller_ = config.enabled
                      ? std::make_unique<NodeController>(config)
                      : nullptr;
}

void
NodeWorker::controllerStep()
{
    owner_.grant();
    if (!alive_ || controller_ == nullptr)
        return;
    controller_->step(*framework_, framework_->simulation().now(),
                      trace_);
}

ControlTallies
NodeWorker::controlTallies() const
{
    owner_.grant();
    ControlTallies t = carried_.control;
    if (controller_ != nullptr)
        t.accumulate(controller_->tallies());
    return t;
}

double
NodeWorker::energy() const
{
    owner_.grant();
    if (!controllerConfig_.enabled)
        return 0.0;
    double dyn_work = carried_.dynWork;
    if (alive_) {
        const CmpSystem &sys = framework_->system();
        for (int c = 0; c < sys.numCores(); ++c)
            dyn_work += sys.core(c).ledger().dynWork;
    }
    return modelledEnergy(controllerConfig_,
                          static_cast<double>(virtualNow()),
                          config_.cmp.numCores, dyn_work);
}

void
NodeWorker::advanceTo(Cycle t, Cycle stall)
{
    owner_.grant();
    if (!alive_)
        return;
    Simulation &sim = framework_->simulation();
    if (sim.now() >= t)
        return;
    const bool tracing = trace_ != nullptr && trace_->active();
    if (stall > 0) {
        // Slow quantum: the node only reaches t - stall this quantum
        // (virtual latency spike; it catches up next quantum).
        if (tracing) {
            TraceEvent e =
                traceEvent(TraceEventType::QuantumStalled, sim.now());
            e.a = t;
            e.b = stall;
            trace_->emit(e);
        }
        t = t > stall ? t - stall : 0;
        if (sim.now() >= t)
            return;
    }
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::QuantumBegin, sim.now());
        e.a = t;
        trace_->emit(e);
    }
    // A no-op event at t pins the clock to the quantum boundary even
    // when the node has nothing to execute, so admission probes in
    // the next quantum see a consistent "now" on every node.
    sim.schedule(t, []() {}, "quantum");
    sim.run(t);
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::QuantumEnd, sim.now());
        e.a = t;
        trace_->emit(e);
    }
}

void
NodeWorker::drain()
{
    owner_.grant();
    if (!alive_)
        return;
    framework_->runToCompletion();
}

AdmissionDecision
NodeWorker::probe(const JobRequest &request, InstCount instructions) const
{
    owner_.grant();
    cmpqos_assert(alive_, "probe on dead node %d", id_);
    return framework_->probeJob(request, instructions);
}

Job *
NodeWorker::submit(const JobRequest &request, InstCount instructions)
{
    owner_.grant();
    cmpqos_assert(alive_, "submit on dead node %d", id_);
    Job *job = framework_->submitJob(request, instructions);
    if (job != nullptr) {
        ++placed_;
        pendingRequests_[job->id()] = {request, instructions};
    }
    return job;
}

NodeWorker::CrashReport
NodeWorker::crash()
{
    owner_.grant();
    cmpqos_assert(alive_, "crash on already-dead node %d", id_);
    CrashReport report;
    const QosFramework &fw = *framework_;

    // Fold the dying incarnation's completed work into the carried
    // tallies (the framework is retired, never scanned again), and
    // sort the in-flight jobs into failed (running) vs relocatable
    // (still waiting for their slot).
    for (const auto &job : fw.jobs()) {
        switch (job->state()) {
          case JobState::Running:
            report.failedRunning.push_back(job->id());
            break;
          case JobState::Waiting: {
            auto it = pendingRequests_.find(job->id());
            cmpqos_assert(it != pendingRequests_.end(),
                          "waiting job %d has no recorded request",
                          job->id());
            report.waiting.push_back({job->id(), it->second.request,
                                      it->second.instructions,
                                      job->mode().mode});
            break;
          }
          case JobState::Completed: {
            ++carried_.completed;
            const auto m =
                static_cast<std::size_t>(job->mode().mode);
            ++carried_.modeCompleted[m];
            if (job->deadlineMet())
                ++carried_.modeDeadlineHits[m];
            break;
          }
          default:
            break;
        }
        carried_.stolenWays += job->stolenWays;
    }
    const CmpSystem &sys = fw.system();
    for (int c = 0; c < sys.numCores(); ++c) {
        const CoreLedger &ledger = sys.core(c).ledger();
        carried_.instructions += ledger.instructions;
        carried_.busyCycles += ledger.cycles;
        carried_.dynWork += ledger.dynWork;
    }
    carried_.virtualTime = fw.simulation().now();
    carried_.failed += report.failedRunning.size();
    if (controller_ != nullptr) {
        carried_.control.accumulate(controller_->tallies());
        controller_.reset();
    }
    alive_ = false;
    return report;
}

void
NodeWorker::restart(Cycle now)
{
    owner_.grant();
    cmpqos_assert(!alive_, "restart on live node %d", id_);
    ++restarts_;
    // Deterministic incarnation seed: node seed split by the restart
    // ordinal, so replays are bit-identical at any thread count.
    Rng derive(seed_ ^ (0x9E3779B97F4A7C15ULL * restarts_));
    FrameworkConfig node_config = config_;
    node_config.seed = derive.next();
    framework_ = std::make_unique<QosFramework>(node_config);
    if (trace_ != nullptr)
        framework_->setTrace(trace_);
    pendingRequests_.clear();
    // Fresh incarnation, fresh measurement windows.
    if (controllerConfig_.enabled)
        controller_ = std::make_unique<NodeController>(controllerConfig_);
    alive_ = true;
    // Align the fresh clock with the cluster barrier.
    advanceTo(now);
}

} // namespace cmpqos
