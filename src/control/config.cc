#include "config.hh"

#include <cstdio>
#include <cstdlib>

namespace cmpqos
{

namespace
{

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
parseDouble(std::string_view v, double &out)
{
    const std::string s(v);
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && !s.empty();
}

bool
parseUnsigned(std::string_view v, unsigned long long &out)
{
    const std::string s(v);
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && !s.empty();
}

} // namespace

std::string
formatControllerSpec(const ControllerConfig &config)
{
    if (!config.enabled)
        return "";
    std::string s;
    s += "on=1";
    s += ",slack_low=" + fmtDouble(config.slackLow);
    s += ",slack_high=" + fmtDouble(config.slackHigh);
    s += ",dynamic_slo=" + std::string(config.dynamicSlo ? "1" : "0");
    s += ",slo_slowdown=" + fmtDouble(config.sloSlowdown);
    s += ",bw_step=" + std::to_string(config.bandwidthStep);
    s += ",min_window=" + std::to_string(config.minWindowInstructions);
    s += ",p_static=" + fmtDouble(config.staticPower);
    s += ",dyn_coeff=" + fmtDouble(config.dynCoeff);
    s += ",power_cap=" + fmtDouble(config.powerCap);
    return s;
}

bool
parseControllerSpec(std::string_view spec, ControllerConfig &out,
                    std::string &error)
{
    // All-or-nothing: parse into a fresh config, commit on success
    // only, so a failed reconfig directive leaves @p out untouched.
    ControllerConfig next;
    if (spec.empty()) {
        out = next;
        return true;
    }
    // Bare "on"/"off" are accepted as human-friendly shorthands.
    if (spec == "off") {
        out = next;
        return true;
    }
    if (spec == "on") {
        next.enabled = true;
        out = next;
        return true;
    }
    next.enabled = true; // a non-empty spec implies the controller
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        const std::string_view pair = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string_view::npos) {
            error = "controller spec entry has no '=': " +
                    std::string(pair);
            return false;
        }
        const std::string_view key = pair.substr(0, eq);
        const std::string_view value = pair.substr(eq + 1);
        double d = 0.0;
        unsigned long long u = 0;
        if (key == "on") {
            if (!parseUnsigned(value, u))
                goto bad_value;
            next.enabled = u != 0;
        } else if (key == "slack_low") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.slackLow = d;
        } else if (key == "slack_high") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.slackHigh = d;
        } else if (key == "dynamic_slo") {
            if (!parseUnsigned(value, u))
                goto bad_value;
            next.dynamicSlo = u != 0;
        } else if (key == "slo_slowdown") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.sloSlowdown = d;
        } else if (key == "bw_step") {
            if (!parseUnsigned(value, u) || u > 100)
                goto bad_value;
            next.bandwidthStep = static_cast<unsigned>(u);
        } else if (key == "min_window") {
            if (!parseUnsigned(value, u))
                goto bad_value;
            next.minWindowInstructions = static_cast<InstCount>(u);
        } else if (key == "p_static") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.staticPower = d;
        } else if (key == "dyn_coeff") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.dynCoeff = d;
        } else if (key == "power_cap") {
            if (!parseDouble(value, d))
                goto bad_value;
            next.powerCap = d;
        } else {
            error = "unknown controller spec key: " + std::string(key);
            return false;
        }
        continue;
    bad_value:
        error = "bad controller spec value: " + std::string(pair);
        return false;
    }
    out = next;
    return true;
}

} // namespace cmpqos
