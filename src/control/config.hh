/**
 * @file
 * Configuration of the per-node feedback controller (DESIGN.md §14).
 *
 * A ControllerConfig travels as one canonical comma-separated
 * `key=value` spec string — through EpochConfig directives, the
 * `cluster_driver --control` flag, and the federation `FedInit`
 * handshake — so every endpoint (single-process engine, shard
 * worker, replayed journal) reconstructs bit-identical parameters
 * from the same bytes. Commas instead of spaces keep the spec a
 * single shell word in journal replay commands.
 */

#ifndef CMPQOS_CONTROL_CONFIG_HH
#define CMPQOS_CONTROL_CONFIG_HH

#include <string>
#include <string_view>

#include "common/types.hh"

namespace cmpqos
{

/** Tuning of the quantum-barrier feedback controller. */
struct ControllerConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /**
     * Hysteresis band on measured slack (fraction of budget). Below
     * slackLow the controller boosts the job; above slackHigh it
     * economizes; in between it holds, which is what damps
     * oscillation between quanta.
     */
    double slackLow = 0.05;
    double slackHigh = 0.40;

    /**
     * Dynamic SLO: a reserved job's setpoint is its measured
     * standalone CPI times (1 + sloSlowdown) — the measurement-driven
     * replacement for hand-picked Elastic(X) budgets.
     */
    bool dynamicSlo = true;
    double sloSlowdown = 0.10;

    /** Bandwidth-share actuation step, percent of peak per retune. */
    unsigned bandwidthStep = 5;

    /**
     * Minimum instructions a job must retire in a quantum before its
     * window CPI is trusted; smaller windows are measurement noise.
     */
    InstCount minWindowInstructions = 50'000;

    /**
     * Energy model: E = staticPower * cycles * cores
     *                 + dynCoeff * sum(f^2 * scalable_cycles).
     * Units are abstract energy-per-cycle; only ratios matter to the
     * controller and the benches.
     */
    double staticPower = 0.5;
    double dynCoeff = 1.0;

    /**
     * Per-node modelled power cap in energy-per-cycle (0 = uncapped).
     * When a quantum's average power exceeds the cap, the controller
     * down-clocks the reserved job with the most slack.
     */
    double powerCap = 0.0;
};

/**
 * Canonical spec string of @p config: comma-separated `key=value`
 * with every key present, or "" when the controller is disabled.
 * format/parse round-trip bit-exactly (doubles use %.17g).
 */
std::string formatControllerSpec(const ControllerConfig &config);

/**
 * Parse a spec produced by formatControllerSpec (or hand-written
 * subsets; unset keys keep their defaults). An empty spec yields a
 * disabled default config. @return false with @p error set on a
 * malformed key or value.
 */
bool parseControllerSpec(std::string_view spec, ControllerConfig &out,
                         std::string &error);

} // namespace cmpqos

#endif // CMPQOS_CONTROL_CONFIG_HH
