/**
 * @file
 * The per-node quantum-barrier feedback controller (DESIGN.md §14) —
 * ROADMAP item 4's dynamic layer over the paper's static-reservation
 * framework.
 *
 * Measurement path: at every quantum barrier the controller reads
 * each running reserved job's window CPI (instructions and cycles
 * retired since the previous barrier — all deterministic quantum
 * stats) and converts it into *slack* against the tighter of two
 * setpoints: the job's deadline budget ((td - now) / remaining
 * instructions) and its dynamic SLO (measured standalone CPI times
 * 1 + sloSlowdown, after Qiu et al. — a setpoint derived from
 * measurement instead of a hand-picked Elastic(X) constant).
 *
 * Actuation path: one knob move per job per quantum, inside a
 * hysteresis band. A starved job (slack < slackLow) is boosted —
 * frequency restored toward nominal first, then a cache way granted
 * above its floor, then a bandwidth-share step. A slack-rich job
 * (slack > slackHigh) is economized in the reverse order — bandwidth
 * trimmed to its floor, ways returned, then the core down-clocked
 * (Nejat et al.: trading ways and frequency jointly under a QoS
 * floor saves the energy static reservations waste).
 *
 * Safety: floors are never violated — a job's admitted ways and
 * bandwidth share are the actuation lower bounds, so the fault
 * oracle's Strict-floor and way-conservation invariants hold by
 * construction. Way grants additionally require headroom over the
 * sum of live reserved targets and are all reverted the moment any
 * admitted job is waiting to start, so the scheduler's reserved-start
 * headroom check never sees controller-inflated targets.
 *
 * Determinism: decisions are pure functions of (config, per-job
 * quantum stats, virtual time); state lives in ordered containers
 * keyed by job id. Both engines run the step at the same point of
 * the barrier protocol, so the thread x shard byte-equality matrix
 * holds with the controller on.
 */

#ifndef CMPQOS_CONTROL_CONTROLLER_HH
#define CMPQOS_CONTROL_CONTROLLER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "control/config.hh"
#include "qos/framework.hh"
#include "telemetry/recorder.hh"

namespace cmpqos
{

/** Counters of controller activity (fingerprinted when enabled). */
struct ControlTallies
{
    /** Total knob moves (sum of the six below). */
    std::uint64_t retunes = 0;
    std::uint64_t freqBoosts = 0;
    std::uint64_t freqDrops = 0;
    std::uint64_t wayGrants = 0;
    std::uint64_t wayReturns = 0;
    std::uint64_t bwGrants = 0;
    std::uint64_t bwReturns = 0;

    /** Flattened wire width (see flatten/unflatten). */
    static constexpr std::size_t numFields = 7;

    void
    accumulate(const ControlTallies &o)
    {
        retunes += o.retunes;
        freqBoosts += o.freqBoosts;
        freqDrops += o.freqDrops;
        wayGrants += o.wayGrants;
        wayReturns += o.wayReturns;
        bwGrants += o.bwGrants;
        bwReturns += o.bwReturns;
    }
};

/** Flatten tallies for the federation wire (fixed field order). */
std::vector<std::uint64_t> flattenTallies(const ControlTallies &t);

/** Inverse of flattenTallies; zero-fills a short/empty vector. */
ControlTallies unflattenTallies(const std::vector<std::uint64_t> &v);

/**
 * Modelled energy after @p virtualCycles with @p dynWork accumulated
 * (sum of f^2 * scalable-cycles across cores; cpu/core.hh):
 * E = staticPower * cycles * cores + dynCoeff * dynWork.
 */
double modelledEnergy(const ControllerConfig &config,
                      double virtualCycles, int numCores,
                      double dynWork);

/**
 * One node's feedback controller. Owned by the NodeWorker and
 * stepped at every quantum barrier before the node advances;
 * recreated (state reset) when a node restarts after a crash.
 */
class NodeController
{
  public:
    explicit NodeController(const ControllerConfig &config);

    const ControllerConfig &config() const { return config_; }

    /**
     * Run one barrier step over @p fw at virtual time @p now.
     * Emits ControllerRetune / FrequencyChanged events on @p trace
     * (nullable) for every actuation.
     */
    void step(QosFramework &fw, Cycle now, TraceRecorder *trace);

    const ControlTallies &tallies() const { return tallies_; }

  private:
    /** Per-job measurement window across barriers. */
    struct JobWindow
    {
        InstCount lastExecuted = 0;
        double lastCycles = 0.0;
        /** Ways granted above the admitted floor. */
        unsigned grantedWays = 0;
        /** Bandwidth percent granted above the admitted floor. */
        unsigned grantedBw = 0;
    };

    /** Measured state of one active job within a step. */
    struct Measured
    {
        Job *job = nullptr;
        double slack = 0.0;
        bool valid = false;
    };

    double measureSlack(Job *job, QosFramework &fw, Cycle now,
                        JobWindow &w);
    void boost(Job *job, QosFramework &fw, Cycle now, JobWindow &w,
               double slack, bool waitingReserved,
               TraceRecorder *trace);
    void economize(Job *job, QosFramework &fw, Cycle now, JobWindow &w,
                   double slack, TraceRecorder *trace);
    void revertWays(Job *job, QosFramework &fw, Cycle now, JobWindow &w,
                    TraceRecorder *trace);
    void setCoreFrequency(QosFramework &fw, CoreId core,
                          std::uint32_t step, JobId job, Cycle now,
                          TraceRecorder *trace);
    void emitRetune(TraceRecorder *trace, Cycle now, JobId job,
                    const char *knob, std::uint64_t oldValue,
                    std::uint64_t newValue, double slack);
    /** Headroom for one more reserved way across the whole L2. */
    bool wayHeadroom(const QosFramework &fw) const;

    ControllerConfig config_;
    /** Ordered by job id so every pass is deterministic. */
    std::map<JobId, JobWindow> windows_;
    ControlTallies tallies_;
    /** Power-cap window state. */
    Cycle lastNow_ = 0;
    double lastEnergy_ = 0.0;
};

} // namespace cmpqos

#endif // CMPQOS_CONTROL_CONTROLLER_HH
