#include "controller.hh"

#include <algorithm>
#include <limits>

#include "cache/partitioned_cache.hh"
#include "common/logging.hh"
#include "cpu/dvfs.hh"
#include "mem/bandwidth.hh"

namespace cmpqos
{

std::vector<std::uint64_t>
flattenTallies(const ControlTallies &t)
{
    return {t.retunes,    t.freqBoosts, t.freqDrops, t.wayGrants,
            t.wayReturns, t.bwGrants,   t.bwReturns};
}

ControlTallies
unflattenTallies(const std::vector<std::uint64_t> &v)
{
    ControlTallies t;
    auto at = [&](std::size_t i) {
        return i < v.size() ? v[i] : std::uint64_t{0};
    };
    t.retunes = at(0);
    t.freqBoosts = at(1);
    t.freqDrops = at(2);
    t.wayGrants = at(3);
    t.wayReturns = at(4);
    t.bwGrants = at(5);
    t.bwReturns = at(6);
    return t;
}

double
modelledEnergy(const ControllerConfig &config, double virtualCycles,
               int numCores, double dynWork)
{
    return config.staticPower * virtualCycles *
               static_cast<double>(numCores) +
           config.dynCoeff * dynWork;
}

NodeController::NodeController(const ControllerConfig &config)
    : config_(config)
{
}

void
NodeController::emitRetune(TraceRecorder *trace, Cycle now, JobId job,
                           const char *knob, std::uint64_t oldValue,
                           std::uint64_t newValue, double slack)
{
    ++tallies_.retunes;
    if (trace == nullptr || !trace->active())
        return;
    TraceEvent e =
        traceEvent(TraceEventType::ControllerRetune, now, job);
    e.a = oldValue;
    e.b = newValue;
    e.x = slack;
    e.setName(knob);
    trace->emit(e);
}

void
NodeController::setCoreFrequency(QosFramework &fw, CoreId core,
                                 std::uint32_t step, JobId job,
                                 Cycle now, TraceRecorder *trace)
{
    InOrderCore &cpu = fw.system().core(core);
    const std::uint32_t old = cpu.frequencyStep();
    if (old == step)
        return;
    cpu.setFrequencyStep(step);
    if (trace != nullptr && trace->active()) {
        TraceEvent e =
            traceEvent(TraceEventType::FrequencyChanged, now, job);
        e.a = static_cast<std::uint64_t>(core);
        e.b = step;
        e.x = static_cast<double>(old);
        trace->emit(e);
    }
}

bool
NodeController::wayHeadroom(const QosFramework &fw) const
{
    const PartitionedCache &l2 = fw.system().l2();
    const unsigned assoc = l2.config().assoc;
    unsigned reserved = 0;
    for (int c = 0; c < fw.system().numCores(); ++c)
        if (l2.coreClass(c) == CoreClass::Reserved)
            reserved += l2.targetWays(c);
    return reserved + 1 <= assoc;
}

double
NodeController::measureSlack(Job *job, QosFramework &fw, Cycle now,
                             JobWindow &w)
{
    const JobExecution *exec = job->exec();
    const InstCount instr = exec->executed() - w.lastExecuted;
    const double cycles = exec->cyclesRun - w.lastCycles;
    w.lastExecuted = exec->executed();
    w.lastCycles = exec->cyclesRun;

    constexpr double inf = std::numeric_limits<double>::infinity();
    if (instr < config_.minWindowInstructions || cycles <= 0.0)
        return inf; // window too small to trust: hold
    const double measured = cycles / static_cast<double>(instr);

    double slack = inf;
    const InstCount remaining = exec->remaining();
    if (job->target().hasTimeslot && remaining > 0 &&
        job->deadline != maxCycle) {
        if (job->deadline <= now) {
            slack = -1.0; // already late: boost as hard as possible
        } else {
            const double budget =
                static_cast<double>(job->deadline - now) /
                static_cast<double>(remaining);
            slack = budget / measured - 1.0;
        }
    }
    if (config_.dynamicSlo) {
        const double solo = QosFramework::soloCpi(
            job->benchmark(), job->target().cacheWays,
            fw.config().cmp);
        if (solo > 0.0) {
            const double setpoint =
                solo * (1.0 + config_.sloSlowdown);
            slack = std::min(slack, setpoint / measured - 1.0);
        }
    }
    return slack;
}

void
NodeController::revertWays(Job *job, QosFramework &fw, Cycle now,
                           JobWindow &w, TraceRecorder *trace)
{
    if (w.grantedWays == 0)
        return;
    PartitionedCache &l2 = fw.system().l2();
    const CoreId core = job->assignedCore;
    const unsigned cur = l2.targetWays(core);
    const unsigned floor = job->target().cacheWays;
    // Grants only ever raised the target above the admitted floor,
    // so reverting can never undercut it (or a stealing adjustment).
    const unsigned next =
        cur > w.grantedWays ? std::max(floor, cur - w.grantedWays)
                            : floor;
    l2.setTargetWays(core, next);
    tallies_.wayReturns += w.grantedWays;
    emitRetune(trace, now, job->id(), "ways-revert", cur, next, 0.0);
    w.grantedWays = 0;
}

void
NodeController::boost(Job *job, QosFramework &fw, Cycle now,
                      JobWindow &w, double slack, bool waitingReserved,
                      TraceRecorder *trace)
{
    const CoreId core = job->assignedCore;
    InOrderCore &cpu = fw.system().core(core);

    // 1. Restore frequency toward nominal: free performance.
    if (cpu.frequencyStep() > 0) {
        const std::uint32_t old = cpu.frequencyStep();
        setCoreFrequency(fw, core, old - 1, job->id(), now, trace);
        ++tallies_.freqBoosts;
        emitRetune(trace, now, job->id(), "freq+", old, old - 1,
                   slack);
        return;
    }

    // 2. Grant a cache way above the floor — only for Strict jobs
    // (the stealing engine owns Elastic budgets), only with global
    // reserved headroom, and never while an admitted job waits to
    // start (its start check must not see inflated targets).
    if (job->mode().mode == ExecutionMode::Strict && !waitingReserved &&
        wayHeadroom(fw)) {
        PartitionedCache &l2 = fw.system().l2();
        const unsigned cur = l2.targetWays(core);
        if (cur < l2.config().assoc) {
            l2.setTargetWays(core, cur + 1);
            ++w.grantedWays;
            ++tallies_.wayGrants;
            emitRetune(trace, now, job->id(), "ways+", cur, cur + 1,
                       slack);
            return;
        }
    }

    // 3. Grant a bandwidth-share step.
    BandwidthRegulator *bw = fw.system().bandwidth();
    if (fw.config().cmp.bandwidthPartitioning && bw != nullptr &&
        job->target().bandwidthPercent > 0 &&
        config_.bandwidthStep > 0 &&
        bw->reservedPercent() + config_.bandwidthStep <= 100) {
        const unsigned cur = bw->share(core);
        bw->setShare(core, cur + config_.bandwidthStep);
        w.grantedBw += config_.bandwidthStep;
        ++tallies_.bwGrants;
        emitRetune(trace, now, job->id(), "bw+", cur,
                   cur + config_.bandwidthStep, slack);
    }
}

void
NodeController::economize(Job *job, QosFramework &fw, Cycle now,
                          JobWindow &w, double slack,
                          TraceRecorder *trace)
{
    const CoreId core = job->assignedCore;

    // 1. Return granted bandwidth toward the admitted floor.
    BandwidthRegulator *bw = fw.system().bandwidth();
    if (w.grantedBw > 0 && bw != nullptr) {
        const unsigned cur = bw->share(core);
        const unsigned floor = job->target().bandwidthPercent;
        if (cur > floor) {
            const unsigned dec = std::min(
                {w.grantedBw, std::max(1u, config_.bandwidthStep),
                 cur - floor});
            bw->setShare(core, cur - dec);
            w.grantedBw -= dec;
            ++tallies_.bwReturns;
            emitRetune(trace, now, job->id(), "bw-", cur, cur - dec,
                       slack);
            return;
        }
        w.grantedBw = 0; // share already rescaled to its floor
    }

    // 2. Return a granted way toward the admitted floor.
    if (w.grantedWays > 0) {
        PartitionedCache &l2 = fw.system().l2();
        const unsigned cur = l2.targetWays(core);
        const unsigned floor = job->target().cacheWays;
        if (cur > floor) {
            l2.setTargetWays(core, cur - 1);
            --w.grantedWays;
            ++tallies_.wayReturns;
            emitRetune(trace, now, job->id(), "ways-", cur, cur - 1,
                       slack);
            return;
        }
        w.grantedWays = 0; // target already at floor (job rescaled)
    }

    // 3. Down-clock: slack is converted into dynamic-energy savings.
    InOrderCore &cpu = fw.system().core(core);
    if (cpu.frequencyStep() + 1 < numDvfsSteps) {
        const std::uint32_t old = cpu.frequencyStep();
        setCoreFrequency(fw, core, old + 1, job->id(), now, trace);
        ++tallies_.freqDrops;
        emitRetune(trace, now, job->id(), "freq-", old, old + 1,
                   slack);
    }
}

void
NodeController::step(QosFramework &fw, Cycle now, TraceRecorder *trace)
{
    if (!config_.enabled)
        return;
    CmpSystem &sys = fw.system();

    // Gather running reserved jobs in submission (= job id) order —
    // a deterministic pass over deterministic state.
    std::vector<Job *> active;
    bool waitingReserved = false;
    for (const auto &owned : fw.jobs()) {
        Job *job = owned.get();
        if (job->state() == JobState::Waiting && job->runsReservedNow())
            waitingReserved = true;
        if (job->state() == JobState::Running &&
            job->runsReservedNow() &&
            job->assignedCore != invalidCore)
            active.push_back(job);
    }

    // Drop windows of jobs that left the system.
    for (auto it = windows_.begin(); it != windows_.end();) {
        const JobId id = it->first;
        const bool live =
            std::any_of(active.begin(), active.end(),
                        [id](const Job *j) { return j->id() == id; });
        it = live ? std::next(it) : windows_.erase(it);
    }

    // Reserved-start protection: the scheduler's way-headroom check
    // must never defer an admitted job because of controller grants,
    // so all grants revert the moment anything waits to start.
    if (waitingReserved)
        for (Job *job : active)
            revertWays(job, fw, now, windows_[job->id()], trace);

    // A core whose reserved job left keeps no controller residue:
    // restore nominal frequency before anything else lands on it.
    for (int c = 0; c < sys.numCores(); ++c) {
        const bool reserved =
            std::any_of(active.begin(), active.end(),
                        [c](const Job *j) {
                            return j->assignedCore == c;
                        });
        if (!reserved && sys.core(c).frequencyStep() != 0)
            setCoreFrequency(fw, c, 0, invalidJob, now, trace);
    }

    // Measure, then actuate one knob per job inside the hysteresis
    // band.
    std::vector<Measured> measured;
    measured.reserve(active.size());
    for (Job *job : active) {
        JobWindow &w = windows_[job->id()];
        const double slack = measureSlack(job, fw, now, w);
        Measured m;
        m.job = job;
        m.slack = slack;
        m.valid = slack != std::numeric_limits<double>::infinity();
        measured.push_back(m);
        if (!m.valid)
            continue;
        if (slack < config_.slackLow)
            boost(job, fw, now, w, slack, waitingReserved, trace);
        else if (slack > config_.slackHigh)
            economize(job, fw, now, w, slack, trace);
    }

    // Power cap: if this quantum's average modelled power blew the
    // budget, down-clock the job that can best afford it.
    double dyn_work = 0.0;
    for (int c = 0; c < sys.numCores(); ++c)
        dyn_work += sys.core(c).ledger().dynWork;
    const double energy = modelledEnergy(
        config_, static_cast<double>(now), sys.numCores(), dyn_work);
    if (config_.powerCap > 0.0 && now > lastNow_) {
        const double power = (energy - lastEnergy_) /
                             static_cast<double>(now - lastNow_);
        if (power > config_.powerCap) {
            Measured *pick = nullptr;
            for (Measured &m : measured)
                if (m.valid && (pick == nullptr ||
                                m.slack > pick->slack))
                    pick = &m; // ties keep the lowest job id
            if (pick != nullptr) {
                InOrderCore &cpu =
                    sys.core(pick->job->assignedCore);
                if (cpu.frequencyStep() + 1 < numDvfsSteps) {
                    const std::uint32_t old = cpu.frequencyStep();
                    setCoreFrequency(fw, pick->job->assignedCore,
                                     old + 1, pick->job->id(), now,
                                     trace);
                    ++tallies_.freqDrops;
                    emitRetune(trace, now, pick->job->id(),
                               "freq-cap", old, old + 1,
                               pick->slack);
                }
            }
        }
    }
    lastNow_ = now;
    lastEnergy_ = energy;
}

} // namespace cmpqos
