#include "stack_sampler.hh"

#include "common/logging.hh"

namespace cmpqos
{

LruStackSampler::LruStackSampler(std::size_t max_live_blocks)
    : maxLive_(max_live_blocks), slotCapacity_(4 * max_live_blocks),
      occupied_(4 * max_live_blocks),
      slotBlock_(4 * max_live_blocks, 0)
{
    cmpqos_assert(max_live_blocks >= 2, "stack needs at least two blocks");
}

void
LruStackSampler::pushTop(std::uint64_t block)
{
    if (nextSlot_ >= slotCapacity_)
        compact();
    const std::size_t slot = nextSlot_++;
    occupied_.add(slot, 1);
    slotBlock_[slot] = block;
    if (block >= blockSlot_.size())
        blockSlot_.resize(block + 1, noSlot);
    blockSlot_[block] = slot;
}

void
LruStackSampler::dropLru()
{
    // LRU block = occupant of the lowest occupied slot (rank 1).
    const std::size_t slot = static_cast<std::size_t>(occupied_.findKth(1));
    const std::uint64_t block = slotBlock_[slot];
    occupied_.add(slot, -1);
    blockSlot_[block] = noSlot;
    --liveCount_;
}

std::uint64_t
LruStackSampler::accessNew()
{
    if (liveCount_ >= maxLive_)
        dropLru();
    const std::uint64_t block = nextBlockId_++;
    pushTop(block);
    ++liveCount_;
    return block;
}

std::uint64_t
LruStackSampler::accessAtDistance(std::uint64_t d)
{
    cmpqos_assert(d >= 1, "stack distance must be >= 1");
    if (d > liveCount_)
        return accessNew();

    // The d-th most recently used = rank (live - d + 1) from the
    // bottom among occupied slots.
    const std::int64_t rank =
        static_cast<std::int64_t>(liveCount_ - d + 1);
    const std::size_t slot =
        static_cast<std::size_t>(occupied_.findKth(rank));
    const std::uint64_t block = slotBlock_[slot];

    if (d > 1) {
        // Move to top; a d == 1 access is already at the top.
        occupied_.add(slot, -1);
        blockSlot_[block] = noSlot;
        pushTop(block);
    }
    return block;
}

std::uint64_t
LruStackSampler::peekAtDistance(std::uint64_t d) const
{
    cmpqos_assert(d >= 1 && d <= liveCount_,
                  "peek distance %llu out of [1,%zu]",
                  static_cast<unsigned long long>(d), liveCount_);
    const std::int64_t rank =
        static_cast<std::int64_t>(liveCount_ - d + 1);
    const std::size_t slot =
        static_cast<std::size_t>(occupied_.findKth(rank));
    return slotBlock_[slot];
}

void
LruStackSampler::compact()
{
    // Gather live blocks in recency order (bottom to top) and
    // reassign them to dense slots. Note: during accessAtDistance the
    // moving block is briefly out of the tree, so the occupied count
    // (not liveCount_) is authoritative here.
    const std::size_t occupied_count =
        static_cast<std::size_t>(occupied_.total());
    std::vector<std::uint64_t> order;
    order.reserve(occupied_count);
    for (std::size_t rank = 1; rank <= occupied_count; ++rank) {
        const std::size_t slot = static_cast<std::size_t>(
            occupied_.findKth(static_cast<std::int64_t>(rank)));
        order.push_back(slotBlock_[slot]);
    }
    occupied_ = FenwickTree(slotCapacity_);
    for (std::size_t i = 0; i < order.size(); ++i) {
        occupied_.add(i, 1);
        slotBlock_[i] = order[i];
        blockSlot_[order[i]] = i;
    }
    nextSlot_ = order.size();
}

} // namespace cmpqos
