#include "profile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

double
ProfileComponent::missProbability(std::uint64_t capacity_blocks) const
{
    switch (kind) {
      case Kind::Cold:
        return 1.0;
      case Kind::Uniform: {
        if (capacity_blocks >= hi)
            return 0.0;
        if (capacity_blocks < lo)
            return 1.0;
        const double span = static_cast<double>(hi - lo + 1);
        return static_cast<double>(hi - capacity_blocks) / span;
      }
      case Kind::Geometric: {
        // d = 1 + G where G geometric with mean (mean - 1);
        // P(d > C) = P(G > C - 1) = (1 - p)^(C), p = 1 / mean.
        if (mean <= 1.0)
            return capacity_blocks >= 1 ? 0.0 : 1.0;
        const double p = 1.0 / mean;
        return std::exp(static_cast<double>(capacity_blocks) *
                        std::log1p(-p));
      }
    }
    return 1.0;
}

namespace
{

/** P(Poisson(lambda) >= w). */
double
poissonTail(double lambda, unsigned w)
{
    if (lambda <= 0.0)
        return 0.0;
    double term = std::exp(-lambda); // k = 0
    double cdf = term;
    for (unsigned k = 1; k < w; ++k) {
        term *= lambda / static_cast<double>(k);
        cdf += term;
    }
    return cdf >= 1.0 ? 0.0 : 1.0 - cdf;
}

} // namespace

double
ProfileComponent::missProbabilitySetAssoc(unsigned ways,
                                          std::uint64_t sets) const
{
    cmpqos_assert(ways >= 1 && sets >= 1, "bad geometry");
    const double s = static_cast<double>(sets);
    switch (kind) {
      case Kind::Cold:
        return 1.0;
      case Kind::Uniform: {
        // Average the Poisson tail over the distance window.
        constexpr int samples = 33;
        double acc = 0.0;
        for (int i = 0; i < samples; ++i) {
            const double d =
                static_cast<double>(lo) +
                (static_cast<double>(hi) - static_cast<double>(lo)) *
                    (static_cast<double>(i) + 0.5) / samples;
            acc += poissonTail(d / s, ways);
        }
        return acc / samples;
      }
      case Kind::Geometric: {
        // Average over quantiles of the geometric distance.
        if (mean <= 1.0)
            return 0.0;
        constexpr int samples = 33;
        const double p = 1.0 / mean;
        double acc = 0.0;
        for (int i = 0; i < samples; ++i) {
            const double q = (static_cast<double>(i) + 0.5) / samples;
            const double d = 1.0 + std::log1p(-q) / std::log1p(-p);
            acc += poissonTail(d / s, ways);
        }
        return acc / samples;
      }
    }
    return 1.0;
}

StackDistanceProfile::StackDistanceProfile(
    std::vector<ProfileComponent> components)
    : components_(std::move(components))
{
    cmpqos_assert(!components_.empty(), "profile needs components");
    weights_.reserve(components_.size());
    for (const auto &c : components_) {
        cmpqos_assert(c.weight >= 0.0, "negative component weight");
        if (c.kind == ProfileComponent::Kind::Uniform)
            cmpqos_assert(c.lo >= 1 && c.lo <= c.hi,
                          "bad uniform bounds [%llu, %llu]",
                          static_cast<unsigned long long>(c.lo),
                          static_cast<unsigned long long>(c.hi));
        weights_.push_back(c.weight);
        totalWeight_ += c.weight;
    }
    cmpqos_assert(totalWeight_ > 0.0, "profile weights sum to zero");
}

std::optional<std::uint64_t>
StackDistanceProfile::sample(Rng &rng) const
{
    const std::size_t idx = rng.discrete(weights_);
    const ProfileComponent &c = components_[idx];
    switch (c.kind) {
      case ProfileComponent::Kind::Cold:
        return std::nullopt;
      case ProfileComponent::Kind::Uniform:
        return static_cast<std::uint64_t>(
            rng.uniformRange(static_cast<std::int64_t>(c.lo),
                             static_cast<std::int64_t>(c.hi)));
      case ProfileComponent::Kind::Geometric:
        return 1 + rng.geometric(1.0 / std::max(c.mean, 1.0));
    }
    return std::nullopt;
}

double
StackDistanceProfile::expectedMissRate(std::uint64_t capacity_blocks) const
{
    double miss = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        miss += weights_[i] / totalWeight_ *
                components_[i].missProbability(capacity_blocks);
    }
    return miss;
}

double
StackDistanceProfile::expectedMissRateSetAssoc(unsigned ways,
                                               std::uint64_t sets) const
{
    double miss = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i) {
        miss += weights_[i] / totalWeight_ *
                components_[i].missProbabilitySetAssoc(ways, sets);
    }
    return miss;
}

std::uint64_t
StackDistanceProfile::maxFiniteDistance() const
{
    std::uint64_t max_d = 0;
    for (const auto &c : components_) {
        if (c.kind == ProfileComponent::Kind::Uniform)
            max_d = std::max(max_d, c.hi);
        else if (c.kind == ProfileComponent::Kind::Geometric)
            max_d = std::max(
                max_d, static_cast<std::uint64_t>(c.mean * 8.0));
    }
    return max_d;
}

} // namespace cmpqos
