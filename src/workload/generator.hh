/**
 * @file
 * Synthetic memory-reference stream generation for one job.
 *
 * Two trace modes (see DESIGN.md):
 *  - L2Stream: emits the post-L1 access stream directly (h2 accesses
 *    per instruction, L2-granularity stack-distance profile). The L1
 *    filter of a private cache is a static property of the benchmark,
 *    so this mode is exact where it matters and fast enough for
 *    10-job co-simulation.
 *  - Full: emits every load/store (memRefsPerInstr per instruction)
 *    from a combined profile whose near-top component models L1-held
 *    reuse; the stream is meant to be filtered through a real L1
 *    model. Used for validation and examples.
 */

#ifndef CMPQOS_WORKLOAD_GENERATOR_HH
#define CMPQOS_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "workload/benchmark.hh"
#include "workload/profile.hh"
#include "workload/stack_sampler.hh"

namespace cmpqos
{

/** Which stream the generator synthesises. */
enum class TraceMode
{
    L2Stream,
    Full,
};

/**
 * Stateful generator of one job's access stream.
 *
 * Address construction: the sampler produces dense block ids; the
 * emitted address is addressBase + blockId * blockSize. Giving each
 * job a distinct, well-separated addressBase keeps job address spaces
 * disjoint (jobs in the paper are independent single-threaded
 * applications) while block-id density keeps set usage uniform.
 */
class AccessGenerator
{
  public:
    AccessGenerator(const BenchmarkProfile &profile, std::uint64_t seed,
                    Addr address_base, TraceMode mode = TraceMode::L2Stream,
                    unsigned block_size = 64);

    /**
     * Advance the job by @p n instructions, emitting accesses.
     * @param emit callable (Addr addr, bool is_write)
     */
    template <typename F>
    void
    run(InstCount n, F &&emit)
    {
        accum_ += static_cast<double>(n) * rate_;
        while (accum_ >= 1.0) {
            accum_ -= 1.0;
            emitOne(emit);
        }
    }

    /** Accesses per instruction in the configured mode. */
    double rate() const { return rate_; }

    TraceMode mode() const { return mode_; }
    const BenchmarkProfile &profile() const { return *profile_; }

    /** Total accesses emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

    /**
     * Visit the address of every block in the job's current standing
     * working set, LRU to MRU. Measurement harnesses use this to
     * pre-fill a cache so steady-state miss rates are not polluted by
     * first-touch misses (real jobs pay those once; the framework's
     * wall-clock model carries a warm-up allowance for them).
     */
    template <typename F>
    void
    forEachStandingBlock(F &&visit) const
    {
        stack_.forEachLive([&](std::uint64_t block) {
            visit(addressBase_ +
                  block * static_cast<Addr>(blockSize_));
        });
    }

  private:
    template <typename F>
    void
    emitOne(F &&emit)
    {
        const auto distance = streamProfile_.sample(rng_);
        const std::uint64_t block =
            distance ? stack_.accessAtDistance(*distance)
                     : stack_.accessNew();
        const Addr addr =
            addressBase_ + block * static_cast<Addr>(blockSize_);
        const bool is_write = rng_.bernoulli(profile_->writeFraction);
        ++emitted_;
        emit(addr, is_write);
    }

    const BenchmarkProfile *profile_;
    TraceMode mode_;
    Addr addressBase_;
    unsigned blockSize_;
    Rng rng_;
    LruStackSampler stack_;
    StackDistanceProfile streamProfile_;
    double rate_;
    double accum_ = 0.0;
    std::uint64_t emitted_ = 0;
};

/**
 * Build the combined (pre-L1) profile used by Full mode: the L2
 * profile's components scaled to h2/memRefsPerInstr total weight,
 * plus a tight geometric component standing in for L1-resident reuse.
 */
StackDistanceProfile buildFullStreamProfile(const BenchmarkProfile &profile);

/** Well-separated address base for a job (disjoint address spaces). */
Addr jobAddressBase(JobId job);

} // namespace cmpqos

#endif // CMPQOS_WORKLOAD_GENERATOR_HH
