#include "generator.hh"

#include "common/logging.hh"

namespace cmpqos
{

StackDistanceProfile
buildFullStreamProfile(const BenchmarkProfile &profile)
{
    const double l2_weight = profile.h2 / profile.memRefsPerInstr;
    cmpqos_assert(l2_weight > 0.0 && l2_weight < 1.0,
                  "h2 must be a proper fraction of memRefsPerInstr");
    std::vector<ProfileComponent> comps;
    // L1-resident reuse: short distances that a 32KB L1 captures.
    comps.push_back(
        ProfileComponent::geometric(1.0 - l2_weight, 48.0));
    for (const auto &c : profile.l2Profile.components()) {
        ProfileComponent scaled = c;
        scaled.weight =
            c.weight * l2_weight; // relative scale within the mixture
        comps.push_back(scaled);
    }
    return StackDistanceProfile(std::move(comps));
}

Addr
jobAddressBase(JobId job)
{
    cmpqos_assert(job >= 0, "job id must be non-negative");
    // 16GB per job keeps block ids disjoint for any realistic stream.
    return static_cast<Addr>(job + 1) << 34;
}

AccessGenerator::AccessGenerator(const BenchmarkProfile &profile,
                                 std::uint64_t seed, Addr address_base,
                                 TraceMode mode, unsigned block_size)
    : profile_(&profile), mode_(mode), addressBase_(address_base),
      blockSize_(block_size), rng_(seed)
{
    if (mode == TraceMode::L2Stream) {
        streamProfile_ = profile.l2Profile;
        rate_ = profile.h2;
    } else {
        streamProfile_ = buildFullStreamProfile(profile);
        rate_ = profile.memRefsPerInstr;
    }
    cmpqos_assert(rate_ > 0.0, "access rate must be positive");

    // Pre-populate the reuse stack with the benchmark's standing
    // working set. The paper skips each benchmark's initialisation
    // phase and simulates a post-init window (Section 6); starting
    // with an established working set models exactly that. Without
    // it, mid-range reuse distances would read as cold misses for an
    // artificially long start-up phase. (The *cache* still starts
    // cold — first touches miss — which is the physical warm-up the
    // wall-clock model accounts for.)
    const std::uint64_t warm = streamProfile_.maxFiniteDistance();
    for (std::uint64_t i = 0; i < warm; ++i)
        stack_.accessNew();
}

} // namespace cmpqos
