/**
 * @file
 * Parametric stack-distance distributions that define a synthetic
 * benchmark's locality, and the analytic miss-rate curve they imply.
 */

#ifndef CMPQOS_WORKLOAD_PROFILE_HH
#define CMPQOS_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hh"

namespace cmpqos
{

/**
 * One component of a stack-distance mixture.
 */
struct ProfileComponent
{
    enum class Kind
    {
        /** d ~ Uniform[lo, hi]. */
        Uniform,
        /** d = 1 + Geometric with the given mean (heavy near the top). */
        Geometric,
        /** Always a cold / streaming access (infinite distance). */
        Cold,
    };

    Kind kind = Kind::Cold;
    /** Mixture weight (unnormalised). */
    double weight = 1.0;
    /** Uniform bounds (blocks). */
    std::uint64_t lo = 1;
    std::uint64_t hi = 1;
    /** Geometric mean distance (blocks). */
    double mean = 1.0;

    static ProfileComponent
    uniform(double weight, std::uint64_t lo, std::uint64_t hi)
    {
        ProfileComponent c;
        c.kind = Kind::Uniform;
        c.weight = weight;
        c.lo = lo;
        c.hi = hi;
        return c;
    }

    static ProfileComponent
    geometric(double weight, double mean)
    {
        ProfileComponent c;
        c.kind = Kind::Geometric;
        c.weight = weight;
        c.mean = mean;
        return c;
    }

    static ProfileComponent
    cold(double weight)
    {
        ProfileComponent c;
        c.kind = Kind::Cold;
        c.weight = weight;
        return c;
    }

    /** P(d > capacity) for this component alone (fully-associative). */
    double missProbability(std::uint64_t capacity_blocks) const;

    /**
     * Miss probability of this component on a W-way, S-set LRU cache
     * (or partition). A block reused at stack distance d misses when
     * >= W of the d distinct intervening blocks land in its set —
     * approximately a Poisson(d/S) tail — so set-associative caches
     * miss noticeably earlier than the fully-associative capacity
     * W*S suggests when the fit is tight.
     */
    double missProbabilitySetAssoc(unsigned ways,
                                   std::uint64_t sets) const;
};

/**
 * A mixture of stack-distance components; fully characterises the
 * locality of one synthetic benchmark's (post-L1) access stream.
 */
class StackDistanceProfile
{
  public:
    StackDistanceProfile() = default;
    explicit StackDistanceProfile(std::vector<ProfileComponent> components);

    /**
     * Sample one stack distance. std::nullopt means a cold access
     * (touch a new block).
     */
    std::optional<std::uint64_t> sample(Rng &rng) const;

    /**
     * Analytic miss rate of this stream on a fully-associative LRU
     * cache of @p capacity_blocks blocks — the target the cache
     * simulation should approach (used by calibration tests).
     */
    double expectedMissRate(std::uint64_t capacity_blocks) const;

    /**
     * Analytic miss rate on a W-way, S-set LRU partition (the model
     * the simulated partitioned L2 realises; see
     * ProfileComponent::missProbabilitySetAssoc).
     */
    double expectedMissRateSetAssoc(unsigned ways,
                                    std::uint64_t sets) const;

    const std::vector<ProfileComponent> &components() const
    {
        return components_;
    }

    bool empty() const { return components_.empty(); }

    /** Largest finite distance any component can produce. */
    std::uint64_t maxFiniteDistance() const;

  private:
    std::vector<ProfileComponent> components_;
    std::vector<double> weights_;
    double totalWeight_ = 0.0;
};

} // namespace cmpqos

#endif // CMPQOS_WORKLOAD_PROFILE_HH
