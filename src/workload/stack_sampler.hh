/**
 * @file
 * An LRU stack that can be accessed *by stack distance* in
 * O(log n), used to synthesise memory reference streams with a
 * prescribed stack-distance (reuse-distance) distribution.
 *
 * Rationale: every result in the paper depends on a benchmark only
 * through its miss-rate-vs-allocated-capacity curve, and for an LRU
 * cache of capacity C that curve is P(stack distance > C). Sampling
 * distances from a parametric distribution and replaying the implied
 * block stream therefore reproduces a benchmark's cache behaviour
 * exactly where it matters, while exercising the real cache models.
 *
 * Implementation: live blocks occupy slots of a timestamp-ordered
 * array; a Fenwick tree counts occupied slots so "the d-th
 * most-recently-used block" is an order-statistics query. Slots are
 * compacted when the timestamp space is exhausted.
 */

#ifndef CMPQOS_WORKLOAD_STACK_SAMPLER_HH
#define CMPQOS_WORKLOAD_STACK_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/fenwick.hh"
#include "common/types.hh"

namespace cmpqos
{

/**
 * LRU stack with order-statistics access.
 *
 * Block ids are dense, assigned on first touch, and recycled from the
 * coldest end once the live-block cap is hit (the victim is the LRU
 * block, which by construction is the least likely to be re-referenced).
 */
class LruStackSampler
{
  public:
    /**
     * @param max_live_blocks cap on tracked blocks; beyond this the
     *        LRU block is dropped from the stack. Choose larger than
     *        any cache capacity of interest (default 2^17 blocks =
     *        8MB of 64B blocks, 4x the paper's L2).
     */
    explicit LruStackSampler(std::size_t max_live_blocks = 1u << 17);

    /**
     * Access the block at stack distance @p d (1 = most recently
     * used). If fewer than d blocks are live, a new block is touched
     * instead. The touched block moves to the top of the stack.
     *
     * @return the block id touched
     */
    std::uint64_t accessAtDistance(std::uint64_t d);

    /** Touch a brand-new (cold) block. @return its block id. */
    std::uint64_t accessNew();

    /** Number of live blocks in the stack. */
    std::size_t liveBlocks() const { return liveCount_; }

    /** Total distinct blocks ever touched (= next fresh block id). */
    std::uint64_t totalBlocks() const { return nextBlockId_; }

    /**
     * The block id currently at stack distance @p d, without touching
     * it (for tests). d must be in [1, liveBlocks()].
     */
    std::uint64_t peekAtDistance(std::uint64_t d) const;

    /**
     * Visit every live block in recency order (LRU first, MRU last)
     * without touching recency state. Used to pre-fill caches with a
     * job's standing working set before steady-state measurement.
     */
    template <typename F>
    void
    forEachLive(F &&visit) const
    {
        for (std::int64_t k = 1;
             k <= static_cast<std::int64_t>(liveCount_); ++k) {
            const std::size_t slot =
                static_cast<std::size_t>(occupied_.findKth(k));
            visit(slotBlock_[slot]);
        }
    }

  private:
    /** Place @p block at the top of the stack. */
    void pushTop(std::uint64_t block);

    /** Remove the LRU block from the stack entirely. */
    void dropLru();

    /** Renumber live slots densely when positions run out. */
    void compact();

    std::size_t maxLive_;
    std::size_t slotCapacity_;
    FenwickTree occupied_;
    /** slot -> block id (valid where occupied). */
    std::vector<std::uint64_t> slotBlock_;
    /** block id -> slot (dense vector; kMaxSlot = not live). */
    std::vector<std::uint64_t> blockSlot_;
    std::size_t nextSlot_ = 0;
    std::size_t liveCount_ = 0;
    std::uint64_t nextBlockId_ = 0;

    static constexpr std::uint64_t noSlot = ~0ULL;
};

} // namespace cmpqos

#endif // CMPQOS_WORKLOAD_STACK_SAMPLER_HH
