/**
 * @file
 * Memory-trace recording and replay.
 *
 * The synthetic generators are stochastic; traces make runs portable
 * and exactly repeatable across machines and refactors (the role
 * trace-driven inputs play for simulators like gem5's TraceCPU).
 * A trace records each access's instruction offset, byte address,
 * and read/write flag in a small binary format:
 *
 *   header: magic "CQT1" | u32 block_size | u64 record_count
 *   record: u64 instruction_number | u64 addr | u8 is_write
 *
 * Traces can be captured from any AccessGenerator and replayed into
 * any cache hierarchy; replaying a capture reproduces the original
 * access stream bit-for-bit.
 */

#ifndef CMPQOS_WORKLOAD_TRACE_HH
#define CMPQOS_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/generator.hh"

namespace cmpqos
{

/** One trace record. */
struct TraceRecord
{
    InstCount instruction = 0;
    Addr addr = 0;
    bool isWrite = false;

    bool
    operator==(const TraceRecord &o) const
    {
        return instruction == o.instruction && addr == o.addr &&
               isWrite == o.isWrite;
    }
};

/**
 * Streams trace records to a binary file.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path,
                         unsigned block_size = 64);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &record);

    /** Finalize the header (record count); called by the dtor too. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    unsigned blockSize_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Reads a trace file; supports streaming iteration and full loads.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    unsigned blockSize() const { return blockSize_; }
    std::uint64_t recordCount() const { return recordCount_; }

    /** Read the next record. @return false at end of trace. */
    bool next(TraceRecord &record);

    /** Load every remaining record. */
    std::vector<TraceRecord> readAll();

    /**
     * Replay the trace in instruction order through @p emit
     * (Addr, is_write), like AccessGenerator::run over the whole
     * capture.
     */
    template <typename F>
    void
    replay(F &&emit)
    {
        TraceRecord r;
        while (next(r))
            emit(r.addr, r.isWrite);
    }

  private:
    std::ifstream in_;
    unsigned blockSize_ = 0;
    std::uint64_t recordCount_ = 0;
    std::uint64_t consumed_ = 0;
};

/**
 * Capture @p instructions of a generator's stream to @p path.
 * @return the number of records written.
 */
std::uint64_t recordTrace(AccessGenerator &generator,
                          InstCount instructions,
                          const std::string &path);

} // namespace cmpqos

#endif // CMPQOS_WORKLOAD_TRACE_HH
