#include "benchmark.hh"

#include "cache/config.hh"
#include "common/logging.hh"

namespace cmpqos
{

namespace
{

using PC = ProfileComponent;

/**
 * Build the suite. Distance parameters are in 64B blocks; one L2 way
 * holds 2048 blocks. Calibration targets:
 *  - Table 1 (at 7 ways): bzip2 20% / 0.0055 MPI, hmmer 17% / 0.001,
 *    gobmk 24% / 0.004.
 *  - Figure 1: bzip2 alone IPC ~0.375; equal-partition IPC falls
 *    below the 0.25 target at 3 and 4 co-runners.
 *  - Figure 4 grouping of all fifteen benchmarks.
 */
std::vector<BenchmarkProfile>
buildSuite()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&](std::string name, std::string input,
                   SensitivityGroup grp, double cpi, double h2,
                   double wr_frac, std::uint64_t skipped_m,
                   std::vector<PC> comps) {
        BenchmarkProfile b;
        b.name = std::move(name);
        b.inputSet = std::move(input);
        b.group = grp;
        b.cpiL1Inf = cpi;
        b.h2 = h2;
        b.memRefsPerInstr = 0.35;
        b.writeFraction = wr_frac;
        b.skippedInstrM = skipped_m;
        b.l2Profile = StackDistanceProfile(std::move(comps));
        v.push_back(std::move(b));
    };

    // ---- Group 1: highly cache-sensitive --------------------------
    // bzip2's mid-range window is placed so the miss-rate knee falls
    // between 5.3 and 8 of 16 ways, reproducing Figure 1 (IPC target
    // met with 2 equal-partition co-runners, violated with 3-4). A
    // set-associative transition that wide necessarily lifts the
    // 7-way miss rate above the paper's 20% (to ~28%); h2 is chosen
    // so L2 misses-per-instruction at 7 ways still matches Table 1's
    // 0.0055 (see EXPERIMENTS.md).
    add("bzip2", "ref.chicken", SensitivityGroup::HighlySensitive,
        0.80, 0.0233, 0.32, 315,
        {PC::uniform(0.38, 1, 1500), PC::uniform(0.16, 2300, 7000),
         PC::uniform(0.26, 10000, 12800), PC::cold(0.20)});

    add("mcf", "ref", SensitivityGroup::HighlySensitive,
        0.90, 0.060, 0.28, 180,
        {PC::uniform(0.20, 1, 1800), PC::uniform(0.25, 4000, 13800),
         PC::uniform(0.25, 16000, 60000), PC::cold(0.30)});

    add("soplex", "train", SensitivityGroup::HighlySensitive,
        0.85, 0.035, 0.30, 92,
        {PC::uniform(0.30, 1, 1700), PC::uniform(0.35, 3000, 13500),
         PC::uniform(0.15, 20000, 50000), PC::cold(0.20)});

    add("sphinx", "ref.an4", SensitivityGroup::HighlySensitive,
        0.80, 0.025, 0.22, 210,
        {PC::uniform(0.30, 1, 1500), PC::uniform(0.40, 2500, 12500),
         PC::uniform(0.18, 18000, 40000), PC::cold(0.12)});

    add("astar", "ref.BigLakes", SensitivityGroup::HighlySensitive,
        0.95, 0.020, 0.27, 150,
        {PC::uniform(0.35, 1, 1600), PC::uniform(0.15, 1, 800),
         PC::uniform(0.35, 2200, 13000), PC::cold(0.15)});

    // ---- Group 2: moderately sensitive ----------------------------
    // Base CPIs here reflect an in-order core (Section 6); they also
    // damp relative CPI sensitivity so the measured groups separate
    // the way Figure 4 shows.
    add("hmmer", "ref.retro", SensitivityGroup::ModeratelySensitive,
        1.40, 0.00588, 0.33, 0,
        {PC::uniform(0.66, 1, 1500), PC::uniform(0.17, 3000, 12000),
         PC::cold(0.17)});

    add("gcc", "ref.166", SensitivityGroup::ModeratelySensitive,
        1.40, 0.007, 0.30, 60,
        {PC::uniform(0.55, 1, 1500), PC::uniform(0.20, 2500, 10000),
         PC::cold(0.25)});

    add("perl", "ref.diffmail", SensitivityGroup::ModeratelySensitive,
        1.30, 0.006, 0.31, 85,
        {PC::uniform(0.62, 1, 1200), PC::uniform(0.18, 2000, 9000),
         PC::cold(0.20)});

    add("h264ref", "ref.foreman", SensitivityGroup::ModeratelySensitive,
        1.00, 0.007, 0.26, 130,
        {PC::uniform(0.70, 1, 1000), PC::uniform(0.12, 2000, 11000),
         PC::cold(0.18)});

    // ---- Group 3: insensitive --------------------------------------
    // Tight hot sets: even a single way mostly retains them, so CPI
    // barely moves with allocation (ideal resource-stealing donors).
    add("gobmk", "ref.nngs", SensitivityGroup::Insensitive,
        0.85, 0.01667, 0.29, 267,
        {PC::uniform(0.76, 1, 500), PC::cold(0.24)});

    add("sjeng", "ref", SensitivityGroup::Insensitive,
        0.90, 0.004, 0.25, 110,
        {PC::uniform(0.78, 1, 600), PC::cold(0.22)});

    add("libquantum", "ref", SensitivityGroup::Insensitive,
        0.60, 0.030, 0.20, 40,
        {PC::uniform(0.25, 1, 600), PC::cold(0.75)});

    add("milc", "train", SensitivityGroup::Insensitive,
        0.70, 0.025, 0.35, 75,
        {PC::uniform(0.40, 1, 1000), PC::cold(0.60)});

    add("namd", "ref", SensitivityGroup::Insensitive,
        0.85, 0.003, 0.24, 95,
        {PC::uniform(0.85, 1, 400), PC::cold(0.15)});

    add("povray", "ref", SensitivityGroup::Insensitive,
        0.60, 0.001, 0.21, 55,
        {PC::uniform(0.92, 1, 500), PC::cold(0.08)});

    return v;
}

} // namespace

const char *
sensitivityGroupName(SensitivityGroup g)
{
    switch (g) {
      case SensitivityGroup::HighlySensitive: return "Group1-High";
      case SensitivityGroup::ModeratelySensitive: return "Group2-Moderate";
      case SensitivityGroup::Insensitive: return "Group3-Insensitive";
    }
    return "?";
}

SensitivityGroup
classifySensitivity(double cpi_increase_7to1, double cpi_increase_7to4)
{
    // Thresholds on the dominant (7 -> 1 way) axis, with the 7 -> 4
    // axis breaking borderline cases upward: a benchmark already
    // hurting at 4 ways is clearly in the sensitive cluster.
    if (cpi_increase_7to1 >= 0.38 || cpi_increase_7to4 >= 0.15)
        return SensitivityGroup::HighlySensitive;
    if (cpi_increase_7to1 >= 0.17)
        return SensitivityGroup::ModeratelySensitive;
    return SensitivityGroup::Insensitive;
}

double
BenchmarkProfile::expectedL2MissRate(unsigned ways) const
{
    return l2Profile.expectedMissRateSetAssoc(
        ways, CacheConfig::l2Default().numSets());
}

double
BenchmarkProfile::expectedCpi(unsigned ways) const
{
    const CacheConfig l2 = CacheConfig::l2Default();
    const double t2 = static_cast<double>(l2.hitLatency);
    const double tm = 300.0;
    const double hm = expectedL2Mpi(ways);
    return cpiL1Inf + h2 * t2 + hm * tm;
}

const std::vector<BenchmarkProfile> &
BenchmarkRegistry::all()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

const BenchmarkProfile &
BenchmarkRegistry::get(const std::string &name)
{
    for (const auto &b : all())
        if (b.name == name)
            return b;
    cmpqos_fatal("unknown benchmark '%s'", name.c_str());
}

bool
BenchmarkRegistry::has(const std::string &name)
{
    for (const auto &b : all())
        if (b.name == name)
            return true;
    return false;
}

std::vector<std::string>
BenchmarkRegistry::representatives()
{
    return {"bzip2", "hmmer", "gobmk"};
}

} // namespace cmpqos
