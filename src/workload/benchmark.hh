/**
 * @file
 * Synthetic models of the fifteen SPEC2006 C/C++ benchmarks the paper
 * evaluates (Section 6), and their cache-sensitivity classification
 * (Figure 4).
 *
 * Substitution note (see DESIGN.md): we cannot run SPEC2006 binaries,
 * so each benchmark is modelled by (a) the additive-CPI parameters
 * the paper itself uses (CPI with infinite L1, L2 accesses per
 * instruction h2) and (b) a stack-distance mixture whose analytic
 * miss-rate-vs-capacity curve is calibrated to Table 1 (miss rate and
 * misses-per-instruction at 7 of 16 L2 ways) for the three
 * representative benchmarks, and to the Figure 4 sensitivity groups
 * for the rest.
 */

#ifndef CMPQOS_WORKLOAD_BENCHMARK_HH
#define CMPQOS_WORKLOAD_BENCHMARK_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/profile.hh"

namespace cmpqos
{

/** Cache-space sensitivity groups from Figure 4. */
enum class SensitivityGroup
{
    HighlySensitive,    // Group 1: ideal resource-stealing recipients
    ModeratelySensitive, // Group 2
    Insensitive,        // Group 3: ideal resource-stealing donors
};

const char *sensitivityGroupName(SensitivityGroup g);

/**
 * Classify a benchmark from its measured CPI increases when its L2
 * allocation shrinks from 7 ways to 1 way and from 7 ways to 4 ways
 * (the two axes of Figure 4). Fractions, not percent.
 */
SensitivityGroup classifySensitivity(double cpi_increase_7to1,
                                     double cpi_increase_7to4);

/**
 * Static description of one synthetic benchmark.
 */
struct BenchmarkProfile
{
    std::string name;
    /** SPEC input set label (Table 1 flavour; documentation only). */
    std::string inputSet;
    /** Expected sensitivity group (Figure 4). */
    SensitivityGroup group = SensitivityGroup::Insensitive;

    /** CPI with an infinite L1 (Luo's model component, Section 4.2). */
    double cpiL1Inf = 1.0;
    /** L2 accesses per instruction (h2 in the paper's CPI model). */
    double h2 = 0.01;
    /** Memory references per instruction (full-trace mode only). */
    double memRefsPerInstr = 0.35;
    /** Fraction of accesses that are stores. */
    double writeFraction = 0.3;
    /** Initialisation instructions skipped (Table 1 flavour), in M. */
    std::uint64_t skippedInstrM = 0;

    /** Stack-distance mixture of the post-L1 (L2) access stream. */
    StackDistanceProfile l2Profile;

    /** Analytic L2 miss rate with @p ways of the default L2. */
    double expectedL2MissRate(unsigned ways) const;

    /** Analytic L2 misses per instruction with @p ways. */
    double
    expectedL2Mpi(unsigned ways) const
    {
        return h2 * expectedL2MissRate(ways);
    }

    /**
     * Analytic CPI with @p ways using the paper's additive model with
     * default latencies (t2 = 10, tm = 300).
     */
    double expectedCpi(unsigned ways) const;
};

/**
 * The fifteen-benchmark suite.
 */
class BenchmarkRegistry
{
  public:
    /** All fifteen benchmarks, in the paper's listing order. */
    static const std::vector<BenchmarkProfile> &all();

    /** Lookup by name; fatal() if unknown. */
    static const BenchmarkProfile &get(const std::string &name);

    /** @return true if @p name names a benchmark. */
    static bool has(const std::string &name);

    /**
     * The three representatives the paper selects: bzip2 (Group 1),
     * hmmer (Group 2) and gobmk (Group 3).
     */
    static std::vector<std::string> representatives();
};

} // namespace cmpqos

#endif // CMPQOS_WORKLOAD_BENCHMARK_HH
