#include "trace.hh"

#include <cstring>

#include "common/logging.hh"

namespace cmpqos
{

namespace
{
constexpr char traceMagic[4] = {'C', 'Q', 'T', '1'};
constexpr std::streamoff headerBytes = 4 + 4 + 8;

template <typename T>
void
writeRaw(std::ofstream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readRaw(std::ifstream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    return static_cast<bool>(in);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, unsigned block_size)
    : out_(path, std::ios::binary | std::ios::trunc),
      blockSize_(block_size)
{
    if (!out_)
        cmpqos_fatal("cannot open trace file '%s' for writing",
                     path.c_str());
    out_.write(traceMagic, sizeof(traceMagic));
    writeRaw(out_, static_cast<std::uint32_t>(blockSize_));
    writeRaw(out_, std::uint64_t{0}); // patched in close()
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &record)
{
    cmpqos_assert(!closed_, "append to a closed trace");
    writeRaw(out_, static_cast<std::uint64_t>(record.instruction));
    writeRaw(out_, static_cast<std::uint64_t>(record.addr));
    writeRaw(out_, static_cast<std::uint8_t>(record.isWrite ? 1 : 0));
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(8, std::ios::beg); // past magic + block size
    writeRaw(out_, count_);
    out_.close();
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        cmpqos_fatal("cannot open trace file '%s'", path.c_str());
    char magic[4];
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        cmpqos_fatal("'%s' is not a cmpqos trace", path.c_str());
    std::uint32_t bs = 0;
    if (!readRaw(in_, bs) || !readRaw(in_, recordCount_))
        cmpqos_fatal("truncated trace header in '%s'", path.c_str());
    blockSize_ = bs;
    (void)headerBytes;
}

bool
TraceReader::next(TraceRecord &record)
{
    if (consumed_ >= recordCount_)
        return false;
    std::uint64_t instr = 0, addr = 0;
    std::uint8_t write = 0;
    if (!readRaw(in_, instr) || !readRaw(in_, addr) ||
        !readRaw(in_, write))
        cmpqos_fatal("trace truncated after %llu of %llu records",
                     static_cast<unsigned long long>(consumed_),
                     static_cast<unsigned long long>(recordCount_));
    record.instruction = instr;
    record.addr = addr;
    record.isWrite = write != 0;
    ++consumed_;
    return true;
}

std::vector<TraceRecord>
TraceReader::readAll()
{
    std::vector<TraceRecord> records;
    records.reserve(recordCount_ - consumed_);
    TraceRecord r;
    while (next(r))
        records.push_back(r);
    return records;
}

std::uint64_t
recordTrace(AccessGenerator &generator, InstCount instructions,
            const std::string &path)
{
    TraceWriter writer(path);
    // Step instruction-by-instruction so records carry exact
    // instruction numbers.
    for (InstCount i = 0; i < instructions; ++i) {
        generator.run(1, [&](Addr addr, bool is_write) {
            writer.append(TraceRecord{i, addr, is_write});
        });
    }
    writer.close();
    return writer.recordsWritten();
}

} // namespace cmpqos
