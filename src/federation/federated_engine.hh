/**
 * @file
 * The federation coordinator: the cluster engine's driver loop with
 * the node slice pushed behind shard links. The coordinator owns the
 * arrival stream, the GAC placement policy, negotiation, the fault
 * injector and the telemetry hub — exactly the single-process
 * engine's driver responsibilities — while every node advance, probe
 * and submission crosses a Transport to the shard controller that
 * owns the node.
 *
 * Epoch-commit protocol per placement quantum:
 *
 *   1. probe-gather — one FedProbe per reachable shard, replies
 *      concatenated in shard order (= global node order, shards own
 *      contiguous slices) so the policy scan is identical to the
 *      single-process engine's node loop;
 *   2. admit decision — the GAC picks a node, negotiates relaxed
 *      deadlines through further probe rounds, and commits with
 *      FedSubmit to the owning shard;
 *   3. commit barrier — FedAdvance to every shard, one FedQuantumDone
 *      gathered per shard in shard order, carrying the shard's
 *      telemetry batch and cumulative oracle totals.
 *
 * Determinism: per-node RNG seeds are derived from the cluster seed
 * for ALL nodes on the coordinator and shipped in FedInit, the
 * barrier protocol orders every cross-shard interaction, and
 * telemetry batches are replayed into the hub in producer order — so
 * engine output and telemetry fingerprints are byte-identical across
 * any shard count x any thread count x either transport (and equal
 * to the single-process engine's) for plans without shard-link
 * faults. Shard-link faults (drop/dup/delay/partition) perturb
 * placement deterministically for a fixed topology.
 *
 * Limitation: shards build their node frameworks from the default
 * FrameworkConfig (FedInit does not ship one); ClusterConfig::node
 * must be left at defaults, which every driver in this repo does.
 */

#ifndef CMPQOS_FEDERATION_FEDERATED_ENGINE_HH
#define CMPQOS_FEDERATION_FEDERATED_ENGINE_HH

#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <sys/types.h>

#include "cluster/engine.hh"
#include "federation/shard_controller.hh"
#include "federation/transport.hh"

namespace cmpqos
{

/** Shard-link backend. */
enum class FedTransport
{
    /** Blocking in-process queues (default). */
    Inproc,
    /** Unix-domain stream sockets: socketpair() + serve threads, or
     *  spawned worker processes when a shard binary is configured. */
    Uds,
};

const char *fedTransportName(FedTransport t);
/** Parse "inproc" / "uds". @return false on anything else. */
bool parseFedTransport(const std::string &name, FedTransport &out);

/** Federation topology and transport configuration. */
struct FederationConfig
{
    /** Shard controllers to split the nodes over (contiguous slices,
     *  near-equal sizes). Must be in [1, nodes]. */
    int shards = 1;
    FedTransport transport = FedTransport::Inproc;
    /** Uds only: path of a `federation_shard` worker binary to spawn
     *  per shard (fork/exec over socketpair). Empty = serve threads
     *  inside this process (still exercising the real fd path). */
    std::string shardBinary;
    /** Shard-side telemetry ring capacity (0 = collector default).
     *  Pass the coordinator hub's capacity so drop behaviour matches
     *  the single-process engine. */
    std::size_t telemetryRing = 0;
    /** Hard ceiling on one transport frame. */
    std::size_t maxFrame = fedMaxFrame;
};

/**
 * Sharded cluster engine: ClusterEngine's contract over shard links.
 * Accepts the same ClusterConfig (telemetry, fault plan, observer,
 * invariant oracle) and returns the same ClusterMetrics.
 */
class FederatedEngine
{
  public:
    FederatedEngine(const ClusterConfig &config,
                    const FederationConfig &federation);
    ~FederatedEngine();

    FederatedEngine(const FederatedEngine &) = delete;
    FederatedEngine &operator=(const FederatedEngine &) = delete;

    int numNodes() const { return config_.nodes; }
    int numShards() const { return static_cast<int>(shards_.size()); }
    /** Worker threads per shard (FedInit ships the resolved count so
     *  every shard matches). */
    unsigned numThreads() const { return resolvedThreads_; }

    /** See ClusterEngine::runToCompletion. */
    ClusterMetrics runToCompletion(ArrivalProcess &arrivals);
    /** See ClusterEngine::runForDuration. */
    ClusterMetrics runForDuration(ArrivalProcess &arrivals,
                                  Cycle duration);

    /** Driver-side fault tallies so far (includes the shard-link
     *  tallies the single-process engine can never have). */
    const FaultTallies &
    faultTallies() const
    {
        driver_.grant();
        return faults_;
    }

    /** Oracle totals summed over shards (cumulative, as of the last
     *  gathered barrier). Zero when checkInvariants was off. */
    std::uint64_t invariantChecksRun() const;
    std::uint64_t invariantViolations() const;
    /** Gather the per-shard violation reports (shard order). */
    std::string invariantReport();

  private:
    /** One shard endpoint: link + backend handle + protocol state. */
    struct Shard
    {
        int index = 0;
        int nodeBegin = 0;
        int nodeCount = 0;
        std::unique_ptr<Link> link;
        /** In-process backends: the controller and its serve thread. */
        ShardController controller;
        std::thread server;
        std::string serveError;
        /** Multi-process backend: the worker child. */
        pid_t pid = -1;
        /** Envelope sequence numbers (per direction). */
        std::uint64_t txSeq = 0;
        std::uint64_t rxSeq = 0;
        /** Advances deferred by partition windows, flushed in order
         *  when the window ends (and before the final drain). */
        std::deque<FedAdvance> deferred;
        /** Last gathered cumulative totals. */
        std::uint64_t checksRun = 0;
        std::uint64_t violations = 0;
        std::uint64_t drops = 0;
    };

    struct Placement
    {
        bool accepted = false;
        bool negotiated = false;
        NodeId node = -1;
    };

    ClusterMetrics run(ArrivalProcess &arrivals, Cycle horizon,
                       bool drain) CMPQOS_REQUIRES(driver_);
    Placement place(const ClusterArrival &arrival)
        CMPQOS_REQUIRES(driver_);
    NodeId choose(const JobRequest &request, InstCount instructions,
                  Cycle t, bool probe_faults) CMPQOS_REQUIRES(driver_);
    void advanceAll(Cycle from, Cycle to) CMPQOS_REQUIRES(driver_);
    void flushDeferred(Cycle t, bool force) CMPQOS_REQUIRES(driver_);
    void drainAllShards() CMPQOS_REQUIRES(driver_);
    ClusterMetrics snapshot() CMPQOS_REQUIRES(driver_);

    void applyFaultActions(Cycle t) CMPQOS_REQUIRES(driver_);
    void relocate(NodeId origin, const NodeWorker::LostJob &lost,
                  Cycle t) CMPQOS_REQUIRES(driver_);
    void refreshProbeFaults(Cycle t) CMPQOS_REQUIRES(driver_);

    // Link plumbing.
    void startShard(Shard &shard) CMPQOS_REQUIRES(driver_);
    void sendPlain(Shard &shard, const FedMessage &msg)
        CMPQOS_REQUIRES(driver_);
    /** Data-plane send: applies the shard-link fault model (drop =
     *  tally + retransmit, dup = double delivery absorbed by seq
     *  dedup, delay = virtual-cycle tally) before the real send. */
    void sendFaulted(Shard &shard, const FedMessage &msg, Cycle t)
        CMPQOS_REQUIRES(driver_);
    FedMessage receive(Shard &shard) CMPQOS_REQUIRES(driver_);
    template <typename T>
    T expect(Shard &shard) CMPQOS_REQUIRES(driver_);
    /** Deliver one shard telemetry batch into the hub and fold the
     *  shard's cumulative drop count in. */
    void deliverBatch(Shard &shard, const std::string &events,
                      std::uint64_t drops) CMPQOS_REQUIRES(driver_);
    bool partitioned(const Shard &shard, Cycle t) const
        CMPQOS_REQUIRES(driver_);

    Shard &shardOf(NodeId node) CMPQOS_REQUIRES(driver_);

    /**
     * The driver role, identical to ClusterEngine's: the one thread
     * driving run() owns placement, fault actions, telemetry and the
     * shard links. Serve threads never touch coordinator state — they
     * only see their own controller + link.
     */
    OwnerRole driver_;

    ClusterConfig config_;
    FederationConfig federation_;
    unsigned resolvedThreads_ = 1;
    std::vector<std::unique_ptr<Shard>> shards_
        CMPQOS_GUARDED_BY(driver_);
    TraceRecorder *driverTrace_ = nullptr;

    std::unique_ptr<FaultInjector> injector_;
    FaultTallies faults_ CMPQOS_GUARDED_BY(driver_);
    /** Coordinator mirrors of per-node liveness (global node id). */
    std::vector<char> alive_ CMPQOS_GUARDED_BY(driver_);
    std::vector<char> probeSkip_ CMPQOS_GUARDED_BY(driver_);
    std::unordered_set<std::uint64_t> committedSeqs_
        CMPQOS_GUARDED_BY(driver_);
    /** Probes gathered by the round that selected the last target
     *  (global node order) — the observer's slotStart source. */
    std::vector<WireProbe> lastProbes_ CMPQOS_GUARDED_BY(driver_);

    std::uint64_t submitted_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t accepted_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t rejected_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t negotiated_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::uint64_t truncated_ CMPQOS_GUARDED_BY(driver_) = 0;
    std::array<std::uint64_t, numQosTiers>
        acceptedByTier_ CMPQOS_GUARDED_BY(driver_){};
    double wallSeconds_ CMPQOS_GUARDED_BY(driver_) = 0.0;
};

} // namespace cmpqos

#endif // CMPQOS_FEDERATION_FEDERATED_ENGINE_HH
