/**
 * @file
 * The shard controller: the server side of one federation link. Each
 * shard owns a contiguous slice of the cluster's nodes and runs their
 * LACs (and co-simulations) locally on its own worker pool; the
 * coordinator's GAC reaches them only through the shard protocol
 * (message.hh), so admission probes, submissions, fault actions and
 * quantum barriers are all real messages.
 *
 * Determinism: the controller is a pure command executor. It holds no
 * clock and makes no scheduling decisions — every state change is
 * ordered by the coordinator's message stream, and node advances use
 * the same ThreadPool barrier the single-process engine uses, so a
 * shard's behaviour is a function of (FedInit, message sequence)
 * alone, at any local thread count.
 *
 * Duplicate delivery (the link-dup fault, or a retransmission) is
 * absorbed here: every coordinator message carries a monotonically
 * increasing sequence number, and a message whose sequence is not
 * newer than the last executed one is skipped without reply — the
 * command idempotency half of the commit protocol.
 */

#ifndef CMPQOS_FEDERATION_SHARD_CONTROLLER_HH
#define CMPQOS_FEDERATION_SHARD_CONTROLLER_HH

#include <memory>
#include <string>
#include <vector>

#include "cluster/node_worker.hh"
#include "common/annotations.hh"
#include "common/thread_pool.hh"
#include "fault/invariants.hh"
#include "federation/message.hh"
#include "federation/transport.hh"
#include "telemetry/collector.hh"

namespace cmpqos
{

/**
 * Sink that buffers drained TraceEvents as raw 88-byte records for
 * shipment to the coordinator, rebasing node ids from shard-local
 * producer indices to global node ids. The coordinator replays the
 * batch through TraceCollector::deliverExternal in shard order, which
 * reconstructs the exact producer-order stream a single-process run
 * delivers.
 */
class ShardBufferSink : public TraceSink
{
  public:
    explicit ShardBufferSink(std::int16_t node_begin)
        : nodeBegin_(node_begin)
    {
    }

    void consume(const TraceEvent &e) override;
    void close(const TraceMeta &) override {}

    /** Move the buffered batch out (leaves the buffer empty). */
    std::string take() { return std::move(buffer_); }

  private:
    std::int16_t nodeBegin_;
    std::string buffer_;
};

/**
 * One shard's command executor. Construct, then serve() a link until
 * the coordinator shuts the shard down. All state is created by the
 * FedInit message, so the same class backs the in-process serve
 * threads and the `federation_shard` worker processes.
 */
class ShardController
{
  public:
    ShardController() = default;

    ShardController(const ShardController &) = delete;
    ShardController &operator=(const ShardController &) = delete;

    /**
     * Execute the coordinator's command stream until FedShutdown or
     * link close. Returns false when the link was poisoned (protocol
     * error — details in @p error); a clean shutdown returns true.
     */
    bool serve(Link &link, std::string &error);

  private:
    FedMessage handle(const FedMessage &msg) CMPQOS_REQUIRES(owner_);

    FedMessage onInit(const FedInit &m) CMPQOS_REQUIRES(owner_);
    FedMessage onProbe(const FedProbe &m) CMPQOS_REQUIRES(owner_);
    FedMessage onSubmit(const FedSubmit &m) CMPQOS_REQUIRES(owner_);
    FedMessage onCrash(const FedCrash &m) CMPQOS_REQUIRES(owner_);
    FedMessage onRestart(const FedRestart &m) CMPQOS_REQUIRES(owner_);
    FedMessage onAdvance(const FedAdvance &m) CMPQOS_REQUIRES(owner_);
    FedMessage onDrain() CMPQOS_REQUIRES(owner_);
    FedMessage onSnapshot() CMPQOS_REQUIRES(owner_);
    FedMessage onInvariant() CMPQOS_REQUIRES(owner_);

    NodeWorker &local(std::int32_t global) CMPQOS_REQUIRES(owner_);
    void checkAlive() CMPQOS_REQUIRES(owner_);

    /**
     * The serve role: exactly one thread runs serve(), and every
     * piece of shard state belongs to it (pool workers only ever see
     * a NodeWorker handed over at the advance barrier, exactly as in
     * the single-process engine).
     */
    OwnerRole owner_;

    std::uint32_t shardIndex_ CMPQOS_GUARDED_BY(owner_) = 0;
    std::int32_t nodeBegin_ CMPQOS_GUARDED_BY(owner_) = 0;
    std::unique_ptr<ThreadPool> pool_ CMPQOS_GUARDED_BY(owner_);
    std::vector<std::unique_ptr<NodeWorker>> nodes_
        CMPQOS_GUARDED_BY(owner_);
    std::unique_ptr<TraceCollector> collector_ CMPQOS_GUARDED_BY(owner_);
    std::unique_ptr<ShardBufferSink> buffer_ CMPQOS_GUARDED_BY(owner_);
    std::unique_ptr<InvariantChecker> checker_ CMPQOS_GUARDED_BY(owner_);

    /** Highest coordinator sequence executed (duplicate absorber). */
    std::uint64_t lastRxSeq_ CMPQOS_GUARDED_BY(owner_) = 0;
    /** Our own reply sequence. */
    std::uint64_t txSeq_ CMPQOS_GUARDED_BY(owner_) = 0;
};

// Wire conversions shared by the coordinator and the shard.

/** Pack a JobRequest (+ job length) for the wire. */
WireJobRequest toWireRequest(const JobRequest &request,
                             InstCount instructions);

/** Unpack a WireJobRequest. */
JobRequest fromWireRequest(const WireJobRequest &w,
                           InstCount &instructions);

} // namespace cmpqos

#endif // CMPQOS_FEDERATION_SHARD_CONTROLLER_HH
