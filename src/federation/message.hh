/**
 * @file
 * The shard protocol: typed messages between the federation
 * coordinator (the GAC / driver side) and its shard controllers (each
 * owning a contiguous slice of nodes and running their LACs locally).
 *
 * Same construction as the admission-service protocol: binary frames
 * with a length prefix, every message's fields listed once in a
 * `visitFields` template (see src/common/wire_codec.hh), a
 * never-throwing bounded decoder. On top of that the federation
 * envelope carries a per-direction sequence number so a duplicated
 * delivery (the link-dup fault, or a retransmission after a link
 * drop) is detected and absorbed by the receiver instead of
 * double-executing a command.
 *
 * Frame layout on a stream transport:
 *
 *     [u32 payload_len][payload]
 *     payload = [u64 seq][u8 type][fields...]
 *
 * The in-process transport carries the same encoded payloads through
 * a queue, so both backends exercise one codec and a captured run is
 * transport-independent. docs/FEDERATION.md specifies the message
 * flow; type codes are frozen there.
 */

#ifndef CMPQOS_FEDERATION_MESSAGE_HH
#define CMPQOS_FEDERATION_MESSAGE_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cmpqos
{

/**
 * Version of the federation wire protocol: the FedMessage alternative
 * order plus every visitFields field sequence below. Any change to
 * that wire reality must bump this constant — `qoslint wirelint`
 * refuses to regenerate docs/SCHEMA.lock otherwise (docs/PROTOCOL.md
 * has the procedure). FedInit carries it so a version-skewed shard is
 * rejected at handshake instead of desyncing mid-epoch.
 */
constexpr std::uint32_t fedProtocolVersion = 2;

/** Wire form of a JobRequest plus the job length. */
struct WireJobRequest
{
    std::string benchmark;
    std::uint8_t mode = 0; // ExecutionMode
    double slack = 0.0;
    double deadlineFactor = 2.0;
    std::uint32_t cores = 1;
    std::uint32_t ways = 7;
    std::uint32_t bandwidthPercent = 0;
    std::uint64_t instructions = 0;
};

/** One node's answer inside a probe round. */
struct WireProbe
{
    std::int32_t node = -1;
    std::uint8_t alive = 0;
    std::uint8_t accepted = 0;
    /** Reserved timeslot start the LAC would grant. */
    std::uint64_t slotStart = 0;
    /** LeastLoaded key: jobs in flight. */
    std::uint64_t load = 0;
    /** LeastLoaded tie-break: reserved cache ways at node time. */
    std::uint32_t ways = 0;
};

/** A waiting job lost in a crash, offered back for relocation. */
struct WireLostJob
{
    std::int32_t localJob = -1;
    std::uint8_t mode = 0; // ExecutionMode of the lost job
    WireJobRequest request;
};

/** Serialized NodeMetrics (see cluster/metrics.hh). */
struct WireNodeMetrics
{
    std::int32_t node = -1;
    std::uint64_t virtualTime = 0;
    std::uint64_t placed = 0;
    std::uint64_t completed = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t instructions = 0;
    double utilisation = 0.0;
    std::uint64_t stolenWays = 0;
    std::uint64_t failed = 0;
    std::uint64_t restarts = 0;
    std::uint8_t alive = 1;
    /** completed/deadlineHits per ExecutionMode, flattened. */
    std::vector<std::uint64_t> modeTallies;
    /** Modelled energy (0 unless the feedback controller is on). */
    double energy = 0.0;
    /** ControlTallies flattened via flattenTallies (control layer). */
    std::vector<std::uint64_t> controlTallies;
};

// --- coordinator -> shard ------------------------------------------

/** Bring-up: the shard's node slice and run parameters. */
struct FedInit
{
    /** Sender's fedProtocolVersion; onInit rejects a mismatch. */
    std::uint32_t protocolVersion = fedProtocolVersion;
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
    std::int32_t nodeBegin = 0;
    std::int32_t nodeCount = 0;
    std::int32_t totalNodes = 0;
    std::uint64_t quantum = 0;
    std::uint32_t threads = 1;
    std::uint8_t telemetry = 0;
    std::uint64_t ringCapacity = 0;
    std::uint8_t checkInvariants = 0;
    /** Per-local-node RNG seeds, derived by the coordinator from the
     *  cluster seed — the same SplitMix expansion at any shard count,
     *  so node streams are shard-count-invariant. */
    std::vector<std::uint64_t> nodeSeeds;
    /** Canonical feedback-controller spec (formatControllerSpec);
     *  empty = controller disabled. */
    std::string control;
};

/** Probe round: ask every local LAC whether it would accept. */
struct FedProbe
{
    WireJobRequest request;
};

/** Commit: submit the job to one local node (chosen by the GAC). */
struct FedSubmit
{
    std::int32_t node = -1;
    WireJobRequest request;
};

/** Fault action: crash a local node at this barrier. */
struct FedCrash
{
    std::int32_t node = -1;
};

/** Fault recovery: restart a crashed local node at time `now`. */
struct FedRestart
{
    std::int32_t node = -1;
    std::uint64_t now = 0;
};

/** Commit barrier: advance all local nodes from `from` to `to`,
 *  apply per-node stalls, drain telemetry, run the oracle. */
struct FedAdvance
{
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    /** Slow-quantum stalls, one per local node (may be empty). */
    std::vector<std::uint64_t> stalls;
    std::uint8_t check = 0;
};

/** Final drain: run every local node to completion. */
struct FedDrainReq
{
};

/** Collect per-node metrics. */
struct FedSnapshotReq
{
};

/** Collect the invariant oracle's totals and report text. */
struct FedInvariantReq
{
};

/** Tear down the shard (no reply; the serve loop exits). */
struct FedShutdown
{
};

/** A waiting job lost on this node could not be relocated anywhere:
 *  count it failed on the origin (per-node failed tallies feed the
 *  fingerprint, so the bookkeeping must live with the node). */
struct FedRelocFail
{
    std::int32_t node = -1;
};

// --- shard -> coordinator ------------------------------------------

/** Init acknowledged; the shard is serving. */
struct FedReady
{
    std::uint32_t shardIndex = 0;
};

/** Answers for one probe round, local nodes in id order. */
struct FedProbeReply
{
    std::vector<WireProbe> probes;
};

/** Submission outcome. ok=0 means probe/submit disagreement — the
 *  coordinator panics, exactly like the in-process engine. */
struct FedSubmitAck
{
    std::int32_t node = -1;
    std::int32_t jobId = -1;
    std::uint8_t ok = 0;
};

/** What the crash destroyed (see NodeWorker::CrashReport). */
struct FedCrashReport
{
    std::int32_t node = -1;
    /** Local ids of running jobs that failed. */
    std::vector<std::uint64_t> failedRunning;
    /** Waiting jobs offered for relocation. */
    std::vector<WireLostJob> waiting;
};

struct FedRestartAck
{
    std::int32_t node = -1;
};

/** Barrier done: telemetry batch + oracle totals for the quantum. */
struct FedQuantumDone
{
    std::uint64_t to = 0;
    std::uint64_t checksRun = 0;
    std::uint64_t violations = 0;
    /** Drained TraceEvents, raw 88-byte records back to back. */
    std::string events;
    /** Cumulative ring-full drops on this shard. */
    std::uint64_t drops = 0;
};

/** Drain done: final telemetry batch + oracle totals. */
struct FedDrainDone
{
    std::uint64_t checksRun = 0;
    std::uint64_t violations = 0;
    std::string events;
    std::uint64_t drops = 0;
};

struct FedSnapshotReply
{
    std::vector<WireNodeMetrics> nodes;
};

struct FedInvariantReport
{
    std::uint64_t checksRun = 0;
    std::uint64_t violations = 0;
    std::string report;
};

/** Fatal shard-side error (the coordinator aborts the run). */
struct FedError
{
    std::string message;
};

struct FedRelocFailAck
{
    std::int32_t node = -1;
};

using FedMessage =
    std::variant<FedInit, FedProbe, FedSubmit, FedCrash, FedRestart,
                 FedAdvance, FedDrainReq, FedSnapshotReq,
                 FedInvariantReq, FedShutdown, FedReady, FedProbeReply,
                 FedSubmitAck, FedCrashReport, FedRestartAck,
                 FedQuantumDone, FedDrainDone, FedSnapshotReply,
                 FedInvariantReport, FedError, FedRelocFail,
                 FedRelocFailAck>;

/** Human-readable message name (diagnostics). */
const char *fedMessageName(const FedMessage &m);

/** Hard ceiling on one frame. Quantum-barrier telemetry batches
 *  dominate: ring capacity x 88 bytes x nodes per shard. */
constexpr std::size_t fedMaxFrame = 64u << 20;

/** Encode `[u64 seq][u8 type][fields...]` (no length prefix). */
std::string encodeFedPayload(std::uint64_t seq, const FedMessage &m);

/**
 * Decode a payload produced by encodeFedPayload. Never throws;
 * hostile input returns false with @p error set. Trailing bytes
 * after the last field are an error (a frame is exactly one
 * message).
 */
bool decodeFedPayload(std::string_view payload, std::uint64_t &seq,
                      FedMessage &out, std::string &error);

/** Result of extractFedFrame. */
enum class FedFrameStatus
{
    Ok,
    NeedMore,
    Error,
};

/**
 * Pull one length-prefixed frame off the front of @p buffer (a
 * stream-transport receive buffer): `[u32 len][payload]`. On Ok the
 * payload is moved into @p payload and consumed from the buffer.
 * Oversized or undersized lengths are Error — the link is poisoned
 * and must be torn down, mirroring the service codec's contract.
 */
FedFrameStatus extractFedFrame(std::string &buffer, std::string &payload,
                               std::string &error,
                               std::size_t max_frame = fedMaxFrame);

} // namespace cmpqos

#endif // CMPQOS_FEDERATION_MESSAGE_HH
