#include "federated_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "control/config.hh"
#include "control/controller.hh"

namespace cmpqos
{

const char *
fedTransportName(FedTransport t)
{
    switch (t) {
      case FedTransport::Inproc:
        return "inproc";
      case FedTransport::Uds:
        return "uds";
    }
    return "?";
}

bool
parseFedTransport(const std::string &name, FedTransport &out)
{
    if (name == "inproc") {
        out = FedTransport::Inproc;
        return true;
    }
    if (name == "uds") {
        out = FedTransport::Uds;
        return true;
    }
    return false;
}

FederatedEngine::FederatedEngine(const ClusterConfig &config,
                                 const FederationConfig &federation)
    : config_(config), federation_(federation)
{
    driver_.grant();
    cmpqos_assert(config_.nodes > 0, "cluster needs at least one node");
    cmpqos_assert(config_.quantum > 0, "placement quantum must be > 0");
    cmpqos_assert(federation_.shards >= 1 &&
                      federation_.shards <= config_.nodes,
                  "shard count %d must be in [1, %d nodes]",
                  federation_.shards, config_.nodes);
    resolvedThreads_ = config_.threads == 0
                           ? ThreadPool::hardwareConcurrency()
                           : config_.threads;

    if (config_.telemetry != nullptr) {
        cmpqos_assert(config_.telemetry->producers() >=
                          config_.nodes + 1,
                      "telemetry collector has %d producers, cluster "
                      "needs %d (nodes + driver)",
                      config_.telemetry->producers(), config_.nodes + 1);
        driverTrace_ = config_.telemetry->driverRecorder();
    }

    alive_.assign(static_cast<std::size_t>(config_.nodes), 1);
    probeSkip_.assign(static_cast<std::size_t>(config_.nodes), 0);
    if (config_.faultPlan != nullptr && !config_.faultPlan->empty()) {
        config_.faultPlan->validate(config_.nodes, federation_.shards);
        injector_ = std::make_unique<FaultInjector>(*config_.faultPlan,
                                                    config_.quantum);
    }

    // The SAME SplitMix expansion of the cluster seed as the
    // single-process engine, over ALL nodes in global order — each
    // shard receives its slice, so per-node RNG streams are invariant
    // under the shard count.
    Rng seeder(config_.seed);
    std::vector<std::uint64_t> seeds;
    seeds.reserve(static_cast<std::size_t>(config_.nodes));
    for (int n = 0; n < config_.nodes; ++n)
        seeds.push_back(seeder.next());

    // Contiguous near-equal slices: base nodes each, the remainder
    // spread over the leading shards.
    const int base = config_.nodes / federation_.shards;
    const int rem = config_.nodes % federation_.shards;
    int begin = 0;
    for (int s = 0; s < federation_.shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->index = s;
        shard->nodeBegin = begin;
        shard->nodeCount = base + (s < rem ? 1 : 0);
        begin += shard->nodeCount;
        startShard(*shard);
        shards_.push_back(std::move(shard));
    }
    cmpqos_assert(begin == config_.nodes, "shard slices must cover all nodes");

    for (auto &shard : shards_) {
        FedInit init;
        init.shardIndex = static_cast<std::uint32_t>(shard->index);
        init.shardCount =
            static_cast<std::uint32_t>(federation_.shards);
        init.nodeBegin = shard->nodeBegin;
        init.nodeCount = shard->nodeCount;
        init.totalNodes = config_.nodes;
        init.quantum = config_.quantum;
        init.threads = resolvedThreads_;
        init.telemetry = config_.telemetry != nullptr ? 1 : 0;
        init.ringCapacity = federation_.telemetryRing;
        init.checkInvariants = config_.checkInvariants ? 1 : 0;
        init.nodeSeeds.assign(
            seeds.begin() + shard->nodeBegin,
            seeds.begin() + shard->nodeBegin + shard->nodeCount);
        init.control = formatControllerSpec(config_.control);
        sendPlain(*shard, init);
    }
    for (auto &shard : shards_) {
        const FedReady ready = expect<FedReady>(*shard);
        cmpqos_assert(ready.shardIndex ==
                          static_cast<std::uint32_t>(shard->index),
                      "shard %d acknowledged as %u", shard->index,
                      ready.shardIndex);
    }
}

FederatedEngine::~FederatedEngine()
{
    driver_.grant();
    for (auto &shard : shards_) {
        if (shard->link != nullptr) {
            sendPlain(*shard, FedShutdown{});
            shard->link->close();
        }
        if (shard->server.joinable())
            shard->server.join();
        if (shard->pid > 0) {
            int status = 0;
            ::waitpid(shard->pid, &status, 0);
        }
    }
}

void
FederatedEngine::startShard(Shard &shard)
{
    const bool spawn = federation_.transport == FedTransport::Uds &&
                       !federation_.shardBinary.empty();
    if (spawn) {
        int fds[2];
        const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
        cmpqos_assert(rc == 0, "socketpair: %s", std::strerror(errno));
        const pid_t pid = ::fork();
        cmpqos_assert(pid >= 0, "fork: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: become the shard worker on its end of the pair.
            ::close(fds[0]);
            const std::string fd_arg = std::to_string(fds[1]);
            const std::string shard_arg = std::to_string(shard.index);
            ::execl(federation_.shardBinary.c_str(),
                    federation_.shardBinary.c_str(), "--fd",
                    fd_arg.c_str(), "--shard", shard_arg.c_str(),
                    static_cast<char *>(nullptr));
            // exec only returns on failure; the coordinator sees the
            // closed socket and aborts with a useful message.
            _exit(127);
        }
        ::close(fds[1]);
        shard.pid = pid;
        shard.link =
            std::make_unique<UdsLink>(fds[0], federation_.maxFrame);
        return;
    }

    auto pair = federation_.transport == FedTransport::Uds
                    ? makeSocketLinkPair(federation_.maxFrame)
                    : makeInprocLinkPair();
    shard.link = std::move(pair.first);
    // In-process backend: the controller serves on its own thread.
    // The shared_ptr-free handoff is safe because Shard outlives the
    // thread (the destructor joins before releasing anything).
    std::unique_ptr<Link> peer = std::move(pair.second);
    shard.server = std::thread(
        [controller = &shard.controller, error = &shard.serveError,
         link = std::shared_ptr<Link>(std::move(peer))]() {
            std::string err;
            if (!controller->serve(*link, err))
                *error = err;
            link->close();
        });
}

void
FederatedEngine::sendPlain(Shard &shard, const FedMessage &msg)
{
    if (shard.link == nullptr)
        return;
    shard.link->send(encodeFedPayload(++shard.txSeq, msg));
}

void
FederatedEngine::sendFaulted(Shard &shard, const FedMessage &msg,
                             Cycle t)
{
    const std::string payload = encodeFedPayload(++shard.txSeq, msg);
    if (injector_ != nullptr) {
        if (injector_->linkDropped(shard.index, t)) {
            // The first transmission is lost; the coordinator's
            // reliable-delivery discipline retransmits (the send
            // below), so the fault costs a tally, never a command.
            ++faults_.linkDrops;
        }
        if (injector_->linkDuplicated(shard.index, t)) {
            // Double delivery, same sequence number: the shard's
            // dedup absorbs the second copy.
            ++faults_.linkDups;
            shard.link->send(payload);
        }
        faults_.linkDelayCycles +=
            injector_->linkDelayCycles(shard.index, t);
    }
    const bool ok = shard.link->send(payload);
    cmpqos_assert(ok, "shard %d link send failed: %s", shard.index,
                  shard.link->error().c_str());
}

FedMessage
FederatedEngine::receive(Shard &shard)
{
    std::string payload;
    if (!shard.link->recv(payload)) {
        cmpqos_panic("shard %d link lost: %s%s", shard.index,
                     shard.link->error().empty()
                         ? "peer closed"
                         : shard.link->error().c_str(),
                     shard.serveError.empty()
                         ? ""
                         : (" / " + shard.serveError).c_str());
    }
    std::uint64_t seq = 0;
    FedMessage msg;
    std::string error;
    if (!decodeFedPayload(payload, seq, msg, error))
        cmpqos_panic("shard %d sent a bad frame: %s", shard.index,
                     error.c_str());
    cmpqos_assert(seq > shard.rxSeq,
                  "shard %d replayed reply seq %llu", shard.index,
                  static_cast<unsigned long long>(seq));
    shard.rxSeq = seq;
    if (const auto *err = std::get_if<FedError>(&msg))
        cmpqos_panic("shard %d error: %s", shard.index,
                     err->message.c_str());
    return msg;
}

template <typename T>
T
FederatedEngine::expect(Shard &shard)
{
    FedMessage msg = receive(shard);
    T *reply = std::get_if<T>(&msg);
    if (reply == nullptr)
        cmpqos_panic("shard %d: unexpected %s reply", shard.index,
                     fedMessageName(msg));
    return std::move(*reply);
}

bool
FederatedEngine::partitioned(const Shard &shard, Cycle t) const
{
    return injector_ != nullptr &&
           injector_->partitioned(shard.index, t);
}

FederatedEngine::Shard &
FederatedEngine::shardOf(NodeId node)
{
    for (auto &shard : shards_)
        if (node >= shard->nodeBegin &&
            node < shard->nodeBegin + shard->nodeCount)
            return *shard;
    cmpqos_panic("node %d is on no shard", node);
}

void
FederatedEngine::deliverBatch(Shard &shard, const std::string &events,
                              std::uint64_t drops)
{
    if (config_.telemetry != nullptr && !events.empty()) {
        cmpqos_assert(events.size() % sizeof(TraceEvent) == 0,
                      "shard %d telemetry batch of %zu bytes is not "
                      "a whole number of events",
                      shard.index, events.size());
        // Realign: string storage guarantees char alignment only.
        std::vector<TraceEvent> batch(events.size() /
                                      sizeof(TraceEvent));
        std::memcpy(batch.data(), events.data(), events.size());
        config_.telemetry->deliverExternal(batch.data(), batch.size());
    }
    if (config_.telemetry != nullptr && drops > shard.drops)
        config_.telemetry->noteExternalDrops(drops - shard.drops);
    shard.drops = std::max(shard.drops, drops);
}

NodeId
FederatedEngine::choose(const JobRequest &request,
                        InstCount instructions, Cycle t,
                        bool probe_faults)
{
    // Probe-gather: every reachable shard probes its slice; replies
    // concatenated in shard order ARE global node order, so the
    // policy scan below is the single-process engine's node loop.
    const WireJobRequest wire = toWireRequest(request, instructions);
    lastProbes_.clear();
    for (auto &shard : shards_) {
        if (partitioned(*shard, t))
            continue; // unreachable slice: its nodes cannot bid
        sendFaulted(*shard, FedProbe{wire}, t);
    }
    for (auto &shard : shards_) {
        if (partitioned(*shard, t))
            continue;
        FedProbeReply reply = expect<FedProbeReply>(*shard);
        lastProbes_.insert(lastProbes_.end(), reply.probes.begin(),
                           reply.probes.end());
    }

    NodeId best = -1;
    Cycle best_slot = maxCycle;
    std::uint64_t best_load = 0;
    unsigned best_ways = 0;
    for (const WireProbe &p : lastProbes_) {
        if (p.alive == 0)
            continue;
        if (probe_faults &&
            probeSkip_[static_cast<std::size_t>(p.node)])
            continue;
        if (p.accepted == 0)
            continue;
        switch (config_.policy) {
          case GacPolicy::FirstFit:
            return p.node;
          case GacPolicy::EarliestSlot:
            if (best < 0 || p.slotStart < best_slot) {
                best = p.node;
                best_slot = p.slotStart;
            }
            break;
          case GacPolicy::LeastLoaded:
            if (best < 0 || p.load < best_load ||
                (p.load == best_load && p.ways < best_ways)) {
                best = p.node;
                best_load = p.load;
                best_ways = p.ways;
            }
            break;
        }
    }
    return best;
}

void
FederatedEngine::refreshProbeFaults(Cycle t)
{
    if (injector_ == nullptr || !injector_->anyWindows())
        return;
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    for (NodeId n = 0; n < config_.nodes; ++n) {
        const auto i = static_cast<std::size_t>(n);
        probeSkip_[i] = 0;
        if (!alive_[i])
            continue;
        if (injector_->probeDropped(n, t)) {
            probeSkip_[i] = 1;
            ++faults_.probesDropped;
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::ProbeDropped, t);
                e.a = static_cast<std::uint64_t>(n);
                driverTrace_->emit(e);
            }
            continue;
        }
        const unsigned failures = injector_->probeTimeoutFailures(n, t);
        if (failures == 0)
            continue;
        const bool abandoned = failures > config_.probeRetry.maxRetries;
        if (abandoned) {
            probeSkip_[i] = 1;
            ++faults_.probeTimeouts;
        } else {
            faults_.probeRetries += failures;
            faults_.backoffCycles +=
                config_.probeRetry.totalBackoff(failures);
        }
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::ProbeTimeout, t);
            e.a = static_cast<std::uint64_t>(n);
            e.b = failures;
            e.setName(abandoned ? "abandoned" : "recovered");
            driverTrace_->emit(e);
        }
    }
}

FederatedEngine::Placement
FederatedEngine::place(const ClusterArrival &arrival)
{
    const auto seq = static_cast<JobId>(submitted_);
    ++submitted_;
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    if (tracing) {
        TraceEvent e = traceEvent(TraceEventType::JobSubmitted,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(arrival.tier);
        e.b = arrival.instructions;
        e.x = arrival.request.deadlineFactor;
        e.setName(arrival.request.benchmark);
        driverTrace_->emit(e);
    }
    refreshProbeFaults(arrival.time);
    Placement p;
    JobRequest request = arrival.request;
    NodeId target =
        choose(request, arrival.instructions, arrival.time, true);

    if (target < 0 && config_.negotiate) {
        const double base = request.deadlineFactor;
        for (double f = 1.0 + config_.negotiateStep;
             f <= config_.negotiateMaxFactor + 1e-9;
             f += config_.negotiateStep) {
            request.deadlineFactor = base * f;
            target = choose(request, arrival.instructions, arrival.time,
                            true);
            if (target >= 0) {
                p.negotiated = true;
                break;
            }
        }
    }

    if (target < 0) {
        ++rejected_;
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::JobRejected,
                                      arrival.time, seq);
            e.setName("no node accepted");
            driverTrace_->emit(e);
        }
        if (config_.observer != nullptr) {
            PlacementOutcome o;
            o.seq = static_cast<std::uint64_t>(seq);
            o.deadlineFactor = arrival.request.deadlineFactor;
            config_.observer->onPlacement(arrival, o);
        }
        return p;
    }

    Cycle observed_slot = 0;
    if (config_.observer != nullptr) {
        // The selecting probe round already carries the reserved slot
        // the reply will advertise (probe() is side-effect-free, so
        // it equals the single-process engine's confirmation probe —
        // without an extra message).
        for (const WireProbe &probe : lastProbes_)
            if (probe.node == target) {
                observed_slot = probe.slotStart;
                break;
            }
    }

    Shard &owner = shardOf(target);
    sendFaulted(owner,
                FedSubmit{target, toWireRequest(request,
                                                arrival.instructions)},
                arrival.time);
    const FedSubmitAck ack = expect<FedSubmitAck>(owner);
    if (ack.ok == 0)
        cmpqos_panic("probe/submit disagreement on node %d", target);
    ++accepted_;
    if (p.negotiated)
        ++negotiated_;
    ++acceptedByTier_[static_cast<std::size_t>(arrival.tier)];
    p.accepted = true;
    p.node = target;
    if (injector_ != nullptr) {
        const bool fresh =
            committedSeqs_.insert(static_cast<std::uint64_t>(seq))
                .second;
        cmpqos_assert(fresh, "arrival %d committed twice", seq);
        if (injector_->duplicateReply(target, arrival.time)) {
            const bool dup =
                committedSeqs_.insert(static_cast<std::uint64_t>(seq))
                    .second;
            cmpqos_assert(!dup,
                          "duplicate reply slipped past the dedup");
            ++faults_.duplicateReplies;
            if (tracing) {
                TraceEvent e = traceEvent(
                    TraceEventType::DuplicateReplyDropped,
                    arrival.time, seq);
                e.a = static_cast<std::uint64_t>(target);
                driverTrace_->emit(e);
            }
        }
    }
    if (tracing) {
        if (p.negotiated) {
            TraceEvent n = traceEvent(TraceEventType::JobNegotiated,
                                      arrival.time, seq);
            n.a = static_cast<std::uint64_t>(target);
            n.x = request.deadlineFactor /
                  arrival.request.deadlineFactor;
            n.setName(arrival.request.benchmark);
            driverTrace_->emit(n);
        }
        TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                  arrival.time, seq);
        e.a = static_cast<std::uint64_t>(target);
        e.b = static_cast<std::uint64_t>(ack.jobId);
        driverTrace_->emit(e);
    }
    if (config_.observer != nullptr) {
        PlacementOutcome o;
        o.seq = static_cast<std::uint64_t>(seq);
        o.accepted = true;
        o.negotiated = p.negotiated;
        o.node = target;
        o.slotStart = observed_slot;
        o.deadlineFactor = request.deadlineFactor;
        config_.observer->onPlacement(arrival, o);
    }
    return p;
}

void
FederatedEngine::relocate(NodeId origin,
                          const NodeWorker::LostJob &lost, Cycle t)
{
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    JobRequest request = lost.request;
    NodeId target = choose(request, lost.instructions, t, false);
    bool negotiated = false;
    bool downgraded = false;
    if (target < 0 && config_.negotiate &&
        lost.mode != ExecutionMode::Opportunistic) {
        const double base = request.deadlineFactor;
        for (double f = 1.0 + config_.negotiateStep;
             f <= config_.negotiateMaxFactor + 1e-9;
             f += config_.negotiateStep) {
            request.deadlineFactor = base * f;
            target = choose(request, lost.instructions, t, false);
            if (target >= 0) {
                negotiated = true;
                break;
            }
        }
    }
    if (target < 0 && lost.mode == ExecutionMode::Elastic) {
        JobRequest fallback = lost.request;
        fallback.mode = ModeSpec::opportunistic();
        target = choose(fallback, lost.instructions, t, false);
        if (target >= 0) {
            request = fallback;
            downgraded = true;
        }
    }
    if (target < 0) {
        ++faults_.relocationRejected;
        // The failure is counted on the origin node (per-node failed
        // tallies feed failedJobs and the fingerprint), which lives
        // on a shard.
        Shard &origin_shard = shardOf(origin);
        sendFaulted(origin_shard, FedRelocFail{origin}, t);
        expect<FedRelocFailAck>(origin_shard);
        if (tracing) {
            TraceEvent e = traceEvent(TraceEventType::JobFailed, t,
                                      lost.localJob);
            e.a = static_cast<std::uint64_t>(origin);
            e.b = static_cast<std::uint64_t>(lost.localJob);
            e.setName("relocation-failed");
            driverTrace_->emit(e);
        }
        return;
    }
    Shard &owner = shardOf(target);
    sendFaulted(owner,
                FedSubmit{target,
                          toWireRequest(request, lost.instructions)},
                t);
    const FedSubmitAck ack = expect<FedSubmitAck>(owner);
    if (ack.ok == 0)
        cmpqos_panic("relocation probe/submit disagreement on node %d",
                     target);
    if (downgraded)
        ++faults_.relocationDowngraded;
    else
        ++faults_.relocated;
    if (tracing) {
        TraceEvent e =
            traceEvent(TraceEventType::JobRelocated, t, lost.localJob);
        e.a = static_cast<std::uint64_t>(origin);
        e.b = static_cast<std::uint64_t>(target);
        e.setName(downgraded    ? "downgraded"
                  : negotiated ? "renegotiated"
                               : "readmitted");
        driverTrace_->emit(e);
    }
}

void
FederatedEngine::applyFaultActions(Cycle t)
{
    if (injector_ == nullptr)
        return;
    const bool tracing =
        driverTrace_ != nullptr && driverTrace_->active();
    for (const FaultAction &action : injector_->actionsDue(t)) {
        const auto i = static_cast<std::size_t>(action.node);
        Shard &owner = shardOf(action.node);
        if (action.type == FaultType::NodeCrash) {
            if (!alive_[i])
                continue;
            ++faults_.crashes;
            alive_[i] = 0;
            sendFaulted(owner, FedCrash{action.node}, t);
            const FedCrashReport report = expect<FedCrashReport>(owner);
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::NodeCrashed, t);
                e.a = static_cast<std::uint64_t>(action.node);
                e.b = action.quantum;
                driverTrace_->emit(e);
                for (const std::uint64_t j : report.failedRunning) {
                    TraceEvent f =
                        traceEvent(TraceEventType::JobFailed, t,
                                   static_cast<JobId>(j));
                    f.a = static_cast<std::uint64_t>(action.node);
                    f.b = j;
                    f.setName("node-crash");
                    driverTrace_->emit(f);
                }
            }
            for (const WireLostJob &wire : report.waiting) {
                NodeWorker::LostJob lost;
                lost.localJob = wire.localJob;
                lost.mode =
                    wire.mode <= 2
                        ? static_cast<ExecutionMode>(wire.mode)
                        : ExecutionMode::Strict;
                lost.request =
                    fromWireRequest(wire.request, lost.instructions);
                relocate(action.node, lost, t);
            }
        } else {
            if (alive_[i])
                continue;
            ++faults_.restarts;
            alive_[i] = 1;
            sendFaulted(owner, FedRestart{action.node, t}, t);
            expect<FedRestartAck>(owner);
            if (tracing) {
                TraceEvent e =
                    traceEvent(TraceEventType::NodeRestarted, t);
                e.a = static_cast<std::uint64_t>(action.node);
                e.b = action.quantum;
                driverTrace_->emit(e);
            }
        }
    }
}

void
FederatedEngine::advanceAll(Cycle from, Cycle to)
{
    // Stalls are computed coordinator-side over the full node vector
    // (the single-process engine's driver-side discipline), then
    // sliced per shard.
    const bool stalls_possible =
        injector_ != nullptr && injector_->anyWindows();
    std::vector<Cycle> stalls;
    if (stalls_possible) {
        stalls.assign(static_cast<std::size_t>(config_.nodes), 0);
        for (int n = 0; n < config_.nodes; ++n) {
            const auto i = static_cast<std::size_t>(n);
            if (!alive_[i])
                continue;
            stalls[i] = injector_->stallCycles(n, from);
            if (stalls[i] > 0)
                ++faults_.stalledQuanta;
        }
    }

    // Commit barrier: ship the advance to every reachable shard, then
    // gather one FedQuantumDone per shard in shard order. A shard
    // behind a partition window gets the advance deferred instead —
    // flushed, still in order, when the window ends.
    std::vector<char> sent(shards_.size(), 0);
    for (auto &shard : shards_) {
        FedAdvance adv;
        adv.from = from;
        adv.to = to;
        if (stalls_possible)
            adv.stalls.assign(
                stalls.begin() + shard->nodeBegin,
                stalls.begin() + shard->nodeBegin + shard->nodeCount);
        adv.check = config_.checkInvariants ? 1 : 0;
        if (partitioned(*shard, from)) {
            ++faults_.partitionedQuanta;
            shard->deferred.push_back(std::move(adv));
            continue;
        }
        sendFaulted(*shard, adv, from);
        sent[static_cast<std::size_t>(shard->index)] = 1;
    }
    // Driver ring first, then shard batches in shard order — the
    // exact producer order a single-process drain delivers.
    if (config_.telemetry != nullptr)
        config_.telemetry->drain();
    for (auto &shard : shards_) {
        if (!sent[static_cast<std::size_t>(shard->index)])
            continue;
        const FedQuantumDone done = expect<FedQuantumDone>(*shard);
        shard->checksRun = done.checksRun;
        shard->violations = done.violations;
        deliverBatch(*shard, done.events, done.drops);
    }
}

void
FederatedEngine::flushDeferred(Cycle t, bool force)
{
    for (auto &shard : shards_) {
        if (shard->deferred.empty())
            continue;
        if (!force && partitioned(*shard, t))
            continue;
        // The partition healed (or the run is ending): replay the
        // deferred barriers in order. Node state catches up exactly —
        // advances commute with the wall-clock of other shards.
        while (!shard->deferred.empty()) {
            FedAdvance adv = std::move(shard->deferred.front());
            shard->deferred.pop_front();
            sendFaulted(*shard, adv, t);
            const FedQuantumDone done = expect<FedQuantumDone>(*shard);
            shard->checksRun = done.checksRun;
            shard->violations = done.violations;
            deliverBatch(*shard, done.events, done.drops);
        }
    }
}

void
FederatedEngine::drainAllShards()
{
    for (auto &shard : shards_)
        sendPlain(*shard, FedDrainReq{});
    if (config_.telemetry != nullptr)
        config_.telemetry->drain();
    for (auto &shard : shards_) {
        const FedDrainDone done = expect<FedDrainDone>(*shard);
        shard->checksRun = done.checksRun;
        shard->violations = done.violations;
        deliverBatch(*shard, done.events, done.drops);
    }
}

ClusterMetrics
FederatedEngine::run(ArrivalProcess &arrivals, Cycle horizon,
                     bool drain)
{
    // detlint:allow(wall-clock): measurement-only host wall time for
    // the metrics snapshot; never feeds virtual time or placement.
    const auto wall_start = std::chrono::steady_clock::now();

    std::optional<ClusterArrival> pending = arrivals.next();
    Cycle t = 0;
    while (t < horizon) {
        flushDeferred(t, false);
        applyFaultActions(t);

        Cycle next_q = t + config_.quantum;
        if (pending && pending->time >= next_q) {
            const Cycle boundary =
                pending->time - (pending->time % config_.quantum);
            next_q = std::max(next_q, boundary);
        }
        if (injector_ != nullptr) {
            const Cycle ev = injector_->nextEventTime(t);
            if (ev < next_q) {
                next_q = t + config_.quantum;
            } else if (!pending && injector_->actionsPending() &&
                       ev != maxCycle && ev > next_q) {
                next_q = ev;
            }
        }
        if (next_q > horizon)
            next_q = horizon;

        while (pending && pending->time < next_q) {
            if (pending->time >= horizon)
                break;
            place(*pending);
            pending = arrivals.next();
        }

        if (!pending && !drain)
            break;
        if (!pending && drain &&
            !(injector_ != nullptr && injector_->actionsPending()))
            break;
        advanceAll(t, next_q);
        t = next_q;
        if (config_.observer != nullptr)
            config_.observer->onQuantum(t);
    }

    // The run is ending: any partition still open heals now so no
    // barrier is lost.
    flushDeferred(t, true);
    if (drain) {
        drainAllShards();
    } else {
        advanceAll(t, horizon);
        if (pending)
            ++truncated_;
    }
    if (config_.observer != nullptr)
        config_.observer->onQuantum(drain ? t : horizon);

    // detlint:allow(wall-clock): measurement-only host wall time for
    // the metrics snapshot; never feeds virtual time or placement.
    const auto wall_end = std::chrono::steady_clock::now();
    wallSeconds_ +=
        std::chrono::duration<double>(wall_end - wall_start).count();
    return snapshot();
}

ClusterMetrics
FederatedEngine::runToCompletion(ArrivalProcess &arrivals)
{
    driver_.grant();
    return run(arrivals, maxCycle, true);
}

ClusterMetrics
FederatedEngine::runForDuration(ArrivalProcess &arrivals,
                                Cycle duration)
{
    cmpqos_assert(duration > 0, "duration must be > 0");
    driver_.grant();
    return run(arrivals, duration, false);
}

ClusterMetrics
FederatedEngine::snapshot()
{
    ClusterMetrics m;
    m.seed = config_.seed;
    m.threads = resolvedThreads_;
    m.shards = numShards();
    m.quantum = config_.quantum;
    m.submitted = submitted_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.negotiated = negotiated_;
    m.truncated = truncated_;
    m.acceptedByTier = acceptedByTier_;
    m.wallSeconds = wallSeconds_;
    m.faults = faults_;
    m.invariantViolations = invariantViolations();
    m.controllerOn = config_.control.enabled;

    std::vector<NodeMetrics> per_node;
    per_node.reserve(static_cast<std::size_t>(config_.nodes));
    for (auto &shard : shards_) {
        sendPlain(*shard, FedSnapshotReq{});
        const FedSnapshotReply reply = expect<FedSnapshotReply>(*shard);
        cmpqos_assert(reply.nodes.size() ==
                          static_cast<std::size_t>(shard->nodeCount),
                      "shard %d snapshot covers %zu of %d nodes",
                      shard->index, reply.nodes.size(),
                      shard->nodeCount);
        for (const WireNodeMetrics &w : reply.nodes) {
            NodeMetrics nm;
            nm.node = w.node;
            nm.virtualTime = w.virtualTime;
            nm.placed = w.placed;
            nm.completed = w.completed;
            nm.inFlight = w.inFlight;
            nm.instructions = w.instructions;
            nm.utilisation = w.utilisation;
            nm.stolenWays = w.stolenWays;
            nm.failed = w.failed;
            nm.restarts = w.restarts;
            nm.alive = w.alive != 0;
            cmpqos_assert(w.modeTallies.size() ==
                              nm.byMode.size() * 2,
                          "shard %d node %d shipped %zu mode tallies",
                          shard->index, w.node, w.modeTallies.size());
            for (std::size_t i = 0; i < nm.byMode.size(); ++i) {
                nm.byMode[i].completed = w.modeTallies[2 * i];
                nm.byMode[i].deadlineHits = w.modeTallies[2 * i + 1];
            }
            nm.energy = w.energy;
            cmpqos_assert(w.controlTallies.empty() ||
                              w.controlTallies.size() ==
                                  ControlTallies::numFields,
                          "shard %d node %d shipped %zu control tallies",
                          shard->index, w.node,
                          w.controlTallies.size());
            if (!w.controlTallies.empty())
                nm.control = unflattenTallies(w.controlTallies);
            per_node.push_back(nm);
        }
    }
    MetricsExporter::aggregate(m, per_node);
    return m;
}

std::uint64_t
FederatedEngine::invariantChecksRun() const
{
    driver_.grant();
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->checksRun;
    return total;
}

std::uint64_t
FederatedEngine::invariantViolations() const
{
    driver_.grant();
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->violations;
    return total;
}

std::string
FederatedEngine::invariantReport()
{
    driver_.grant();
    std::string report;
    for (auto &shard : shards_) {
        sendPlain(*shard, FedInvariantReq{});
        const FedInvariantReport reply =
            expect<FedInvariantReport>(*shard);
        shard->checksRun = reply.checksRun;
        shard->violations = reply.violations;
        report += reply.report;
    }
    return report;
}

} // namespace cmpqos
