/**
 * @file
 * Transport abstraction for the federation's shard links.
 *
 * A Link moves whole encoded payloads (see message.hh) between the
 * coordinator and one shard controller. Two backends:
 *
 *  - InprocLink: a pair of cross-linked blocking queues, for running
 *    every shard inside one process (the default, and the baseline
 *    the determinism matrix compares against).
 *
 *  - UdsLink: a SOCK_STREAM Unix-domain socket carrying
 *    length-prefixed frames (`[u32 len][payload]`, the same framing
 *    as the admission service). Used both in-process over
 *    socketpair() — so the sanitizer lanes exercise the real fd
 *    path — and across processes when shards run as spawned
 *    `federation_shard` workers.
 *
 * Both backends block until a payload is available or the peer goes
 * away; there are deliberately no host-time timeouts, so transport
 * waits cannot perturb simulation determinism (detlint enforces the
 * absence of clock calls in this directory). Fault injection happens
 * ABOVE the transport, in the coordinator's send path, from the
 * seeded FaultPlan — the link itself is reliable and ordered.
 */

#ifndef CMPQOS_FEDERATION_TRANSPORT_HH
#define CMPQOS_FEDERATION_TRANSPORT_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "common/annotations.hh"
#include "federation/message.hh"

namespace cmpqos
{

/**
 * One endpoint of a reliable, ordered, bidirectional payload pipe.
 */
class Link
{
  public:
    virtual ~Link() = default;

    /**
     * Ship one encoded payload to the peer. Returns false if the
     * link is closed or poisoned (details in error()).
     */
    virtual bool send(const std::string &payload) = 0;

    /**
     * Block until a payload arrives. Returns false on clean close
     * (peer shut down, empty error()) or on a poisoned stream
     * (error() set — e.g. a malformed frame on the socket backend).
     */
    virtual bool recv(std::string &payload) = 0;

    /** Wake any blocked recv() with "closed"; further sends fail. */
    virtual void close() = 0;

    /** What broke, when send()/recv() returned false. */
    virtual const std::string &error() const = 0;
};

/** Shared state behind one direction of an in-process link pair. */
struct InprocQueue
{
    Mutex mu;
    std::condition_variable_any cv;
    std::deque<std::string> items CMPQOS_GUARDED_BY(mu);
    bool closed CMPQOS_GUARDED_BY(mu) = false;
};

/**
 * In-process backend: endpoint A's send queue is endpoint B's recv
 * queue and vice versa. Create with makeInprocLinkPair().
 */
class InprocLink : public Link
{
  public:
    InprocLink(std::shared_ptr<InprocQueue> tx,
               std::shared_ptr<InprocQueue> rx)
        : tx_(std::move(tx)), rx_(std::move(rx))
    {
    }

    bool send(const std::string &payload) override;
    bool recv(std::string &payload) override;
    void close() override;
    const std::string &error() const override { return error_; }

  private:
    std::shared_ptr<InprocQueue> tx_;
    std::shared_ptr<InprocQueue> rx_;
    std::string error_;
};

/** Two cross-linked in-process endpoints. */
std::pair<std::unique_ptr<Link>, std::unique_ptr<Link>>
makeInprocLinkPair();

/**
 * Unix-domain-socket backend over an owned stream fd. Framing is
 * `[u32 len][payload]`; a malformed length poisons the link. recv()
 * retries EINTR and handles partial reads; send() loops until the
 * whole frame is written.
 */
class UdsLink : public Link
{
  public:
    /** Takes ownership of @p fd (closed on destruction). */
    explicit UdsLink(int fd, std::size_t max_frame = fedMaxFrame);
    ~UdsLink() override;

    bool send(const std::string &payload) override;
    bool recv(std::string &payload) override;
    void close() override;
    const std::string &error() const override { return error_; }

  private:
    int fd_;
    std::size_t maxFrame_;
    std::string rxBuffer_;
    std::string error_;
};

/** A connected UdsLink pair over socketpair(AF_UNIX, SOCK_STREAM).
 *  Aborts on resource exhaustion (fd limit). */
std::pair<std::unique_ptr<Link>, std::unique_ptr<Link>>
makeSocketLinkPair(std::size_t max_frame = fedMaxFrame);

} // namespace cmpqos

#endif // CMPQOS_FEDERATION_TRANSPORT_HH
