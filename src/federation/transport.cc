#include "transport.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace cmpqos
{

// --- in-process backend --------------------------------------------

bool
InprocLink::send(const std::string &payload)
{
    MutexLock lock(tx_->mu);
    if (tx_->closed) {
        error_ = "send on closed link";
        return false;
    }
    tx_->items.push_back(payload);
    tx_->cv.notify_one();
    return true;
}

bool
InprocLink::recv(std::string &payload)
{
    MutexLock lock(rx_->mu);
    while (rx_->items.empty() && !rx_->closed)
        rx_->cv.wait(lock);
    if (rx_->items.empty()) {
        error_.clear(); // clean close
        return false;
    }
    payload = std::move(rx_->items.front());
    rx_->items.pop_front();
    return true;
}

void
InprocLink::close()
{
    for (InprocQueue *q : {tx_.get(), rx_.get()}) {
        MutexLock lock(q->mu);
        q->closed = true;
        q->cv.notify_all();
    }
}

std::pair<std::unique_ptr<Link>, std::unique_ptr<Link>>
makeInprocLinkPair()
{
    auto ab = std::make_shared<InprocQueue>();
    auto ba = std::make_shared<InprocQueue>();
    return {std::make_unique<InprocLink>(ab, ba),
            std::make_unique<InprocLink>(ba, ab)};
}

// --- socket backend ------------------------------------------------

UdsLink::UdsLink(int fd, std::size_t max_frame)
    : fd_(fd), maxFrame_(max_frame)
{
    cmpqos_assert(fd >= 0, "UdsLink needs a valid fd");
}

UdsLink::~UdsLink()
{
    close();
}

bool
UdsLink::send(const std::string &payload)
{
    if (fd_ < 0) {
        error_ = "send on closed link";
        return false;
    }
    cmpqos_assert(payload.size() >= 9 && payload.size() <= maxFrame_,
                  "refusing to send %zu-byte frame", payload.size());
    char header[4];
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
    std::string frame(header, sizeof(header));
    frame += payload;

    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd_, frame.data() + sent, frame.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
UdsLink::recv(std::string &payload)
{
    std::string err;
    for (;;) {
        switch (extractFedFrame(rxBuffer_, payload, err, maxFrame_)) {
          case FedFrameStatus::Ok:
            return true;
          case FedFrameStatus::Error:
            error_ = err;
            return false;
          case FedFrameStatus::NeedMore:
            break;
        }
        if (fd_ < 0) {
            error_ = "recv on closed link";
            return false;
        }
        char chunk[65536];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            if (!rxBuffer_.empty()) {
                error_ = "peer closed mid-frame";
                return false;
            }
            error_.clear(); // clean close
            return false;
        }
        rxBuffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
UdsLink::close()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

std::pair<std::unique_ptr<Link>, std::unique_ptr<Link>>
makeSocketLinkPair(std::size_t max_frame)
{
    int fds[2];
    const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
    cmpqos_assert(rc == 0, "socketpair: %s", std::strerror(errno));
    return {std::make_unique<UdsLink>(fds[0], max_frame),
            std::make_unique<UdsLink>(fds[1], max_frame)};
}

} // namespace cmpqos
