#include "shard_controller.hh"

#include <cstring>

#include "cluster/metrics.hh"
#include "common/logging.hh"
#include "control/config.hh"
#include "control/controller.hh"
#include "qos/admission.hh"

namespace cmpqos
{

void
ShardBufferSink::consume(const TraceEvent &e)
{
    TraceEvent out = e;
    // Shard-local recorders stamp local producer indices; rebase to
    // global node ids before the batch crosses the link. Driver-side
    // events (node < 0) never occur on a shard.
    if (out.node >= 0)
        out.node = static_cast<std::int16_t>(out.node + nodeBegin_);
    buffer_.append(reinterpret_cast<const char *>(&out), sizeof(out));
}

WireJobRequest
toWireRequest(const JobRequest &request, InstCount instructions)
{
    WireJobRequest w;
    w.benchmark = request.benchmark;
    w.mode = static_cast<std::uint8_t>(request.mode.mode);
    w.slack = request.mode.slack;
    w.deadlineFactor = request.deadlineFactor;
    w.cores = request.cores;
    w.ways = request.ways;
    w.bandwidthPercent = request.bandwidthPercent;
    w.instructions = instructions;
    return w;
}

JobRequest
fromWireRequest(const WireJobRequest &w, InstCount &instructions)
{
    JobRequest r;
    r.benchmark = w.benchmark;
    // The decoder bounds field sizes, not semantics: an out-of-range
    // mode byte falls back to Strict instead of invoking UB.
    r.mode.mode = w.mode <= 2 ? static_cast<ExecutionMode>(w.mode)
                              : ExecutionMode::Strict;
    r.mode.slack = w.slack;
    r.deadlineFactor = w.deadlineFactor;
    r.cores = w.cores;
    r.ways = w.ways;
    r.bandwidthPercent = w.bandwidthPercent;
    instructions = w.instructions;
    return r;
}

bool
ShardController::serve(Link &link, std::string &error)
{
    owner_.grant();
    std::string payload;
    for (;;) {
        if (!link.recv(payload)) {
            error = link.error();
            return error.empty(); // clean close vs poisoned stream
        }
        std::uint64_t seq = 0;
        FedMessage msg;
        std::string decode_error;
        if (!decodeFedPayload(payload, seq, msg, decode_error)) {
            // Poisoned stream: report once, then tear the link down —
            // resynchronising a corrupt frame boundary is hopeless.
            link.send(encodeFedPayload(++txSeq_,
                                       FedError{decode_error}));
            error = decode_error;
            return false;
        }
        if (seq <= lastRxSeq_)
            continue; // duplicate delivery (link-dup): absorb silently
        lastRxSeq_ = seq;

        if (std::holds_alternative<FedShutdown>(msg))
            return true;

        const FedMessage reply = handle(msg);
        if (!link.send(encodeFedPayload(++txSeq_, reply))) {
            error = link.error();
            return false;
        }
    }
}

FedMessage
ShardController::handle(const FedMessage &msg)
{
    if (const auto *m = std::get_if<FedInit>(&msg))
        return onInit(*m);
    if (const auto *m = std::get_if<FedProbe>(&msg))
        return onProbe(*m);
    if (const auto *m = std::get_if<FedSubmit>(&msg))
        return onSubmit(*m);
    if (const auto *m = std::get_if<FedCrash>(&msg))
        return onCrash(*m);
    if (const auto *m = std::get_if<FedRestart>(&msg))
        return onRestart(*m);
    if (const auto *m = std::get_if<FedAdvance>(&msg))
        return onAdvance(*m);
    if (const auto *m = std::get_if<FedRelocFail>(&msg)) {
        local(m->node).recordRelocationFailure();
        return FedRelocFailAck{m->node};
    }
    if (std::holds_alternative<FedDrainReq>(msg))
        return onDrain();
    if (std::holds_alternative<FedSnapshotReq>(msg))
        return onSnapshot();
    if (std::holds_alternative<FedInvariantReq>(msg))
        return onInvariant();
    return FedError{std::string("unexpected message: ") +
                    fedMessageName(msg)};
}

FedMessage
ShardController::onInit(const FedInit &m)
{
    if (m.protocolVersion != fedProtocolVersion)
        return FedError{"protocol version mismatch: coordinator speaks " +
                        std::to_string(m.protocolVersion) +
                        ", shard speaks " +
                        std::to_string(fedProtocolVersion)};
    if (m.nodeCount <= 0 ||
        m.nodeSeeds.size() != static_cast<std::size_t>(m.nodeCount))
        return FedError{"malformed init: node count / seed mismatch"};

    shardIndex_ = m.shardIndex;
    nodeBegin_ = m.nodeBegin;
    pool_ = std::make_unique<ThreadPool>(m.threads > 0 ? m.threads : 1);

    nodes_.clear();
    collector_.reset();
    buffer_.reset();
    checker_.reset();

    if (m.telemetry != 0) {
        TelemetryConfig tc;
        if (m.ringCapacity > 0)
            tc.ringCapacity = m.ringCapacity;
        collector_ = std::make_unique<TraceCollector>(m.nodeCount + 1,
                                                      tc);
        buffer_ = std::make_unique<ShardBufferSink>(
            static_cast<std::int16_t>(m.nodeBegin));
        collector_->addSink(buffer_.get());
    }
    if (m.checkInvariants != 0)
        checker_ = std::make_unique<InvariantChecker>();

    ControllerConfig control;
    if (!m.control.empty()) {
        std::string parse_error;
        if (!parseControllerSpec(m.control, control, parse_error))
            return FedError{"bad controller spec: " + parse_error};
    }

    // Node ids and seeds are global: the coordinator derives every
    // node's seed from the cluster seed and ships this shard's slice,
    // so each node's RNG stream is identical at any shard count.
    FrameworkConfig node_config;
    nodes_.reserve(static_cast<std::size_t>(m.nodeCount));
    for (std::int32_t local = 0; local < m.nodeCount; ++local) {
        auto worker = std::make_unique<NodeWorker>(
            m.nodeBegin + local, node_config,
            m.nodeSeeds[static_cast<std::size_t>(local)]);
        if (collector_ != nullptr)
            worker->setTrace(collector_->nodeRecorder(local));
        if (control.enabled)
            worker->enableController(control);
        nodes_.push_back(std::move(worker));
    }
    return FedReady{m.shardIndex};
}

FedMessage
ShardController::onProbe(const FedProbe &m)
{
    InstCount instructions = 0;
    const JobRequest request = fromWireRequest(m.request, instructions);
    FedProbeReply reply;
    reply.probes.reserve(nodes_.size());
    for (const auto &node : nodes_) {
        WireProbe p;
        p.node = node->id();
        p.alive = node->alive() ? 1 : 0;
        if (node->alive()) {
            const AdmissionDecision d =
                node->probe(request, instructions);
            p.accepted = d.accepted ? 1 : 0;
            p.slotStart = d.slotStart;
            p.load = node->inFlight();
            p.ways = node->framework()
                         .lac()
                         .timeline()
                         .reservedAt(node->virtualNow())
                         .ways;
        }
        reply.probes.push_back(p);
    }
    return reply;
}

FedMessage
ShardController::onSubmit(const FedSubmit &m)
{
    InstCount instructions = 0;
    const JobRequest request = fromWireRequest(m.request, instructions);
    Job *job = local(m.node).submit(request, instructions);
    FedSubmitAck ack;
    ack.node = m.node;
    ack.jobId = job != nullptr ? job->id() : invalidJob;
    ack.ok = job != nullptr ? 1 : 0;
    return ack;
}

FedMessage
ShardController::onCrash(const FedCrash &m)
{
    const NodeWorker::CrashReport report = local(m.node).crash();
    FedCrashReport r;
    r.node = m.node;
    r.failedRunning.reserve(report.failedRunning.size());
    for (const JobId id : report.failedRunning)
        r.failedRunning.push_back(static_cast<std::uint64_t>(id));
    r.waiting.reserve(report.waiting.size());
    for (const NodeWorker::LostJob &lost : report.waiting) {
        WireLostJob w;
        w.localJob = lost.localJob;
        w.mode = static_cast<std::uint8_t>(lost.mode);
        w.request = toWireRequest(lost.request, lost.instructions);
        r.waiting.push_back(std::move(w));
    }
    return r;
}

FedMessage
ShardController::onRestart(const FedRestart &m)
{
    local(m.node).restart(m.now);
    return FedRestartAck{m.node};
}

FedMessage
ShardController::onAdvance(const FedAdvance &m)
{
    if (!m.stalls.empty() && m.stalls.size() != nodes_.size())
        return FedError{"advance stall vector size mismatch"};

    // Feedback controllers step on this (shard-driver) thread before
    // the nodes advance — the same placement-then-advance ordering the
    // single-process engine uses, and exactly once per FedAdvance, so
    // controller-on runs stay bit-identical at any shard count.
    for (auto &node : nodes_)
        node->controllerStep();

    pool_->parallelFor(nodes_.size(), [this, &m](std::size_t i) {
        NodeWorker &node = *nodes_[i];
        if (!node.alive())
            return;
        node.advanceTo(m.to, m.stalls.empty() ? 0 : m.stalls[i]);
    });

    // Commit barrier: every local node is quiescent. Drain telemetry
    // into the shipping buffer and run the oracle, exactly as the
    // single-process engine does at its quantum barrier.
    if (collector_ != nullptr)
        collector_->drain();
    if (m.check != 0)
        checkAlive();

    FedQuantumDone done;
    done.to = m.to;
    done.checksRun = checker_ != nullptr ? checker_->checksRun() : 0;
    done.violations =
        checker_ != nullptr ? checker_->totalViolations() : 0;
    if (buffer_ != nullptr)
        done.events = buffer_->take();
    done.drops = collector_ != nullptr ? collector_->totalDrops() : 0;
    return done;
}

FedMessage
ShardController::onDrain()
{
    pool_->parallelFor(nodes_.size(), [this](std::size_t i) {
        nodes_[i]->drain();
    });
    if (collector_ != nullptr)
        collector_->drain();
    if (checker_ != nullptr)
        checkAlive();

    FedDrainDone done;
    done.checksRun = checker_ != nullptr ? checker_->checksRun() : 0;
    done.violations =
        checker_ != nullptr ? checker_->totalViolations() : 0;
    if (buffer_ != nullptr)
        done.events = buffer_->take();
    done.drops = collector_ != nullptr ? collector_->totalDrops() : 0;
    return done;
}

FedMessage
ShardController::onSnapshot()
{
    FedSnapshotReply reply;
    reply.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_) {
        const NodeMetrics nm = MetricsExporter::collectNode(*node);
        WireNodeMetrics w;
        w.node = nm.node;
        w.virtualTime = nm.virtualTime;
        w.placed = nm.placed;
        w.completed = nm.completed;
        w.inFlight = nm.inFlight;
        w.instructions = nm.instructions;
        w.utilisation = nm.utilisation;
        w.stolenWays = nm.stolenWays;
        w.failed = nm.failed;
        w.restarts = nm.restarts;
        w.alive = nm.alive ? 1 : 0;
        w.modeTallies.reserve(nm.byMode.size() * 2);
        for (const ModeTally &tally : nm.byMode) {
            w.modeTallies.push_back(tally.completed);
            w.modeTallies.push_back(tally.deadlineHits);
        }
        w.energy = nm.energy;
        w.controlTallies = flattenTallies(nm.control);
        reply.nodes.push_back(std::move(w));
    }
    return reply;
}

FedMessage
ShardController::onInvariant()
{
    FedInvariantReport report;
    if (checker_ != nullptr) {
        report.checksRun = checker_->checksRun();
        report.violations = checker_->totalViolations();
        report.report = checker_->report();
    }
    return report;
}

NodeWorker &
ShardController::local(std::int32_t global)
{
    const std::int32_t index = global - nodeBegin_;
    cmpqos_assert(index >= 0 &&
                      index < static_cast<std::int32_t>(nodes_.size()),
                  "node %d is not on shard %u", global, shardIndex_);
    return *nodes_[static_cast<std::size_t>(index)];
}

void
ShardController::checkAlive()
{
    if (checker_ == nullptr)
        return;
    for (const auto &node : nodes_)
        if (node->alive())
            checker_->checkNode(node->id(), node->framework(),
                                node->virtualNow());
}

} // namespace cmpqos
