#include "message.hh"

#include <type_traits>
#include <utility>

#include "common/wire_codec.hh"

namespace cmpqos
{

// Field lists, one per message, in frozen wire order. Nested structs
// visit through the same visitor, so lists of WireProbe etc. reuse
// the element's own list below.

template <typename V>
void
visitFields(WireJobRequest &m, V &v)
{
    v.str("benchmark", m.benchmark);
    v.u8("mode", m.mode);
    v.f64("slack", m.slack);
    v.f64("deadline_factor", m.deadlineFactor);
    v.u32("cores", m.cores);
    v.u32("ways", m.ways);
    v.u32("bandwidth_percent", m.bandwidthPercent);
    v.u64("instructions", m.instructions);
}

template <typename V>
void
visitFields(WireProbe &m, V &v)
{
    v.i32("node", m.node);
    v.u8("alive", m.alive);
    v.u8("accepted", m.accepted);
    v.u64("slot_start", m.slotStart);
    v.u64("load", m.load);
    v.u32("ways", m.ways);
}

template <typename V>
void
visitFields(WireLostJob &m, V &v)
{
    v.i32("local_job", m.localJob);
    v.u8("mode", m.mode);
    visitFields(m.request, v);
}

template <typename V>
void
visitFields(WireNodeMetrics &m, V &v)
{
    v.i32("node", m.node);
    v.u64("virtual_time", m.virtualTime);
    v.u64("placed", m.placed);
    v.u64("completed", m.completed);
    v.u64("in_flight", m.inFlight);
    v.u64("instructions", m.instructions);
    v.f64("utilisation", m.utilisation);
    v.u64("stolen_ways", m.stolenWays);
    v.u64("failed", m.failed);
    v.u64("restarts", m.restarts);
    v.u8("alive", m.alive);
    v.u64vec("mode_tallies", m.modeTallies);
    v.f64("energy", m.energy);
    v.u64vec("control_tallies", m.controlTallies);
}

template <typename V>
void
visitFields(FedInit &m, V &v)
{
    v.u32("protocol_version", m.protocolVersion);
    v.u32("shard_index", m.shardIndex);
    v.u32("shard_count", m.shardCount);
    v.i32("node_begin", m.nodeBegin);
    v.i32("node_count", m.nodeCount);
    v.i32("total_nodes", m.totalNodes);
    v.u64("quantum", m.quantum);
    v.u32("threads", m.threads);
    v.u8("telemetry", m.telemetry);
    v.u64("ring_capacity", m.ringCapacity);
    v.u8("check_invariants", m.checkInvariants);
    v.u64vec("node_seeds", m.nodeSeeds);
    v.str("control", m.control);
}

template <typename V>
void
visitFields(FedProbe &m, V &v)
{
    visitFields(m.request, v);
}

template <typename V>
void
visitFields(FedSubmit &m, V &v)
{
    v.i32("node", m.node);
    visitFields(m.request, v);
}

template <typename V>
void
visitFields(FedCrash &m, V &v)
{
    v.i32("node", m.node);
}

template <typename V>
void
visitFields(FedRestart &m, V &v)
{
    v.i32("node", m.node);
    v.u64("now", m.now);
}

template <typename V>
void
visitFields(FedAdvance &m, V &v)
{
    v.u64("from", m.from);
    v.u64("to", m.to);
    v.u64vec("stalls", m.stalls);
    v.u8("check", m.check);
}

template <typename V>
void
visitFields(FedDrainReq &, V &)
{
}

template <typename V>
void
visitFields(FedSnapshotReq &, V &)
{
}

template <typename V>
void
visitFields(FedInvariantReq &, V &)
{
}

template <typename V>
void
visitFields(FedShutdown &, V &)
{
}

template <typename V>
void
visitFields(FedReady &m, V &v)
{
    v.u32("shard_index", m.shardIndex);
}

template <typename V>
void
visitFields(FedProbeReply &m, V &v)
{
    v.list("probes", m.probes);
}

template <typename V>
void
visitFields(FedSubmitAck &m, V &v)
{
    v.i32("node", m.node);
    v.i32("job_id", m.jobId);
    v.u8("ok", m.ok);
}

template <typename V>
void
visitFields(FedCrashReport &m, V &v)
{
    v.i32("node", m.node);
    v.u64vec("failed_running", m.failedRunning);
    v.list("waiting", m.waiting);
}

template <typename V>
void
visitFields(FedRestartAck &m, V &v)
{
    v.i32("node", m.node);
}

template <typename V>
void
visitFields(FedQuantumDone &m, V &v)
{
    v.u64("to", m.to);
    v.u64("checks_run", m.checksRun);
    v.u64("violations", m.violations);
    v.bytes("events", m.events);
    v.u64("drops", m.drops);
}

template <typename V>
void
visitFields(FedDrainDone &m, V &v)
{
    v.u64("checks_run", m.checksRun);
    v.u64("violations", m.violations);
    v.bytes("events", m.events);
    v.u64("drops", m.drops);
}

template <typename V>
void
visitFields(FedSnapshotReply &m, V &v)
{
    v.list("nodes", m.nodes);
}

template <typename V>
void
visitFields(FedInvariantReport &m, V &v)
{
    v.u64("checks_run", m.checksRun);
    v.u64("violations", m.violations);
    v.str("report", m.report);
}

template <typename V>
void
visitFields(FedError &m, V &v)
{
    v.str("message", m.message);
}

template <typename V>
void
visitFields(FedRelocFail &m, V &v)
{
    v.i32("node", m.node);
}

template <typename V>
void
visitFields(FedRelocFailAck &m, V &v)
{
    v.i32("node", m.node);
}

namespace
{

// Wire type codes are the variant alternative indices, frozen in
// docs/FEDERATION.md. Appending new messages keeps old codes stable.

const char *const fedNames[] = {
    "init",          "probe",        "submit",
    "crash",         "restart",      "advance",
    "drain",         "snapshot",     "invariant",
    "shutdown",      "ready",        "probe-reply",
    "submit-ack",    "crash-report", "restart-ack",
    "quantum-done",  "drain-done",   "snapshot-reply",
    "invariant-report", "error",    "reloc-fail",
    "reloc-fail-ack",
};

static_assert(std::variant_size_v<FedMessage> ==
                  sizeof(fedNames) / sizeof(fedNames[0]),
              "fedNames out of sync with FedMessage");

} // namespace

const char *
fedMessageName(const FedMessage &m)
{
    return fedNames[m.index()];
}

std::string
encodeFedPayload(std::uint64_t seq, const FedMessage &m)
{
    BinWriter w;
    w.push64(seq);
    w.u8("type", static_cast<std::uint8_t>(m.index()));
    std::visit([&w](auto &alt) { visitFields(const_cast<
                   std::remove_cvref_t<decltype(alt)> &>(alt), w); },
               m);
    return std::move(w.out);
}

bool
decodeFedPayload(std::string_view payload, std::uint64_t &seq,
                 FedMessage &out, std::string &error)
{
    BinReader r;
    r.in = payload;
    std::uint8_t type = 0xff;
    r.u64("seq", seq);
    r.u8("type", type);
    if (!r.ok) {
        error = r.err;
        return false;
    }
    if (type >= std::variant_size_v<FedMessage>) {
        error = "unknown message type " + std::to_string(type);
        return false;
    }

    // Materialise the alternative selected by the type byte, then let
    // it decode its own fields. The index-to-type expansion must stay
    // in variant order.
    auto make = [&]<std::size_t... I>(std::index_sequence<I...>) {
        ((type == I
              ? (out = std::variant_alternative_t<I, FedMessage>{}, 0)
              : 0),
         ...);
    };
    make(std::make_index_sequence<std::variant_size_v<FedMessage>>{});

    std::visit([&r](auto &alt) { visitFields(alt, r); }, out);
    if (!r.ok) {
        error = r.err;
        return false;
    }
    if (r.pos != payload.size()) {
        error = "trailing bytes after " +
                std::string(fedMessageName(out)) + " payload";
        return false;
    }
    return true;
}

FedFrameStatus
extractFedFrame(std::string &buffer, std::string &payload,
                std::string &error, std::size_t max_frame)
{
    if (buffer.size() < 4)
        return FedFrameStatus::NeedMore;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buffer[static_cast<
                       std::size_t>(i)]))
               << (8 * i);
    // A payload is at least [u64 seq][u8 type].
    if (len < 9) {
        error = "undersized frame (" + std::to_string(len) + " bytes)";
        return FedFrameStatus::Error;
    }
    if (len > max_frame) {
        error = "oversized frame (" + std::to_string(len) + " bytes)";
        return FedFrameStatus::Error;
    }
    if (buffer.size() - 4 < len)
        return FedFrameStatus::NeedMore;
    payload.assign(buffer, 4, len);
    buffer.erase(0, 4 + static_cast<std::size_t>(len));
    return FedFrameStatus::Ok;
}

} // namespace cmpqos
