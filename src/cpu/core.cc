#include "core.hh"

namespace cmpqos
{

InOrderCore::InOrderCore(CoreId id, bool with_l1,
                         const CacheConfig &l1_config)
    : id_(id)
{
    if (with_l1)
        l1_ = std::make_unique<SetAssocCache>(l1_config);
}

} // namespace cmpqos
