/**
 * @file
 * The per-core DVFS step table. Step 0 is the nominal (maximum)
 * frequency; higher steps divide the core clock, stretching only the
 * CPI_L1inf term of the additive model — L2 and memory latencies are
 * clocked independently, which is the whole reason frequency scaling
 * trades energy for core-bound time without touching memory time
 * (Nejat et al., coordinated DVFS + cache partitioning).
 *
 * The table is a compile-time constant so a frequency step index is
 * the only state that ever crosses a wire or enters a fingerprint:
 * every endpoint derives the same multiplier from the same step.
 */

#ifndef CMPQOS_CPU_DVFS_HH
#define CMPQOS_CPU_DVFS_HH

#include <cstdint>

namespace cmpqos
{

/** Frequency multipliers relative to nominal, indexed by step. */
inline constexpr double dvfsFrequencyScale[] = {1.0, 0.9, 0.8, 0.7,
                                                0.6};

inline constexpr std::uint32_t numDvfsSteps =
    sizeof(dvfsFrequencyScale) / sizeof(dvfsFrequencyScale[0]);

/** True when @p step indexes a valid table entry. */
constexpr bool
dvfsStepValid(std::uint32_t step)
{
    return step < numDvfsSteps;
}

/** Multiplier for @p step; out-of-range steps clamp to nominal. */
constexpr double
dvfsScale(std::uint32_t step)
{
    return dvfsStepValid(step) ? dvfsFrequencyScale[step] : 1.0;
}

} // namespace cmpqos

#endif // CMPQOS_CPU_DVFS_HH
