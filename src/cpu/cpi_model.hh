/**
 * @file
 * The additive CPI model the paper builds its resource-stealing
 * criterion on (Section 4.2, after Luo [13]):
 *
 *     CPI = CPI_L1inf + h2 * t2 + hm * tm
 *
 * where CPI_L1inf is the CPI with an infinite L1, h2 / hm are L2
 * accesses / misses per instruction, and t2 / tm are the L2 access
 * and miss penalties. All components are non-negative, which is
 * exactly why an X% increase in hm yields a < X% increase in CPI —
 * the property that makes L2 miss rate a safe, conservative proxy
 * for CPI when bounding an Elastic(X) job's slowdown.
 */

#ifndef CMPQOS_CPU_CPI_MODEL_HH
#define CMPQOS_CPU_CPI_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace cmpqos
{

/** Per-benchmark constants of the additive model. */
struct CpiParams
{
    /** CPI assuming an infinite L1 cache. */
    double cpiL1Inf = 1.0;
    /** L2 access penalty t2 in cycles (L2 hit latency). */
    double t2 = 10.0;
};

/**
 * Evaluate the additive model over an execution window.
 */
class AdditiveCpiModel
{
  public:
    /**
     * Cycles consumed by @p instructions given observed L2 activity.
     *
     * @param params benchmark constants
     * @param instructions instructions retired in the window
     * @param l2_accesses L2 accesses in the window (h2 * N)
     * @param l2_misses L2 misses in the window (hm * N)
     * @param tm effective L2 miss penalty for this window
     */
    static double
    cycles(const CpiParams &params, InstCount instructions,
           std::uint64_t l2_accesses, std::uint64_t l2_misses, double tm)
    {
        return params.cpiL1Inf * static_cast<double>(instructions) +
               params.t2 * static_cast<double>(l2_accesses) +
               tm * static_cast<double>(l2_misses);
    }

    /**
     * Frequency-aware variant: only the core-bound CPI_L1inf term
     * scales with the core clock; L2 and memory penalties are
     * expressed in reference cycles and do not stretch. At
     * @p frequency == 1.0 the division is an IEEE-754 identity, so
     * nominal-frequency results are bit-identical to the two-term
     * overload above.
     */
    static double
    cycles(const CpiParams &params, InstCount instructions,
           std::uint64_t l2_accesses, std::uint64_t l2_misses, double tm,
           double frequency)
    {
        return params.cpiL1Inf * static_cast<double>(instructions) /
                   frequency +
               params.t2 * static_cast<double>(l2_accesses) +
               tm * static_cast<double>(l2_misses);
    }

    /** The core-bound (frequency-scalable) cycle share of a window. */
    static double
    scalableCycles(const CpiParams &params, InstCount instructions)
    {
        return params.cpiL1Inf * static_cast<double>(instructions);
    }

    /** CPI over a window (cycles / instructions). */
    static double
    cpi(const CpiParams &params, InstCount instructions,
        std::uint64_t l2_accesses, std::uint64_t l2_misses, double tm)
    {
        if (instructions == 0)
            return 0.0;
        return cycles(params, instructions, l2_accesses, l2_misses, tm) /
               static_cast<double>(instructions);
    }
};

} // namespace cmpqos

#endif // CMPQOS_CPU_CPI_MODEL_HH
