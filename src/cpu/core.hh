/**
 * @file
 * The in-order core model: per-core execution ledger plus optional
 * private L1 caches (32KB, 4-way, 64B, 2-cycle — Section 6) used when
 * the workload runs in full-trace mode.
 *
 * The core does not fetch or decode; the synthetic generator stands
 * in for the instruction stream and the additive CPI model converts
 * retired instructions plus observed cache behaviour into cycles.
 */

#ifndef CMPQOS_CPU_CORE_HH
#define CMPQOS_CPU_CORE_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "common/types.hh"
#include "cpu/cpi_model.hh"
#include "cpu/dvfs.hh"

namespace cmpqos
{

/** Cumulative execution ledger for one core. */
struct CoreLedger
{
    InstCount instructions = 0;
    double cycles = 0.0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** Cycles the core sat idle (no job scheduled). */
    double idleCycles = 0.0;
    /**
     * Accumulated dynamic-energy work term: sum over execution
     * windows of f^2 * scalable_cycles. With core time scaling as
     * scalable_cycles / f, dynamic energy C*f^3*T_core reduces to
     * C * f^2 * scalable_cycles — so this parameter-free integral
     * turns into joules only at reporting time, and stays exactly
     * 0-cost-identical when every window runs at f == 1.0.
     */
    double dynWork = 0.0;

    double
    ipc() const
    {
        return cycles <= 0.0
                   ? 0.0
                   : static_cast<double>(instructions) / cycles;
    }

    double
    cpi() const
    {
        return instructions == 0
                   ? 0.0
                   : cycles / static_cast<double>(instructions);
    }
};

/**
 * One in-order 2GHz core of the CMP.
 */
class InOrderCore
{
  public:
    explicit InOrderCore(CoreId id, bool with_l1 = false,
                         const CacheConfig &l1_config =
                             CacheConfig::l1Default());

    CoreId id() const { return id_; }

    /** Private L1 data cache; null when running in L2Stream mode. */
    SetAssocCache *l1() { return l1_.get(); }
    const SetAssocCache *l1() const { return l1_.get(); }

    CoreLedger &ledger() { return ledger_; }
    const CoreLedger &ledger() const { return ledger_; }

    /** Local core time in cycles (advances as its jobs execute). */
    double localTime() const { return localTime_; }
    void advanceTime(double cycles) { localTime_ += cycles; }
    void setTime(double t) { localTime_ = t; }

    void resetLedger() { ledger_ = CoreLedger(); }

    /** Current DVFS step (0 = nominal); see cpu/dvfs.hh. */
    std::uint32_t frequencyStep() const { return freqStep_; }

    /** Clock multiplier for the current step (1.0 at nominal). */
    double frequencyScale() const { return freqScale_; }

    void
    setFrequencyStep(std::uint32_t step)
    {
        freqStep_ = dvfsStepValid(step) ? step : 0;
        freqScale_ = dvfsScale(freqStep_);
    }

  private:
    CoreId id_;
    std::unique_ptr<SetAssocCache> l1_;
    CoreLedger ledger_;
    double localTime_ = 0.0;
    std::uint32_t freqStep_ = 0;
    double freqScale_ = 1.0;
};

} // namespace cmpqos

#endif // CMPQOS_CPU_CORE_HH
