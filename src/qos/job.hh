/**
 * @file
 * The QoS-side job object: target, mode, lifecycle state, timeslot
 * bookkeeping, and the link to its execution-side state.
 *
 * A job here is "the unit of aperiodic computation that has its own
 * QoS target" (Section 3.1) — in this reproduction, one instance of a
 * single-threaded synthetic benchmark.
 */

#ifndef CMPQOS_QOS_JOB_HH
#define CMPQOS_QOS_JOB_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "qos/mode.hh"
#include "qos/target.hh"
#include "sim/job_exec.hh"

namespace cmpqos
{

/** Lifecycle of a submitted job. */
enum class JobState
{
    Submitted,
    Rejected,
    /** Accepted; waiting for its reserved timeslot to begin. */
    Waiting,
    Running,
    Completed,
    /**
     * Killed before completion — either cancelled by the user or
     * terminated for exceeding its maximum wall-clock time (the
     * expectation embedded in tw, Section 3.2).
     */
    Terminated,
};

const char *jobStateName(JobState s);

/**
 * One submitted job and everything the QoS framework knows about it.
 */
class Job
{
  public:
    Job(JobId id, std::string benchmark, InstCount instructions,
        QosTarget target, ModeSpec mode);

    JobId id() const { return id_; }
    const std::string &benchmark() const { return benchmark_; }
    InstCount instructions() const { return instructions_; }

    const QosTarget &target() const { return target_; }
    const ModeSpec &mode() const { return mode_; }
    /** Change the execution mode (manual downgrade, Section 3.3). */
    void setMode(const ModeSpec &m) { mode_ = m; }

    JobState state() const { return state_; }
    void setState(JobState s) { state_ = s; }

    /** Absolute times (cycles). */
    Cycle arrivalTime = 0;
    Cycle acceptTime = 0;
    /** Absolute deadline: arrival + target.relativeDeadline. */
    Cycle deadline = maxCycle;
    /** Start of the reserved timeslot (Strict/Elastic/AutoDown). */
    Cycle slotStart = 0;
    /** End of the reserved timeslot. */
    Cycle slotEnd = 0;

    /** Automatic mode downgrade bookkeeping (Section 3.4). */
    bool autoDowngraded = false;
    /** The job was switched back to Strict at its reserved slot. */
    bool promotedToStrict = false;
    Cycle promotionTime = 0;

    /** Core the job is pinned to while Reserved (else invalidCore). */
    CoreId assignedCore = invalidCore;

    /** Resource stealing outcome (Elastic jobs). */
    unsigned stolenWays = 0;
    bool stealingCancelled = false;
    /** Final duplicate-tag miss increase observed (Elastic jobs). */
    double observedMissIncrease = 0.0;
    /**
     * Cumulative miss increase at the moment stealing was (last)
     * cancelled — the overshoot that tripped the X% bound. 0 if
     * stealing was never cancelled.
     */
    double cancelMissIncrease = 0.0;

    /** Whether this job's mode reserves resources *right now* —
     * auto-downgraded jobs hold a (future) reservation but run
     * opportunistically until promoted. */
    bool
    runsReservedNow() const
    {
        if (mode_.mode == ExecutionMode::Opportunistic)
            return false;
        if (autoDowngraded && !promotedToStrict)
            return false;
        return true;
    }

    /** Jobs whose deadline guarantee the framework must honour. */
    bool
    countsForQos() const
    {
        return mode_.mode != ExecutionMode::Opportunistic;
    }

    /** Execution-side state (owned). */
    JobExecution *exec() { return exec_.get(); }
    const JobExecution *exec() const { return exec_.get(); }
    void
    attachExec(std::unique_ptr<JobExecution> e)
    {
        exec_ = std::move(e);
    }

    /** Did the job complete by its deadline? (Only after completion.) */
    bool deadlineMet() const;

    /** Wall-clock time from execution start to completion. */
    double wallClock() const;

  private:
    JobId id_;
    std::string benchmark_;
    InstCount instructions_;
    QosTarget target_;
    ModeSpec mode_;
    JobState state_ = JobState::Submitted;
    std::unique_ptr<JobExecution> exec_;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_JOB_HH
