#include "stealing.hh"

#include <memory>

#include "common/logging.hh"

namespace cmpqos
{

ResourceStealingEngine::ResourceStealingEngine(CmpSystem &sys,
                                               const StealingConfig &config)
    : sys_(sys), config_(config)
{
}

void
ResourceStealingEngine::activate(Job &job)
{
    if (!config_.enabled)
        return;
    cmpqos_assert(job.mode().mode == ExecutionMode::Elastic,
                  "stealing activated on non-Elastic job %d", job.id());
    cmpqos_assert(job.assignedCore != invalidCore,
                  "Elastic job %d not pinned", job.id());
    cmpqos_assert(job.exec() != nullptr, "job %d has no execution",
                  job.id());

    job.exec()->attachDuplicateTags(std::make_unique<DuplicateTagArray>(
        sys_.l2().config(), job.target().cacheWays,
        config_.dupTagSamplePeriod));

    Entry e;
    e.job = &job;
    e.baselineWays = job.target().cacheWays;
    e.slack = job.mode().slack;
    e.nextCheckpoint =
        job.exec()->executed() + config_.intervalInstructions;
    entries_[job.id()] = e;
}

void
ResourceStealingEngine::deactivate(Job &job)
{
    auto it = entries_.find(job.id());
    if (it == entries_.end())
        return;
    // stolenWays reports the peak stolen (cancel resets the live count).
    job.stolenWays = std::max(job.stolenWays, it->second.stolen);
    job.stealingCancelled = it->second.cancelled;
    if (job.exec() != nullptr) {
        if (DuplicateTagArray *dup = job.exec()->duplicateTags())
            job.observedMissIncrease = dup->missIncrease();
        job.exec()->detachDuplicateTags();
    }
    entries_.erase(it);
}

unsigned
ResourceStealingEngine::stolenWays(const Job &job) const
{
    auto it = entries_.find(job.id());
    return it == entries_.end() ? 0 : it->second.stolen;
}

bool
ResourceStealingEngine::cancelActive(const Job &job) const
{
    auto it = entries_.find(job.id());
    return it != entries_.end() && it->second.cancelled;
}

void
ResourceStealingEngine::onQuantum(CoreId core, JobExecution *exec)
{
    if (exec == nullptr || entries_.empty())
        return;
    auto it = entries_.find(exec->id());
    if (it == entries_.end())
        return;
    Entry &e = it->second;
    if (exec->executed() < e.nextCheckpoint)
        return;
    e.nextCheckpoint += config_.intervalInstructions;
    repartition(e, core);
}

void
ResourceStealingEngine::repartition(Entry &e, CoreId core)
{
    Job &job = *e.job;
    DuplicateTagArray *dup = job.exec()->duplicateTags();
    cmpqos_assert(dup != nullptr, "tracked job %d lost its shadow tags",
                  job.id());

    if (e.cancelled && config_.permanentCancel)
        return;

    // Too few sampled misses to estimate the increase reliably: wait
    // for more statistics before stealing or cancelling.
    if (dup->shadowMisses() < config_.minShadowMisses)
        return;

    // Has stealing pushed the job past its slack?
    if (e.stolen > 0 && dup->exceedsSlack(e.slack)) {
        // Cancel: return all stolen ways at once. Record the
        // cumulative miss increase that tripped the X% bound.
        const unsigned returned = e.stolen;
        sys_.l2().setTargetWays(core, e.baselineWays);
        e.stolen = 0;
        e.cancelled = true;
        ++cancels_;
        job.stealingCancelled = true;
        job.cancelMissIncrease = dup->missIncrease();
        if (trace_ != nullptr && trace_->active()) {
            const Cycle t = traceClock_ != nullptr ? *traceClock_ : 0;
            TraceEvent r =
                traceEvent(TraceEventType::WayReturned, t, job.id());
            r.a = static_cast<std::uint64_t>(core);
            r.b = returned;
            trace_->emit(r);
            TraceEvent c =
                traceEvent(TraceEventType::StealCancelled, t, job.id());
            c.a = static_cast<std::uint64_t>(core);
            c.b = job.exec()->executed();
            c.x = job.cancelMissIncrease;
            trace_->emit(c);
        }
        return;
    }
    if (e.cancelled) {
        // Non-permanent cancel: hold until the cumulative increase
        // decays below the slack, then resume stealing.
        if (dup->missIncrease() >= e.slack * 0.75)
            return;
        e.cancelled = false;
    }

    // Past saturation the miss-rate criterion is no longer a safe CPI
    // bound; hold the current partition.
    if (sys_.bandwidth()->saturated(core)) {
        ++saturationSkips_;
        return;
    }

    const unsigned current = sys_.l2().targetWays(core);
    if (current > config_.minWays) {
        sys_.l2().setTargetWays(core, current - 1);
        ++e.stolen;
        ++steals_;
        job.stolenWays = std::max(job.stolenWays, e.stolen);
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent s = traceEvent(
                TraceEventType::WayStolen,
                traceClock_ != nullptr ? *traceClock_ : 0, job.id());
            s.a = static_cast<std::uint64_t>(core);
            s.b = e.stolen;
            s.x = dup->missIncrease();
            trace_->emit(s);
        }
    }
}

} // namespace cmpqos
