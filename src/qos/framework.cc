#include "framework.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/annotations.hh"
#include "common/logging.hh"
#include "workload/benchmark.hh"

namespace cmpqos
{

FrameworkConfig
FrameworkConfig::forModeConfig(ModeConfig config)
{
    FrameworkConfig fc;
    switch (config) {
      case ModeConfig::AllStrict:
      case ModeConfig::Hybrid1:
        break;
      case ModeConfig::Hybrid2:
        fc.stealing.enabled = true;
        break;
      case ModeConfig::AllStrictAutoDown:
        fc.admission.autoDowngrade = true;
        break;
      case ModeConfig::EqualPart:
        fc.policy = SystemPolicy::EqualPart;
        break;
    }
    return fc;
}

double
WorkloadResult::deadlineHitRate(bool qos_jobs_only) const
{
    std::size_t counted = 0;
    std::size_t hit = 0;
    for (const auto &j : jobs) {
        if (qos_jobs_only && !j.countsForQos())
            continue;
        ++counted;
        if (j.deadlineMet)
            ++hit;
    }
    return counted == 0 ? 1.0
                        : static_cast<double>(hit) /
                              static_cast<double>(counted);
}

double
WorkloadResult::throughputVs(const WorkloadResult &base) const
{
    return makespan <= 0.0 ? 0.0 : base.makespan / makespan;
}

double
WorkloadResult::lacOccupancy() const
{
    return makespan <= 0.0
               ? 0.0
               : static_cast<double>(lacOverheadCycles) / makespan;
}

std::vector<double>
WorkloadResult::wallClocks(ExecutionMode mode) const
{
    std::vector<double> v;
    for (const auto &j : jobs)
        if (j.mode == mode)
            v.push_back(j.wallClock);
    return v;
}

QosFramework::QosFramework(const FrameworkConfig &config)
    : config_(config), sys_(config.cmp), sim_(sys_),
      lac_(config.admission), sched_(sim_, sys_),
      steal_(sys_, config.stealing), rng_(config.seed)
{
    sim_.setCompletionHandler(
        [this](JobExecution *exec) { onCompletion(exec); });
    sim_.setQuantumHook([this](CoreId core, JobExecution *exec) {
        steal_.onQuantum(core, exec);
    });

    if (config_.policy == SystemPolicy::EqualPart) {
        // Equal partition among cores, no admission control: the
        // EqualPart baseline of Table 2.
        const unsigned ways_each =
            sys_.l2().config().assoc /
            static_cast<unsigned>(sys_.numCores());
        for (int c = 0; c < sys_.numCores(); ++c) {
            sys_.l2().setTargetWays(c, ways_each);
            sys_.l2().setCoreClass(c, CoreClass::Reserved);
        }
    }
}

void
QosFramework::setTrace(TraceRecorder *trace)
{
    trace_ = trace;
    sim_.setTrace(trace);
    lac_.setTrace(trace);
    steal_.setTrace(trace, sim_.clockPtr());
    sys_.l2().setTrace(trace, sim_.clockPtr());
}

namespace
{

// Guarded: concurrent node workers (src/cluster) may calibrate
// different benchmarks at once. Annotated cmpqos::Mutex so the
// thread-safety analysis (and qoslint lockorder) can see the
// calibration cache like every other guarded structure.
Mutex calibMu;
std::map<std::string, double> calibMemo CMPQOS_GUARDED_BY(calibMu);

/**
 * Memoized steady-state CPI of a benchmark running alone on a
 * @p ways-way partition (standing working set pre-filled). This is
 * how a user of a batch system knows a job's expected runtime: from
 * prior solo runs. tw derived from it is a realistic "maximum
 * wall-clock time" specification (Section 3.2).
 */
double
calibratedSoloCpi(const std::string &benchmark, unsigned ways,
                  const CmpConfig &cmp)
{
    const std::string key =
        benchmark + "/" + std::to_string(ways) + "/" +
        std::to_string(cmp.l2.sizeBytes) + "/" +
        std::to_string(cmp.l2.assoc);
    {
        MutexLock lock(calibMu);
        auto it = calibMemo.find(key);
        if (it != calibMemo.end())
            return it->second;
    }

    CmpConfig cfg = cmp;
    cfg.chunkInstructions = 50'000;
    CmpSystem sys(cfg);
    Simulation sim(sys);
    sys.l2().setTargetWays(0, ways);
    sys.l2().setCoreClass(0, CoreClass::Reserved);
    const BenchmarkProfile &prof = BenchmarkRegistry::get(benchmark);
    // Enough instructions for ~150K L2 accesses of steady state.
    const InstCount n = static_cast<InstCount>(
        std::max(2e6, 150'000.0 / prof.h2));
    JobExecution job(0, prof, n, 0xCA11Bu);
    job.generator().forEachStandingBlock(
        [&](Addr a) { sys.l2().access(0, a, false); });
    sim.startJobOn(0, &job);
    sim.run();
    MutexLock lock(calibMu);
    calibMemo[key] = job.cpi();
    return job.cpi();
}

} // namespace

double
QosFramework::soloCpi(const std::string &benchmark, unsigned ways,
                      const CmpConfig &cmp)
{
    return calibratedSoloCpi(benchmark, ways, cmp);
}

Cycle
QosFramework::maxWallClockFor(const JobRequest &request,
                              InstCount instructions) const
{
    const BenchmarkProfile &prof =
        BenchmarkRegistry::get(request.benchmark);
    const double cpi =
        calibratedSoloCpi(request.benchmark, request.ways, config_.cmp);
    // Warm-up allowance: the job's standing working set must be
    // fetched once (first-touch misses the steady-state CPI does not
    // charge). Bounded by the partition size and by the largest
    // finite reuse distance the benchmark exhibits.
    const std::uint64_t capacity_blocks =
        static_cast<std::uint64_t>(request.ways) *
        config_.cmp.l2.numSets();
    const double warm_blocks = static_cast<double>(std::min(
        capacity_blocks, prof.l2Profile.maxFiniteDistance()));
    const double warm_cycles =
        warm_blocks * static_cast<double>(config_.cmp.mem.accessLatency);
    return static_cast<Cycle>(std::ceil(
        (static_cast<double>(instructions) * cpi + warm_cycles) *
        config_.wallClockMargin));
}

Job *
QosFramework::createJob(const JobRequest &request, InstCount instructions)
{
    const JobId id = static_cast<JobId>(jobs_.size());
    QosTarget target;
    target.cores = request.cores;
    target.cacheWays = request.ways;
    target.bandwidthPercent = request.bandwidthPercent;
    target.hasTimeslot = true;
    target.maxWallClock = maxWallClockFor(request, instructions);
    target.relativeDeadline = static_cast<Cycle>(
        std::ceil(static_cast<double>(target.maxWallClock) *
                  request.deadlineFactor));
    target.validate(static_cast<unsigned>(sys_.numCores()),
                    sys_.l2().config().assoc);

    auto job = std::make_unique<Job>(id, request.benchmark, instructions,
                                     target, request.mode);
    Job *raw = job.get();
    jobs_.push_back(std::move(job));
    byId_[id] = raw;
    return raw;
}

void
QosFramework::admitAndPlace(Job *job)
{
    const Cycle now = sim_.now();

    if (config_.policy == SystemPolicy::EqualPart) {
        // No admission control: always accept, default time-sharing.
        job->arrivalTime = now;
        job->acceptTime = now;
        job->deadline = now + job->target().relativeDeadline;
        job->setState(JobState::Running);
        job->attachExec(std::make_unique<JobExecution>(
            job->id(), BenchmarkRegistry::get(job->benchmark()),
            job->instructions(), rng_.next(), config_.cmp.traceMode));
        sim_.startJobOn(sys_.leastLoadedCore(), job->exec());
        return;
    }

    const AdmissionDecision d = lac_.submit(*job, now);
    if (!d.accepted)
        return;

    job->attachExec(std::make_unique<JobExecution>(
        job->id(), BenchmarkRegistry::get(job->benchmark()),
        job->instructions(), rng_.next(), config_.cmp.traceMode));
    placeAccepted(job);
}

void
QosFramework::placeAccepted(Job *job)
{
    if (job->mode().mode == ExecutionMode::Opportunistic) {
        sched_.startOpportunistic(*job);
        return;
    }

    if (job->autoDowngraded) {
        // Run opportunistically now; switch back to Strict at the
        // reserved (late) slot if still unfinished.
        sched_.startOpportunistic(*job);
        sim_.schedule(job->slotStart,
                      [this, job]() { tryPromote(job); },
                      "promote-" + std::to_string(job->id()));
        return;
    }

    if (job->slotStart <= sim_.now()) {
        tryStartReserved(job);
    } else {
        sim_.schedule(job->slotStart,
                      [this, job]() { tryStartReserved(job); },
                      "start-" + std::to_string(job->id()));
    }
}

void
QosFramework::tryStartReserved(Job *job)
{
    if (job->state() == JobState::Completed ||
        job->state() == JobState::Terminated)
        return;
    // The job may have been manually downgraded to Opportunistic
    // (and placed) since this start event was scheduled.
    if (job->mode().mode == ExecutionMode::Opportunistic)
        return;
    const CoreId core = sched_.startReserved(*job);
    if (core == invalidCore) {
        // Predecessor still draining; retry shortly.
        ++startRetries_;
        sim_.scheduleAfter(config_.startRetryDelay,
                           [this, job]() { tryStartReserved(job); },
                           "retry-start-" + std::to_string(job->id()));
        return;
    }
    if (job->mode().mode == ExecutionMode::Elastic) {
        job->exec()->memPriority = true;
        steal_.activate(*job);
    }
    scheduleEnforcement(job);
}

void
QosFramework::scheduleEnforcement(Job *job)
{
    if (!config_.enforceMaxWallClock || !job->target().hasTimeslot)
        return;
    const Cycle tw = job->target().maxWallClock;
    const Cycle allowance = tw + static_cast<Cycle>(
        static_cast<double>(tw) * config_.enforcementGraceFraction);
    sim_.scheduleAfter(allowance, [this, job]() {
        if (job->state() != JobState::Running ||
            !job->runsReservedNow() || job->exec()->complete())
            return;
        ++enforcementKills_;
        removeJob(job, JobState::Terminated, "max-wall-clock exceeded");
    }, "enforce-" + std::to_string(job->id()));
}

void
QosFramework::removeJob(Job *job, JobState final_state,
                        const char *cause)
{
    if (job->exec() != nullptr) {
        sys_.dequeueJob(job->exec());
        if (job->exec()->startCycle >= 0.0 &&
            job->exec()->endCycle < 0.0) {
            // Record where it stopped for wall-clock accounting.
            job->exec()->endCycle = static_cast<double>(sim_.now());
        }
    }
    if (config_.policy != SystemPolicy::EqualPart) {
        if (job->mode().mode == ExecutionMode::Elastic)
            steal_.deactivate(*job);
        sched_.jobFinished(*job);
        lac_.cancel(*job);
    }
    job->setState(final_state);

    if (trace_ != nullptr && trace_->active() &&
        final_state == JobState::Terminated) {
        TraceEvent e = traceEvent(TraceEventType::JobTerminated,
                                  sim_.now(), job->id());
        e.setName(cause);
        trace_->emit(e);
    }

    if (pendingCount_ > 0)
        --pendingCount_;
    if (spec_ != nullptr) {
        // Terminated accepted jobs still count toward workload
        // completion so the run can end.
        auto it = std::find(acceptedJobs_.begin(), acceptedJobs_.end(),
                            job);
        if (it != acceptedJobs_.end()) {
            ++completedAccepted_;
            if (completedAccepted_ == spec_->jobs.size())
                sim_.requestStop();
        }
    }
}

bool
QosFramework::cancelJob(Job &job)
{
    if (job.state() != JobState::Waiting &&
        job.state() != JobState::Running)
        return false;
    removeJob(&job, JobState::Terminated);
    return true;
}

void
QosFramework::tryPromote(Job *job)
{
    if (job->state() == JobState::Completed ||
        job->state() == JobState::Terminated || job->promotedToStrict)
        return;
    const CoreId core = sched_.promote(*job);
    if (core == invalidCore) {
        ++startRetries_;
        sim_.scheduleAfter(config_.startRetryDelay,
                           [this, job]() { tryPromote(job); },
                           "retry-promote-" + std::to_string(job->id()));
        return;
    }
    job->promotedToStrict = true;
    job->promotionTime = sim_.now();
    if (trace_ != nullptr && trace_->active()) {
        TraceEvent e = traceEvent(TraceEventType::ModePromoted,
                                  sim_.now(), job->id());
        e.a = static_cast<std::uint64_t>(core);
        trace_->emit(e);
    }
    scheduleEnforcement(job);
}

void
QosFramework::onCompletion(JobExecution *exec)
{
    auto it = byId_.find(exec->id());
    cmpqos_assert(it != byId_.end(), "completion for unknown job %d",
                  exec->id());
    Job *job = it->second;

    if (config_.policy == SystemPolicy::EqualPart) {
        job->setState(JobState::Completed);
    } else {
        if (job->mode().mode == ExecutionMode::Elastic)
            steal_.deactivate(*job);
        sched_.jobFinished(*job);
        // Early completion reclaims the rest of the timeslot so new
        // jobs can be accepted sooner (Section 3.4).
        lac_.releaseEarly(*job, sim_.now());
    }

    if (trace_ != nullptr && trace_->active()) {
        const bool met = job->deadlineMet();
        TraceEvent e = traceEvent(met ? TraceEventType::DeadlineHit
                                      : TraceEventType::DeadlineMiss,
                                  sim_.now(), job->id());
        e.a = job->deadline;
        e.b = static_cast<std::uint64_t>(job->mode().mode);
        e.x = job->wallClock();
        trace_->emit(e);
    }

    ++completedCount_;
    if (pendingCount_ > 0)
        --pendingCount_;

    if (spec_ != nullptr) {
        ++completedAccepted_;
        if (completedAccepted_ == spec_->jobs.size())
            sim_.requestStop();
    }
}

bool
QosFramework::downgradeJob(Job &job, const ModeSpec &to)
{
    if (config_.policy == SystemPolicy::EqualPart)
        return false;
    if (job.state() != JobState::Waiting &&
        job.state() != JobState::Running)
        return false;
    if (job.autoDowngraded)
        return false; // the system already downgraded it

    auto rank = [](ExecutionMode m) {
        switch (m) {
          case ExecutionMode::Strict: return 2;
          case ExecutionMode::Elastic: return 1;
          default: return 0;
        }
    };
    if (rank(to.mode) >= rank(job.mode().mode))
        return false; // downgrades only

    const Cycle now = sim_.now();

    if (to.mode == ExecutionMode::Elastic) {
        // Strict -> Elastic(X): interchangeable only while the
        // deadline slack covers the X% slowdown (Section 3.3).
        const Cycle tw = job.target().maxWallClock;
        const Cycle slot_ref = std::max(job.slotStart, now);
        if (to.slack >
            maxInterchangeableElasticSlack(slot_ref, job.deadline, tw))
            return false;
        const Cycle duration = to.reservationDuration(tw);
        if (job.slotStart + duration > job.deadline)
            return false;

        // Extend the reservation in place; roll back if it collides
        // with a later reservation.
        const ResourceVector req{job.target().cores,
                                 job.target().cacheWays,
                                 job.target().bandwidthPercent};
        ResourceTimeline &tl = lac_.timeline();
        tl.cancel(job.id());
        if (!tl.fitsThroughout(job.slotStart, job.slotStart + duration,
                               req)) {
            tl.reserve(job.id(), job.slotStart, job.slotEnd, req);
            return false;
        }
        tl.reserve(job.id(), job.slotStart, job.slotStart + duration,
                   req);
        job.slotEnd = job.slotStart + duration;
        const ExecutionMode from = job.mode().mode;
        job.setMode(to);
        if (job.state() == JobState::Running) {
            job.exec()->memPriority = true;
            steal_.activate(job);
        }
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent e = traceEvent(TraceEventType::ModeDowngrade,
                                      now, job.id());
            e.a = static_cast<std::uint64_t>(from);
            e.b = static_cast<std::uint64_t>(to.mode);
            e.x = to.slack;
            e.setName("manual");
            trace_->emit(e);
        }
        return true;
    }

    // -> Opportunistic: forfeit the reservation; unused resources
    // become available to new admissions immediately.
    if (job.mode().mode == ExecutionMode::Elastic &&
        job.state() == JobState::Running)
        steal_.deactivate(job);
    lac_.cancel(job);
    const bool was_running = job.state() == JobState::Running &&
                             job.assignedCore != invalidCore;
    const ExecutionMode from = job.mode().mode;
    job.setMode(to);
    if (was_running) {
        job.exec()->memPriority = false;
        sched_.demoteToPool(job);
    } else {
        sched_.startOpportunistic(job);
    }
    if (trace_ != nullptr && trace_->active()) {
        TraceEvent e =
            traceEvent(TraceEventType::ModeDowngrade, now, job.id());
        e.a = static_cast<std::uint64_t>(from);
        e.b = static_cast<std::uint64_t>(to.mode);
        e.x = to.slack;
        e.setName("manual");
        trace_->emit(e);
    }
    return true;
}

AdmissionDecision
QosFramework::probeJob(const JobRequest &request,
                       InstCount instructions) const
{
    QosTarget target;
    target.cores = request.cores;
    target.cacheWays = request.ways;
    target.bandwidthPercent = request.bandwidthPercent;
    target.hasTimeslot = true;
    target.maxWallClock = maxWallClockFor(request, instructions);
    target.relativeDeadline = static_cast<Cycle>(
        std::ceil(static_cast<double>(target.maxWallClock) *
                  request.deadlineFactor));
    Job shadow(-1, request.benchmark, instructions, target,
               request.mode);
    if (config_.policy == SystemPolicy::EqualPart) {
        AdmissionDecision d;
        d.accepted = true;
        d.slotStart = sim_.now();
        d.reason = "no admission control";
        return d;
    }
    return lac_.probe(shadow, sim_.now());
}

Job *
QosFramework::submitJob(const JobRequest &request, InstCount instructions)
{
    Job *job = createJob(request, instructions);
    admitAndPlace(job);
    if (job->state() == JobState::Rejected)
        return nullptr;
    ++pendingCount_;
    return job;
}

void
QosFramework::runToCompletion()
{
    sim_.run();
}

JobOutcome
QosFramework::outcomeOf(const Job &job) const
{
    JobOutcome o;
    o.id = job.id();
    o.benchmark = job.benchmark();
    o.mode = job.mode().mode;
    o.elasticSlack = job.mode().slack;
    o.arrival = job.arrivalTime;
    o.accept = job.acceptTime;
    o.slotStart = job.slotStart;
    o.deadline = job.deadline;
    o.autoDowngraded = job.autoDowngraded;
    o.promotedToStrict = job.promotedToStrict;
    o.promotionTime = job.promotionTime;
    o.stolenWays = job.stolenWays;
    o.stealingCancelled = job.stealingCancelled;
    o.observedMissIncrease = job.observedMissIncrease;
    o.cancelMissIncrease = job.cancelMissIncrease;
    if (job.exec() != nullptr) {
        o.startCycle = job.exec()->startCycle;
        o.endCycle = job.exec()->endCycle;
        o.wallClock = job.exec()->wallClock();
        o.missRate = job.exec()->missRate();
        o.cpi = job.exec()->cpi();
    }
    if (job.state() == JobState::Completed)
        o.deadlineMet = job.deadlineMet();
    return o;
}

WorkloadResult
QosFramework::runWorkload(const WorkloadSpec &spec)
{
    cmpqos_assert(spec_ == nullptr && jobs_.empty(),
                  "QosFramework instances are single-use per workload");
    cmpqos_assert(!spec.jobs.empty(), "workload has no jobs");
    spec_ = &spec;
    rng_ = Rng(spec.seed);

    // Mean candidate inter-arrival time: a fraction of the average
    // job wall-clock time (Section 6's 128-CMP-server load).
    double tw_sum = 0.0;
    for (const auto &r : spec.jobs)
        tw_sum += static_cast<double>(
            maxWallClockFor(r, spec.jobInstructions));
    const double mean_ia = tw_sum / static_cast<double>(spec.jobs.size()) *
                           spec.interArrivalFraction;

    Rng arrival_rng(spec.seed ^ 0xfeedfaceULL);

    // Self-rescheduling arrival process. Candidates carry the mode /
    // deadline of the next unfilled accepted slot, so the accepted
    // mix matches Table 2/3 exactly (see DESIGN.md).
    std::uint64_t slot_rejections = 0;
    std::function<void()> arrival = [&]() {
        if (acceptedCount_ >= spec.jobs.size())
            return;
        const JobRequest &req = spec.jobs[acceptedCount_];
        ++candidates_;
        Job *job = createJob(req, spec.jobInstructions);
        admitAndPlace(job);
        if (job->state() == JobState::Rejected) {
            ++rejectedCandidates_;
            if (++slot_rejections > 100'000) {
                cmpqos_fatal(
                    "workload '%s' stuck: accepted-slot %zu "
                    "(benchmark %s, mode %s, deadline %.2f tw) was "
                    "rejected 100000 times — the request can never "
                    "be admitted (e.g. reservation longer than its "
                    "deadline window)",
                    spec.name.c_str(), acceptedCount_,
                    req.benchmark.c_str(),
                    executionModeName(req.mode.mode),
                    req.deadlineFactor);
            }
        } else {
            slot_rejections = 0;
            ++acceptedCount_;
            acceptedJobs_.push_back(job);
        }
        const Cycle next =
            sim_.now() + 1 +
            static_cast<Cycle>(arrival_rng.exponential(mean_ia));
        sim_.schedule(next, arrival, "arrival");
    };
    sim_.schedule(0, arrival, "arrival");

    sim_.run();

    cmpqos_assert(completedAccepted_ == spec.jobs.size(),
                  "workload ended with %zu of %zu accepted jobs complete",
                  completedAccepted_, spec.jobs.size());

    WorkloadResult result;
    result.workloadName = spec.name;
    result.config = spec.config;
    result.candidatesSubmitted = candidates_;
    result.rejected = rejectedCandidates_;
    result.lacOverheadCycles = lac_.overheadCycles();
    for (Job *job : acceptedJobs_) {
        result.jobs.push_back(outcomeOf(*job));
        result.makespan =
            std::max(result.makespan, job->exec()->endCycle);
    }
    spec_ = nullptr;
    return result;
}

} // namespace cmpqos
