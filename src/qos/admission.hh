/**
 * @file
 * The Local Admission Controller (Section 5): FCFS admission with
 * earliest-fit timeslot reservation for Strict/Elastic jobs, spare-
 * resource acceptance for Opportunistic jobs, and latest-fit
 * reservation placement for automatically downgraded Strict jobs
 * (Section 3.4: the reserved timeslot is placed as far away as
 * possible to maximise the chance the job completes before it).
 *
 * The LAC is a user-level program in the paper; its run-time cost is
 * modelled here by counting admission-test work (reservation scans)
 * and charging a per-operation cycle cost, which the Section 7.5
 * bench reports as occupancy relative to workload wall-clock time.
 */

#ifndef CMPQOS_QOS_ADMISSION_HH
#define CMPQOS_QOS_ADMISSION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "qos/job.hh"
#include "qos/resource.hh"
#include "telemetry/recorder.hh"

namespace cmpqos
{

/** LAC configuration. */
struct AdmissionConfig
{
    /** Total node capacity (4 cores, 16 L2 ways in the paper; 100%
     *  of off-chip bandwidth for the extension dimension). */
    ResourceVector capacity{4, 16, 100};
    /** Apply automatic mode downgrade to eligible Strict jobs. */
    bool autoDowngrade = false;
    /**
     * Minimum deadline slack (as a fraction of tw) for a Strict job
     * to be auto-downgraded. The paper downgrades only moderate
     * (2 tw) and relaxed (3 tw) jobs, not tight (1.05 tw) ones; a 0.5
     * threshold reproduces that policy.
     */
    double autoDowngradeMinSlackFraction = 0.5;
    /** Cost model: fixed cycles charged per admission test (~0.25us
     *  of user-level work at 2GHz). */
    Cycle costPerSubmission = 500;
    /** Cost model: cycles per reservation scanned during a test. */
    Cycle costPerReservationScanned = 25;
};

/** Outcome of one admission test. */
struct AdmissionDecision
{
    bool accepted = false;
    bool autoDowngraded = false;
    Cycle slotStart = 0;
    Cycle slotEnd = 0;
    std::string reason;
};

/**
 * Per-CMP admission controller.
 */
class LocalAdmissionController
{
  public:
    explicit LocalAdmissionController(
        const AdmissionConfig &config = AdmissionConfig());

    const AdmissionConfig &config() const { return config_; }

    /**
     * FCFS admission test for @p job arriving at @p now. On
     * acceptance the job's timeslot fields are filled in and (for
     * reserving modes) resources are reserved.
     */
    AdmissionDecision submit(Job &job, Cycle now);

    /**
     * Probe only: would @p job be accepted at @p now? No state is
     * modified (used by the Global Admission Controller).
     */
    AdmissionDecision probe(const Job &job, Cycle now) const;

    /** Early completion: reclaim the rest of the job's timeslot. */
    void releaseEarly(const Job &job, Cycle now);

    /** Remove a job's reservations (rejection cleanup / cancel). */
    void cancel(const Job &job);

    ResourceTimeline &timeline() { return timeline_; }
    const ResourceTimeline &timeline() const { return timeline_; }

    std::uint64_t acceptedCount() const { return accepted_; }
    std::uint64_t rejectedCount() const { return rejected_; }
    std::uint64_t submissionCount() const { return accepted_ + rejected_; }

    /** Modelled LAC occupancy in cycles (Section 7.5). */
    Cycle overheadCycles() const { return overheadCycles_; }

    /**
     * Telemetry: emit JobAdmitted / JobRejected from submit().
     * Probes stay silent — they are side-effect free by contract.
     */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }

  private:
    /** Shared admission logic; mutates nothing. */
    AdmissionDecision decide(const Job &job, Cycle now) const;

    AdmissionConfig config_;
    ResourceTimeline timeline_;
    TraceRecorder *trace_ = nullptr;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    Cycle overheadCycles_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_ADMISSION_HH
