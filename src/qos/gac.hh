/**
 * @file
 * The Global Admission Controller (Section 3.1): a server hosts many
 * CMP nodes; the GAC probes each node's Local Admission Controller to
 * find one that can accept a new job and satisfy its QoS target. When
 * no node can, the GAC rejects the job or negotiates with the user
 * for an acceptable (relaxed) QoS target.
 *
 * The paper scopes the GAC out of its evaluation; this implementation
 * provides the probing and negotiation behaviour the paper describes
 * so the multi-node batch_cluster example and tests can exercise it.
 */

#ifndef CMPQOS_QOS_GAC_HH
#define CMPQOS_QOS_GAC_HH

#include <optional>
#include <vector>

#include "common/types.hh"
#include "qos/admission.hh"
#include "qos/job.hh"

namespace cmpqos
{

/** How the GAC chooses among nodes that can accept a job. */
enum class GacPolicy
{
    /** First node (by id order) whose LAC accepts. */
    FirstFit,
    /** Node offering the earliest timeslot start. */
    EarliestSlot,
    /**
     * Node with the fewest live reservations, ties broken by the
     * lowest reserved cache share at submission time and then by id.
     * Spreads load across the fleet (the cluster engine's default).
     */
    LeastLoaded,
};

const char *gacPolicyName(GacPolicy p);

/** Outcome of a GAC submission. */
struct GacDecision
{
    bool accepted = false;
    NodeId node = -1;
    AdmissionDecision local;
};

/**
 * Routes jobs across CMP nodes by probing their LACs.
 */
class GlobalAdmissionController
{
  public:
    explicit GlobalAdmissionController(GacPolicy policy =
                                           GacPolicy::FirstFit);

    /** Register a node's LAC (not owned). */
    void addNode(NodeId id, LocalAdmissionController *lac);

    std::size_t nodeCount() const { return nodes_.size(); }

    /**
     * Probe all nodes and, per policy, submit @p job to the chosen
     * one. On rejection no node state changes.
     */
    GacDecision submit(Job &job, Cycle now);

    /**
     * Negotiation: find the smallest relaxed relative deadline (in
     * steps of @p step_fraction of the current one, up to
     * @p max_factor times it) under which some node would accept the
     * job. Returns the relaxed relative deadline, or nullopt.
     */
    std::optional<Cycle> negotiateDeadline(const Job &job, Cycle now,
                                           double max_factor = 4.0,
                                           double step_fraction = 0.25)
        const;

    std::uint64_t probes() const { return probes_; }

    /**
     * Telemetry: ArrivalPlaced / JobRejected from submit() and
     * JobNegotiated from successful negotiateDeadline() calls
     * (global-admission side; use a driver recorder, producer 0).
     */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }

  private:
    struct NodeEntry
    {
        NodeId id;
        LocalAdmissionController *lac;
    };

    /** Probe one node with a possibly modified deadline. */
    AdmissionDecision probeNode(const NodeEntry &node, const Job &job,
                                Cycle now,
                                Cycle relative_deadline_override) const;

    GacPolicy policy_;
    std::vector<NodeEntry> nodes_;
    TraceRecorder *trace_ = nullptr;
    mutable std::uint64_t probes_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_GAC_HH
