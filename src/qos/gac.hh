/**
 * @file
 * The Global Admission Controller (Section 3.1): a server hosts many
 * CMP nodes; the GAC probes each node's Local Admission Controller to
 * find one that can accept a new job and satisfy its QoS target. When
 * no node can, the GAC rejects the job or negotiates with the user
 * for an acceptable (relaxed) QoS target.
 *
 * The paper scopes the GAC out of its evaluation; this implementation
 * provides the probing and negotiation behaviour the paper describes
 * so the multi-node batch_cluster example and tests can exercise it.
 */

#ifndef CMPQOS_QOS_GAC_HH
#define CMPQOS_QOS_GAC_HH

#include <functional>
#include <optional>
#include <vector>

#include "common/annotations.hh"
#include "common/types.hh"
#include "qos/admission.hh"
#include "qos/job.hh"

namespace cmpqos
{

/**
 * Bounded-retry policy for GAC->LAC probes: a probe that times out is
 * retried up to maxRetries times with exponential backoff; past the
 * budget the node counts as unreachable for that placement (it is
 * skipped, not blocked on). Backoff is charged in virtual cycles so
 * retry storms show up in the accounting deterministically.
 */
struct GacRetryConfig
{
    unsigned maxRetries = 3;
    Cycle backoffBase = 10'000;
    double backoffMultiplier = 2.0;

    /** Backoff before retry @p attempt (0-based): base * mult^n. */
    Cycle
    backoffFor(unsigned attempt) const
    {
        double b = static_cast<double>(backoffBase);
        for (unsigned i = 0; i < attempt; ++i)
            b *= backoffMultiplier;
        return static_cast<Cycle>(b);
    }

    /** Total backoff spent recovering from @p failures timeouts. */
    Cycle
    totalBackoff(unsigned failures) const
    {
        Cycle total = 0;
        for (unsigned i = 0; i < failures; ++i)
            total += backoffFor(i);
        return total;
    }
};

/**
 * Probe-fault hook: given a node id, how many probe attempts time out
 * before one succeeds (0 = healthy). Fault injectors install this;
 * production probes never time out.
 */
using ProbeFaultFn = std::function<unsigned(NodeId)>;

/** How the GAC chooses among nodes that can accept a job. */
enum class GacPolicy
{
    /** First node (by id order) whose LAC accepts. */
    FirstFit,
    /** Node offering the earliest timeslot start. */
    EarliestSlot,
    /**
     * Node with the fewest live reservations, ties broken by the
     * lowest reserved cache share at submission time and then by id.
     * Spreads load across the fleet (the cluster engine's default).
     */
    LeastLoaded,
};

const char *gacPolicyName(GacPolicy p);

/** Outcome of a GAC submission. */
struct GacDecision
{
    bool accepted = false;
    NodeId node = -1;
    AdmissionDecision local;
};

/**
 * Routes jobs across CMP nodes by probing their LACs.
 */
class GlobalAdmissionController
{
  public:
    explicit GlobalAdmissionController(GacPolicy policy =
                                           GacPolicy::FirstFit);

    /** Register a node's LAC (not owned). */
    void addNode(NodeId id, LocalAdmissionController *lac);

    std::size_t
    nodeCount() const
    {
        admission_.grant();
        return nodes_.size();
    }

    /**
     * Mark a node dead (crash) or alive again (restart). Dead nodes
     * are excluded from every probe, placement and negotiation pass.
     */
    void setNodeAlive(NodeId id, bool alive);
    bool nodeAlive(NodeId id) const;

    /** Retry/backoff policy for timed-out probes. */
    void setRetryConfig(const GacRetryConfig &c) { retry_ = c; }
    const GacRetryConfig &retryConfig() const { return retry_; }

    /** Install (or clear, with nullptr) the probe-fault hook. */
    void setProbeFaults(ProbeFaultFn fn) { probeFaults_ = std::move(fn); }

    // clang-format off
    /** Probe retries that eventually succeeded. */
    std::uint64_t probeRetries() const { admission_.grant(); return probeRetries_; }
    /** Probes abandoned after exhausting the retry budget. */
    std::uint64_t probeTimeouts() const { admission_.grant(); return probeTimeouts_; }
    /** Virtual cycles spent in retry backoff. */
    Cycle backoffCycles() const { admission_.grant(); return backoffCycles_; }
    // clang-format on

    /**
     * Probe all nodes and, per policy, submit @p job to the chosen
     * one. On rejection no node state changes.
     */
    GacDecision submit(Job &job, Cycle now);

    /**
     * Negotiation: find the smallest relaxed relative deadline (in
     * steps of @p step_fraction of the current one, up to
     * @p max_factor times it) under which some node would accept the
     * job. Returns the relaxed relative deadline, or nullopt.
     */
    std::optional<Cycle> negotiateDeadline(const Job &job, Cycle now,
                                           double max_factor = 4.0,
                                           double step_fraction = 0.25)
        const;

    std::uint64_t
    probes() const
    {
        admission_.grant();
        return probes_;
    }

    /**
     * Telemetry: ArrivalPlaced / JobRejected from submit() and
     * JobNegotiated from successful negotiateDeadline() calls
     * (global-admission side; use a driver recorder, producer 0).
     */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }

  private:
    struct NodeEntry
    {
        NodeId id;
        LocalAdmissionController *lac;
        bool alive = true;
    };

    /** Probe one node with a possibly modified deadline. */
    AdmissionDecision probeNode(const NodeEntry &node, const Job &job,
                                Cycle now,
                                Cycle relative_deadline_override) const
        CMPQOS_REQUIRES(admission_);

    /**
     * Probe-path gate: dead nodes and nodes whose probes exhaust the
     * retry budget are unreachable (false); recoverable timeouts
     * charge retries and backoff, then pass.
     */
    bool nodeReachable(const NodeEntry &node) const
        CMPQOS_REQUIRES(admission_);

    /**
     * The admission role: the GAC belongs to the single global
     * admission thread (the paper's Section 3.1 front door). Probe
     * tallies are `mutable`, so without the role they would be
     * silently writable from any const context on any thread.
     */
    OwnerRole admission_;

    GacPolicy policy_;
    std::vector<NodeEntry> nodes_ CMPQOS_GUARDED_BY(admission_);
    TraceRecorder *trace_ = nullptr;
    GacRetryConfig retry_;
    ProbeFaultFn probeFaults_;
    mutable std::uint64_t probes_ CMPQOS_GUARDED_BY(admission_) = 0;
    mutable std::uint64_t probeRetries_ CMPQOS_GUARDED_BY(admission_) = 0;
    mutable std::uint64_t probeTimeouts_ CMPQOS_GUARDED_BY(admission_) = 0;
    mutable Cycle backoffCycles_ CMPQOS_GUARDED_BY(admission_) = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_GAC_HH
