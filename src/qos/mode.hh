/**
 * @file
 * QoS execution modes (Section 3.3) and the mode-downgrade algebra
 * (Section 3.4).
 *
 * - Strict: requested resources and timeslot are strictly reserved.
 * - Elastic(X): rigid deadline, but tolerates up to X% slowdown
 *   relative to Strict execution; resources are reserved for
 *   tw * (1 + X) instead of tw, and the system may steal excess
 *   cache capacity bounded by X.
 * - Opportunistic: no reservation at all; runs on spare resources.
 *
 * Automatic downgrade exploits deadline slack: a Strict job arriving
 * at ta with deadline td and maximum wall-clock time tw has slack
 * (td - ta) - tw. It can run as Opportunistic until td - tw and still
 * meet td by switching back to Strict with a reserved late timeslot.
 */

#ifndef CMPQOS_QOS_MODE_HH
#define CMPQOS_QOS_MODE_HH

#include "common/types.hh"

namespace cmpqos
{

/** The three execution modes of Section 3.3. */
enum class ExecutionMode
{
    Strict,
    Elastic,
    Opportunistic,
};

const char *executionModeName(ExecutionMode m);

/** A mode together with its Elastic slack parameter X (fraction). */
struct ModeSpec
{
    ExecutionMode mode = ExecutionMode::Strict;
    /** Elastic slack X as a fraction (0.05 = Elastic(5%)). */
    double slack = 0.0;

    static ModeSpec strict() { return {ExecutionMode::Strict, 0.0}; }
    static ModeSpec
    elastic(double x)
    {
        return {ExecutionMode::Elastic, x};
    }
    static ModeSpec
    opportunistic()
    {
        return {ExecutionMode::Opportunistic, 0.0};
    }

    bool reservesResources() const
    {
        return mode != ExecutionMode::Opportunistic;
    }

    /**
     * Reservation duration for a job with maximum wall-clock time
     * @p tw: tw for Strict, tw * (1 + X) for Elastic(X) (Section
     * 3.4), 0 for Opportunistic.
     */
    Cycle reservationDuration(Cycle tw) const;
};

/**
 * Deadline slack of a job: (td - ta) - tw, or 0 if negative.
 */
Cycle deadlineSlack(Cycle arrival, Cycle deadline, Cycle tw);

/**
 * Maximum Elastic slack X such that downgrading a Strict job to
 * Elastic(X) is interchangeable (still guarantees the deadline):
 * X = ((td - ta) - tw) / tw. Fraction; 0 when there is no slack.
 */
double maxInterchangeableElasticSlack(Cycle arrival, Cycle deadline,
                                      Cycle tw);

/**
 * Latest time an automatically-downgraded Strict job may keep running
 * in Opportunistic mode: td - tw. At this point it must switch back
 * to Strict to guarantee its deadline (Section 3.3).
 */
Cycle autoDowngradeSwitchBack(Cycle deadline, Cycle tw);

/**
 * Whether a Strict job is eligible for automatic downgrade at all —
 * it must have positive slack (moderate or relaxed deadline).
 */
bool autoDowngradeEligible(Cycle arrival, Cycle deadline, Cycle tw);

} // namespace cmpqos

#endif // CMPQOS_QOS_MODE_HH
