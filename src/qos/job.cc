#include "job.hh"

#include "common/logging.hh"

namespace cmpqos
{

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Submitted: return "Submitted";
      case JobState::Rejected: return "Rejected";
      case JobState::Waiting: return "Waiting";
      case JobState::Running: return "Running";
      case JobState::Completed: return "Completed";
      case JobState::Terminated: return "Terminated";
    }
    return "?";
}

Job::Job(JobId id, std::string benchmark, InstCount instructions,
         QosTarget target, ModeSpec mode)
    : id_(id), benchmark_(std::move(benchmark)),
      instructions_(instructions), target_(target), mode_(mode)
{
}

bool
Job::deadlineMet() const
{
    cmpqos_assert(state_ == JobState::Completed,
                  "deadlineMet() on incomplete job %d", id_);
    cmpqos_assert(exec_ != nullptr, "job %d has no execution state", id_);
    return static_cast<Cycle>(exec_->endCycle) <= deadline;
}

double
Job::wallClock() const
{
    cmpqos_assert(exec_ != nullptr, "job %d has no execution state", id_);
    return exec_->wallClock();
}

} // namespace cmpqos
