/**
 * @file
 * Resource vectors and the reservation timeline used by the Local
 * Admission Controller (Section 5, after the basic resource
 * allocation model of [21]): each accepted Strict/Elastic job holds a
 * reservation — a resource vector over a timeslot — and availability
 * at any instant is capacity minus the sum of overlapping
 * reservations.
 */

#ifndef CMPQOS_QOS_RESOURCE_HH
#define CMPQOS_QOS_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace cmpqos
{

/**
 * A vector of (convertible) platform resources: processor cores,
 * shared-cache ways, and (extension — the paper's future-work RUM
 * dimension) a guaranteed off-chip bandwidth share in percent of
 * peak. Extending with more RUM dimensions (memory size, disk) means
 * adding fields here.
 */
struct ResourceVector
{
    unsigned cores = 0;
    unsigned ways = 0;
    /** Off-chip bandwidth share, percent of peak (0 = none). */
    unsigned bandwidth = 0;

    bool
    fitsWithin(const ResourceVector &avail) const
    {
        return cores <= avail.cores && ways <= avail.ways &&
               bandwidth <= avail.bandwidth;
    }

    ResourceVector
    operator+(const ResourceVector &o) const
    {
        return {cores + o.cores, ways + o.ways,
                bandwidth + o.bandwidth};
    }

    /** Saturating subtraction (availability never goes negative). */
    ResourceVector
    minus(const ResourceVector &o) const
    {
        return {cores >= o.cores ? cores - o.cores : 0,
                ways >= o.ways ? ways - o.ways : 0,
                bandwidth >= o.bandwidth ? bandwidth - o.bandwidth : 0};
    }

    bool
    operator==(const ResourceVector &o) const
    {
        return cores == o.cores && ways == o.ways &&
               bandwidth == o.bandwidth;
    }
};

/** One job's reserved timeslot. */
struct Reservation
{
    JobId job = invalidJob;
    Cycle start = 0;
    Cycle end = 0;
    ResourceVector resources;

    bool
    covers(Cycle t) const
    {
        return t >= start && t < end;
    }

    bool
    overlaps(Cycle s, Cycle e) const
    {
        return start < e && s < end;
    }
};

/**
 * The LAC's list of reservations over time, with earliest-fit and
 * latest-fit slot search.
 */
class ResourceTimeline
{
  public:
    explicit ResourceTimeline(ResourceVector capacity);

    const ResourceVector &capacity() const { return capacity_; }

    /** Resources free at instant @p t. */
    ResourceVector availableAt(Cycle t) const;

    /** Resources committed at instant @p t. */
    ResourceVector reservedAt(Cycle t) const;

    /** Whether @p req fits at every instant of [start, end). */
    bool fitsThroughout(Cycle start, Cycle end,
                        const ResourceVector &req) const;

    /**
     * Earliest start s in [not_before, latest_start] such that @p req
     * fits throughout [s, s + duration). maxCycle if none.
     */
    Cycle findEarliestStart(const ResourceVector &req, Cycle duration,
                            Cycle not_before, Cycle latest_start) const;

    /**
     * Latest such start (used to place automatic-downgrade
     * reservations as far away as possible, Section 3.4).
     * maxCycle if none.
     */
    Cycle findLatestStart(const ResourceVector &req, Cycle duration,
                          Cycle not_before, Cycle latest_start) const;

    /** Commit a reservation (caller must have checked it fits). */
    void reserve(JobId job, Cycle start, Cycle end,
                 const ResourceVector &req);

    /**
     * Early completion: truncate @p job's reservations at @p at so
     * the remainder of the timeslot becomes available to new jobs.
     */
    void releaseFrom(JobId job, Cycle at);

    /** Remove @p job's reservations entirely. */
    void cancel(JobId job);

    /** Drop reservations that ended before @p t (bookkeeping). */
    void pruneBefore(Cycle t);

    const std::vector<Reservation> &reservations() const
    {
        return reservations_;
    }

    /** Number of interval checks performed (LAC cost accounting). */
    std::uint64_t probeCount() const { return probes_; }

  private:
    /** Candidate change-points within [lo, hi], plus lo itself. */
    std::vector<Cycle> changePoints(Cycle lo, Cycle hi) const;

    ResourceVector capacity_;
    std::vector<Reservation> reservations_;
    mutable std::uint64_t probes_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_RESOURCE_HH
