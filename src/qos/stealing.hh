/**
 * @file
 * The resource stealing engine (Sections 4.2-4.3): while an
 * Elastic(X) job runs, steal one L2 way from it per repartitioning
 * interval (2M of the job's instructions) and let the opportunistic
 * pool absorb it; a set-sampled duplicate tag array tracks the miss
 * count the job would have had without stealing, and if the real miss
 * count exceeds it by X%, stealing is cancelled and every stolen way
 * is returned at once.
 *
 * Per footnote 2, stealing also pauses while the memory bus is
 * saturated (queueing delay is only flat before saturation, so the
 * miss-rate-bounds-CPI argument would break down past it).
 */

#ifndef CMPQOS_QOS_STEALING_HH
#define CMPQOS_QOS_STEALING_HH

#include <unordered_map>

#include "common/types.hh"
#include "qos/job.hh"
#include "sim/cmp_system.hh"
#include "telemetry/recorder.hh"

namespace cmpqos
{

/** Stealing engine parameters (defaults follow Section 6). */
struct StealingConfig
{
    bool enabled = true;
    /**
     * Repartitioning interval in Elastic-job instructions (2M in the
     * paper, i.e. 1% of its 200M-instruction jobs). The cumulative
     * X% bound is only checked at this granularity, so keep the
     * interval a small fraction of the job length — a coarse
     * interval lets a steep victim overshoot the bound between
     * checkpoints.
     */
    InstCount intervalInstructions = 2'000'000;
    /** Never shrink an Elastic partition below this many ways. */
    unsigned minWays = 1;
    /** Duplicate-tag set sampling period (every 8th set). */
    unsigned dupTagSamplePeriod = 8;
    /**
     * Minimum shadow misses before the sampled estimate is trusted:
     * with set sampling, a low-L2-traffic job accumulates counter
     * statistics slowly, and acting on a handful of sampled misses
     * would make the X% bound pure noise. No steal or cancel happens
     * below this threshold.
     */
    std::uint64_t minShadowMisses = 64;
    /**
     * Once cancelled for a job, never re-attempt stealing from it.
     * When false (default), stealing resumes once the cumulative
     * miss increase has decayed back under the slack — the partition
     * then oscillates just below the X% bound, recovering the most
     * capacity the bound allows (the behaviour Figure 8(a) shows).
     */
    bool permanentCancel = false;
};

/**
 * Tracks active Elastic(X) jobs and performs interval repartitioning.
 */
class ResourceStealingEngine
{
  public:
    ResourceStealingEngine(CmpSystem &sys,
                           const StealingConfig &config = StealingConfig());

    const StealingConfig &config() const { return config_; }

    /**
     * Begin stealing from @p job (it must be running pinned as an
     * Elastic job): attaches duplicate tags and registers the
     * interval checkpoint.
     */
    void activate(Job &job);

    /** Stop tracking @p job (completion); detaches duplicate tags. */
    void deactivate(Job &job);

    /**
     * Per-chunk hook from the simulation: checks whether @p job
     * crossed its next repartitioning checkpoint and, if so, performs
     * the steal / cancel logic.
     */
    void onQuantum(CoreId core, JobExecution *exec);

    std::uint64_t totalSteals() const { return steals_; }
    std::uint64_t totalCancels() const { return cancels_; }
    std::uint64_t saturationSkips() const { return saturationSkips_; }

    /** Ways currently stolen from @p job (0 if untracked). */
    unsigned stolenWays(const Job &job) const;

    /**
     * Whether a cancellation is currently in force for @p job — the
     * X% bound tripped and stealing has not (yet) resumed. While
     * true, every stolen way must have been returned (the
     * steal-return invariant the fault oracle checks).
     */
    bool cancelActive(const Job &job) const;

    /**
     * Telemetry: WayStolen / WayReturned / StealCancelled events.
     * The engine has no clock of its own; @p clock points at the
     * owning Simulation's virtual time (Simulation::clockPtr()).
     */
    void
    setTrace(TraceRecorder *trace, const Cycle *clock)
    {
        trace_ = trace;
        traceClock_ = clock;
    }

  private:
    struct Entry
    {
        Job *job;
        unsigned baselineWays;
        double slack;
        InstCount nextCheckpoint;
        unsigned stolen = 0;
        bool cancelled = false;
    };

    void repartition(Entry &entry, CoreId core);

    CmpSystem &sys_;
    StealingConfig config_;
    TraceRecorder *trace_ = nullptr;
    const Cycle *traceClock_ = nullptr;
    std::unordered_map<JobId, Entry> entries_;
    std::uint64_t steals_ = 0;
    std::uint64_t cancels_ = 0;
    std::uint64_t saturationSkips_ = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_STEALING_HH
