#include "mode.hh"

#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

const char *
executionModeName(ExecutionMode m)
{
    switch (m) {
      case ExecutionMode::Strict: return "Strict";
      case ExecutionMode::Elastic: return "Elastic";
      case ExecutionMode::Opportunistic: return "Opportunistic";
    }
    return "?";
}

Cycle
ModeSpec::reservationDuration(Cycle tw) const
{
    switch (mode) {
      case ExecutionMode::Strict:
        return tw;
      case ExecutionMode::Elastic:
        return static_cast<Cycle>(
            std::ceil(static_cast<double>(tw) * (1.0 + slack)));
      case ExecutionMode::Opportunistic:
        return 0;
    }
    return tw;
}

Cycle
deadlineSlack(Cycle arrival, Cycle deadline, Cycle tw)
{
    if (deadline <= arrival)
        return 0;
    const Cycle window = deadline - arrival;
    return window > tw ? window - tw : 0;
}

double
maxInterchangeableElasticSlack(Cycle arrival, Cycle deadline, Cycle tw)
{
    cmpqos_assert(tw > 0, "tw must be positive");
    return static_cast<double>(deadlineSlack(arrival, deadline, tw)) /
           static_cast<double>(tw);
}

Cycle
autoDowngradeSwitchBack(Cycle deadline, Cycle tw)
{
    return deadline > tw ? deadline - tw : 0;
}

bool
autoDowngradeEligible(Cycle arrival, Cycle deadline, Cycle tw)
{
    return deadlineSlack(arrival, deadline, tw) > 0;
}

} // namespace cmpqos
