/**
 * @file
 * The job scheduler that sits under the LAC (Section 5): Strict and
 * Elastic jobs are pinned one-per-core (timesharing would endanger
 * their deadlines); Opportunistic jobs are time-shared on cores not
 * assigned to Strict/Elastic jobs. Core partition classes and way
 * targets in the shared L2 are maintained accordingly.
 */

#ifndef CMPQOS_QOS_SCHEDULER_HH
#define CMPQOS_QOS_SCHEDULER_HH

#include <deque>
#include <vector>

#include "common/types.hh"
#include "qos/job.hh"
#include "sim/cmp_system.hh"
#include "sim/simulation.hh"

namespace cmpqos
{

/**
 * Maps accepted jobs onto cores and keeps the L2 allocation table in
 * sync with what is running where.
 */
class Scheduler
{
  public:
    Scheduler(Simulation &sim, CmpSystem &sys);

    /**
     * Start a Strict/Elastic job at its reserved slot: pick a core
     * with no reserved occupant (migrating opportunistic jobs off it
     * if needed), set the core's way target, and pin the job.
     * @return the chosen core, or invalidCore if none was free (the
     *         caller should retry shortly; see header notes).
     */
    CoreId startReserved(Job &job);

    /** Start an opportunistic job now on a pool core (or park it). */
    void startOpportunistic(Job &job);

    /**
     * Switch an auto-downgraded job back to Strict at its reserved
     * slot (Section 3.4): unhook it from the pool and pin it.
     * @return the chosen core, or invalidCore if none free yet.
     */
    CoreId promote(Job &job);

    /**
     * Manual downgrade to Opportunistic while running (Section 3.3):
     * release the job's reserved core and way target and move it
     * into the time-shared pool.
     */
    void demoteToPool(Job &job);

    /** Tear down a finished job's placement and rebalance the pool. */
    void jobFinished(Job &job);

    /** Number of cores currently hosting a reserved job. */
    int reservedCores() const;

    /** Jobs accepted but waiting for a free pool core. */
    std::size_t parkedCount() const { return parked_.size(); }

    /** Reserved occupant of a core (invalidJob if none). */
    JobId reservedOccupant(CoreId core) const;

  private:
    /** Core without a reserved occupant, preferring idle ones. */
    CoreId pickReservedCore() const;

    /** Non-reserved core with the shortest run queue. */
    CoreId pickPoolCore() const;

    /** Mark a core as an opportunistic pool member in the L2. */
    void markPoolCore(CoreId core);

    /** Move opportunistic jobs off @p core onto other pool cores. */
    void evictPoolJobs(CoreId core);

    /** Try to place parked opportunistic jobs. */
    void unpark();

    Simulation &sim_;
    CmpSystem &sys_;
    std::vector<JobId> reservedOn_;
    std::vector<Job *> poolJobs_;
    std::deque<Job *> parked_;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_SCHEDULER_HH
