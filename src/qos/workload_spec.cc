#include "workload_spec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "workload/benchmark.hh"

namespace cmpqos
{

const char *
modeConfigName(ModeConfig c)
{
    switch (c) {
      case ModeConfig::AllStrict: return "All-Strict";
      case ModeConfig::Hybrid1: return "Hybrid-1";
      case ModeConfig::Hybrid2: return "Hybrid-2";
      case ModeConfig::AllStrictAutoDown: return "All-Strict+AutoDown";
      case ModeConfig::EqualPart: return "EqualPart";
    }
    return "?";
}

const char *
mixTypeName(MixType m)
{
    switch (m) {
      case MixType::Mix1: return "Mix-1";
      case MixType::Mix2: return "Mix-2";
    }
    return "?";
}

namespace
{

/** Shuffle @p v deterministically with @p seed (Fisher-Yates). */
template <typename T>
void
shuffle(std::vector<T> &v, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t i = v.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.uniformInt(i));
        std::swap(v[i - 1], v[j]);
    }
}

/** Allocate n slots across proportions, largest remainders last. */
std::vector<std::size_t>
apportion(std::size_t n, const std::vector<double> &fractions)
{
    std::vector<std::size_t> counts(fractions.size(), 0);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        counts[i] = static_cast<std::size_t>(
            fractions[i] * static_cast<double>(n) + 0.5);
        assigned += counts[i];
    }
    // Fix rounding drift against the first bucket.
    while (assigned > n) {
        for (auto &c : counts)
            if (c > 0 && assigned > n) {
                --c;
                --assigned;
            }
    }
    while (assigned < n) {
        ++counts[0];
        ++assigned;
    }
    return counts;
}

/** Mode pattern for a Table 2 configuration over n accepted slots. */
std::vector<ModeSpec>
makeModeMix(ModeConfig config, std::size_t n, std::uint64_t seed)
{
    std::vector<ModeSpec> modes;
    switch (config) {
      case ModeConfig::AllStrict:
      case ModeConfig::AllStrictAutoDown:
      case ModeConfig::EqualPart:
        modes.assign(n, ModeSpec::strict());
        return modes;
      case ModeConfig::Hybrid1: {
        const auto counts = apportion(n, {0.7, 0.3});
        modes.insert(modes.end(), counts[0], ModeSpec::strict());
        modes.insert(modes.end(), counts[1], ModeSpec::opportunistic());
        break;
      }
      case ModeConfig::Hybrid2: {
        const auto counts = apportion(n, {0.4, 0.3, 0.3});
        modes.insert(modes.end(), counts[0], ModeSpec::strict());
        modes.insert(modes.end(), counts[1], ModeSpec::elastic(0.05));
        modes.insert(modes.end(), counts[2], ModeSpec::opportunistic());
        break;
      }
    }
    shuffle(modes, seed ^ 0xa5a5a5a5ULL);
    return modes;
}

} // namespace

std::vector<double>
makeDeadlineMix(std::size_t n, std::uint64_t seed)
{
    const auto counts = apportion(n, {0.5, 0.3, 0.2});
    std::vector<double> factors;
    factors.insert(factors.end(), counts[0], 1.05);
    factors.insert(factors.end(), counts[1], 2.0);
    factors.insert(factors.end(), counts[2], 3.0);
    shuffle(factors, seed ^ 0x5a5a5a5aULL);
    return factors;
}

WorkloadSpec
makeSingleBenchmarkWorkload(ModeConfig config, const std::string &benchmark,
                            std::size_t n_jobs,
                            InstCount job_instructions, std::uint64_t seed)
{
    cmpqos_assert(BenchmarkRegistry::has(benchmark),
                  "unknown benchmark '%s'", benchmark.c_str());
    WorkloadSpec spec;
    spec.name = std::string(modeConfigName(config)) + "/" + benchmark;
    spec.config = config;
    spec.jobInstructions = job_instructions;
    spec.seed = seed;

    const auto modes = makeModeMix(config, n_jobs, seed);
    const auto deadlines = makeDeadlineMix(n_jobs, seed);
    for (std::size_t i = 0; i < n_jobs; ++i) {
        JobRequest r;
        r.benchmark = benchmark;
        r.mode = modes[i];
        r.deadlineFactor = deadlines[i];
        spec.jobs.push_back(std::move(r));
    }
    return spec;
}

WorkloadSpec
makeMixedWorkload(ModeConfig config, MixType mix, std::size_t n_jobs,
                  InstCount job_instructions, std::uint64_t seed)
{
    WorkloadSpec spec;
    spec.name = std::string(modeConfigName(config)) + "/" +
                mixTypeName(mix);
    spec.config = config;
    spec.jobInstructions = job_instructions;
    spec.seed = seed;

    // Table 3 role assignments.
    const std::string strict_bench = "hmmer";
    const std::string elastic_bench =
        mix == MixType::Mix1 ? "gobmk" : "bzip2";
    const std::string opp_bench =
        mix == MixType::Mix1 ? "bzip2" : "gobmk";

    const auto deadlines = makeDeadlineMix(n_jobs, seed);
    for (std::size_t i = 0; i < n_jobs; ++i) {
        JobRequest r;
        r.deadlineFactor = deadlines[i];
        switch (i % 3) {
          case 0:
            r.benchmark = strict_bench;
            r.mode = ModeSpec::strict();
            break;
          case 1:
            r.benchmark = elastic_bench;
            r.mode = config == ModeConfig::Hybrid2
                         ? ModeSpec::elastic(0.05)
                         : ModeSpec::strict();
            break;
          default:
            r.benchmark = opp_bench;
            r.mode = (config == ModeConfig::Hybrid1 ||
                      config == ModeConfig::Hybrid2)
                         ? ModeSpec::opportunistic()
                         : ModeSpec::strict();
            break;
        }
        spec.jobs.push_back(std::move(r));
    }
    return spec;
}

} // namespace cmpqos
