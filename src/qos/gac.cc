#include "gac.hh"

#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

GlobalAdmissionController::GlobalAdmissionController(GacPolicy policy)
    : policy_(policy)
{
}

void
GlobalAdmissionController::addNode(NodeId id, LocalAdmissionController *lac)
{
    cmpqos_assert(lac != nullptr, "null LAC");
    nodes_.push_back(NodeEntry{id, lac});
}

AdmissionDecision
GlobalAdmissionController::probeNode(const NodeEntry &node, const Job &job,
                                     Cycle now,
                                     Cycle relative_deadline_override) const
{
    ++probes_;
    if (relative_deadline_override == 0)
        return node.lac->probe(job, now);

    QosTarget relaxed = job.target();
    relaxed.relativeDeadline = relative_deadline_override;
    Job shadow(job.id(), job.benchmark(), job.instructions(), relaxed,
               job.mode());
    return node.lac->probe(shadow, now);
}

GacDecision
GlobalAdmissionController::submit(Job &job, Cycle now)
{
    GacDecision best;
    for (const auto &node : nodes_) {
        const AdmissionDecision d = probeNode(node, job, now, 0);
        if (!d.accepted)
            continue;
        if (policy_ == GacPolicy::FirstFit) {
            best.accepted = true;
            best.node = node.id;
            best.local = node.lac->submit(job, now);
            return best;
        }
        if (!best.accepted || d.slotStart < best.local.slotStart) {
            best.accepted = true;
            best.node = node.id;
            best.local = d;
        }
    }
    if (!best.accepted)
        return best;
    // EarliestSlot: commit on the winning node.
    for (const auto &node : nodes_) {
        if (node.id == best.node) {
            best.local = node.lac->submit(job, now);
            return best;
        }
    }
    cmpqos_panic("winning node disappeared");
}

std::optional<Cycle>
GlobalAdmissionController::negotiateDeadline(const Job &job, Cycle now,
                                             double max_factor,
                                             double step_fraction) const
{
    const Cycle base = job.target().relativeDeadline;
    for (double f = 1.0 + step_fraction; f <= max_factor + 1e-9;
         f += step_fraction) {
        const Cycle relaxed = static_cast<Cycle>(
            std::ceil(static_cast<double>(base) * f));
        for (const auto &node : nodes_) {
            if (probeNode(node, job, now, relaxed).accepted)
                return relaxed;
        }
    }
    return std::nullopt;
}

} // namespace cmpqos
