#include "gac.hh"

#include <cmath>

#include "common/logging.hh"

namespace cmpqos
{

const char *
gacPolicyName(GacPolicy p)
{
    switch (p) {
      case GacPolicy::FirstFit: return "first-fit";
      case GacPolicy::EarliestSlot: return "earliest-slot";
      case GacPolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

GlobalAdmissionController::GlobalAdmissionController(GacPolicy policy)
    : policy_(policy)
{
}

void
GlobalAdmissionController::addNode(NodeId id, LocalAdmissionController *lac)
{
    admission_.grant();
    cmpqos_assert(lac != nullptr, "null LAC");
    nodes_.push_back(NodeEntry{id, lac, true});
}

void
GlobalAdmissionController::setNodeAlive(NodeId id, bool alive)
{
    admission_.grant();
    for (auto &node : nodes_) {
        if (node.id == id) {
            node.alive = alive;
            return;
        }
    }
    cmpqos_fatal("setNodeAlive: unknown node %d", id);
}

bool
GlobalAdmissionController::nodeAlive(NodeId id) const
{
    admission_.grant();
    for (const auto &node : nodes_)
        if (node.id == id)
            return node.alive;
    return false;
}

bool
GlobalAdmissionController::nodeReachable(const NodeEntry &node) const
{
    if (!node.alive)
        return false;
    if (!probeFaults_)
        return true;
    const unsigned failures = probeFaults_(node.id);
    if (failures == 0)
        return true;
    if (failures > retry_.maxRetries) {
        ++probeTimeouts_;
        return false;
    }
    probeRetries_ += failures;
    backoffCycles_ += retry_.totalBackoff(failures);
    return true;
}

AdmissionDecision
GlobalAdmissionController::probeNode(const NodeEntry &node, const Job &job,
                                     Cycle now,
                                     Cycle relative_deadline_override) const
{
    ++probes_;
    if (relative_deadline_override == 0)
        return node.lac->probe(job, now);

    QosTarget relaxed = job.target();
    relaxed.relativeDeadline = relative_deadline_override;
    Job shadow(job.id(), job.benchmark(), job.instructions(), relaxed,
               job.mode());
    return node.lac->probe(shadow, now);
}

namespace
{

/** Live reservations on a LAC (still running or scheduled) at @p t. */
std::size_t
liveReservations(const LocalAdmissionController &lac, Cycle t)
{
    std::size_t live = 0;
    for (const auto &r : lac.timeline().reservations())
        if (r.end > t)
            ++live;
    return live;
}

} // namespace

GacDecision
GlobalAdmissionController::submit(Job &job, Cycle now)
{
    admission_.grant();
    GacDecision best;
    std::size_t best_load = 0;
    unsigned best_ways = 0;
    for (const auto &node : nodes_) {
        if (!nodeReachable(node))
            continue;
        const AdmissionDecision d = probeNode(node, job, now, 0);
        if (!d.accepted)
            continue;
        if (policy_ == GacPolicy::FirstFit) {
            best.accepted = true;
            best.node = node.id;
            best.local = node.lac->submit(job, now);
            if (trace_ != nullptr && trace_->active()) {
                TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                          now, job.id());
                e.a = static_cast<std::uint64_t>(best.node);
                e.b = static_cast<std::uint64_t>(job.id());
                trace_->emit(e);
            }
            return best;
        }
        bool better = !best.accepted;
        if (!better && policy_ == GacPolicy::EarliestSlot)
            better = d.slotStart < best.local.slotStart;
        if (!better && policy_ == GacPolicy::LeastLoaded) {
            const std::size_t load = liveReservations(*node.lac, now);
            const unsigned ways =
                node.lac->timeline().reservedAt(now).ways;
            better = load < best_load ||
                     (load == best_load && ways < best_ways);
        }
        if (better) {
            best.accepted = true;
            best.node = node.id;
            best.local = d;
            if (policy_ == GacPolicy::LeastLoaded) {
                best_load = liveReservations(*node.lac, now);
                best_ways = node.lac->timeline().reservedAt(now).ways;
            }
        }
    }
    if (!best.accepted) {
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent e = traceEvent(TraceEventType::JobRejected,
                                      now, job.id());
            e.setName("no node accepted");
            trace_->emit(e);
        }
        return best;
    }
    // EarliestSlot / LeastLoaded: commit on the winning node.
    for (const auto &node : nodes_) {
        if (node.id == best.node) {
            best.local = node.lac->submit(job, now);
            if (trace_ != nullptr && trace_->active()) {
                TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                          now, job.id());
                e.a = static_cast<std::uint64_t>(best.node);
                e.b = static_cast<std::uint64_t>(job.id());
                trace_->emit(e);
            }
            return best;
        }
    }
    cmpqos_panic("winning node disappeared");
}

std::optional<Cycle>
GlobalAdmissionController::negotiateDeadline(const Job &job, Cycle now,
                                             double max_factor,
                                             double step_fraction) const
{
    admission_.grant();
    const Cycle base = job.target().relativeDeadline;
    for (double f = 1.0 + step_fraction; f <= max_factor + 1e-9;
         f += step_fraction) {
        const Cycle relaxed = static_cast<Cycle>(
            std::ceil(static_cast<double>(base) * f));
        for (const auto &node : nodes_) {
            if (!nodeReachable(node))
                continue;
            if (probeNode(node, job, now, relaxed).accepted) {
                if (trace_ != nullptr && trace_->active()) {
                    TraceEvent e = traceEvent(
                        TraceEventType::JobNegotiated, now, job.id());
                    e.a = static_cast<std::uint64_t>(node.id);
                    e.x = f;
                    e.setName(job.benchmark());
                    trace_->emit(e);
                }
                return relaxed;
            }
        }
    }
    return std::nullopt;
}

} // namespace cmpqos
