/**
 * @file
 * Workload construction per the paper's evaluation methodology
 * (Section 6): 10-job workloads where each job requests one core and
 * 7 of 16 L2 ways; Poisson candidate arrivals at the load implied by
 * a 128-CMP server (4 x 128 arrivals per job wall-clock time);
 * deadlines assigned pseudo-randomly as 50% tight (1.05 tw), 30%
 * moderate (2 tw), 20% relaxed (3 tw); and the execution-mode
 * configurations of Table 2 plus the mixed-benchmark workloads of
 * Table 3.
 */

#ifndef CMPQOS_QOS_WORKLOAD_SPEC_HH
#define CMPQOS_QOS_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "qos/mode.hh"

namespace cmpqos
{

/** The five configurations of Table 2. */
enum class ModeConfig
{
    AllStrict,
    Hybrid1,          // 70% Strict + 30% Opportunistic
    Hybrid2,          // 40% Strict + 30% Elastic(5%) + 30% Opportunistic
    AllStrictAutoDown, // 100% Strict with automatic mode downgrade
    EqualPart,        // no admission control, equal L2 partition
};

const char *modeConfigName(ModeConfig c);

/** The two mixed-benchmark workloads of Table 3. */
enum class MixType
{
    Mix1, // hmmer Strict, gobmk Elastic(5%), bzip2 Opportunistic
    Mix2, // hmmer Strict, bzip2 Elastic(5%), gobmk Opportunistic
};

const char *mixTypeName(MixType m);

/** One accepted-slot request: what the next accepted job looks like. */
struct JobRequest
{
    std::string benchmark;
    ModeSpec mode = ModeSpec::strict();
    /** (td - ta) / tw: 1.05 tight, 2.0 moderate, 3.0 relaxed. */
    double deadlineFactor = 2.0;
    unsigned cores = 1;
    unsigned ways = 7;
    /** Guaranteed bandwidth share, percent of peak (extension). */
    unsigned bandwidthPercent = 0;
};

/** A full workload specification. */
struct WorkloadSpec
{
    std::string name;
    ModeConfig config = ModeConfig::AllStrict;
    /** Pattern of accepted jobs, in acceptance order. */
    std::vector<JobRequest> jobs;
    /** Instructions per job (the paper simulates 200M; benches
     *  default to a scaled-down length for speed — see DESIGN.md). */
    InstCount jobInstructions = 50'000'000;
    /** Mean candidate inter-arrival time as a fraction of the mean
     *  job wall-clock time (4 x 128 arrivals per tw => 1/512). */
    double interArrivalFraction = 1.0 / 512.0;
    std::uint64_t seed = 1;
};

/**
 * Deadline-factor mix: 50% tight (1.05), 30% moderate (2.0), 20%
 * relaxed (3.0), pseudo-randomly shuffled with @p seed.
 */
std::vector<double> makeDeadlineMix(std::size_t n, std::uint64_t seed);

/**
 * Single-benchmark workload (e.g. ten instances of bzip2) under one
 * of the Table 2 configurations.
 */
WorkloadSpec makeSingleBenchmarkWorkload(ModeConfig config,
                                         const std::string &benchmark,
                                         std::size_t n_jobs,
                                         InstCount job_instructions,
                                         std::uint64_t seed);

/**
 * Mixed-benchmark workload (Table 3) under one of the Table 2
 * configurations. The benchmark-to-mode mapping of Table 3 applies
 * in Hybrid-2; in Hybrid-1 only the Opportunistic assignment is kept
 * (there is no Elastic mode in Hybrid-1); in the remaining
 * configurations every job is Strict.
 */
WorkloadSpec makeMixedWorkload(ModeConfig config, MixType mix,
                               std::size_t n_jobs,
                               InstCount job_instructions,
                               std::uint64_t seed);

} // namespace cmpqos

#endif // CMPQOS_QOS_WORKLOAD_SPEC_HH
