#include "resource.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

ResourceTimeline::ResourceTimeline(ResourceVector capacity)
    : capacity_(capacity)
{
    cmpqos_assert(capacity.cores > 0, "timeline needs core capacity");
}

ResourceVector
ResourceTimeline::reservedAt(Cycle t) const
{
    ResourceVector used;
    for (const auto &r : reservations_) {
        ++probes_;
        if (r.covers(t))
            used = used + r.resources;
    }
    return used;
}

ResourceVector
ResourceTimeline::availableAt(Cycle t) const
{
    return capacity_.minus(reservedAt(t));
}

bool
ResourceTimeline::fitsThroughout(Cycle start, Cycle end,
                                 const ResourceVector &req) const
{
    if (!req.fitsWithin(availableAt(start)))
        return false;
    for (const auto &r : reservations_) {
        ++probes_;
        if (r.start > start && r.start < end) {
            if (!req.fitsWithin(availableAt(r.start)))
                return false;
        }
    }
    return true;
}

Cycle
ResourceTimeline::findEarliestStart(const ResourceVector &req,
                                    Cycle duration, Cycle not_before,
                                    Cycle latest_start) const
{
    if (not_before > latest_start)
        return maxCycle;

    std::vector<Cycle> candidates{not_before};
    for (const auto &r : reservations_) {
        if (r.end > not_before && r.end <= latest_start)
            candidates.push_back(r.end);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    for (Cycle s : candidates) {
        if (fitsThroughout(s, s + duration, req))
            return s;
    }
    return maxCycle;
}

Cycle
ResourceTimeline::findLatestStart(const ResourceVector &req, Cycle duration,
                                  Cycle not_before,
                                  Cycle latest_start) const
{
    if (not_before > latest_start)
        return maxCycle;

    std::vector<Cycle> candidates{latest_start};
    for (const auto &r : reservations_) {
        // Start so the slot ends exactly when r begins...
        if (r.start >= duration) {
            const Cycle s = r.start - duration;
            if (s >= not_before && s <= latest_start)
                candidates.push_back(s);
        }
        // ...or start exactly when r frees its resources.
        if (r.end >= not_before && r.end <= latest_start)
            candidates.push_back(r.end);
    }
    std::sort(candidates.begin(), candidates.end(), std::greater<>());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    for (Cycle s : candidates) {
        if (fitsThroughout(s, s + duration, req))
            return s;
    }
    return maxCycle;
}

void
ResourceTimeline::reserve(JobId job, Cycle start, Cycle end,
                          const ResourceVector &req)
{
    cmpqos_assert(end > start, "empty reservation");
    cmpqos_assert(fitsThroughout(start, end, req),
                  "reservation for job %d does not fit", job);
    reservations_.push_back(Reservation{job, start, end, req});
}

void
ResourceTimeline::releaseFrom(JobId job, Cycle at)
{
    for (auto it = reservations_.begin(); it != reservations_.end();) {
        if (it->job != job) {
            ++it;
        } else if (it->start >= at) {
            it = reservations_.erase(it);
        } else {
            it->end = std::min(it->end, at);
            ++it;
        }
    }
}

void
ResourceTimeline::cancel(JobId job)
{
    std::erase_if(reservations_,
                  [job](const Reservation &r) { return r.job == job; });
}

void
ResourceTimeline::pruneBefore(Cycle t)
{
    std::erase_if(reservations_,
                  [t](const Reservation &r) { return r.end <= t; });
}

std::vector<Cycle>
ResourceTimeline::changePoints(Cycle lo, Cycle hi) const
{
    std::vector<Cycle> pts{lo};
    for (const auto &r : reservations_) {
        if (r.start > lo && r.start < hi)
            pts.push_back(r.start);
        if (r.end > lo && r.end < hi)
            pts.push_back(r.end);
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
    return pts;
}

} // namespace cmpqos
