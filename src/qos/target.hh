/**
 * @file
 * QoS target specification (Section 3.2).
 *
 * The paper argues QoS targets must be *convertible* — expressible in
 * units that can be compared against available computation capacity.
 * Resource Usage Metrics (RUM: processor count, cache capacity) are
 * convertible; Overall/Resource Performance Metrics (IPC, miss rate)
 * are not. A target optionally carries a timeslot resource: a maximum
 * wall-clock time tw (borrowed from batch job systems) and a deadline.
 */

#ifndef CMPQOS_QOS_TARGET_HH
#define CMPQOS_QOS_TARGET_HH

#include <string>

#include "common/types.hh"

namespace cmpqos
{

/** Kinds of QoS target units discussed in Section 3.2. */
enum class TargetUnits
{
    /** Resource Usage Metrics: cores, cache ways. Convertible. */
    RUM,
    /** Resource Performance Metrics: e.g. miss rate. Not convertible. */
    RPM,
    /** Overall Performance Metrics: e.g. IPC. Not convertible. */
    OPM,
};

/**
 * Whether targets in the given units are convertible, i.e. can be
 * compared against available computation capacity (Definition 1).
 */
bool isConvertible(TargetUnits units);

/**
 * A RUM QoS target: resources demanded plus an optional timeslot.
 */
struct QosTarget
{
    /** Processor cores demanded. */
    unsigned cores = 1;
    /** Shared L2 ways demanded (7 of 16 in the paper's evaluation). */
    unsigned cacheWays = 7;
    /**
     * Guaranteed off-chip bandwidth share, percent of peak (0 = no
     * guarantee). Extension beyond the paper's evaluation — the RUM
     * dimension it defers to future work.
     */
    unsigned bandwidthPercent = 0;

    /** Whether a timeslot resource is specified (Section 3.2). */
    bool hasTimeslot = true;
    /** Maximum wall-clock time tw in cycles (0 = unspecified). */
    Cycle maxWallClock = 0;
    /** Deadline relative to arrival, td - ta, in cycles. */
    Cycle relativeDeadline = 0;

    /** Cache capacity demanded in bytes for the default L2. */
    std::uint64_t cacheBytes() const;

    /**
     * Sanity-check the target (fatal on nonsense like 0 cores or a
     * deadline shorter than tw with no slack possible).
     */
    void validate(unsigned max_cores, unsigned max_ways) const;

    /**
     * Preset configurations (Section 3.2 suggests presets like
     * small/medium/large to simplify user selection, at the cost of
     * possible overspecification).
     */
    static QosTarget small();
    static QosTarget medium();
    static QosTarget large();
};

} // namespace cmpqos

#endif // CMPQOS_QOS_TARGET_HH
