#include "admission.hh"

#include "common/logging.hh"

namespace cmpqos
{

LocalAdmissionController::LocalAdmissionController(
    const AdmissionConfig &config)
    : config_(config), timeline_(config.capacity)
{
}

AdmissionDecision
LocalAdmissionController::decide(const Job &job, Cycle now) const
{
    const QosTarget &t = job.target();
    AdmissionDecision d;

    if (job.mode().mode == ExecutionMode::Opportunistic) {
        // Accepted whenever some core is not taken up by a
        // Strict/Elastic reservation right now.
        const ResourceVector used = timeline_.reservedAt(now);
        if (used.cores < config_.capacity.cores) {
            d.accepted = true;
            d.slotStart = now;
            d.slotEnd = maxCycle;
            d.reason = "spare resources available";
        } else {
            d.reason = "no spare cores for opportunistic job";
        }
        return d;
    }

    const ResourceVector req{t.cores, t.cacheWays, t.bandwidthPercent};
    if (!req.fitsWithin(config_.capacity)) {
        d.reason = "demand exceeds node capacity";
        return d;
    }

    if (!t.hasTimeslot) {
        // No timeslot: resources are held for the job's lifetime.
        const Cycle s = timeline_.findEarliestStart(
            req, maxCycle - now, now, maxCycle - 1);
        if (s == maxCycle) {
            d.reason = "no lifetime slot available";
            return d;
        }
        d.accepted = true;
        d.slotStart = s;
        d.slotEnd = maxCycle;
        d.reason = "lifetime reservation";
        return d;
    }

    const Cycle tw = t.maxWallClock;
    const Cycle deadline = now + t.relativeDeadline;

    const Cycle min_slack = static_cast<Cycle>(
        config_.autoDowngradeMinSlackFraction * static_cast<double>(tw));
    if (config_.autoDowngrade && job.mode().mode == ExecutionMode::Strict &&
        autoDowngradeEligible(now, deadline, tw) &&
        deadlineSlack(now, deadline, tw) >= min_slack) {
        // Reserve the *latest* feasible slot and let the job run
        // opportunistically until the slot begins.
        const Cycle s =
            timeline_.findLatestStart(req, tw, now, deadline - tw);
        if (s != maxCycle) {
            d.accepted = true;
            d.autoDowngraded = true;
            d.slotStart = s;
            d.slotEnd = s + tw;
            d.reason = "auto-downgraded; late slot reserved";
            return d;
        }
        d.reason = "no slot before deadline (auto-downgrade)";
        return d;
    }

    const Cycle duration = job.mode().reservationDuration(tw);
    if (deadline < now + duration) {
        d.reason = "deadline tighter than reservation duration";
        return d;
    }
    const Cycle s = timeline_.findEarliestStart(req, duration, now,
                                                deadline - duration);
    if (s == maxCycle) {
        d.reason = "no slot before deadline";
        return d;
    }
    d.accepted = true;
    d.slotStart = s;
    d.slotEnd = s + duration;
    d.reason = "earliest-fit slot reserved";
    return d;
}

AdmissionDecision
LocalAdmissionController::probe(const Job &job, Cycle now) const
{
    return decide(job, now);
}

AdmissionDecision
LocalAdmissionController::submit(Job &job, Cycle now)
{
    // Cost model: one admission test scans the reservation list.
    overheadCycles_ +=
        config_.costPerSubmission +
        config_.costPerReservationScanned *
            static_cast<Cycle>(timeline_.reservations().size());

    job.arrivalTime = now;
    job.deadline = job.target().hasTimeslot
                       ? now + job.target().relativeDeadline
                       : maxCycle;

    AdmissionDecision d = decide(job, now);
    if (!d.accepted) {
        ++rejected_;
        job.setState(JobState::Rejected);
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent e =
                traceEvent(TraceEventType::JobRejected, now, job.id());
            e.setName(d.reason);
            trace_->emit(e);
        }
        return d;
    }

    ++accepted_;
    job.acceptTime = now;
    job.slotStart = d.slotStart;
    job.slotEnd = d.slotEnd;
    job.autoDowngraded = d.autoDowngraded;
    job.setState(JobState::Waiting);

    if (job.mode().reservesResources()) {
        const ResourceVector req{job.target().cores,
                                 job.target().cacheWays,
                                 job.target().bandwidthPercent};
        timeline_.reserve(job.id(), d.slotStart, d.slotEnd, req);
    }
    if (trace_ != nullptr && trace_->active()) {
        TraceEvent e =
            traceEvent(TraceEventType::JobAdmitted, now, job.id());
        e.a = d.slotStart;
        e.b = d.slotEnd;
        e.x = static_cast<double>(job.deadline);
        e.setName(job.benchmark());
        trace_->emit(e);
        if (d.autoDowngraded) {
            TraceEvent m =
                traceEvent(TraceEventType::ModeDowngrade, now, job.id());
            m.a = static_cast<std::uint64_t>(ExecutionMode::Strict);
            m.b = static_cast<std::uint64_t>(ExecutionMode::Opportunistic);
            m.setName("auto");
            trace_->emit(m);
        }
    }
    return d;
}

void
LocalAdmissionController::releaseEarly(const Job &job, Cycle now)
{
    timeline_.releaseFrom(job.id(), now);
}

void
LocalAdmissionController::cancel(const Job &job)
{
    timeline_.cancel(job.id());
}

} // namespace cmpqos
