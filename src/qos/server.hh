/**
 * @file
 * A multi-CMP server (Section 3.1's working environment, Figure 2):
 * several CMP nodes, each with its own Local Admission Controller,
 * fronted by global admission that probes the nodes and places each
 * job on one that can satisfy its QoS target — rejecting (or, via
 * GlobalAdmissionController::negotiateDeadline, renegotiating) when
 * none can.
 *
 * The paper scopes the GAC's evaluation out; this component completes
 * the picture: placement *and* execution, with each node running its
 * own co-simulation. Nodes share no microarchitectural resources, so
 * their simulations are independent and can be drained sequentially
 * with exact results.
 */

#ifndef CMPQOS_QOS_SERVER_HH
#define CMPQOS_QOS_SERVER_HH

#include <memory>
#include <vector>

#include "common/annotations.hh"
#include "qos/framework.hh"
#include "qos/gac.hh"
#include "telemetry/collector.hh"

namespace cmpqos
{

/** Outcome of a server-level submission. */
struct ServerDecision
{
    bool accepted = false;
    /** Accepted only after deadline renegotiation. */
    bool negotiated = false;
    NodeId node = -1;
    Job *job = nullptr;
    AdmissionDecision local;
};

/**
 * num_nodes CMP nodes behind global admission.
 */
class CmpServer
{
  public:
    CmpServer(int num_nodes, const FrameworkConfig &node_config,
              GacPolicy policy = GacPolicy::FirstFit);

    int numNodes() const { return static_cast<int>(nodes_.size()); }
    QosFramework &node(NodeId n);

    /**
     * Submit a job through global admission: probe every node, pick
     * one per policy (FirstFit: first accepting node; EarliestSlot:
     * the node offering the earliest start), and submit there.
     */
    ServerDecision submit(const JobRequest &request,
                          InstCount instructions);

    /**
     * Submit with negotiation (Section 3.1): when every node rejects,
     * probe progressively relaxed deadlines (steps of
     * @p step_fraction of the requested factor, up to @p max_factor
     * times it) and place the job under the first factor some node
     * accepts. The decision's negotiated flag records the relaxation.
     */
    ServerDecision submitNegotiated(const JobRequest &request,
                                    InstCount instructions,
                                    double max_factor = 4.0,
                                    double step_fraction = 0.25);

    /** Run every node's simulation until all its jobs complete. */
    void runToCompletion();

    // clang-format off
    std::uint64_t probes() const { admission_.grant(); return probes_; }
    std::uint64_t acceptedCount() const { admission_.grant(); return accepted_; }
    std::uint64_t rejectedCount() const { admission_.grant(); return rejected_; }
    /** Jobs accepted only after deadline renegotiation. */
    std::uint64_t negotiatedCount() const { admission_.grant(); return negotiated_; }
    // clang-format on

    /**
     * Bounded probe retry with exponential backoff: a timed-out probe
     * is retried up to the budget, then the node counts as
     * unreachable for that submission (skipped, not blocked on).
     */
    void setRetryConfig(const GacRetryConfig &c) { retry_ = c; }
    const GacRetryConfig &retryConfig() const { return retry_; }

    /** Install (or clear, with nullptr) the probe-fault hook. */
    void setProbeFaults(ProbeFaultFn fn) { probeFaults_ = std::move(fn); }

    /** Mark a node dead/alive; dead nodes are never probed. */
    void setNodeAlive(NodeId n, bool alive);

    // clang-format off
    /** Probe retries that eventually succeeded. */
    std::uint64_t probeRetries() const { admission_.grant(); return probeRetries_; }
    /** Probes abandoned after exhausting the retry budget. */
    std::uint64_t probeTimeouts() const { admission_.grant(); return probeTimeouts_; }
    /** Virtual cycles charged to retry backoff. */
    Cycle backoffCycles() const { admission_.grant(); return backoffCycles_; }
    // clang-format on

    /** Jobs placed on node @p n so far. */
    std::size_t placedOn(NodeId n) const;

    /** True iff every accepted Strict/Elastic job met its deadline. */
    bool allQosDeadlinesMet() const;

    /**
     * Telemetry: producer 0 takes the server's global-admission
     * events (placement, rejection, negotiation), producer n+1 node
     * n's framework events. Nodes drain sequentially here, so the
     * caller only needs collector.drain()/finish() after
     * runToCompletion(). @p collector is not owned.
     */
    void attachTelemetry(TraceCollector &collector);

  private:
    /** Dead-node / probe-timeout gate (charges retries + backoff). */
    bool nodeReachable(NodeId n) CMPQOS_REQUIRES(admission_);

    /**
     * The admission role: the server drains nodes sequentially on the
     * one thread that submits, so probe accounting and per-node
     * liveness are single-owner state, not lock-protected state.
     * Public entry points assert the role; the probe gate requires it.
     */
    OwnerRole admission_;

    std::vector<std::unique_ptr<QosFramework>> nodes_;
    std::vector<std::size_t> placed_ CMPQOS_GUARDED_BY(admission_);
    std::vector<char> alive_ CMPQOS_GUARDED_BY(admission_);
    TraceRecorder *trace_ = nullptr;
    GacPolicy policy_;
    GacRetryConfig retry_;
    ProbeFaultFn probeFaults_;
    std::uint64_t probes_ CMPQOS_GUARDED_BY(admission_) = 0;
    std::uint64_t accepted_ CMPQOS_GUARDED_BY(admission_) = 0;
    std::uint64_t rejected_ CMPQOS_GUARDED_BY(admission_) = 0;
    std::uint64_t negotiated_ CMPQOS_GUARDED_BY(admission_) = 0;
    std::uint64_t probeRetries_ CMPQOS_GUARDED_BY(admission_) = 0;
    std::uint64_t probeTimeouts_ CMPQOS_GUARDED_BY(admission_) = 0;
    Cycle backoffCycles_ CMPQOS_GUARDED_BY(admission_) = 0;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_SERVER_HH
