/**
 * @file
 * The QoS framework facade: one CMP node with its Local Admission
 * Controller, scheduler, resource-stealing engine, and co-simulation
 * engine wired together. Runs whole workloads (arrival stream ->
 * admission -> reserved/opportunistic execution -> completion) and
 * reports the metrics the paper's evaluation uses: deadline hit
 * rates, per-job wall-clock times, makespan of the first N accepted
 * jobs, and modelled LAC occupancy.
 *
 * The EqualPart baseline (Table 2: no admission control, default OS
 * time-sharing, equal L2 partition — the paper's stand-in for a
 * Virtual Private Cache-style non-QoS CMP) is a policy switch here so
 * every configuration runs through the same machinery.
 */

#ifndef CMPQOS_QOS_FRAMEWORK_HH
#define CMPQOS_QOS_FRAMEWORK_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "qos/admission.hh"
#include "qos/job.hh"
#include "qos/scheduler.hh"
#include "qos/stealing.hh"
#include "qos/workload_spec.hh"
#include "sim/cmp_system.hh"
#include "sim/simulation.hh"

namespace cmpqos
{

/** Which system policy a framework instance runs. */
enum class SystemPolicy
{
    Qos,
    EqualPart,
};

/** Framework-level configuration. */
struct FrameworkConfig
{
    CmpConfig cmp;
    AdmissionConfig admission;
    StealingConfig stealing;
    SystemPolicy policy = SystemPolicy::Qos;
    /**
     * tw = margin * (instructions * analytic CPI at requested ways).
     * The maximum wall-clock time is a user expectation, not a safe
     * WCET (Section 3.2); a ~10% margin absorbs warm-up and
     * co-runner bandwidth effects.
     */
    double wallClockMargin = 1.10;
    /** Retry delay when a reserved start finds no free core yet. */
    Cycle startRetryDelay = 500'000;
    /**
     * Terminate reserved jobs that run past their maximum wall-clock
     * time (Section 3.2: "a job may be terminated if it runs longer
     * than its maximum wall-clock time"). Off by default: the paper's
     * evaluation relies on tw being an honest expectation, not on
     * killing jobs.
     */
    bool enforceMaxWallClock = false;
    /** Grace period before enforcement, as a fraction of tw. */
    double enforcementGraceFraction = 0.02;
    /**
     * Seed of the node's internal RNG stream (job access-generator
     * seeds). Multi-node engines derive one per node (SplitMix via
     * Rng) so node streams are independent yet reproducible.
     */
    std::uint64_t seed = 0x1234abcdULL;

    /** Derive a config for one Table 2 configuration. */
    static FrameworkConfig forModeConfig(ModeConfig config);
};

/** Per-job result row (one per accepted job). */
struct JobOutcome
{
    JobId id = invalidJob;
    std::string benchmark;
    ExecutionMode mode = ExecutionMode::Strict;
    double elasticSlack = 0.0;
    Cycle arrival = 0;
    Cycle accept = 0;
    Cycle slotStart = 0;
    double startCycle = 0.0;
    double endCycle = 0.0;
    Cycle deadline = 0;
    bool deadlineMet = false;
    double wallClock = 0.0;
    bool autoDowngraded = false;
    bool promotedToStrict = false;
    Cycle promotionTime = 0;
    unsigned stolenWays = 0;
    bool stealingCancelled = false;
    double observedMissIncrease = 0.0;
    /** Cumulative miss increase when cancellation fired (0 if never). */
    double cancelMissIncrease = 0.0;
    double missRate = 0.0;
    double cpi = 0.0;

    bool countsForQos() const
    {
        return mode != ExecutionMode::Opportunistic;
    }
};

/** Aggregate result of one workload run. */
struct WorkloadResult
{
    std::string workloadName;
    ModeConfig config = ModeConfig::AllStrict;
    std::vector<JobOutcome> jobs; // accepted jobs, acceptance order
    /** Completion cycle of the last accepted job (from time 0). */
    double makespan = 0.0;
    std::uint64_t candidatesSubmitted = 0;
    std::uint64_t rejected = 0;
    Cycle lacOverheadCycles = 0;

    /**
     * Fraction of jobs meeting their deadline. For QoS
     * configurations the paper computes this over Strict/Elastic
     * jobs only; for EqualPart over all jobs.
     */
    double deadlineHitRate(bool qos_jobs_only) const;

    /** Throughput relative to @p base (base.makespan / makespan). */
    double throughputVs(const WorkloadResult &base) const;

    /** Modelled LAC occupancy as a fraction of makespan (Sec 7.5). */
    double lacOccupancy() const;

    /** Wall-clock samples of jobs in @p mode (all if mode absent). */
    std::vector<double> wallClocks(ExecutionMode mode) const;
};

/**
 * One CMP node running the full QoS framework (or the EqualPart
 * baseline). Single-use per workload run; construct fresh per run.
 */
class QosFramework
{
  public:
    explicit QosFramework(const FrameworkConfig &config);

    /** Run a complete workload to completion of all accepted jobs. */
    WorkloadResult runWorkload(const WorkloadSpec &spec);

    /**
     * Lower-level API (examples / tests): submit one job at the
     * current simulated time and, if accepted, hook up its execution.
     * @return the job (inspect state() for the decision), or nullptr
     *         if the framework rejected it.
     */
    Job *submitJob(const JobRequest &request, InstCount instructions);

    /** Run the simulation until all submitted jobs complete. */
    void runToCompletion();

    /**
     * Manual mode downgrade (Section 3.3): move an accepted job to a
     * weaker execution mode at the current simulated time.
     *
     * Allowed transitions and their interchangeability conditions:
     *  - Strict -> Elastic(X): X must not exceed the job's deadline
     *    slack (X <= ((td - now) - tw) / tw) and the extended
     *    reservation must still fit — the deadline stays guaranteed.
     *  - Strict/Elastic -> Opportunistic: the reservation is released
     *    entirely; the deadline guarantee is forfeited (the paper's
     *    manually-downgraded Opportunistic jobs reserve nothing).
     * Upgrades are not supported.
     *
     * @return true on success; false if the transition is not
     *         interchangeable, does not fit, or the job is not in a
     *         downgradable state.
     */
    bool downgradeJob(Job &job, const ModeSpec &to);

    /**
     * Cancel an accepted job (user abort): releases its reservation,
     * core, and pool slot. Works on Waiting and Running jobs.
     * @return true if the job was cancelled.
     */
    bool cancelJob(Job &job);

    /** Jobs terminated by max-wall-clock enforcement. */
    std::uint64_t enforcementTerminations() const
    {
        return enforcementKills_;
    }

    /** Compute tw for a request under this config's margin. */
    Cycle maxWallClockFor(const JobRequest &request,
                          InstCount instructions) const;

    /**
     * Memoized standalone CPI of @p benchmark on a @p ways-way
     * partition under @p cmp — the measurement the feedback
     * controller (src/control) derives dynamic SLO setpoints from,
     * and the same calibration maxWallClockFor() builds tw on.
     */
    static double soloCpi(const std::string &benchmark, unsigned ways,
                          const CmpConfig &cmp);

    /**
     * Admission probe without side effects: would this node accept
     * the request right now, and with what slot? Used by multi-node
     * placement (CmpServer / GAC).
     */
    AdmissionDecision probeJob(const JobRequest &request,
                               InstCount instructions) const;

    Simulation &simulation() { return sim_; }
    const Simulation &simulation() const { return sim_; }
    CmpSystem &system() { return sys_; }
    const CmpSystem &system() const { return sys_; }
    LocalAdmissionController &lac() { return lac_; }
    const LocalAdmissionController &lac() const { return lac_; }
    Scheduler &scheduler() { return sched_; }
    const Scheduler &scheduler() const { return sched_; }
    ResourceStealingEngine &stealing() { return steal_; }
    const ResourceStealingEngine &stealing() const { return steal_; }

    const std::vector<std::unique_ptr<Job>> &jobs() const { return jobs_; }

    const FrameworkConfig &config() const { return config_; }

    /**
     * Telemetry: wire @p trace through every layer of this node —
     * LAC (admit/reject), stealing engine (steal/cancel), partitioned
     * cache (repartition), simulation (job start) — plus the
     * framework's own lifecycle events (downgrade, promotion,
     * deadline outcome, termination). Pass nullptr to detach.
     */
    void setTrace(TraceRecorder *trace);

    /** Reserved-start retries that found no free core (diagnostics). */
    std::uint64_t startRetries() const { return startRetries_; }

    /** Jobs submitted but not yet completed/terminated (in flight). */
    std::size_t pendingJobs() const { return pendingCount_; }

    /** Jobs that ran to completion on this node. */
    std::size_t completedJobs() const { return completedCount_; }

  private:
    Job *createJob(const JobRequest &request, InstCount instructions);
    void admitAndPlace(Job *job);
    void placeAccepted(Job *job);
    void tryStartReserved(Job *job);
    void tryPromote(Job *job);
    void onCompletion(JobExecution *exec);
    /** Tear a live job out of the system (cancel / enforcement). */
    void removeJob(Job *job, JobState final_state,
                   const char *cause = "cancelled");
    void scheduleEnforcement(Job *job);
    JobOutcome outcomeOf(const Job &job) const;

    FrameworkConfig config_;
    CmpSystem sys_;
    Simulation sim_;
    LocalAdmissionController lac_;
    Scheduler sched_;
    ResourceStealingEngine steal_;
    TraceRecorder *trace_ = nullptr;
    Rng rng_;

    std::vector<std::unique_ptr<Job>> jobs_;
    std::unordered_map<JobId, Job *> byId_;
    std::size_t completedCount_ = 0;
    std::size_t pendingCount_ = 0;
    std::uint64_t startRetries_ = 0;
    std::uint64_t enforcementKills_ = 0;

    // Workload-run state.
    const WorkloadSpec *spec_ = nullptr;
    std::size_t acceptedCount_ = 0;
    std::size_t completedAccepted_ = 0;
    std::uint64_t candidates_ = 0;
    std::uint64_t rejectedCandidates_ = 0;
    std::vector<Job *> acceptedJobs_;
};

} // namespace cmpqos

#endif // CMPQOS_QOS_FRAMEWORK_HH
