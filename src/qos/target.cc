#include "target.hh"

#include "cache/config.hh"
#include "common/logging.hh"

namespace cmpqos
{

bool
isConvertible(TargetUnits units)
{
    return units == TargetUnits::RUM;
}

std::uint64_t
QosTarget::cacheBytes() const
{
    return static_cast<std::uint64_t>(cacheWays) *
           CacheConfig::l2Default().wayBytes();
}

void
QosTarget::validate(unsigned max_cores, unsigned max_ways) const
{
    if (cores == 0)
        cmpqos_fatal("QoS target demands zero cores");
    if (cores > max_cores)
        cmpqos_fatal("QoS target demands %u cores, CMP has %u", cores,
                     max_cores);
    if (cacheWays > max_ways)
        cmpqos_fatal("QoS target demands %u ways, L2 has %u", cacheWays,
                     max_ways);
    if (bandwidthPercent > 100)
        cmpqos_fatal("QoS target demands %u%% of peak bandwidth",
                     bandwidthPercent);
    if (hasTimeslot) {
        if (maxWallClock == 0)
            cmpqos_fatal("timeslot target with zero max wall-clock time");
        if (relativeDeadline < maxWallClock)
            cmpqos_fatal("deadline %llu shorter than max wall-clock %llu",
                         static_cast<unsigned long long>(relativeDeadline),
                         static_cast<unsigned long long>(maxWallClock));
    }
}

QosTarget
QosTarget::small()
{
    QosTarget t;
    t.cores = 1;
    t.cacheWays = 2;
    return t;
}

QosTarget
QosTarget::medium()
{
    QosTarget t;
    t.cores = 1;
    t.cacheWays = 7;
    return t;
}

QosTarget
QosTarget::large()
{
    QosTarget t;
    t.cores = 2;
    t.cacheWays = 14;
    return t;
}

} // namespace cmpqos
