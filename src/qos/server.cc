#include "server.hh"

#include "common/logging.hh"

namespace cmpqos
{

CmpServer::CmpServer(int num_nodes, const FrameworkConfig &node_config,
                     GacPolicy policy)
    : placed_(static_cast<std::size_t>(num_nodes), 0), policy_(policy)
{
    cmpqos_assert(num_nodes > 0, "server needs at least one node");
    nodes_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n)
        nodes_.push_back(std::make_unique<QosFramework>(node_config));
}

QosFramework &
CmpServer::node(NodeId n)
{
    cmpqos_assert(n >= 0 && n < numNodes(), "node %d out of range", n);
    return *nodes_[static_cast<std::size_t>(n)];
}

ServerDecision
CmpServer::submit(const JobRequest &request, InstCount instructions)
{
    ServerDecision best;
    for (int n = 0; n < numNodes(); ++n) {
        ++probes_;
        const AdmissionDecision d =
            nodes_[static_cast<std::size_t>(n)]->probeJob(request,
                                                          instructions);
        if (!d.accepted)
            continue;
        if (policy_ == GacPolicy::FirstFit) {
            best.accepted = true;
            best.node = n;
            best.local = d;
            break;
        }
        if (!best.accepted || d.slotStart < best.local.slotStart) {
            best.accepted = true;
            best.node = n;
            best.local = d;
        }
    }
    if (!best.accepted) {
        ++rejected_;
        return best;
    }
    Job *job = nodes_[static_cast<std::size_t>(best.node)]->submitJob(
        request, instructions);
    if (job == nullptr) {
        // Probe said yes but the commit failed — should not happen
        // since probe and submit run back-to-back at the same time.
        cmpqos_panic("probe/submit disagreement on node %d", best.node);
    }
    ++accepted_;
    ++placed_[static_cast<std::size_t>(best.node)];
    best.job = job;
    return best;
}

void
CmpServer::runToCompletion()
{
    // Nodes share nothing; draining them one after another yields
    // the same per-node timelines as running them concurrently.
    for (auto &node : nodes_)
        node->runToCompletion();
}

std::size_t
CmpServer::placedOn(NodeId n) const
{
    cmpqos_assert(n >= 0 && n < numNodes(), "node out of range");
    return placed_[static_cast<std::size_t>(n)];
}

bool
CmpServer::allQosDeadlinesMet() const
{
    for (const auto &node : nodes_) {
        for (const auto &job : node->jobs()) {
            if (job->state() != JobState::Completed)
                continue;
            if (job->countsForQos() && !job->deadlineMet())
                return false;
        }
    }
    return true;
}

} // namespace cmpqos
