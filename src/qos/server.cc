#include "server.hh"

#include "common/logging.hh"

namespace cmpqos
{

CmpServer::CmpServer(int num_nodes, const FrameworkConfig &node_config,
                     GacPolicy policy)
    : placed_(static_cast<std::size_t>(num_nodes), 0),
      alive_(static_cast<std::size_t>(num_nodes), 1), policy_(policy)
{
    cmpqos_assert(num_nodes > 0, "server needs at least one node");
    nodes_.reserve(static_cast<std::size_t>(num_nodes));
    for (int n = 0; n < num_nodes; ++n)
        nodes_.push_back(std::make_unique<QosFramework>(node_config));
}

QosFramework &
CmpServer::node(NodeId n)
{
    cmpqos_assert(n >= 0 && n < numNodes(), "node %d out of range", n);
    return *nodes_[static_cast<std::size_t>(n)];
}

void
CmpServer::attachTelemetry(TraceCollector &collector)
{
    cmpqos_assert(collector.producers() >= numNodes() + 1,
                  "telemetry collector has %d producers, server needs "
                  "%d (nodes + driver)",
                  collector.producers(), numNodes() + 1);
    trace_ = collector.driverRecorder();
    for (int n = 0; n < numNodes(); ++n)
        nodes_[static_cast<std::size_t>(n)]->setTrace(
            collector.nodeRecorder(n));
}

void
CmpServer::setNodeAlive(NodeId n, bool alive)
{
    admission_.grant();
    cmpqos_assert(n >= 0 && n < numNodes(), "node %d out of range", n);
    alive_[static_cast<std::size_t>(n)] = alive ? 1 : 0;
}

bool
CmpServer::nodeReachable(NodeId n)
{
    if (!alive_[static_cast<std::size_t>(n)])
        return false;
    if (!probeFaults_)
        return true;
    const unsigned failures = probeFaults_(n);
    if (failures == 0)
        return true;
    if (failures > retry_.maxRetries) {
        ++probeTimeouts_;
        return false;
    }
    probeRetries_ += failures;
    backoffCycles_ += retry_.totalBackoff(failures);
    return true;
}

ServerDecision
CmpServer::submit(const JobRequest &request, InstCount instructions)
{
    admission_.grant();
    ServerDecision best;
    std::size_t best_load = 0;
    unsigned best_ways = 0;
    for (int n = 0; n < numNodes(); ++n) {
        if (!nodeReachable(n))
            continue;
        QosFramework &node = *nodes_[static_cast<std::size_t>(n)];
        ++probes_;
        const AdmissionDecision d = node.probeJob(request, instructions);
        if (!d.accepted)
            continue;
        if (policy_ == GacPolicy::FirstFit) {
            best.accepted = true;
            best.node = n;
            best.local = d;
            break;
        }
        bool better = !best.accepted;
        if (!better && policy_ == GacPolicy::EarliestSlot)
            better = d.slotStart < best.local.slotStart;
        if (!better && policy_ == GacPolicy::LeastLoaded) {
            const std::size_t load = node.pendingJobs();
            const unsigned ways = node.lac()
                                      .timeline()
                                      .reservedAt(node.simulation().now())
                                      .ways;
            better = load < best_load ||
                     (load == best_load && ways < best_ways);
        }
        if (better) {
            best.accepted = true;
            best.node = n;
            best.local = d;
            if (policy_ == GacPolicy::LeastLoaded) {
                best_load = node.pendingJobs();
                best_ways =
                    node.lac()
                        .timeline()
                        .reservedAt(node.simulation().now())
                        .ways;
            }
        }
    }
    if (!best.accepted) {
        ++rejected_;
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent e =
                traceEvent(TraceEventType::JobRejected,
                           nodes_.front()->simulation().now());
            e.setName("no node accepted");
            trace_->emit(e);
        }
        return best;
    }
    Job *job = nodes_[static_cast<std::size_t>(best.node)]->submitJob(
        request, instructions);
    if (job == nullptr) {
        // Probe said yes but the commit failed — should not happen
        // since probe and submit run back-to-back at the same time.
        cmpqos_panic("probe/submit disagreement on node %d", best.node);
    }
    ++accepted_;
    ++placed_[static_cast<std::size_t>(best.node)];
    best.job = job;
    if (trace_ != nullptr && trace_->active()) {
        const auto n = static_cast<std::size_t>(best.node);
        TraceEvent e = traceEvent(TraceEventType::ArrivalPlaced,
                                  nodes_[n]->simulation().now(),
                                  job->id());
        e.a = static_cast<std::uint64_t>(best.node);
        e.b = static_cast<std::uint64_t>(job->id());
        trace_->emit(e);
    }
    return best;
}

ServerDecision
CmpServer::submitNegotiated(const JobRequest &request,
                            InstCount instructions, double max_factor,
                            double step_fraction)
{
    admission_.grant();
    ServerDecision d = submit(request, instructions);
    if (d.accepted)
        return d;
    // Renegotiation: the user accepts the smallest deadline
    // relaxation under which some node can take the job.
    JobRequest relaxed = request;
    for (double f = 1.0 + step_fraction; f <= max_factor + 1e-9;
         f += step_fraction) {
        relaxed.deadlineFactor = request.deadlineFactor * f;
        bool fits = false;
        for (int n = 0; n < numNodes() && !fits; ++n) {
            if (!nodeReachable(n))
                continue;
            ++probes_;
            fits = nodes_[static_cast<std::size_t>(n)]
                       ->probeJob(relaxed, instructions)
                       .accepted;
        }
        if (!fits)
            continue;
        // submit() re-probes and commits; undo the failed attempt's
        // rejected tally so the job counts once, as accepted.
        --rejected_;
        d = submit(relaxed, instructions);
        cmpqos_assert(d.accepted,
                      "negotiated probe accepted but submit rejected");
        d.negotiated = true;
        ++negotiated_;
        if (trace_ != nullptr && trace_->active()) {
            TraceEvent e = traceEvent(
                TraceEventType::JobNegotiated,
                nodes_[static_cast<std::size_t>(d.node)]
                    ->simulation()
                    .now(),
                d.job->id());
            e.a = static_cast<std::uint64_t>(d.node);
            e.x = f;
            e.setName(request.benchmark);
            trace_->emit(e);
        }
        return d;
    }
    return d;
}

void
CmpServer::runToCompletion()
{
    // Nodes share nothing; draining them one after another yields
    // the same per-node timelines as running them concurrently.
    for (auto &node : nodes_)
        node->runToCompletion();
}

std::size_t
CmpServer::placedOn(NodeId n) const
{
    admission_.grant();
    cmpqos_assert(n >= 0 && n < numNodes(), "node out of range");
    return placed_[static_cast<std::size_t>(n)];
}

bool
CmpServer::allQosDeadlinesMet() const
{
    for (const auto &node : nodes_) {
        for (const auto &job : node->jobs()) {
            if (job->state() != JobState::Completed)
                continue;
            if (job->countsForQos() && !job->deadlineMet())
                return false;
        }
    }
    return true;
}

} // namespace cmpqos
