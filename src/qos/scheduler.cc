#include "scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cmpqos
{

Scheduler::Scheduler(Simulation &sim, CmpSystem &sys)
    : sim_(sim), sys_(sys),
      reservedOn_(static_cast<std::size_t>(sys.numCores()), invalidJob)
{
}

JobId
Scheduler::reservedOccupant(CoreId core) const
{
    cmpqos_assert(core >= 0 && core < sys_.numCores(), "bad core");
    return reservedOn_[static_cast<std::size_t>(core)];
}

int
Scheduler::reservedCores() const
{
    int n = 0;
    for (JobId j : reservedOn_)
        if (j != invalidJob)
            ++n;
    return n;
}

CoreId
Scheduler::pickReservedCore() const
{
    // Prefer an unreserved core that is also idle; fall back to the
    // unreserved core with the fewest queued pool jobs.
    CoreId best = invalidCore;
    std::size_t best_len = 0;
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
            continue;
        const std::size_t len = sys_.queueLength(c);
        if (len == 0)
            return c;
        if (best == invalidCore || len < best_len) {
            best = c;
            best_len = len;
        }
    }
    return best;
}

CoreId
Scheduler::pickPoolCore() const
{
    CoreId best = invalidCore;
    std::size_t best_len = 0;
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
            continue;
        const std::size_t len = sys_.queueLength(c);
        if (best == invalidCore || len < best_len) {
            best = c;
            best_len = len;
        }
    }
    return best;
}

void
Scheduler::markPoolCore(CoreId core)
{
    sys_.l2().setTargetWays(core, 0);
    sys_.l2().setCoreClass(core, CoreClass::Opportunistic);
    if (sys_.config().bandwidthPartitioning)
        sys_.bandwidth()->setShare(core, 0);
}

void
Scheduler::evictPoolJobs(CoreId core)
{
    while (sys_.queueLength(core) > 0) {
        JobExecution *exec = sys_.runningJob(core);
        sys_.dequeueJob(exec);
        // Find its policy-side job among pool jobs.
        auto it = std::find_if(poolJobs_.begin(), poolJobs_.end(),
                               [&](Job *j) { return j->exec() == exec; });
        cmpqos_assert(it != poolJobs_.end(),
                      "pool core hosted an unknown job");
        Job *job = *it;

        CoreId dest = invalidCore;
        // Any other unreserved core takes the migrant.
        std::size_t best_len = 0;
        for (int c = 0; c < sys_.numCores(); ++c) {
            if (c == core ||
                reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
                continue;
            const std::size_t len = sys_.queueLength(c);
            if (dest == invalidCore || len < best_len) {
                dest = c;
                best_len = len;
            }
        }
        if (dest == invalidCore) {
            // Nowhere to run: park until a core frees up.
            poolJobs_.erase(it);
            parked_.push_back(job);
            job->setState(JobState::Waiting);
        } else {
            markPoolCore(dest);
            sim_.startJobOn(dest, exec);
        }
    }
}

CoreId
Scheduler::startReserved(Job &job)
{
    const CoreId core = pickReservedCore();
    if (core == invalidCore)
        return invalidCore;

    // Way headroom check: reserved targets may transiently collide if
    // a predecessor overran its slot; defer rather than over-commit.
    unsigned reserved_ways = 0;
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
            reserved_ways += sys_.l2().targetWays(c);
    }
    if (reserved_ways + job.target().cacheWays > sys_.l2().config().assoc)
        return invalidCore;

    evictPoolJobs(core);
    sys_.l2().setTargetWays(core, job.target().cacheWays);
    sys_.l2().setCoreClass(core, CoreClass::Reserved);
    if (sys_.config().bandwidthPartitioning)
        sys_.bandwidth()->setShare(core, job.target().bandwidthPercent);
    reservedOn_[static_cast<std::size_t>(core)] = job.id();
    job.assignedCore = core;
    job.setState(JobState::Running);
    sim_.startJobOn(core, job.exec());
    return core;
}

void
Scheduler::startOpportunistic(Job &job)
{
    poolJobs_.push_back(&job);
    const CoreId core = pickPoolCore();
    if (core == invalidCore) {
        // Every core is reserved right now; wait for one to free.
        poolJobs_.pop_back();
        parked_.push_back(&job);
        job.setState(JobState::Waiting);
        return;
    }
    markPoolCore(core);
    job.setState(JobState::Running);
    sim_.startJobOn(core, job.exec());
}

CoreId
Scheduler::promote(Job &job)
{
    const CoreId core = pickReservedCore();
    if (core == invalidCore)
        return invalidCore;

    unsigned reserved_ways = 0;
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
            reserved_ways += sys_.l2().targetWays(c);
    }
    if (reserved_ways + job.target().cacheWays > sys_.l2().config().assoc)
        return invalidCore;

    // Unhook from the pool (it may be parked rather than running).
    sys_.dequeueJob(job.exec());
    std::erase(poolJobs_, &job);
    std::erase(parked_, &job);

    evictPoolJobs(core);
    sys_.l2().setTargetWays(core, job.target().cacheWays);
    sys_.l2().setCoreClass(core, CoreClass::Reserved);
    if (sys_.config().bandwidthPartitioning)
        sys_.bandwidth()->setShare(core, job.target().bandwidthPercent);
    reservedOn_[static_cast<std::size_t>(core)] = job.id();
    job.assignedCore = core;
    job.setState(JobState::Running);
    sim_.startJobOn(core, job.exec());
    return core;
}

void
Scheduler::demoteToPool(Job &job)
{
    const CoreId core = job.assignedCore;
    cmpqos_assert(core != invalidCore &&
                      reservedOn_[static_cast<std::size_t>(core)] ==
                          job.id(),
                  "demoteToPool on a job that is not pinned");
    reservedOn_[static_cast<std::size_t>(core)] = invalidJob;
    sys_.dequeueJob(job.exec());
    job.assignedCore = invalidCore;

    // The freed core becomes a pool member; re-place the job there
    // (it keeps its cached blocks, now owned by a pool-class core).
    markPoolCore(core);
    poolJobs_.push_back(&job);
    sim_.startJobOn(core, job.exec());
    unpark();
}

void
Scheduler::jobFinished(Job &job)
{
    const CoreId core = job.assignedCore;
    if (core != invalidCore &&
        reservedOn_[static_cast<std::size_t>(core)] == job.id()) {
        reservedOn_[static_cast<std::size_t>(core)] = invalidJob;
        sys_.l2().releaseCore(core);
        if (sys_.config().bandwidthPartitioning)
            sys_.bandwidth()->setShare(core, 0);
    } else {
        std::erase(poolJobs_, &job);
        std::erase(parked_, &job); // cancelled while parked
    }
    job.setState(JobState::Completed);

    unpark();

    // Housekeeping: release empty unreserved cores, rebalance crowded
    // pool cores onto newly idle ones.
    for (int c = 0; c < sys_.numCores(); ++c) {
        if (reservedOn_[static_cast<std::size_t>(c)] != invalidJob)
            continue;
        if (sys_.queueLength(c) == 0) {
            // Steal one job from the most crowded pool core.
            CoreId crowded = invalidCore;
            std::size_t most = 1;
            for (int o = 0; o < sys_.numCores(); ++o) {
                if (o == c ||
                    reservedOn_[static_cast<std::size_t>(o)] != invalidJob)
                    continue;
                if (sys_.queueLength(o) > most) {
                    most = sys_.queueLength(o);
                    crowded = o;
                }
            }
            if (crowded != invalidCore) {
                JobExecution *mover = sys_.runningJob(crowded);
                sys_.dequeueJob(mover);
                markPoolCore(c);
                sim_.startJobOn(c, mover);
            } else {
                sys_.l2().releaseCore(c);
            }
        }
    }
}

void
Scheduler::unpark()
{
    while (!parked_.empty()) {
        const CoreId core = pickPoolCore();
        if (core == invalidCore)
            return;
        Job *job = parked_.front();
        parked_.pop_front();
        poolJobs_.push_back(job);
        markPoolCore(core);
        job->setState(JobState::Running);
        sim_.startJobOn(core, job->exec());
    }
}

} // namespace cmpqos
