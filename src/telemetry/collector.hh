/**
 * @file
 * The trace collector: owns one SPSC ring per producer plus the
 * runtime enable toggle, and drains the rings into attached sinks at
 * quantum barriers.
 *
 * Producer convention (shared by ClusterEngine and CmpServer):
 * producer 0 is the driver / global-admission thread, producer i+1 is
 * node i. drain() always empties rings in producer order, so for a
 * fixed seed the delivered event stream is identical at any worker
 * thread count — each node's events are deterministic and internally
 * ordered, and barrier-stepping keeps every drain point aligned with
 * the same virtual-time boundary.
 */

#ifndef CMPQOS_TELEMETRY_COLLECTOR_HH
#define CMPQOS_TELEMETRY_COLLECTOR_HH

#include <atomic>
#include <memory>
#include <vector>

#include "common/annotations.hh"
#include "telemetry/recorder.hh"
#include "telemetry/sink.hh"

namespace cmpqos
{

/** Collector configuration. */
struct TelemetryConfig
{
    /** Ring slots per producer (rounded up to a power of two).
     *  88-byte events: the default buffers ~2.8MB per producer. */
    std::size_t ringCapacity = 1u << 15;
    /** Initial runtime-toggle state. */
    bool enabled = true;
};

/**
 * Per-run telemetry hub. Not copyable; recorders point back into it.
 */
class TraceCollector
{
  public:
    /**
     * @param producers ring count; use nodes + 1 (producer 0 is the
     *        driver / global-admission side).
     */
    explicit TraceCollector(int producers,
                            const TelemetryConfig &config =
                                TelemetryConfig());

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    int producers() const { return static_cast<int>(recorders_.size()); }

    /** The driver / global-admission recorder (producer 0). */
    TraceRecorder *driverRecorder() { return recorders_[0].get(); }

    /** Node @p n's recorder (producer n + 1). */
    TraceRecorder *nodeRecorder(NodeId n);

    /** Runtime toggle: a relaxed-atomic branch on the hot path. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Attach @p sink (not owned) to receive drained events. */
    void addSink(TraceSink *sink);

    /**
     * Drain every ring (producer order) into the sinks.
     * @return events delivered by this call.
     */
    std::size_t drain();

    /**
     * Deliver an externally-captured event batch straight to the
     * sinks (federation: shard controllers drain their own rings at
     * the quantum barrier and ship the batch to the coordinator,
     * which replays it here in shard order — preserving the exact
     * producer-order stream a single-process run would deliver).
     * Driver/consumer thread only, at a quantum barrier.
     */
    void deliverExternal(const TraceEvent *events, std::size_t count);

    /** Fold ring-full drop counts reported by external (shard-side)
     *  collectors into this capture's meta totals. */
    void
    noteExternalDrops(std::uint64_t drops)
    {
        consumer_.grant();
        externalDrops_ += drops;
    }

    /**
     * Final drain + close every sink with host-side metadata.
     * @param seed @param threads @param wall_seconds run identity
     *        for the meta record (never on event lines).
     */
    void finish(std::uint64_t seed, unsigned threads,
                double wall_seconds);

    /** Events refused on full rings, summed over producers. */
    std::uint64_t totalDrops() const;

    /** Events delivered to sinks so far. */
    std::uint64_t
    eventsDelivered() const
    {
        consumer_.grant();
        return delivered_;
    }

  private:
    /**
     * The consumer role: sinks and delivery accounting belong to the
     * one thread that drains at quantum barriers (the driver). The
     * producer side never touches these — it only sees its own
     * recorder's SPSC ring.
     */
    OwnerRole consumer_;

    std::atomic<bool> enabled_{true};
    std::vector<std::unique_ptr<TraceRecorder>> recorders_;
    std::vector<TraceSink *> sinks_ CMPQOS_GUARDED_BY(consumer_);
    std::uint64_t delivered_ CMPQOS_GUARDED_BY(consumer_) = 0;
    std::uint64_t externalDrops_ CMPQOS_GUARDED_BY(consumer_) = 0;
    bool finished_ CMPQOS_GUARDED_BY(consumer_) = false;
};

} // namespace cmpqos

#endif // CMPQOS_TELEMETRY_COLLECTOR_HH
