#include "sink.hh"

#include <cstdio>
#include <ostream>

namespace cmpqos
{

namespace
{

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Cycles -> microseconds at the simulated 2GHz core clock. */
std::string
cyclesToUs(Cycle c)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f",
                  static_cast<double>(c) / 2000.0);
    return buf;
}

/** Chrome pid row: driver/GAC (node -1) is 0, node n is n+1. */
int
chromePid(const TraceEvent &e)
{
    return static_cast<int>(e.node) + 1;
}

/** Stable async-span id for one job on one node. */
std::uint64_t
spanId(const TraceEvent &e)
{
    return (static_cast<std::uint64_t>(e.node + 1) << 32) |
           static_cast<std::uint32_t>(e.job);
}

std::string
argsJson(const TraceEvent &e)
{
    const TracePayloadKeys &k = payloadKeys(e.type);
    std::string s = "{";
    auto add = [&](const std::string &field) {
        if (s.size() > 1)
            s += ',';
        s += field;
    };
    if (k.a != nullptr)
        add("\"" + std::string(k.a) + "\":" + std::to_string(e.a));
    if (k.b != nullptr)
        add("\"" + std::string(k.b) + "\":" + std::to_string(e.b));
    if (k.x != nullptr)
        add("\"" + std::string(k.x) + "\":" + num(e.x));
    if (k.name != nullptr)
        add("\"" + std::string(k.name) + "\":\"" + escapeJson(e.name) +
            "\"");
    s += '}';
    return s;
}

} // namespace

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

JsonlTraceSink::JsonlTraceSink(std::ostream &os) : os_(os) {}

std::string
JsonlTraceSink::formatLine(const TraceEvent &e, int shard)
{
    std::string line = "{\"ev\":\"";
    line += traceEventName(e.type);
    line += "\",\"t\":" + std::to_string(e.time);
    line += ",\"node\":" + std::to_string(e.node);
    if (shard >= 0)
        line += ",\"shard\":" + std::to_string(shard);
    line += ",\"job\":" + std::to_string(e.job);
    const TracePayloadKeys &k = payloadKeys(e.type);
    if (k.a != nullptr)
        line += ",\"" + std::string(k.a) + "\":" + std::to_string(e.a);
    if (k.b != nullptr)
        line += ",\"" + std::string(k.b) + "\":" + std::to_string(e.b);
    if (k.x != nullptr)
        line += ",\"" + std::string(k.x) + "\":" + num(e.x);
    if (k.name != nullptr)
        line += ",\"" + std::string(k.name) + "\":\"" +
                escapeJson(e.name) + "\"";
    line += '}';
    return line;
}

void
JsonlTraceSink::consume(const TraceEvent &e)
{
    int shard = -1;
    if (e.node >= 0 &&
        static_cast<std::size_t>(e.node) < nodeShard_.size())
        shard = nodeShard_[static_cast<std::size_t>(e.node)];
    os_ << formatLine(e, shard) << '\n';
}

void
JsonlTraceSink::close(const TraceMeta &meta)
{
    // The ONLY line with host-side fields: everything above it is
    // simulation-determined and thread-count-invariant.
    os_ << "{\"ev\":\"meta\",\"seed\":" << meta.seed
        << ",\"nodes\":" << meta.nodes << ",\"threads\":" << meta.threads
        << ",\"events\":" << meta.events << ",\"drops\":" << meta.drops
        << ",\"wall_seconds\":" << num(meta.wallSeconds) << "}\n";
    os_.flush();
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

void
ChromeTraceSink::entry(const std::string &body)
{
    if (!first_)
        os_ << ',';
    first_ = false;
    os_ << '\n' << body;
}

void
ChromeTraceSink::consume(const TraceEvent &e)
{
    const std::string pid = std::to_string(chromePid(e));
    const std::string ts = cyclesToUs(e.time);

    // Job execution renders as an async span from start to outcome.
    const bool opensSpan = e.type == TraceEventType::JobStarted;
    const bool closesSpan = e.type == TraceEventType::DeadlineHit ||
                            e.type == TraceEventType::DeadlineMiss ||
                            e.type == TraceEventType::JobTerminated;
    if (opensSpan || closesSpan) {
        entry("{\"name\":\"job-" + std::to_string(e.job) +
              "\",\"cat\":\"job\",\"ph\":\"" + (opensSpan ? 'b' : 'e') +
              std::string("\",\"id\":") + std::to_string(spanId(e)) +
              ",\"ts\":" + ts + ",\"pid\":" + pid + ",\"tid\":0}");
    }
    entry("{\"name\":\"" + std::string(traceEventName(e.type)) +
          "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + ts + ",\"pid\":" + pid +
          ",\"tid\":0,\"args\":" + argsJson(e) + "}");
}

void
ChromeTraceSink::close(const TraceMeta &meta)
{
    // Name the pid rows so Perfetto shows "node N" instead of numbers.
    entry("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"driver/GAC\"}}");
    for (int n = 0; n < meta.nodes; ++n)
        entry("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(n + 1) + ",\"args\":{\"name\":\"node " +
              std::to_string(n) + "\"}}");
    os_ << "\n],\"otherData\":{\"seed\":" << meta.seed
        << ",\"threads\":" << meta.threads << ",\"events\":" << meta.events
        << ",\"drops\":" << meta.drops
        << ",\"wall_seconds\":" << num(meta.wallSeconds) << "}}\n";
    os_.flush();
}

} // namespace cmpqos
