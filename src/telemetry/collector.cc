#include "collector.hh"

#include "common/logging.hh"

namespace cmpqos
{

TraceCollector::TraceCollector(int producers, const TelemetryConfig &config)
{
    cmpqos_assert(producers > 0, "collector needs at least one producer");
    enabled_.store(config.enabled, std::memory_order_relaxed);
    recorders_.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p)
        recorders_.push_back(std::make_unique<TraceRecorder>(
            static_cast<NodeId>(p - 1), config.ringCapacity, &enabled_));
}

TraceRecorder *
TraceCollector::nodeRecorder(NodeId n)
{
    cmpqos_assert(n >= 0 && n + 1 < producers(),
                  "no recorder for node %d (have %d producers)", n,
                  producers());
    return recorders_[static_cast<std::size_t>(n) + 1].get();
}

void
TraceCollector::addSink(TraceSink *sink)
{
    consumer_.grant();
    cmpqos_assert(sink != nullptr, "null sink");
    sinks_.push_back(sink);
}

std::size_t
TraceCollector::drain()
{
    // Quantum barrier: the driver thread is the sole consumer, and
    // every producer ring has a happens-before edge to this point.
    consumer_.grant();
    std::size_t delivered = 0;
    TraceEvent e;
    for (auto &rec : recorders_) {
        while (rec->ring().tryPop(e)) {
            for (TraceSink *sink : sinks_)
                sink->consume(e);
            ++delivered;
        }
    }
    delivered_ += delivered;
    return delivered;
}

void
TraceCollector::deliverExternal(const TraceEvent *events,
                                std::size_t count)
{
    // Same barrier protocol as drain(): the driver thread replays a
    // shard's already-drained batch, so ordering is whatever the
    // caller establishes (shard order at a quantum barrier).
    consumer_.grant();
    for (std::size_t i = 0; i < count; ++i) {
        for (TraceSink *sink : sinks_)
            sink->consume(events[i]);
    }
    delivered_ += count;
}

void
TraceCollector::finish(std::uint64_t seed, unsigned threads,
                       double wall_seconds)
{
    consumer_.grant();
    cmpqos_assert(!finished_, "collector finished twice");
    finished_ = true;
    drain();
    TraceMeta meta;
    meta.seed = seed;
    meta.nodes = producers() - 1;
    meta.threads = threads;
    meta.drops = totalDrops() + externalDrops_;
    meta.events = delivered_;
    meta.wallSeconds = wall_seconds;
    for (TraceSink *sink : sinks_)
        sink->close(meta);
}

std::uint64_t
TraceCollector::totalDrops() const
{
    std::uint64_t drops = 0;
    for (const auto &rec : recorders_)
        drops += rec->drops();
    return drops;
}

} // namespace cmpqos
