#include "event.hh"

#include "common/logging.hh"

namespace cmpqos
{

namespace
{

struct TypeRow
{
    const char *name;
    TracePayloadKeys keys;
};

// Indexed by TraceEventType. Keys name the JSONL fields the generic
// payload slots map onto, so exporter output and the dump CLI agree.
const TypeRow rows[numTraceEventTypes] = {
    {"job-submitted", {"tier", "instructions", "deadline_factor",
                       "benchmark"}},
    {"job-admitted", {"slot_start", "slot_end", "deadline", "benchmark"}},
    {"job-rejected", {nullptr, nullptr, nullptr, "reason"}},
    // Payload keys must not collide with the top-level JSONL fields
    // (ev/t/node/job), hence "target_node" for placement targets.
    {"job-negotiated", {"target_node", nullptr, "factor", "benchmark"}},
    {"arrival-placed", {"target_node", "local_job", nullptr, nullptr}},
    {"job-started", {"core", nullptr, nullptr, nullptr}},
    {"mode-downgrade", {"from", "to", "slack", "cause"}},
    {"mode-promoted", {"core", nullptr, nullptr, nullptr}},
    {"way-stolen", {"core", "stolen_total", "miss_increase", nullptr}},
    {"way-returned", {"core", "ways_returned", nullptr, nullptr}},
    {"steal-cancelled", {"core", "executed", "miss_increase", nullptr}},
    {"repartition", {"core", "new_ways", "old_ways", nullptr}},
    {"deadline-hit", {"deadline", "mode", "wall_clock", nullptr}},
    {"deadline-miss", {"deadline", "mode", "wall_clock", nullptr}},
    {"job-terminated", {nullptr, nullptr, nullptr, "cause"}},
    {"quantum-begin", {"target", nullptr, nullptr, nullptr}},
    {"quantum-end", {"target", nullptr, nullptr, nullptr}},
    {"node-crashed", {"target_node", "quantum", nullptr, nullptr}},
    {"node-restarted", {"target_node", "quantum", nullptr, nullptr}},
    {"probe-dropped", {"target_node", nullptr, nullptr, nullptr}},
    {"probe-timeout", {"target_node", "retries", nullptr, "outcome"}},
    {"dup-reply-dropped", {"target_node", nullptr, nullptr, nullptr}},
    {"quantum-stalled", {"target", "stall_cycles", nullptr, nullptr}},
    {"job-failed", {"target_node", "local_job", nullptr, "cause"}},
    {"job-relocated", {"from_node", "to_node", nullptr, "outcome"}},
    {"controller-retune", {"old_value", "new_value", "slack", "knob"}},
    {"frequency-changed", {"core", "new_step", "old_step", nullptr}},
};

} // namespace

const char *
traceEventName(TraceEventType t)
{
    const auto i = static_cast<std::size_t>(t);
    cmpqos_assert(i < numTraceEventTypes, "bad event type %zu", i);
    return rows[i].name;
}

bool
traceEventFromName(std::string_view name, TraceEventType &out)
{
    for (std::size_t i = 0; i < numTraceEventTypes; ++i) {
        if (name == rows[i].name) {
            out = static_cast<TraceEventType>(i);
            return true;
        }
    }
    return false;
}

const TracePayloadKeys &
payloadKeys(TraceEventType t)
{
    const auto i = static_cast<std::size_t>(t);
    cmpqos_assert(i < numTraceEventTypes, "bad event type %zu", i);
    return rows[i].keys;
}

} // namespace cmpqos
