/**
 * @file
 * Fixed-capacity single-producer / single-consumer ring buffer for
 * trace events.
 *
 * The producer side is the hot path (a worker thread advancing a node
 * co-simulation); it must never allocate, lock, or wait. tryPush is a
 * bounds check plus a struct copy plus one release store; when the
 * ring is full the event is simply refused and the caller counts a
 * drop. The consumer side is the TraceSink drain running at quantum
 * barriers on the driver thread.
 *
 * "Single producer" means one thread at a time with a happens-before
 * edge at every ownership handoff — exactly what the cluster engine's
 * barrier-stepped loop guarantees for each node's worker (see
 * node_worker.hh). The acquire/release pairs below make the ring safe
 * even when producer and consumer genuinely run concurrently, which
 * the telemetry tests exercise under TSan.
 */

#ifndef CMPQOS_TELEMETRY_RING_HH
#define CMPQOS_TELEMETRY_RING_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/annotations.hh"
#include "common/logging.hh"
#include "telemetry/event.hh"

namespace cmpqos
{

/**
 * Lock-free SPSC ring of TraceEvents.
 */
class SpscEventRing
{
  public:
    /** @param capacity slots; rounded up to a power of two, >= 2. */
    explicit SpscEventRing(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    std::size_t capacity() const { return buf_.size(); }

    /**
     * Producer: append @p e unless the ring is full.
     * @return false (event refused, caller counts a drop) when full.
     */
    bool
    tryPush(const TraceEvent &e)
    {
        // SPSC contract: exactly one producer thread at a time (the
        // node's current owner under the barrier handoff).
        producer_.grant();
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        if (tail - head >= buf_.size())
            return false;
        buf_[tail & mask_] = e;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: pop the oldest event into @p out.
     * @return false when the ring is empty.
     */
    bool
    tryPop(TraceEvent &out)
    {
        // SPSC contract: exactly one consumer thread (the collector's
        // barrier-time drain on the driver thread).
        consumer_.grant();
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false;
        out = buf_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Events currently buffered (approximate under concurrency). */
    std::size_t
    size() const
    {
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }

  private:
    /**
     * Endpoint roles. The slot array itself is handed between the
     * endpoints by the acquire/release cursor protocol (which the
     * static analysis cannot model), so the roles enforce only the
     * calling discipline: tryPush is producer-side, tryPop is
     * consumer-side, and each side is single-threaded.
     */
    OwnerRole producer_;
    OwnerRole consumer_;

    std::vector<TraceEvent> buf_;
    std::size_t mask_ = 0;
    /** Consumer cursor (padded away from the producer's). */
    alignas(64) std::atomic<std::uint64_t> head_{0};
    /** Producer cursor. */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace cmpqos

#endif // CMPQOS_TELEMETRY_RING_HH
