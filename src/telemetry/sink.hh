/**
 * @file
 * Trace sinks: where drained events go.
 *
 * Two concrete exporters are provided. JsonlTraceSink writes one
 * self-describing JSON object per line (payload fields named per
 * event type — the format tools/telemetry_dump consumes), ending with
 * a single `"ev":"meta"` line that carries ALL host-side values
 * (wall-clock seconds, worker-thread count, drop totals). Event lines
 * contain only simulation-determined fields, which is what makes a
 * captured event stream byte-identical across worker-thread counts.
 *
 * ChromeTraceSink writes the Chrome trace-event JSON object format —
 * open the file in chrome://tracing or https://ui.perfetto.dev. Each
 * node maps to a pid row; job executions render as async spans and
 * everything else as instant events. Timestamps convert cycles to
 * microseconds at the simulated 2GHz clock.
 *
 * Both exporters escape quotes, backslashes, and control characters
 * in every string they emit (benchmark names, reasons) — hostile job
 * names must not corrupt the stream.
 */

#ifndef CMPQOS_TELEMETRY_SINK_HH
#define CMPQOS_TELEMETRY_SINK_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/event.hh"

namespace cmpqos
{

/** Escape a string for inclusion in a JSON string literal. */
std::string escapeJson(std::string_view s);

/** Host-side run summary passed to sinks when a capture closes. */
struct TraceMeta
{
    std::uint64_t seed = 0;
    int nodes = 0;
    unsigned threads = 0;
    /** Events refused on full rings, summed over producers. */
    std::uint64_t drops = 0;
    /** Events delivered to sinks. */
    std::uint64_t events = 0;
    /** Host-side wall-clock time (excluded from event lines). */
    double wallSeconds = 0.0;
};

/**
 * Consumer interface fed by TraceCollector::drain().
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One drained event, in deterministic capture order. */
    virtual void consume(const TraceEvent &e) = 0;

    /** Capture finished; write trailers. Called exactly once. */
    virtual void close(const TraceMeta &meta) = 0;
};

/**
 * One JSON object per line; see the file comment for the contract.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    /** Writes to @p os (not owned; must outlive the sink). */
    explicit JsonlTraceSink(std::ostream &os);

    void consume(const TraceEvent &e) override;
    void close(const TraceMeta &meta) override;

    /** Format one event as a JSONL line (no trailing newline).
     *  @p shard >= 0 appends a `"shard":<id>` field (federated
     *  captures with tagging enabled). */
    static std::string formatLine(const TraceEvent &e, int shard = -1);

    /**
     * Opt-in shard-id tagging for federated captures: @p node_shard
     * maps each global node id to its owning shard; driver events
     * (node -1) and unmapped ids stay untagged. OFF by default —
     * untagged output is byte-identical at any shard count, which is
     * the telemetry half of the determinism contract.
     */
    void setNodeShards(std::vector<std::int16_t> node_shard)
    {
        nodeShard_ = std::move(node_shard);
    }

  private:
    std::ostream &os_;
    std::vector<std::int16_t> nodeShard_;
};

/**
 * Chrome trace-event JSON ("object format" with a traceEvents array).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Writes to @p os (not owned; must outlive the sink). */
    explicit ChromeTraceSink(std::ostream &os);

    void consume(const TraceEvent &e) override;
    void close(const TraceMeta &meta) override;

  private:
    void entry(const std::string &body);

    std::ostream &os_;
    bool first_ = true;
};

} // namespace cmpqos

#endif // CMPQOS_TELEMETRY_SINK_HH
