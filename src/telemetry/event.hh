/**
 * @file
 * Typed trace events for the telemetry subsystem.
 *
 * Every QoS mechanism in the framework is an *event in time* —
 * admission decisions, mode downgrades, per-interval way stealing and
 * cancellation, repartitioning — and this header gives each one a
 * fixed-size POD record so the hot path can capture it with a plain
 * struct copy into a lock-free ring (no allocation, no locking).
 *
 * Payload fields `a`, `b` (integers) and `x` (double) carry
 * type-specific values; payloadKeys() names them for the exporters
 * and the trace-inspection CLI so JSONL output stays self-describing.
 */

#ifndef CMPQOS_TELEMETRY_EVENT_HH
#define CMPQOS_TELEMETRY_EVENT_HH

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "common/types.hh"

namespace cmpqos
{

/** The event taxonomy (see DESIGN.md "Telemetry"). */
enum class TraceEventType : std::uint16_t
{
    /** A job/arrival was offered for admission. */
    JobSubmitted,
    /** A node's LAC accepted the job (payload: reserved slot). */
    JobAdmitted,
    /** Admission rejected the job (name: reason). */
    JobRejected,
    /** Accepted only after deadline renegotiation (x: factor). */
    JobNegotiated,
    /** Global admission placed an arrival on a node. */
    ArrivalPlaced,
    /** Job execution began on a core. */
    JobStarted,
    /** Mode downgrade, automatic or manual (name: cause). */
    ModeDowngrade,
    /** Auto-downgraded job switched back to Strict at its slot. */
    ModePromoted,
    /** Stealing engine took one way (x: miss increase so far). */
    WayStolen,
    /** Stolen ways returned to the victim (b: count). */
    WayReturned,
    /** Stealing cancelled: X% bound tripped (x: overshoot value). */
    StealCancelled,
    /** L2 per-core way target changed (b: new, x: old). */
    Repartition,
    /** Job completed by its deadline. */
    DeadlineHit,
    /** Job completed after its deadline. */
    DeadlineMiss,
    /** Job killed before completion (name: cause). */
    JobTerminated,
    /** Node quantum barrier: advance toward `a` begins. */
    QuantumBegin,
    /** Node quantum barrier: advance finished. */
    QuantumEnd,
    /** Fault injection: node `a` died at quantum barrier `b`. */
    NodeCrashed,
    /** Fault recovery: node `a` rejoined with a fresh framework. */
    NodeRestarted,
    /** Admission probe to node `a` silently lost (no reply). */
    ProbeDropped,
    /** Probe to node `a` timed out `b` times (name: outcome). */
    ProbeTimeout,
    /** Duplicated negotiation reply from node `a` was deduplicated. */
    DuplicateReplyDropped,
    /** Slow quantum: node fell `b` cycles short of target `a`. */
    QuantumStalled,
    /** In-flight job lost (name: cause — "node-crash" or
     *  "relocation-failed"); never silently dropped. */
    JobFailed,
    /** Crash reconciliation moved a job from node `a` to node `b`
     *  (name: "re-admitted", "negotiated" or "downgraded"). */
    JobRelocated,
    /** Feedback controller retuned one knob for a job (name: knob
     *  with direction — "freq+", "ways-", ...; a: old value, b: new
     *  value, x: measured slack that drove the decision). */
    ControllerRetune,
    /** A core's DVFS step changed (a: core, b: new step, x: old). */
    FrequencyChanged,
};

constexpr std::size_t numTraceEventTypes = 27;

/** Kebab-case wire name of an event type ("way-stolen", ...). */
const char *traceEventName(TraceEventType t);

/** Parse a wire name back to a type; false if unknown. */
bool traceEventFromName(std::string_view name, TraceEventType &out);

/** JSON keys of one event type's payload fields. */
struct TracePayloadKeys
{
    /** Key for `a`, or nullptr when the field is unused. */
    const char *a = nullptr;
    /** Key for `b`, or nullptr when the field is unused. */
    const char *b = nullptr;
    /** Key for `x`, or nullptr when the field is unused. */
    const char *x = nullptr;
    /** Key for `name`, or nullptr when the field is unused. */
    const char *name = nullptr;
};

const TracePayloadKeys &payloadKeys(TraceEventType t);

/**
 * One captured event. Fixed-size POD: pushing one onto a ring is a
 * struct copy, and a full ring drops the event rather than blocking.
 */
struct TraceEvent
{
    TraceEventType type = TraceEventType::JobSubmitted;
    /** Emitting node (stamped by the recorder; -1 = driver/GAC). */
    std::int16_t node = -1;
    /** Job id (node-local) or driver-side arrival sequence number. */
    std::int32_t job = -1;
    /** Virtual time of the event, cycles. */
    Cycle time = 0;
    /** Integer payloads; meaning per type (see payloadKeys()). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    /** Floating payload; meaning per type. */
    double x = 0.0;
    /** Short label (benchmark / reason / cause), NUL-terminated and
     *  truncated to fit — events never allocate. */
    char name[48] = {};

    void
    setName(std::string_view s)
    {
        const std::size_t n = s.size() < sizeof(name) - 1
                                  ? s.size()
                                  : sizeof(name) - 1;
        std::memcpy(name, s.data(), n);
        name[n] = '\0';
    }
};

// The SPSC ring assumes events are raw-copyable PODs: tryPush is a
// struct copy with no construction or ownership semantics, and the
// exporters read fields straight off the drained copy. Pin the whole
// contract here so a future member (a std::string, a virtual, a
// surprise padding change) fails at compile time, not in a ring.
static_assert(sizeof(TraceEvent) == 88, "keep TraceEvent compact");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay memcpy-safe for the SPSC ring");
static_assert(std::is_standard_layout_v<TraceEvent>,
              "TraceEvent must stay standard-layout (stable field "
              "offsets for exporters)");
static_assert(std::is_trivially_destructible_v<TraceEvent>,
              "ring slots are overwritten, never destroyed");

/** Convenience constructor for the common (type, time, job) triple. */
inline TraceEvent
traceEvent(TraceEventType type, Cycle time, JobId job = invalidJob)
{
    TraceEvent e;
    e.type = type;
    e.time = time;
    e.job = job;
    return e;
}

} // namespace cmpqos

#endif // CMPQOS_TELEMETRY_EVENT_HH
