/**
 * @file
 * The per-producer trace recorder: the only telemetry type the
 * instrumented layers talk to.
 *
 * Cost model, proven by bench/ext_telemetry_overhead:
 *  - compiled out (CMPQOS_TELEMETRY=OFF): active() is constant false
 *    and every emit call folds away entirely;
 *  - compiled in, runtime-disabled: active() is a null check plus one
 *    relaxed atomic load and a branch — callers guard event
 *    construction behind it, so a disabled run does no other work;
 *  - enabled: one struct copy into a lock-free SPSC ring; a full ring
 *    counts a drop instead of blocking the worker.
 */

#ifndef CMPQOS_TELEMETRY_RECORDER_HH
#define CMPQOS_TELEMETRY_RECORDER_HH

#include <atomic>

#include "telemetry/ring.hh"

namespace cmpqos
{

/** Whether telemetry is compiled into this build at all. */
#ifdef CMPQOS_TELEMETRY_DISABLED
constexpr bool telemetryCompiledIn = false;
#else
constexpr bool telemetryCompiledIn = true;
#endif

/**
 * One producer's event channel: a ring plus a drop counter, gated by
 * a shared runtime-enable flag owned by the TraceCollector.
 */
class TraceRecorder
{
  public:
    /**
     * @param node stamped into every event this recorder emits
     *        (-1 for the driver / global-admission producer)
     * @param capacity ring slots (rounded up to a power of two)
     * @param enabled the collector's runtime toggle (not owned)
     */
    TraceRecorder(NodeId node, std::size_t capacity,
                  const std::atomic<bool> *enabled)
        : ring_(capacity), node_(static_cast<std::int16_t>(node)),
          enabled_(enabled)
    {
    }

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * The hot-path guard. Callers check this BEFORE building an
     * event so a disabled run pays only the branch:
     *
     *   if (trace_ && trace_->active()) trace_->emit(...);
     */
    bool
    active() const
    {
        if constexpr (!telemetryCompiledIn)
            return false;
        return enabled_->load(std::memory_order_relaxed);
    }

    /**
     * Record @p e (stamping the producer's node id). Never blocks:
     * a full ring counts a drop and returns.
     */
    void
    emit(TraceEvent e)
    {
        if constexpr (!telemetryCompiledIn)
            return;
        if (!active())
            return;
        e.node = node_;
        if (!ring_.tryPush(e))
            drops_.fetch_add(1, std::memory_order_relaxed);
    }

    NodeId node() const { return node_; }

    /** Events refused because the ring was full. */
    std::uint64_t
    drops() const
    {
        return drops_.load(std::memory_order_relaxed);
    }

    /** Consumer side (TraceCollector drain). */
    SpscEventRing &ring() { return ring_; }

  private:
    SpscEventRing ring_;
    std::int16_t node_;
    const std::atomic<bool> *enabled_;
    std::atomic<std::uint64_t> drops_{0};
};

} // namespace cmpqos

#endif // CMPQOS_TELEMETRY_RECORDER_HH
