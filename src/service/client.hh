/**
 * @file
 * Synchronous client library for qosd — the API qosctl and the
 * service tests are built on.
 *
 * One QosClient is one connection. Requests are synchronous: each
 * call sends its message and pumps the socket until the matching
 * reply arrives; EventMsg lines that arrive in between (the
 * subscription stream is asynchronous by design) are buffered and
 * handed out through takeEvent(). Not thread-safe — one thread per
 * client, like one socket per client.
 *
 * Errors are returned, not thrown: every call yields false with a
 * message in @p err on socket failure, protocol error, or an
 * ErrorMsg from the daemon.
 */

#ifndef CMPQOS_SERVICE_CLIENT_HH
#define CMPQOS_SERVICE_CLIENT_HH

#include <deque>
#include <optional>
#include <string>

#include "service/protocol.hh"

namespace cmpqos
{

/** Connection options for QosClient. */
struct ClientOptions
{
    /** Unix-domain socket path (preferred). */
    std::string socketPath;
    /** Or loopback TCP port, used when socketPath is empty. */
    int tcpPort = 0;
    /** Wire mode to speak (JSONL is for debugging). */
    WireMode mode = WireMode::Binary;
    std::size_t maxFrame = defaultMaxFrame;
    /** Free-form name reported in the handshake. */
    std::string clientName = "qos-client";
    /** Connect retry budget: attempts spaced ~50ms apart, so a
     *  just-started daemon has time to bind (0 = single try). */
    int connectRetries = 100;
};

/** One synchronous connection to qosd. */
class QosClient
{
  public:
    QosClient() = default;
    explicit QosClient(ClientOptions opts) : opts_(std::move(opts)) {}
    ~QosClient();

    QosClient(const QosClient &) = delete;
    QosClient &operator=(const QosClient &) = delete;

    /** Connect and shake hands; serverInfo() is valid on success. */
    bool connect(std::string &err);

    bool connected() const { return fd_ >= 0; }

    /** The daemon's HelloAck (epoch, cluster shape, build line). */
    const HelloAck &serverInfo() const { return serverInfo_; }

    /** Submit one job and wait for its verdict. A SubmitReply whose
     *  error field is non-empty still returns true — the protocol
     *  exchange succeeded; the submission was refused. */
    bool submit(const Submit &request, SubmitReply &reply,
                std::string &err);

    bool status(StatusReply &out, std::string &err);

    /** Drain the current epoch (optionally shutting the daemon down)
     *  and wait for DrainDone with the epoch fingerprint. */
    bool drain(bool shutdown, DrainDone &out, std::string &err);

    bool reconfig(const std::string &directives, ReconfigAck &out,
                  std::string &err);

    bool subscribe(bool enable, std::string &err);

    /**
     * Block until any message arrives (reply-stream pump for
     * subscribers). @p timeout_ms < 0 waits forever; on timeout
     * returns false with err == "timeout".
     */
    bool nextMessage(Message &out, std::string &err,
                     int timeout_ms = -1);

    /** Pop a buffered EventMsg, oldest first. */
    std::optional<EventMsg> takeEvent();

    void disconnect();

  private:
    bool sendMessage(const Message &m, std::string &err);
    /** Read until @p want's alternative index arrives; events are
     *  buffered, ErrorMsg becomes an error return. */
    template <typename T>
    bool awaitReply(T &out, std::string &err);
    bool readMore(std::string &err, int timeout_ms);

    ClientOptions opts_;
    int fd_ = -1;
    std::string rx_;
    HelloAck serverInfo_;
    std::deque<EventMsg> events_;
};

} // namespace cmpqos

#endif // CMPQOS_SERVICE_CLIENT_HH
