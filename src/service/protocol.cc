#include "protocol.hh"

#include <bit>
#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "common/wire_codec.hh"
#include "telemetry/sink.hh" // escapeJson

namespace cmpqos
{

namespace
{

// --- field visitation ----------------------------------------------
//
// Each message type lists its fields once, in wire order, and the
// four codec directions (binary/JSONL x encode/decode) are visitors
// over that list. Adding a field in one place updates every framing
// and keeps the binary layout and the JSON keys in lockstep with
// docs/PROTOCOL.md.

template <typename V> void visitFields(Hello &m, V &v)
{
    v.u32("version", m.version);
    v.str("client", m.client);
}

template <typename V> void visitFields(HelloAck &m, V &v)
{
    v.u32("version", m.version);
    v.u64("epoch", m.epoch);
    v.u32("nodes", m.nodes);
    v.u64("quantum", m.quantum);
    v.u64("seed", m.seed);
    v.str("server", m.server);
}

template <typename V> void visitFields(Submit &m, V &v)
{
    v.u32("ticket", m.ticket);
    v.u8("tier", m.tier);
    v.u64("instructions", m.instructions);
    v.u64("time", m.time);
    v.str("benchmark", m.benchmark);
}

template <typename V> void visitFields(SubmitReply &m, V &v)
{
    v.u32("ticket", m.ticket);
    v.u64("seq", m.seq);
    v.u8("outcome", m.outcome);
    v.i32("node", m.node);
    v.u64("time", m.time);
    v.u64("slot_start", m.slotStart);
    v.f64("deadline_factor", m.deadlineFactor);
    v.str("error", m.error);
}

template <typename V> void visitFields(Subscribe &m, V &v)
{
    v.u8("enable", m.enable);
}

template <typename V> void visitFields(SubscribeAck &m, V &v)
{
    v.u8("enabled", m.enabled);
}

template <typename V> void visitFields(Status &, V &) {}

template <typename V> void visitFields(StatusReply &m, V &v)
{
    v.u64("epoch", m.epoch);
    v.u8("state", m.state);
    v.u64("submitted", m.submitted);
    v.u64("accepted", m.accepted);
    v.u64("rejected", m.rejected);
    v.u64("negotiated", m.negotiated);
    v.u64("completed", m.completed);
    v.u64("virtual_time", m.virtualTime);
    v.u32("sessions", m.sessions);
}

template <typename V> void visitFields(Drain &m, V &v)
{
    v.u8("shutdown", m.shutdown);
}

template <typename V> void visitFields(DrainDone &m, V &v)
{
    v.u64("epoch", m.epoch);
    v.u64("submitted", m.submitted);
    v.u64("accepted", m.accepted);
    v.u64("completed", m.completed);
    v.str("fingerprint", m.fingerprint);
}

template <typename V> void visitFields(Reconfig &m, V &v)
{
    v.str("directives", m.directives);
}

template <typename V> void visitFields(ReconfigAck &m, V &v)
{
    v.u64("epoch", m.epoch);
    v.str("error", m.error);
}

template <typename V> void visitFields(EventMsg &m, V &v)
{
    v.u64("epoch", m.epoch);
    v.str("line", m.line);
}

template <typename V> void visitFields(ErrorMsg &m, V &v)
{
    v.u32("code", m.code);
    v.str("message", m.message);
}

// --- type <-> code / op-name table ---------------------------------

struct TypeRow
{
    std::uint8_t code;
    const char *op;
};

// Indexed by std::variant alternative index; codes are the binary
// type byte and are frozen by docs/PROTOCOL.md.
constexpr TypeRow typeRows[] = {
    {1, "hello"},         {2, "hello-ack"},     {3, "submit"},
    {4, "submit-reply"},  {5, "subscribe"},     {6, "subscribe-ack"},
    {7, "status"},        {8, "status-reply"},  {9, "drain"},
    {10, "drain-done"},   {11, "reconfig"},     {12, "reconfig-ack"},
    {13, "event"},        {14, "error"},
};

static_assert(std::variant_size_v<Message> ==
                  sizeof(typeRows) / sizeof(typeRows[0]),
              "every Message alternative needs a TypeRow");

// --- binary writer / reader ----------------------------------------
//
// The binary field visitors moved to common/wire_codec.hh so the
// federation shard protocol shares them; this file keeps the JSONL
// visitors (only the service protocol has a text mode).

// --- minimal JSON value / parser -----------------------------------
//
// The protocol's JSONL mode only needs flat objects of strings,
// numbers and booleans; nesting is a protocol error. The parser is
// bounds-checked throughout and never throws — fuzzed inputs must
// fail with a message, not a crash.

struct JsonValue
{
    enum class Kind
    {
        Str,
        Num,
        Bool,
        Null
    };
    Kind kind = Kind::Null;
    std::string s;
    double num = 0.0;
    std::uint64_t u = 0;
    bool isInt = false;
    bool b = false;
};

struct JsonParser
{
    std::string_view in;
    std::size_t pos = 0;
    std::string err;

    bool fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }
    void skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\r' ||
                in[pos] == '\n'))
            ++pos;
    }
    bool literal(std::string_view lit)
    {
        if (in.substr(pos, lit.size()) != lit)
            return false;
        pos += lit.size();
        return true;
    }

    bool parseString(std::string &out)
    {
        if (pos >= in.size() || in[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < in.size()) {
            const char c = in[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= in.size())
                    return fail("dangling escape");
                const char e = in[pos + 1];
                pos += 2;
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                    if (pos + 4 > in.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = in[pos + static_cast<std::size_t>(i)];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    // Encode the BMP codepoint as UTF-8 (surrogate
                    // halves are replaced, not recombined — protocol
                    // strings are ASCII identifiers in practice).
                    if (cp < 0x80) {
                        out.push_back(static_cast<char>(cp));
                    } else if (cp < 0x800) {
                        out.push_back(
                            static_cast<char>(0xc0 | (cp >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (cp & 0x3f)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xe0 | (cp >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((cp >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (cp & 0x3f)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out.push_back(c);
            ++pos;
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &v)
    {
        const std::size_t start = pos;
        if (pos < in.size() && in[pos] == '-')
            ++pos;
        bool digits = false, fractional = false;
        while (pos < in.size()) {
            const char c = in[pos];
            if (c >= '0' && c <= '9') {
                digits = true;
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                fractional = true;
                ++pos;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("malformed number");
        const std::string token(in.substr(start, pos - start));
        v.kind = JsonValue::Kind::Num;
        v.num = std::strtod(token.c_str(), nullptr);
        v.isInt = !fractional && token[0] != '-';
        if (v.isInt)
            v.u = std::strtoull(token.c_str(), nullptr, 10);
        return true;
    }

    bool parseValue(JsonValue &v)
    {
        skipWs();
        if (pos >= in.size())
            return fail("unexpected end of input");
        const char c = in[pos];
        if (c == '"') {
            v.kind = JsonValue::Kind::Str;
            return parseString(v.s);
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.b = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("bad literal");
            v.kind = JsonValue::Kind::Bool;
            v.b = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("bad literal");
            v.kind = JsonValue::Kind::Null;
            return true;
        }
        if (c == '{' || c == '[')
            return fail("nested values are not part of the protocol");
        return parseNumber(v);
    }

    /** Parse one flat object into @p out; false (err set) on error. */
    bool parseObject(std::map<std::string, JsonValue> &out)
    {
        skipWs();
        if (pos >= in.size() || in[pos] != '{')
            return fail("expected '{'");
        ++pos;
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= in.size() || in[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out[key] = std::move(v);
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }
};

// --- JSON writer / reader visitors ---------------------------------

struct JsonWriter
{
    std::string out;

    void key(const char *name)
    {
        out.push_back(',');
        out.push_back('"');
        out.append(name);
        out.append("\":");
    }
    void u8(const char *name, std::uint8_t v)
    {
        key(name);
        out.append(std::to_string(static_cast<unsigned>(v)));
    }
    void u32(const char *name, std::uint32_t v)
    {
        key(name);
        out.append(std::to_string(v));
    }
    void u64(const char *name, std::uint64_t v)
    {
        key(name);
        out.append(std::to_string(v));
    }
    void i32(const char *name, std::int32_t v)
    {
        key(name);
        out.append(std::to_string(v));
    }
    void f64(const char *name, double v)
    {
        key(name);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out.append(buf);
    }
    void str(const char *name, const std::string &s)
    {
        key(name);
        out.push_back('"');
        out.append(escapeJson(s));
        out.push_back('"');
    }
};

struct JsonReader
{
    const std::map<std::string, JsonValue> &obj;
    bool ok = true;
    std::string err;

    // Missing fields keep their defaults (forward compatibility);
    // present-but-mistyped fields are errors.
    const JsonValue *find(const char *name)
    {
        const auto it = obj.find(name);
        return it == obj.end() ? nullptr : &it->second;
    }
    void fail(const char *name, const char *what)
    {
        if (ok) {
            ok = false;
            err = std::string("field '") + name + "': " + what;
        }
    }

    void u8(const char *name, std::uint8_t &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Num || !j->isInt ||
            j->u > 0xff)
            return fail(name, "expected a small integer");
        v = static_cast<std::uint8_t>(j->u);
    }
    void u32(const char *name, std::uint32_t &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Num || !j->isInt ||
            j->u > 0xffffffffULL)
            return fail(name, "expected a u32");
        v = static_cast<std::uint32_t>(j->u);
    }
    void u64(const char *name, std::uint64_t &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Num || !j->isInt)
            return fail(name, "expected a u64");
        v = j->u;
    }
    void i32(const char *name, std::int32_t &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Num)
            return fail(name, "expected an integer");
        v = static_cast<std::int32_t>(j->num);
    }
    void f64(const char *name, double &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Num)
            return fail(name, "expected a number");
        v = j->num;
    }
    void str(const char *name, std::string &v)
    {
        const JsonValue *j = find(name);
        if (j == nullptr)
            return;
        if (j->kind != JsonValue::Kind::Str)
            return fail(name, "expected a string");
        v = j->s;
    }
};

// --- dispatch helpers ----------------------------------------------

template <typename Fn>
void
withAlternative(std::size_t index, Fn &&fn)
{
    // Materialise the variant alternative for a runtime index.
    Message m;
    switch (index) {
      case 0: m = Hello{}; break;
      case 1: m = HelloAck{}; break;
      case 2: m = Submit{}; break;
      case 3: m = SubmitReply{}; break;
      case 4: m = Subscribe{}; break;
      case 5: m = SubscribeAck{}; break;
      case 6: m = Status{}; break;
      case 7: m = StatusReply{}; break;
      case 8: m = Drain{}; break;
      case 9: m = DrainDone{}; break;
      case 10: m = Reconfig{}; break;
      case 11: m = ReconfigAck{}; break;
      case 12: m = EventMsg{}; break;
      case 13: m = ErrorMsg{}; break;
      default: cmpqos_panic("bad message index %zu", index);
    }
    fn(m);
}

bool
typeCodeToIndex(std::uint8_t code, std::size_t &index)
{
    for (std::size_t i = 0;
         i < sizeof(typeRows) / sizeof(typeRows[0]); ++i) {
        if (typeRows[i].code == code) {
            index = i;
            return true;
        }
    }
    return false;
}

bool
opNameToIndex(const std::string &op, std::size_t &index)
{
    for (std::size_t i = 0;
         i < sizeof(typeRows) / sizeof(typeRows[0]); ++i) {
        if (op == typeRows[i].op) {
            index = i;
            return true;
        }
    }
    return false;
}

DecodeResult
decodeBinary(std::string_view buffer, std::size_t max_frame)
{
    DecodeResult r;
    if (buffer.size() < 4) {
        r.status = DecodeResult::Status::NeedMore;
        return r;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buffer[static_cast<std::size_t>(i)]))
               << (8 * i);
    if (len > max_frame) {
        r.status = DecodeResult::Status::Error;
        r.error = "oversized frame (" + std::to_string(len) +
                  " > " + std::to_string(max_frame) + " bytes)";
        return r;
    }
    if (len == 0) {
        r.status = DecodeResult::Status::Error;
        r.error = "empty frame";
        return r;
    }
    if (buffer.size() - 4 < len) {
        r.status = DecodeResult::Status::NeedMore;
        return r;
    }
    const std::string_view payload = buffer.substr(4, len);
    const auto code = static_cast<std::uint8_t>(payload[0]);
    std::size_t index = 0;
    if (!typeCodeToIndex(code, index)) {
        r.status = DecodeResult::Status::Error;
        r.error = "unknown message type " + std::to_string(code);
        r.consumed = 4 + len;
        return r;
    }
    withAlternative(index, [&](Message &m) {
        BinReader reader{payload.substr(1), 0, true, {}};
        std::visit([&](auto &alt) { visitFields(alt, reader); }, m);
        if (!reader.ok) {
            r.status = DecodeResult::Status::Error;
            r.error = reader.err;
        } else if (reader.pos != payload.size() - 1) {
            r.status = DecodeResult::Status::Error;
            r.error = "trailing bytes in frame";
        } else {
            r.status = DecodeResult::Status::Ok;
            r.message = std::move(m);
        }
    });
    r.consumed = 4 + len;
    return r;
}

DecodeResult
decodeJsonl(std::string_view buffer, std::size_t max_frame)
{
    DecodeResult r;
    const std::size_t nl = buffer.find('\n');
    if (nl == std::string_view::npos) {
        if (buffer.size() > max_frame) {
            r.status = DecodeResult::Status::Error;
            r.error = "oversized line (no newline within " +
                      std::to_string(max_frame) + " bytes)";
        } else {
            r.status = DecodeResult::Status::NeedMore;
        }
        return r;
    }
    r.consumed = nl + 1;
    std::string_view line = buffer.substr(0, nl);
    if (line.size() > max_frame) {
        r.status = DecodeResult::Status::Error;
        r.error = "oversized line";
        return r;
    }
    JsonParser parser{line, 0, {}};
    std::map<std::string, JsonValue> obj;
    if (!parser.parseObject(obj)) {
        r.status = DecodeResult::Status::Error;
        r.error = "bad JSON: " + parser.err;
        return r;
    }
    parser.skipWs();
    if (parser.pos != line.size()) {
        r.status = DecodeResult::Status::Error;
        r.error = "trailing bytes after JSON object";
        return r;
    }
    const auto op_it = obj.find("op");
    if (op_it == obj.end() ||
        op_it->second.kind != JsonValue::Kind::Str) {
        r.status = DecodeResult::Status::Error;
        r.error = "missing \"op\" field";
        return r;
    }
    std::size_t index = 0;
    if (!opNameToIndex(op_it->second.s, index)) {
        r.status = DecodeResult::Status::Error;
        r.error = "unknown op '" + op_it->second.s + "'";
        return r;
    }
    withAlternative(index, [&](Message &m) {
        JsonReader reader{obj, true, {}};
        std::visit([&](auto &alt) { visitFields(alt, reader); }, m);
        if (!reader.ok) {
            r.status = DecodeResult::Status::Error;
            r.error = reader.err;
        } else {
            r.status = DecodeResult::Status::Ok;
            r.message = std::move(m);
        }
    });
    return r;
}

} // namespace

const char *
messageOpName(const Message &m)
{
    return typeRows[m.index()].op;
}

std::string
encodeMessage(const Message &m, WireMode mode)
{
    if (mode == WireMode::Binary) {
        BinWriter w;
        w.out.push_back(static_cast<char>(typeRows[m.index()].code));
        // The writer only reads the fields; visitFields takes a
        // mutable reference so the same overloads serve the decoders.
        std::visit(
            [&](auto &alt) {
                using T = std::remove_cvref_t<decltype(alt)>;
                visitFields(const_cast<T &>(alt), w);
            },
            m);
        std::string frame;
        frame.reserve(4 + w.out.size());
        const auto len = static_cast<std::uint32_t>(w.out.size());
        for (int i = 0; i < 4; ++i)
            frame.push_back(
                static_cast<char>((len >> (8 * i)) & 0xff));
        frame += w.out;
        return frame;
    }
    JsonWriter w;
    w.out = "{\"op\":\"";
    w.out += typeRows[m.index()].op;
    w.out.push_back('"');
    std::visit(
        [&](auto &alt) {
            using T = std::remove_cvref_t<decltype(alt)>;
            visitFields(const_cast<T &>(alt), w);
        },
        m);
    w.out += "}\n";
    return w.out;
}

DecodeResult
decodeFrame(std::string_view buffer, WireMode mode,
            std::size_t max_frame)
{
    return mode == WireMode::Binary ? decodeBinary(buffer, max_frame)
                                    : decodeJsonl(buffer, max_frame);
}

WireMode
detectWireMode(char first_byte)
{
    // Only '{' selects JSONL: every whitespace byte is also a
    // plausible low length byte of a small binary frame (a 13-byte
    // Hello starts with '\r'), so a JSONL line must start with its
    // opening brace. The remaining collision -- a binary first frame
    // of exactly 0x7b payload bytes -- cannot occur because Hello
    // caps the client name (see maxHelloClientName).
    return first_byte == '{' ? WireMode::Jsonl : WireMode::Binary;
}

bool
parseQosTier(std::string_view name, QosTier &out)
{
    if (name == "gold")
        out = QosTier::Gold;
    else if (name == "silver")
        out = QosTier::Silver;
    else if (name == "bronze")
        out = QosTier::Bronze;
    else
        return false;
    return true;
}

} // namespace cmpqos
