/**
 * @file
 * qosd: the persistent admission service around ClusterEngine.
 *
 * Two threads share the daemon:
 *
 *  - The NETWORK thread (the caller of run()) owns every socket: it
 *    accepts connections, decodes frames, validates submissions,
 *    assigns arrival times, writes the journal, and pushes arrivals
 *    into the current epoch's BlockingArrivalQueue. It is the only
 *    thread that ever touches a Session.
 *
 *  - The ENGINE thread runs one ClusterEngine per epoch to
 *    completion over that queue (so it is the engine's driver
 *    thread). Admission verdicts and telemetry reach clients through
 *    the outbox: the engine thread appends (session, message) pairs
 *    under the daemon mutex and pokes the network thread's wakeup
 *    pipe; the network thread alone writes the bytes.
 *
 * Ownership contract: the engine and its queue belong to the epoch.
 * The network thread reaches them only under mu_ and only through
 * the queue/journal handles; it never calls into ClusterEngine. The
 * engine thread conversely never touches sessions or sockets. The
 * observer callbacks run on the engine thread between placements, so
 * everything they read (the pending-ticket FIFO, the live counters)
 * is mu_-guarded.
 *
 * Determinism: virtual time only advances between arrivals, so the
 * blocking queue makes the live run byte-identical to a
 * TraceArrivalProcess replay of the journal (see arrival_queue.hh).
 * Every epoch's DrainDone carries the engine fingerprint a replay
 * must reproduce at any thread count.
 */

#ifndef CMPQOS_SERVICE_DAEMON_HH
#define CMPQOS_SERVICE_DAEMON_HH

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hh"
#include "federation/federated_engine.hh"
#include "service/arrival_queue.hh"
#include "service/epoch_config.hh"
#include "service/journal.hh"
#include "service/protocol.hh"
#include "service/session.hh"

namespace cmpqos
{

/** The admission-service daemon. */
class QosDaemon
{
  public:
    struct Options
    {
        /** Unix-domain socket path (preferred transport). */
        std::string socketPath;
        /** Or a loopback TCP port (used when socketPath is empty). */
        int tcpPort = 0;
        /** Engine worker threads (0 = hardware concurrency). */
        unsigned threads = 0;
        /** Engine shards; >1 runs each epoch on a FederatedEngine.
         *  Like threads, deliberately NOT part of EpochConfig: the
         *  journal, replay command and fingerprint are identical at
         *  any shard count. */
        int shards = 1;
        /** Shard link transport when shards > 1. */
        FedTransport shardTransport = FedTransport::Inproc;
        /** Per-connection frame/line size ceiling, bytes. */
        std::size_t maxFrame = defaultMaxFrame;
        /** Directory journals are written into (created if absent);
         *  epoch N writes <dir>/epoch-NNNN.trace. */
        std::string journalDir = "qosd-journal";
        /** Initial epoch configuration. */
        EpochConfig epoch;
        /** Telemetry ring slots per producer. */
        std::size_t traceCapacity = 32768;
        /** Suppress the operator log lines on stdout. */
        bool quiet = false;
    };

    /** Connection-level statistics (network thread only). */
    struct ConnStats
    {
        std::uint64_t accepted = 0;
        /** Malformed / oversized frames answered with ErrorMsg. */
        std::uint64_t malformed = 0;
        /** Peers that vanished with a partial frame buffered. */
        std::uint64_t midFrameDisconnects = 0;
    };

    explicit QosDaemon(Options opts);
    ~QosDaemon();

    QosDaemon(const QosDaemon &) = delete;
    QosDaemon &operator=(const QosDaemon &) = delete;

    /** Bind, listen and open epoch 0's journal. False with @p err
     *  set on any failure (nothing to clean up then). */
    bool start(std::string &err);

    /**
     * Start the engine thread and run the network event loop.
     * Returns after a Drain{shutdown=1} (or a byte on shutdownFd())
     * once the final epoch drained and replies flushed. start() must
     * have succeeded.
     */
    void run();

    /**
     * Write end of the self-pipe: writing one byte requests a
     * graceful drain-and-shutdown, exactly like Drain{shutdown=1}.
     * async-signal-safe (it is just a write()), for SIGINT/SIGTERM
     * handlers.
     */
    int shutdownFd() const { return shutdownPipe_[1]; }

    /** Path epoch @p epoch's journal is (being) written to. */
    std::string journalPath(std::uint64_t epoch) const;

    const ConnStats &connStats() const { return connStats_; }

    /** Epochs fully drained over the daemon's lifetime. */
    std::uint64_t epochsCompleted() const
    {
        return epochsCompleted_.load(std::memory_order_relaxed);
    }

  private:
    class Observer;
    class ForwardSink;
    friend class Observer;
    friend class ForwardSink;

    static constexpr std::uint64_t kBroadcast = 0;
    static constexpr std::uint64_t kNoSession = UINT64_MAX;

    /** Aggregate admission counters (closed epochs + live epoch). */
    struct Counters
    {
        std::uint64_t submitted = 0;
        std::uint64_t accepted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t negotiated = 0;
        std::uint64_t completed = 0;
    };

    struct PendingSubmit
    {
        std::uint64_t session = 0;
        std::uint32_t ticket = 0;
        Cycle time = 0;
    };

    struct Outgoing
    {
        /** Target session id, or kBroadcast for every subscriber. */
        std::uint64_t session = 0;
        Message message;
    };

    // --- engine thread ---
    void engineMain();
    /** Close the finished epoch, reply to its drain/reconfig
     *  requester, and open the next one; true = shut down. */
    bool finishEpoch(const ClusterMetrics &m,
                     std::vector<std::string> &&event_residue)
        CMPQOS_EXCLUDES(mu_);
    void postOutgoing(std::uint64_t session, Message m)
        CMPQOS_REQUIRES(mu_);
    void wakeNetwork();

    // --- network thread ---
    void acceptPending();
    void handleSession(Session &s);
    void dispatch(Session &s, const Message &m);
    void handleHello(Session &s, const Hello &m);
    void handleSubmit(Session &s, const Submit &m);
    void handleStatus(Session &s);
    void handleDrain(Session &s, const Drain &m);
    void handleReconfig(Session &s, const Reconfig &m);
    /** Begin a drain; false when one is already pending. */
    bool beginDrain(std::uint64_t session, bool shutdown,
                    bool reconfig_after) CMPQOS_EXCLUDES(mu_);
    void deliverOutbox();
    Session *findSession(std::uint64_t id);
    void openEpochLocked() CMPQOS_REQUIRES(mu_);
    void logLine(const char *fmt, ...) const;

    Options opts_;

    // Immutable-after-start() fds.
    int listenFd_ = -1;
    int wakeupPipe_[2] = {-1, -1};
    int shutdownPipe_[2] = {-1, -1};
    bool started_ = false;

    std::thread engineThread_;
    std::atomic<bool> stop_{false};
    std::atomic<int> subscriberCount_{0};
    std::atomic<std::uint64_t> epochsCompleted_{0};

    // Network-thread-only state.
    std::vector<std::unique_ptr<Session>> sessions_;
    std::uint64_t nextSessionId_ = 1;
    ConnStats connStats_;

    // Shared epoch state (network + engine threads).
    mutable Mutex mu_;
    std::uint64_t epoch_ CMPQOS_GUARDED_BY(mu_) = 0;
    EpochConfig config_ CMPQOS_GUARDED_BY(mu_);
    ArrivalMix mix_ CMPQOS_GUARDED_BY(mu_);
    DaemonState state_ CMPQOS_GUARDED_BY(mu_) = DaemonState::Running;
    std::unique_ptr<BlockingArrivalQueue> queue_ CMPQOS_GUARDED_BY(mu_);
    std::unique_ptr<SubmissionJournal> journal_ CMPQOS_GUARDED_BY(mu_);
    bool anySubmitted_ CMPQOS_GUARDED_BY(mu_) = false;
    Cycle lastTime_ CMPQOS_GUARDED_BY(mu_) = 0;
    std::deque<PendingSubmit> pendingReplies_ CMPQOS_GUARDED_BY(mu_);
    /** Session waiting for DrainDone (kNoSession = signal-driven). */
    std::uint64_t drainRequester_ CMPQOS_GUARDED_BY(mu_) = kNoSession;
    bool drainPending_ CMPQOS_GUARDED_BY(mu_) = false;
    bool shutdownAfterDrain_ CMPQOS_GUARDED_BY(mu_) = false;
    bool reconfigPending_ CMPQOS_GUARDED_BY(mu_) = false;
    std::uint64_t reconfigRequester_ CMPQOS_GUARDED_BY(mu_) =
        kNoSession;
    EpochConfig reconfigNext_ CMPQOS_GUARDED_BY(mu_);
    Counters closedTotals_ CMPQOS_GUARDED_BY(mu_);
    Counters live_ CMPQOS_GUARDED_BY(mu_);
    Cycle liveVirtualTime_ CMPQOS_GUARDED_BY(mu_) = 0;
    std::vector<Outgoing> outbox_ CMPQOS_GUARDED_BY(mu_);
};

} // namespace cmpqos

#endif // CMPQOS_SERVICE_DAEMON_HH
