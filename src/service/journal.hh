/**
 * @file
 * The submission journal: the daemon's deterministic replay log.
 *
 * Every submission an epoch offers to admission — accepted AND
 * rejected, in the exact order the engine placed them — is appended
 * as one line of the existing arrival-trace grammar
 * (`<time> <benchmark> <tier> <instructions>`), preceded by a comment
 * header recording the epoch's full EpochConfig and the
 * cluster_driver command that replays it. Rejections must be logged
 * because the fingerprint digests the submitted/rejected counters;
 * the replayed engine re-derives every verdict itself.
 *
 * A journal file is therefore a valid TraceArrivalProcess input:
 * feeding it back through an engine built from the recorded config
 * reproduces the live epoch's ClusterMetrics::fingerprint() exactly,
 * at any worker-thread count. Protocol-level failures (malformed
 * frames, unknown benchmarks, submissions during a drain) never reach
 * admission and never touch the journal.
 *
 * Each line is flushed as it is written, so a torn-down daemon leaves
 * a journal that replays everything it admitted.
 */

#ifndef CMPQOS_SERVICE_JOURNAL_HH
#define CMPQOS_SERVICE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "cluster/arrival.hh"
#include "service/epoch_config.hh"

namespace cmpqos
{

/** Write side of one epoch's journal. */
class SubmissionJournal
{
  public:
    /** Create @p path (truncating) and write the header; fatal() if
     *  the file cannot be opened. @p epoch is recorded in the header
     *  for operators; replay does not need it. */
    SubmissionJournal(std::string path, const EpochConfig &config,
                      std::uint64_t epoch);
    ~SubmissionJournal();

    SubmissionJournal(const SubmissionJournal &) = delete;
    SubmissionJournal &operator=(const SubmissionJournal &) = delete;

    /**
     * Append one submission (line is flushed before returning).
     * Times must be monotone — the same contract
     * TraceArrivalProcess enforces on read-back.
     */
    void append(Cycle time, const std::string &benchmark, QosTier tier,
                InstCount instructions);

    /** Flush and close; append() is invalid afterwards. */
    void close();

    /** Submissions appended so far. */
    std::uint64_t entries() const { return entries_; }

    const std::string &filePath() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    std::uint64_t entries_ = 0;
    Cycle lastTime_ = 0;
    bool open_ = true;
};

/**
 * Read an epoch journal's header back into an EpochConfig (the
 * `# config:` line). Returns false with @p err set when the file is
 * unreadable or carries no config line. The arrival lines themselves
 * are read by TraceArrivalProcess, which skips the comments.
 */
bool readJournalConfig(const std::string &path, EpochConfig &out,
                       std::string &err);

} // namespace cmpqos

#endif // CMPQOS_SERVICE_JOURNAL_HH
