#include "daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "telemetry/sink.hh"
#include "workload/benchmark.hh"

namespace cmpqos
{

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
drainPipe(int fd)
{
    char buf[64];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
}

bool
makeDirs(const std::string &path, std::string &err)
{
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos + 1);
        const std::string prefix =
            slash == std::string::npos ? path : path.substr(0, slash);
        if (!prefix.empty() && prefix != "." && prefix != "/") {
            if (::mkdir(prefix.c_str(), 0777) != 0 &&
                errno != EEXIST) {
                err = "mkdir '" + prefix +
                      "': " + std::strerror(errno);
                return false;
            }
        }
        if (slash == std::string::npos)
            break;
        pos = slash;
    }
    return true;
}

/** Stalled-subscriber ceiling: a client that stops reading its event
 *  stream is dropped rather than buffering without bound. */
constexpr std::size_t maxPendingTx = 8 * 1024 * 1024;

} // namespace

// --- engine-thread helpers ------------------------------------------

/**
 * Telemetry sink for the live event stream: buffers JSONL-rendered
 * lines on the engine thread (collector drains happen at quantum
 * barriers, always before the matching onQuantum), which the observer
 * then moves into the outbox. Formatting is skipped entirely while no
 * session subscribes.
 */
class QosDaemon::ForwardSink : public TraceSink
{
  public:
    explicit ForwardSink(QosDaemon &daemon) : daemon_(daemon) {}

    void
    consume(const TraceEvent &e) override
    {
        if (daemon_.subscriberCount_.load(std::memory_order_relaxed) ==
            0)
            return;
        lines_.push_back(JsonlTraceSink::formatLine(e));
    }

    void close(const TraceMeta &) override {}

    std::vector<std::string>
    takeLines()
    {
        std::vector<std::string> out;
        out.swap(lines_);
        return out;
    }

  private:
    QosDaemon &daemon_;
    std::vector<std::string> lines_;
};

/**
 * The engine-side bridge: placement verdicts become SubmitReply
 * messages (matched to tickets in FIFO order — placement order is
 * queue order is journal order), quantum barriers flush the event
 * stream and refresh the live status counters. Runs on the engine's
 * driver thread; everything it touches is mu_-guarded.
 */
class QosDaemon::Observer : public EngineObserver
{
  public:
    Observer(QosDaemon &daemon, ForwardSink &sink, std::uint64_t epoch)
        : daemon_(daemon), sink_(sink), epoch_(epoch)
    {
    }

    void
    onPlacement(const ClusterArrival &arrival,
                const PlacementOutcome &outcome) override
    {
        {
            MutexLock lock(daemon_.mu_);
            ++daemon_.live_.submitted;
            if (outcome.accepted) {
                ++daemon_.live_.accepted;
                if (outcome.negotiated)
                    ++daemon_.live_.negotiated;
            } else {
                ++daemon_.live_.rejected;
            }
            cmpqos_assert(!daemon_.pendingReplies_.empty(),
                          "placement with no pending submission "
                          "(journal/queue order broken)");
            const PendingSubmit p = daemon_.pendingReplies_.front();
            daemon_.pendingReplies_.pop_front();
            cmpqos_assert(p.time == arrival.time,
                          "reply/arrival order skew: ticket %u "
                          "expected t=%llu, placed t=%llu",
                          p.ticket,
                          static_cast<unsigned long long>(p.time),
                          static_cast<unsigned long long>(
                              arrival.time));
            SubmitReply r;
            r.ticket = p.ticket;
            r.seq = outcome.seq;
            r.outcome = static_cast<std::uint8_t>(
                outcome.accepted
                    ? (outcome.negotiated ? AdmitOutcome::Negotiated
                                          : AdmitOutcome::Accepted)
                    : AdmitOutcome::Rejected);
            r.node = outcome.node;
            r.time = arrival.time;
            r.slotStart = outcome.slotStart;
            r.deadlineFactor = outcome.deadlineFactor;
            daemon_.postOutgoing(p.session, std::move(r));
        }
        daemon_.wakeNetwork();
    }

    void
    onQuantum(Cycle now) override
    {
        std::vector<std::string> lines = sink_.takeLines();
        {
            MutexLock lock(daemon_.mu_);
            daemon_.liveVirtualTime_ = now;
            for (auto &line : lines) {
                EventMsg e;
                e.epoch = epoch_;
                e.line = std::move(line);
                daemon_.postOutgoing(kBroadcast, std::move(e));
            }
        }
        daemon_.wakeNetwork();
    }

  private:
    QosDaemon &daemon_;
    ForwardSink &sink_;
    std::uint64_t epoch_;
};

// --- construction / setup -------------------------------------------

QosDaemon::QosDaemon(Options opts) : opts_(std::move(opts)) {}

QosDaemon::~QosDaemon()
{
    cmpqos_assert(!engineThread_.joinable(),
                  "daemon destroyed while run() is active");
    sessions_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (const int fd :
         {wakeupPipe_[0], wakeupPipe_[1], shutdownPipe_[0],
          shutdownPipe_[1]}) {
        if (fd >= 0)
            ::close(fd);
    }
    if (started_ && !opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

std::string
QosDaemon::journalPath(std::uint64_t epoch) const
{
    char name[48];
    std::snprintf(name, sizeof(name), "epoch-%04llu.trace",
                  static_cast<unsigned long long>(epoch));
    return opts_.journalDir + "/" + name;
}

void
QosDaemon::openEpochLocked()
{
    journal_ = std::make_unique<SubmissionJournal>(journalPath(epoch_),
                                                   config_, epoch_);
    queue_ = std::make_unique<BlockingArrivalQueue>();
    anySubmitted_ = false;
    lastTime_ = 0;
    liveVirtualTime_ = 0;
}

bool
QosDaemon::start(std::string &err)
{
    cmpqos_assert(!started_, "start() called twice");
    if (opts_.socketPath.empty() && opts_.tcpPort <= 0) {
        err = "no transport: set a socket path or a TCP port";
        return false;
    }
    if (!makeDirs(opts_.journalDir, err))
        return false;

    {
        MutexLock lock(mu_);
        config_ = opts_.epoch;
        mix_ = epochMix(config_);
        openEpochLocked();
    }

    if (::pipe(wakeupPipe_) != 0 || ::pipe(shutdownPipe_) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    for (const int fd :
         {wakeupPipe_[0], wakeupPipe_[1], shutdownPipe_[0],
          shutdownPipe_[1]}) {
        if (!setNonBlocking(fd)) {
            err = "cannot make pipes non-blocking";
            return false;
        }
    }

    if (!opts_.socketPath.empty()) {
        sockaddr_un addr{};
        if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
            err = "socket path too long: " + opts_.socketPath;
            return false;
        }
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(opts_.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            err = "bind '" + opts_.socketPath +
                  "': " + std::strerror(errno);
            return false;
        }
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcpPort));
        if (::bind(listenFd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            err = "bind 127.0.0.1:" + std::to_string(opts_.tcpPort) +
                  ": " + std::strerror(errno);
            return false;
        }
    }
    if (::listen(listenFd_, 64) != 0 || !setNonBlocking(listenFd_)) {
        err = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    started_ = true;
    logLine("listening on %s, journal dir %s, epoch 0",
            opts_.socketPath.empty()
                ? ("127.0.0.1:" + std::to_string(opts_.tcpPort))
                      .c_str()
                : opts_.socketPath.c_str(),
            opts_.journalDir.c_str());
    return true;
}

// --- engine thread --------------------------------------------------

void
QosDaemon::engineMain()
{
    for (;;) {
        EpochConfig cfg;
        BlockingArrivalQueue *queue = nullptr;
        std::uint64_t epoch = 0;
        {
            MutexLock lock(mu_);
            cfg = config_;
            queue = queue_.get();
            epoch = epoch_;
        }
        TelemetryConfig tc;
        tc.ringCapacity = opts_.traceCapacity;
        TraceCollector collector(cfg.nodes + 1, tc);
        ForwardSink sink(*this);
        collector.addSink(&sink);
        ClusterConfig cluster = epochClusterConfig(cfg, opts_.threads);
        cluster.telemetry = &collector;
        Observer observer(*this, sink, epoch);
        cluster.observer = &observer;
        // Shard count, like thread count, must never affect results:
        // the drained fingerprint and the journal replay are
        // byte-identical either way (tested in test_daemon.cc).
        ClusterMetrics m;
        unsigned run_threads = 0;
        if (opts_.shards > 1) {
            FederationConfig fed;
            fed.shards = opts_.shards;
            fed.transport = opts_.shardTransport;
            fed.telemetryRing = opts_.traceCapacity;
            FederatedEngine engine(cluster, fed);
            m = engine.runToCompletion(*queue);
            run_threads = engine.numThreads();
        } else {
            ClusterEngine engine(cluster);
            m = engine.runToCompletion(*queue);
            run_threads = engine.numThreads();
        }
        collector.finish(cfg.seed, run_threads, m.wallSeconds);
        if (m.invariantViolations != 0)
            cmpqos_warn("epoch %llu: %llu invariant violations",
                        static_cast<unsigned long long>(epoch),
                        static_cast<unsigned long long>(
                            m.invariantViolations));
        if (finishEpoch(m, sink.takeLines()))
            break;
    }
    stop_.store(true, std::memory_order_release);
    wakeNetwork();
}

bool
QosDaemon::finishEpoch(const ClusterMetrics &m,
                       std::vector<std::string> &&event_residue)
{
    bool shutdown = false;
    {
        MutexLock lock(mu_);
        journal_->close();
        cmpqos_assert(pendingReplies_.empty(),
                      "epoch %llu drained with %zu unanswered "
                      "submissions",
                      static_cast<unsigned long long>(epoch_),
                      pendingReplies_.size());
        closedTotals_.submitted += m.submitted;
        closedTotals_.accepted += m.accepted;
        closedTotals_.rejected += m.rejected;
        closedTotals_.negotiated += m.negotiated;
        closedTotals_.completed += m.completed;
        live_ = Counters{};
        const std::uint64_t finished = epoch_;
        for (auto &line : event_residue) {
            EventMsg e;
            e.epoch = finished;
            e.line = std::move(line);
            postOutgoing(kBroadcast, std::move(e));
        }
        const std::string fp = m.fingerprint();
        logLine("epoch %llu drained: %llu submitted, %llu accepted, "
                "%llu completed, fingerprint %s",
                static_cast<unsigned long long>(finished),
                static_cast<unsigned long long>(m.submitted),
                static_cast<unsigned long long>(m.accepted),
                static_cast<unsigned long long>(m.completed),
                fp.c_str());
        if (drainRequester_ != kNoSession) {
            DrainDone d;
            d.epoch = finished;
            d.submitted = m.submitted;
            d.accepted = m.accepted;
            d.completed = m.completed;
            d.fingerprint = fp;
            postOutgoing(drainRequester_, std::move(d));
        }
        drainPending_ = false;
        drainRequester_ = kNoSession;
        shutdown = shutdownAfterDrain_;
        if (reconfigPending_) {
            config_ = reconfigNext_;
            mix_ = epochMix(config_);
            ReconfigAck a;
            a.epoch = finished + 1;
            postOutgoing(reconfigRequester_, std::move(a));
            reconfigPending_ = false;
            reconfigRequester_ = kNoSession;
        }
        epochsCompleted_.fetch_add(1, std::memory_order_relaxed);
        if (!shutdown) {
            ++epoch_;
            openEpochLocked();
            state_ = DaemonState::Running;
        }
    }
    wakeNetwork();
    return shutdown;
}

void
QosDaemon::postOutgoing(std::uint64_t session, Message m)
{
    outbox_.push_back(Outgoing{session, std::move(m)});
}

void
QosDaemon::wakeNetwork()
{
    const char byte = 'w';
    // Non-blocking pipe: EAGAIN means a wakeup is already pending.
    (void)!::write(wakeupPipe_[1], &byte, 1);
}

// --- network thread -------------------------------------------------

void
QosDaemon::run()
{
    cmpqos_assert(started_, "run() before start()");
    engineThread_ = std::thread([this] { engineMain(); });

    std::vector<pollfd> fds;
    int flush_rounds = 0;
    for (;;) {
        deliverOutbox();

        // Prune dead/finished sessions.
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            Session &s = **it;
            if (s.closing && !s.wantsWrite()) {
                if (s.subscribed)
                    subscriberCount_.fetch_sub(
                        1, std::memory_order_relaxed);
                it = sessions_.erase(it);
            } else {
                ++it;
            }
        }

        const bool stopping = stop_.load(std::memory_order_acquire);
        if (stopping) {
            const bool pending = std::any_of(
                sessions_.begin(), sessions_.end(),
                [](const auto &s) { return s->wantsWrite(); });
            // Bounded farewell: give stalled peers ~500 poll rounds
            // of 10ms each, then leave (no wall clock involved).
            if (!pending || ++flush_rounds > 500)
                break;
        }

        fds.clear();
        fds.push_back({wakeupPipe_[0], POLLIN, 0});
        fds.push_back({shutdownPipe_[0], POLLIN, 0});
        const std::size_t listen_at = fds.size();
        if (!stopping)
            fds.push_back({listenFd_, POLLIN, 0});
        const std::size_t sessions_at = fds.size();
        // Sessions acceptPending() adds below are NOT in fds yet;
        // bound the revents loop to the ones actually polled or a
        // fresh connection reads a pollfd slot past the end (garbage
        // revents can look like POLLERR and kill the newcomer).
        const std::size_t polled_sessions = sessions_.size();
        for (const auto &s : sessions_) {
            short events = POLLIN;
            if (s->wantsWrite())
                events |= POLLOUT;
            fds.push_back({s->fd(), events, 0});
        }

        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   stopping ? 10 : -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            cmpqos_fatal("poll: %s", std::strerror(errno));
        }

        if (fds[0].revents & POLLIN)
            drainPipe(wakeupPipe_[0]);
        if (fds[1].revents & POLLIN) {
            drainPipe(shutdownPipe_[0]);
            logLine("shutdown requested; draining");
            beginDrain(kNoSession, true, false);
        }
        if (!stopping && (fds[listen_at].revents & POLLIN))
            acceptPending();

        for (std::size_t i = 0; i < polled_sessions; ++i) {
            Session &s = *sessions_[i];
            const short revents = fds[sessions_at + i].revents;
            if (revents & POLLIN) {
                if (!s.readAvailable()) {
                    if (s.bufferedInput() > 0)
                        ++connStats_.midFrameDisconnects;
                    // Dead peer: drop pending tx too, else the session
                    // survives the prune and this branch re-counts it
                    // every round the HUP stays readable.
                    s.abortConnection();
                    continue;
                }
                handleSession(s);
            } else if (revents & (POLLERR | POLLHUP)) {
                if (s.bufferedInput() > 0)
                    ++connStats_.midFrameDisconnects;
                s.abortConnection();
                continue;
            }
            if (s.wantsWrite() && !s.flushSome()) {
                // Write-side detection of a vanished peer: a partial
                // frame left behind still counts as mid-frame death.
                if (s.bufferedInput() > 0)
                    ++connStats_.midFrameDisconnects;
                s.abortConnection();
            }
        }
    }
    engineThread_.join();
    // One last pass so DrainDone sent in the final epoch reaches the
    // outbox even if the engine finished after our last delivery.
    deliverOutbox();
    sessions_.clear();
    logLine("exit: %llu connections, %llu malformed frames, %llu "
            "mid-frame disconnects, %llu epochs",
            static_cast<unsigned long long>(connStats_.accepted),
            static_cast<unsigned long long>(connStats_.malformed),
            static_cast<unsigned long long>(
                connStats_.midFrameDisconnects),
            static_cast<unsigned long long>(epochsCompleted()));
}

void
QosDaemon::acceptPending()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                return;
            cmpqos_warn("accept: %s", std::strerror(errno));
            return;
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        ++connStats_.accepted;
        sessions_.push_back(std::make_unique<Session>(
            fd, nextSessionId_++, opts_.maxFrame));
    }
}

void
QosDaemon::handleSession(Session &s)
{
    while (!s.closing) {
        DecodeResult r = s.nextMessage();
        if (r.status == DecodeResult::Status::NeedMore)
            break;
        if (r.status == DecodeResult::Status::Error) {
            ++connStats_.malformed;
            logLine("session %llu: dropped (%s)",
                    static_cast<unsigned long long>(s.id()),
                    r.error.c_str());
            ErrorMsg e;
            e.code =
                static_cast<std::uint32_t>(ProtoError::Malformed);
            e.message = r.error;
            s.enqueue(e);
            s.closing = true;
            break;
        }
        dispatch(s, r.message);
        if (s.pendingTxBytes() > maxPendingTx) {
            logLine("session %llu: dropped (transmit backlog)",
                    static_cast<unsigned long long>(s.id()));
            s.closing = true;
        }
    }
}

void
QosDaemon::dispatch(Session &s, const Message &m)
{
    if (const auto *hello = std::get_if<Hello>(&m)) {
        handleHello(s, *hello);
        return;
    }
    if (!s.greeted) {
        ErrorMsg e;
        e.code =
            static_cast<std::uint32_t>(ProtoError::BadHandshake);
        e.message = "hello required first";
        s.enqueue(e);
        s.closing = true;
        return;
    }
    if (const auto *submit = std::get_if<Submit>(&m)) {
        handleSubmit(s, *submit);
    } else if (const auto *sub = std::get_if<Subscribe>(&m)) {
        const bool want = sub->enable != 0;
        if (want != s.subscribed) {
            s.subscribed = want;
            subscriberCount_.fetch_add(want ? 1 : -1,
                                       std::memory_order_relaxed);
        }
        SubscribeAck ack;
        ack.enabled = want ? 1 : 0;
        s.enqueue(ack);
    } else if (std::holds_alternative<Status>(m)) {
        handleStatus(s);
    } else if (const auto *drain = std::get_if<Drain>(&m)) {
        handleDrain(s, *drain);
    } else if (const auto *reconf = std::get_if<Reconfig>(&m)) {
        handleReconfig(s, *reconf);
    } else {
        // A server-to-client message from a client: protocol abuse.
        ErrorMsg e;
        e.code = static_cast<std::uint32_t>(ProtoError::Malformed);
        e.message = std::string("unexpected message '") +
                    messageOpName(m) + "'";
        s.enqueue(e);
        s.closing = true;
    }
}

void
QosDaemon::handleHello(Session &s, const Hello &m)
{
    if (s.greeted) {
        ErrorMsg e;
        e.code =
            static_cast<std::uint32_t>(ProtoError::BadHandshake);
        e.message = "duplicate hello";
        s.enqueue(e);
        s.closing = true;
        return;
    }
    if (m.version != protocolVersion) {
        ErrorMsg e;
        e.code =
            static_cast<std::uint32_t>(ProtoError::BadHandshake);
        e.message = "protocol version " + std::to_string(m.version) +
                    " unsupported (daemon speaks " +
                    std::to_string(protocolVersion) + ")";
        s.enqueue(e);
        s.closing = true;
        return;
    }
    if (m.client.size() > maxHelloClientName) {
        ErrorMsg e;
        e.code =
            static_cast<std::uint32_t>(ProtoError::BadHandshake);
        e.message = "client name longer than " +
                    std::to_string(maxHelloClientName) + " bytes";
        s.enqueue(e);
        s.closing = true;
        return;
    }
    s.greeted = true;
    s.clientName = m.client;
    HelloAck ack;
    {
        MutexLock lock(mu_);
        ack.epoch = epoch_;
        ack.nodes = static_cast<std::uint32_t>(config_.nodes);
        ack.quantum = config_.quantum;
        ack.seed = config_.seed;
    }
    ack.server = buildInfoLine("qosd");
    s.enqueue(ack);
}

void
QosDaemon::handleSubmit(Session &s, const Submit &m)
{
    SubmitReply fail;
    fail.ticket = m.ticket;
    if (m.tier >= numQosTiers) {
        fail.error =
            "bad tier " + std::to_string(m.tier) + " (want 0..2)";
        s.enqueue(fail);
        return;
    }
    if (!BenchmarkRegistry::has(m.benchmark)) {
        fail.error = "unknown benchmark '" + m.benchmark + "'";
        s.enqueue(fail);
        return;
    }
    MutexLock lock(mu_);
    if (state_ != DaemonState::Running) {
        fail.error = "epoch draining; retry after the drain";
        s.enqueue(fail);
        return;
    }
    const auto tier = static_cast<QosTier>(m.tier);
    const InstCount instructions =
        m.instructions != 0 ? m.instructions : config_.instructions;
    Cycle time = 0;
    if (m.time != 0)
        time = std::max(m.time, lastTime_);
    else if (anySubmitted_)
        time = lastTime_ + config_.arrivalGap;
    lastTime_ = time;
    anySubmitted_ = true;

    // Journal first, then queue, under one critical section: journal
    // order IS placement order (the engine consumes in push order),
    // which is what makes the journal a faithful replay script.
    journal_->append(time, m.benchmark, tier, instructions);
    pendingReplies_.push_back(PendingSubmit{s.id(), m.ticket, time});
    ClusterArrival arrival;
    arrival.time = time;
    arrival.tier = tier;
    arrival.request = tierRequest(mix_, tier, m.benchmark);
    arrival.instructions = instructions;
    const bool pushed = queue_->push(arrival);
    cmpqos_assert(pushed, "arrival queue closed while Running");
}

void
QosDaemon::handleStatus(Session &s)
{
    StatusReply r;
    {
        MutexLock lock(mu_);
        r.epoch = epoch_;
        r.state = static_cast<std::uint8_t>(state_);
        r.submitted = closedTotals_.submitted + live_.submitted;
        r.accepted = closedTotals_.accepted + live_.accepted;
        r.rejected = closedTotals_.rejected + live_.rejected;
        r.negotiated = closedTotals_.negotiated + live_.negotiated;
        r.completed = closedTotals_.completed;
        r.virtualTime = liveVirtualTime_;
    }
    r.sessions = static_cast<std::uint32_t>(sessions_.size());
    s.enqueue(r);
}

bool
QosDaemon::beginDrain(std::uint64_t session, bool shutdown,
                      bool reconfig_after)
{
    BlockingArrivalQueue *queue = nullptr;
    {
        MutexLock lock(mu_);
        if (state_ != DaemonState::Running || drainPending_)
            return false;
        state_ = DaemonState::Draining;
        drainPending_ = true;
        drainRequester_ = reconfig_after ? kNoSession : session;
        if (shutdown)
            shutdownAfterDrain_ = true;
        queue = queue_.get();
    }
    queue->close();
    return true;
}

void
QosDaemon::handleDrain(Session &s, const Drain &m)
{
    if (!beginDrain(s.id(), m.shutdown != 0, false)) {
        ErrorMsg e;
        e.code = static_cast<std::uint32_t>(ProtoError::BadReconfig);
        e.message = "a drain is already in progress";
        s.enqueue(e);
        return;
    }
    logLine("session %llu: drain%s requested",
            static_cast<unsigned long long>(s.id()),
            m.shutdown != 0 ? "+shutdown" : "");
}

void
QosDaemon::handleReconfig(Session &s, const Reconfig &m)
{
    BlockingArrivalQueue *queue = nullptr;
    {
        MutexLock lock(mu_);
        ReconfigAck nack;
        nack.epoch = epoch_;
        if (state_ != DaemonState::Running || drainPending_ ||
            reconfigPending_) {
            nack.error = "a drain or reconfig is already in progress";
            s.enqueue(nack);
            return;
        }
        EpochConfig next = config_;
        std::string err;
        if (!applyEpochDirectives(next, m.directives, err)) {
            nack.error = err;
            s.enqueue(nack);
            return;
        }
        reconfigPending_ = true;
        reconfigRequester_ = s.id();
        reconfigNext_ = next;
        state_ = DaemonState::Draining;
        drainPending_ = true;
        drainRequester_ = kNoSession;
        queue = queue_.get();
    }
    queue->close();
    logLine("session %llu: reconfig '%s' accepted; rotating epoch",
            static_cast<unsigned long long>(s.id()),
            m.directives.c_str());
}

void
QosDaemon::deliverOutbox()
{
    std::vector<Outgoing> batch;
    {
        MutexLock lock(mu_);
        batch.swap(outbox_);
    }
    if (batch.empty())
        return;
    for (auto &o : batch) {
        if (o.session == kBroadcast) {
            for (const auto &s : sessions_) {
                if (s->greeted && s->subscribed && !s->closing)
                    s->enqueue(o.message);
            }
        } else if (Session *s = findSession(o.session);
                   s != nullptr && !s->closing) {
            s->enqueue(o.message);
        }
    }
    for (const auto &s : sessions_) {
        if (s->pendingTxBytes() > maxPendingTx) {
            logLine("session %llu: dropped (transmit backlog)",
                    static_cast<unsigned long long>(s->id()));
            s->closing = true;
        }
        if (s->wantsWrite() && !s->flushSome())
            s->closing = true;
    }
}

Session *
QosDaemon::findSession(std::uint64_t id)
{
    for (const auto &s : sessions_) {
        if (s->id() == id)
            return s.get();
    }
    return nullptr;
}

void
QosDaemon::logLine(const char *fmt, ...) const
{
    if (opts_.quiet)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::printf("[qosd] ");
    std::vprintf(fmt, args);
    std::printf("\n");
    std::fflush(stdout);
    va_end(args);
}

} // namespace cmpqos
