/**
 * @file
 * One epoch's worth of daemon configuration, and the key=value
 * directive grammar shared by live reconfig (the Reconfig message),
 * the journal header (`# config:` line) and qosd's own flags.
 *
 * An epoch is the daemon's unit of determinism: every submission
 * accepted between two drains executes under one immutable
 * EpochConfig, and the journal header records it, so the epoch can be
 * replayed bit-identically by `cluster_driver --trace <journal>` with
 * the flags in the header's `# replay:` line (or programmatically via
 * epochClusterConfig / epochMix).
 */

#ifndef CMPQOS_SERVICE_EPOCH_CONFIG_HH
#define CMPQOS_SERVICE_EPOCH_CONFIG_HH

#include <string>
#include <string_view>

#include "cluster/engine.hh"
#include "control/config.hh"

namespace cmpqos
{

/** Everything the engine behind one daemon epoch is built from. */
struct EpochConfig
{
    int nodes = 8;
    /** Placement quantum, cycles. */
    Cycle quantum = 2'000'000;
    std::uint64_t seed = 1;
    GacPolicy policy = GacPolicy::LeastLoaded;
    bool negotiate = true;
    /** Silver tier's Elastic(X) budget: the fraction of its reserved
     *  L2 ways an elastic job lets the stealing engine take. */
    double elasticX = 0.05;
    /** Gap between auto-assigned arrival times, cycles. */
    Cycle arrivalGap = 250'000;
    /** Instructions per job when a submission does not specify. */
    InstCount instructions = 2'000'000;
    /** Run the invariant oracle at every quantum barrier. */
    bool checkInvariants = true;
    /** Per-node feedback controller (src/control); off by default. */
    ControllerConfig control;
};

/**
 * Apply one `key=value` directive to @p c. Keys: nodes, quantum,
 * seed, policy, negotiate, elastic-x, arrival-gap, instructions,
 * check-invariants, control. Values are validated (nodes >= 1,
 * quantum > 0, elastic-x in [0,1], ...); on failure @p err names the
 * problem and @p c is unchanged. The control value is a comma-
 * separated controller spec (parseControllerSpec) — one shell word,
 * so it survives the whitespace-split directive grammar.
 */
bool applyEpochDirective(EpochConfig &c, std::string_view key,
                         std::string_view value, std::string &err);

/**
 * Apply a whitespace-separated run of `key=value` directives.
 * All-or-nothing: on any failure @p c is unchanged.
 */
bool applyEpochDirectives(EpochConfig &c, std::string_view directives,
                          std::string &err);

/** Render @p c as the canonical directive run (journal `# config:`
 *  line payload; parseable by applyEpochDirectives). */
std::string formatEpochConfig(const EpochConfig &c);

/** The arrival mix an epoch runs under: ArrivalMix::defaults() with
 *  the Silver tier's elastic budget and the default instruction count
 *  swapped in. */
ArrivalMix epochMix(const EpochConfig &c);

/** Build the engine configuration for one epoch. @p threads is the
 *  worker-thread count (0 = hardware) — deliberately not part of
 *  EpochConfig, since the fingerprint must not depend on it. */
ClusterConfig epochClusterConfig(const EpochConfig &c, unsigned threads);

/** The cluster_driver invocation that replays a journal written under
 *  @p c (journal path substituted for @p journal_path). */
std::string replayCommand(const EpochConfig &c,
                          const std::string &journal_path);

} // namespace cmpqos

#endif // CMPQOS_SERVICE_EPOCH_CONFIG_HH
