#include "epoch_config.hh"

#include <cstdio>
#include <cstdlib>

namespace cmpqos
{

namespace
{

bool
parseU64(std::string_view v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    std::uint64_t acc = 0;
    for (const char c : v) {
        if (c < '0' || c > '9')
            return false;
        const auto d = static_cast<std::uint64_t>(c - '0');
        if (acc > (UINT64_MAX - d) / 10)
            return false;
        acc = acc * 10 + d;
    }
    out = acc;
    return true;
}

bool
parseF64(std::string_view v, double &out)
{
    const std::string s(v);
    char *end = nullptr;
    const double d = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        return false;
    out = d;
    return true;
}

bool
parseBool(std::string_view v, bool &out)
{
    if (v == "1" || v == "true" || v == "on")
        out = true;
    else if (v == "0" || v == "false" || v == "off")
        out = false;
    else
        return false;
    return true;
}

bool
parsePolicyName(std::string_view v, GacPolicy &out)
{
    if (v == "first-fit")
        out = GacPolicy::FirstFit;
    else if (v == "earliest-slot")
        out = GacPolicy::EarliestSlot;
    else if (v == "least-loaded")
        out = GacPolicy::LeastLoaded;
    else
        return false;
    return true;
}

} // namespace

bool
applyEpochDirective(EpochConfig &c, std::string_view key,
                    std::string_view value, std::string &err)
{
    const auto bad = [&](const char *why) {
        err = std::string(key) + "=" + std::string(value) + ": " + why;
        return false;
    };
    std::uint64_t u = 0;
    double f = 0.0;
    bool b = false;
    if (key == "nodes") {
        if (!parseU64(value, u) || u < 1 || u > 4096)
            return bad("want an integer in [1, 4096]");
        c.nodes = static_cast<int>(u);
    } else if (key == "quantum") {
        if (!parseU64(value, u) || u == 0)
            return bad("want a positive cycle count");
        c.quantum = u;
    } else if (key == "seed") {
        if (!parseU64(value, u))
            return bad("want an unsigned integer");
        c.seed = u;
    } else if (key == "policy") {
        if (!parsePolicyName(value, c.policy))
            return bad(
                "want first-fit, earliest-slot or least-loaded");
    } else if (key == "negotiate") {
        if (!parseBool(value, b))
            return bad("want 0/1");
        c.negotiate = b;
    } else if (key == "elastic-x") {
        if (!parseF64(value, f) || f < 0.0 || f > 1.0)
            return bad("want a fraction in [0, 1]");
        c.elasticX = f;
    } else if (key == "arrival-gap") {
        if (!parseU64(value, u) || u == 0)
            return bad("want a positive cycle count");
        c.arrivalGap = u;
    } else if (key == "instructions") {
        if (!parseU64(value, u) || u == 0)
            return bad("want a positive instruction count");
        c.instructions = u;
    } else if (key == "check-invariants") {
        if (!parseBool(value, b))
            return bad("want 0/1");
        c.checkInvariants = b;
    } else if (key == "control") {
        ControllerConfig control;
        std::string spec_err;
        if (!parseControllerSpec(std::string(value), control, spec_err))
            return bad(spec_err.c_str());
        c.control = control;
    } else {
        err = "unknown directive '" + std::string(key) +
              "' (want nodes, quantum, seed, policy, negotiate, "
              "elastic-x, arrival-gap, instructions, "
              "check-invariants or control)";
        return false;
    }
    return true;
}

bool
applyEpochDirectives(EpochConfig &c, std::string_view directives,
                     std::string &err)
{
    EpochConfig next = c;
    std::size_t pos = 0;
    bool any = false;
    while (pos < directives.size()) {
        while (pos < directives.size() &&
               (directives[pos] == ' ' || directives[pos] == '\t'))
            ++pos;
        if (pos >= directives.size())
            break;
        std::size_t end = pos;
        while (end < directives.size() && directives[end] != ' ' &&
               directives[end] != '\t')
            ++end;
        const std::string_view token = directives.substr(pos, end - pos);
        pos = end;
        const std::size_t eq = token.find('=');
        if (eq == std::string_view::npos || eq == 0) {
            err = "malformed directive '" + std::string(token) +
                  "' (want key=value)";
            return false;
        }
        if (!applyEpochDirective(next, token.substr(0, eq),
                                 token.substr(eq + 1), err))
            return false;
        any = true;
    }
    if (!any) {
        err = "no directives given";
        return false;
    }
    c = next;
    return true;
}

std::string
formatEpochConfig(const EpochConfig &c)
{
    char buf[64];
    std::string s;
    s += "nodes=" + std::to_string(c.nodes);
    s += " quantum=" + std::to_string(c.quantum);
    s += " seed=" + std::to_string(c.seed);
    s += " policy=";
    s += gacPolicyName(c.policy);
    s += " negotiate=";
    s += c.negotiate ? "1" : "0";
    std::snprintf(buf, sizeof(buf), "%.17g", c.elasticX);
    s += " elastic-x=";
    s += buf;
    s += " arrival-gap=" + std::to_string(c.arrivalGap);
    s += " instructions=" + std::to_string(c.instructions);
    s += " check-invariants=";
    s += c.checkInvariants ? "1" : "0";
    // The spec is comma-separated (one word), so it fits the
    // whitespace-split grammar; disabled stays absent to keep
    // pre-controller journals replayable byte-for-byte.
    if (c.control.enabled)
        s += " control=" + formatControllerSpec(c.control);
    return s;
}

ArrivalMix
epochMix(const EpochConfig &c)
{
    ArrivalMix mix = ArrivalMix::defaults();
    mix.instructions = c.instructions;
    mix.tiers[static_cast<std::size_t>(QosTier::Silver)].mode =
        ModeSpec::elastic(c.elasticX);
    return mix;
}

ClusterConfig
epochClusterConfig(const EpochConfig &c, unsigned threads)
{
    ClusterConfig cluster;
    cluster.nodes = c.nodes;
    cluster.threads = threads;
    cluster.quantum = c.quantum;
    cluster.policy = c.policy;
    cluster.negotiate = c.negotiate;
    cluster.seed = c.seed;
    cluster.checkInvariants = c.checkInvariants;
    cluster.control = c.control;
    return cluster;
}

std::string
replayCommand(const EpochConfig &c, const std::string &journal_path)
{
    char buf[64];
    std::string s = "cluster_driver --trace " + journal_path;
    s += " --nodes " + std::to_string(c.nodes);
    s += " --quantum " + std::to_string(c.quantum);
    s += " --seed " + std::to_string(c.seed);
    s += " --policy ";
    s += gacPolicyName(c.policy);
    if (!c.negotiate)
        s += " --no-negotiate";
    std::snprintf(buf, sizeof(buf), "%.17g", c.elasticX);
    s += " --elastic-x ";
    s += buf;
    s += " --instructions " + std::to_string(c.instructions);
    if (c.checkInvariants)
        s += " --check-invariants";
    if (c.control.enabled)
        s += " --control " + formatControllerSpec(c.control);
    s += " --fingerprint";
    return s;
}

} // namespace cmpqos
