#include "client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cmpqos
{

namespace
{

int
openSocket(const ClientOptions &opts, std::string &err)
{
    if (!opts.socketPath.empty()) {
        sockaddr_un addr{};
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            err = "socket path too long: " + opts.socketPath;
            return -1;
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            err = "connect '" + opts.socketPath +
                  "': " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }
    if (opts.tcpPort <= 0) {
        err = "no transport: set a socket path or a TCP port";
        return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.tcpPort));
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect 127.0.0.1:" + std::to_string(opts.tcpPort) +
              ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

QosClient::~QosClient()
{
    disconnect();
}

void
QosClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rx_.clear();
    events_.clear();
}

bool
QosClient::connect(std::string &err)
{
    if (fd_ >= 0) {
        err = "already connected";
        return false;
    }
    for (int attempt = 0;; ++attempt) {
        fd_ = openSocket(opts_, err);
        if (fd_ >= 0)
            break;
        if (attempt >= opts_.connectRetries)
            return false;
        // detlint:allow(wall-clock): host-side connect backoff while
        // the daemon binds its socket; the retry loop runs before any
        // submission exists, so it cannot influence simulation state
        // or the replay journal.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // JSONL mode is detected from the first byte the client sends, so
    // the Hello frame itself selects the mode — nothing extra needed.
    Hello hello;
    hello.client = opts_.clientName.substr(0, maxHelloClientName);
    if (!sendMessage(hello, err))
        return false;
    if (!awaitReply(serverInfo_, err)) {
        disconnect();
        return false;
    }
    if (serverInfo_.version != protocolVersion) {
        err = "daemon speaks protocol version " +
              std::to_string(serverInfo_.version) + ", client " +
              std::to_string(protocolVersion);
        disconnect();
        return false;
    }
    return true;
}

bool
QosClient::sendMessage(const Message &m, std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    const std::string frame = encodeMessage(m, opts_.mode);
    std::size_t off = 0;
    while (off < frame.size()) {
        // MSG_NOSIGNAL: a daemon that died mid-request must surface
        // as EPIPE, not SIGPIPE the caller.
        const ssize_t n = ::send(fd_, frame.data() + off,
                                 frame.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = std::string("write: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
QosClient::readMore(std::string &err, int timeout_ms)
{
    pollfd p{fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
        err = std::string("poll: ") + std::strerror(errno);
        return false;
    }
    if (rc == 0) {
        err = "timeout";
        return false;
    }
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
        err = std::string("read: ") + std::strerror(errno);
        return false;
    }
    if (n == 0) {
        err = "daemon closed the connection";
        return false;
    }
    rx_.append(buf, static_cast<std::size_t>(n));
    return true;
}

bool
QosClient::nextMessage(Message &out, std::string &err, int timeout_ms)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    for (;;) {
        if (!rx_.empty()) {
            DecodeResult r =
                decodeFrame(rx_, opts_.mode, opts_.maxFrame);
            if (r.consumed > 0)
                rx_.erase(0, r.consumed);
            if (r.status == DecodeResult::Status::Ok) {
                out = std::move(r.message);
                return true;
            }
            if (r.status == DecodeResult::Status::Error) {
                err = "protocol error from daemon: " + r.error;
                return false;
            }
        }
        if (!readMore(err, timeout_ms))
            return false;
    }
}

template <typename T>
bool
QosClient::awaitReply(T &out, std::string &err)
{
    for (;;) {
        Message m;
        if (!nextMessage(m, err))
            return false;
        if (auto *reply = std::get_if<T>(&m)) {
            out = std::move(*reply);
            return true;
        }
        if (auto *event = std::get_if<EventMsg>(&m)) {
            events_.push_back(std::move(*event));
            continue;
        }
        if (auto *error = std::get_if<ErrorMsg>(&m)) {
            err = "daemon error " + std::to_string(error->code) +
                  ": " + error->message;
            return false;
        }
        err = std::string("unexpected reply '") + messageOpName(m) +
              "'";
        return false;
    }
}

bool
QosClient::submit(const Submit &request, SubmitReply &reply,
                  std::string &err)
{
    if (!sendMessage(request, err))
        return false;
    if (!awaitReply(reply, err))
        return false;
    if (reply.ticket != request.ticket) {
        err = "reply ticket " + std::to_string(reply.ticket) +
              " does not match request ticket " +
              std::to_string(request.ticket);
        return false;
    }
    return true;
}

bool
QosClient::status(StatusReply &out, std::string &err)
{
    return sendMessage(Status{}, err) && awaitReply(out, err);
}

bool
QosClient::drain(bool shutdown, DrainDone &out, std::string &err)
{
    Drain d;
    d.shutdown = shutdown ? 1 : 0;
    return sendMessage(d, err) && awaitReply(out, err);
}

bool
QosClient::reconfig(const std::string &directives, ReconfigAck &out,
                    std::string &err)
{
    Reconfig r;
    r.directives = directives;
    return sendMessage(r, err) && awaitReply(out, err);
}

bool
QosClient::subscribe(bool enable, std::string &err)
{
    Subscribe s;
    s.enable = enable ? 1 : 0;
    SubscribeAck ack;
    if (!sendMessage(s, err) || !awaitReply(ack, err))
        return false;
    if ((ack.enabled != 0) != enable) {
        err = "daemon did not honour the subscription change";
        return false;
    }
    return true;
}

std::optional<EventMsg>
QosClient::takeEvent()
{
    if (events_.empty())
        return std::nullopt;
    EventMsg e = std::move(events_.front());
    events_.pop_front();
    return e;
}

} // namespace cmpqos
